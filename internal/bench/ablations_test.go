package bench

import "testing"

func TestA1DeputiesSmall(t *testing.T) {
	tab, err := A1Deputies(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: ring gadget on/off, uniform on/off.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// On the gadget, deputies must not increase the max degree.
	on := atoiMust(t, tab.Rows[0][4])
	off := atoiMust(t, tab.Rows[1][4])
	if on > off {
		t.Fatalf("deputies increased gadget degree: %d > %d", on, off)
	}
}

func TestA2BucketWidthSmall(t *testing.T) {
	tab, err := A2BucketWidth(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Wider buckets cannot need more rebuilds.
	prev := 1 << 30
	for _, row := range tab.Rows {
		r := atoiMust(t, row[3])
		if r > prev {
			t.Fatalf("rebuilds increased with wider mu: %v", tab.Rows)
		}
		prev = r
	}
}

func TestA3CertificationSmall(t *testing.T) {
	tab, err := A3Certification(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if atoiMust(t, row[2])+atoiMust(t, row[3]) == 0 {
			t.Fatalf("no skips at all in row %v", row)
		}
	}
}

func TestAblationsAll(t *testing.T) {
	tabs, err := Ablations(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d, want 3", len(tabs))
	}
}
