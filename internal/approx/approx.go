// Package approx implements the approximate-greedy spanner algorithm for
// doubling metrics (Das–Narasimhan [DN97], Gudmundsson–Levcopoulos–
// Narasimhan [GLN02]), whose lightness in arbitrary doubling metrics is the
// subject of Section 5 of the paper (Theorem 6).
//
// The architecture follows Section 5.1 of the paper:
//
//  1. Build a bounded-degree base spanner G' = (M, E') with stretch
//     sqrt(t/t') via hierarchical nets (Theorem 2 substrate).
//  2. Let D be the maximum edge weight of G'. All "light" edges E0 (weight
//     at most D/n) go straight into the output: |E0| = O(n) edges of total
//     weight O(D) = O(w(MST)).
//  3. The remaining edges are partitioned into weight buckets [W, mu*W) and
//     examined in non-decreasing order, simulating the greedy algorithm
//     with stretch s = sqrt(t*t') on a cluster graph of radius
//     delta*W rebuilt per bucket. Distance queries on the cluster graph
//     return certified bounds: an edge is skipped only when the upper
//     bound already witnesses an s-spanner path, so the final stretch is
//     guaranteed; uncertified edges are added (possibly keeping a few more
//     edges than the exact greedy — the cost shows up only in constants).
//
// The output is an s-spanner of G', hence a t-spanner of the input metric
// by spanner transitivity.
package approx

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/nettree"
)

// Options configures the approximate-greedy run.
type Options struct {
	// Eps is the overall stretch slack: the output is a (1+Eps)-spanner of
	// the input metric.
	Eps float64
	// Mu is the bucket width ratio (> 1); 0 selects the default 2.
	Mu float64
	// Delta is the cluster radius as a fraction of the bucket floor weight;
	// 0 selects the default Eps/128, which the A3 ablation shows lets the
	// cluster certificate absorb nearly all skips (fine clusters keep the
	// per-hop detour surcharge negligible).
	Delta float64
}

// Stats records the internal accounting of a run, used by the experiment
// harness and by the Lemma 11 audit.
type Stats struct {
	// BaseGamma is the net-tree reach multiplier the accepted attempt used.
	BaseGamma float64
	// Attempts counts base-spanner construction attempts (the output of
	// each is verified exhaustively; failures escalate gamma).
	Attempts int
	// BaseEdges is |E'|, the number of base spanner edges.
	BaseEdges int
	// LightEdges is |E0|.
	LightEdges int
	// HeavyKept is the number of E' \ E0 edges kept by the simulation.
	HeavyKept int
	// HeavySkipped is the number of E' \ E0 edges skipped with a certified
	// spanner path (cluster certificate or exact bounded search).
	HeavySkipped int
	// SkippedByCluster counts skips certified by the cluster graph alone
	// (no exact search needed).
	SkippedByCluster int
	// SkippedByExact counts skips that needed the exact bounded-Dijkstra
	// fallback after the cluster certificate was inconclusive.
	SkippedByExact int
	// Buckets is the number of weight buckets processed.
	Buckets int
	// ClusterRebuilds counts cluster graph constructions.
	ClusterRebuilds int
	// SimStretch is the greedy-simulation stretch s = sqrt(t*t').
	SimStretch float64
	// BaseStretch is the base spanner stretch sqrt(t/t').
	BaseStretch float64
}

// Result is the output of the approximate-greedy algorithm.
type Result struct {
	// Spanner is the output graph.
	Spanner *graph.Graph
	// HeavyEdges lists the kept edges from E' \ E0 (the edges subject to
	// the Lemma 11 second-shortest-path property).
	HeavyEdges []graph.Edge
	Stats      Stats
}

// Greedy runs the approximate-greedy algorithm on metric m.
func Greedy(m metric.Metric, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("approx: eps must be in (0, 1), got %v", opts.Eps)
	}
	mu := opts.Mu
	if mu == 0 {
		mu = 2
	}
	if mu <= 1 {
		return nil, fmt.Errorf("approx: mu must exceed 1, got %v", mu)
	}
	delta := opts.Delta
	if delta == 0 {
		delta = opts.Eps / 128
	}
	if delta <= 0 {
		return nil, fmt.Errorf("approx: delta must be positive, got %v", delta)
	}
	n := m.N()
	if n <= 1 {
		return &Result{Spanner: graph.New(n)}, nil
	}

	// Stretch split: t = 1+eps, t' = 1 + eps/8 < t. Base spanner has
	// stretch sqrt(t/t'), simulation runs at s = sqrt(t*t'); the composed
	// stretch is sqrt(t/t') * sqrt(t*t') = t. The small t' hands most of
	// the eps budget to the base spanner, whose degree-reduction deputies
	// need slack to reroute (see nettree.BaseSpanner).
	t := 1 + opts.Eps
	tPrime := 1 + opts.Eps/8
	baseStretch := math.Sqrt(t / tPrime)
	simStretch := math.Sqrt(t * tPrime)

	// Optimistic gamma ladder for the base spanner. Instead of verifying
	// the (dense) base per rung, each attempt runs the full pipeline and
	// exhaustively verifies the final (sparse) output against the metric —
	// far cheaper — escalating gamma on failure. The last rung uses the
	// worst-case-provable reach.
	baseEps := baseStretch - 1
	lo, hi := 2+2/baseEps, 4+16/baseEps
	ladder := []float64{lo, lo * 1.75, lo * 3, hi}
	attempts := 0
	for _, gamma := range ladder {
		if gamma > hi {
			gamma = hi
		}
		attempts++
		res, err := greedyWithBase(m, opts, gamma, mu, delta, simStretch, baseStretch)
		if err != nil {
			return nil, err
		}
		res.Stats.BaseGamma = gamma
		res.Stats.Attempts = attempts
		if outputStretchOK(res.Spanner, m, t) {
			return res, nil
		}
	}
	return nil, fmt.Errorf("approx: output failed verification even at the provable base reach (eps=%v)", opts.Eps)
}

// greedyWithBase runs one pipeline attempt at a fixed base-spanner reach.
func greedyWithBase(m metric.Metric, opts Options, gamma, mu, delta, simStretch, baseStretch float64) (*Result, error) {
	n := m.N()
	res := &Result{Spanner: graph.New(n)}
	res.Stats.BaseStretch = baseStretch
	res.Stats.SimStretch = simStretch

	base, _, err := nettree.BaseSpanner(m, nettree.BaseSpannerOptions{Eps: baseStretch - 1, Gamma: gamma})
	if err != nil {
		return nil, fmt.Errorf("approx: base spanner: %w", err)
	}
	res.Stats.BaseEdges = base.M()

	// Split E' into light E0 and heavy edges.
	var maxW float64
	for _, e := range base.Edges() {
		if e.W > maxW {
			maxW = e.W
		}
	}
	lightCut := maxW / float64(n)
	h := res.Spanner
	var heavy []graph.Edge
	for _, e := range base.SortedEdges() {
		if e.W <= lightCut {
			h.MustAddEdge(e.U, e.V, e.W)
			res.Stats.LightEdges++
		} else {
			heavy = append(heavy, e)
		}
	}

	// Bucketed greedy simulation over the heavy edges (already sorted).
	search := graph.NewSearcher(n)
	i := 0
	for i < len(heavy) {
		floor := heavy[i].W
		ceil := floor * mu
		res.Stats.Buckets++
		cg, err := cluster.Build(h, delta*floor)
		if err != nil {
			return nil, fmt.Errorf("approx: cluster build: %w", err)
		}
		res.Stats.ClusterRebuilds++
		for i < len(heavy) && heavy[i].W < ceil {
			e := heavy[i]
			i++
			limit := simStretch * e.W
			// Two-tier query: the cluster-graph certificate is cheap but
			// conservative (its additive error grows with the hop count);
			// when it is inconclusive, an exact distance-bounded Dijkstra
			// on the partial spanner decides, exploring only the ball of
			// radius limit around the endpoint. The simulation therefore
			// makes the same decisions as the exact greedy restricted to
			// E' \ E0, but answers most skips from the coarse view.
			if _, ok := cg.UpperBound(e.U, e.V, limit); ok {
				res.Stats.HeavySkipped++
				res.Stats.SkippedByCluster++
				continue
			}
			if _, within := search.DistanceWithin(h, e.U, e.V, limit); within {
				res.Stats.HeavySkipped++
				res.Stats.SkippedByExact++
				continue
			}
			h.MustAddEdge(e.U, e.V, e.W)
			cg.AddEdge(e.U, e.V, e.W)
			res.HeavyEdges = append(res.HeavyEdges, e)
			res.Stats.HeavyKept++
		}
	}
	return res, nil
}

// outputStretchOK exhaustively verifies that h is a t-spanner of m. This is
// the soundness gate for the optimistic base-reach ladder; it runs on the
// sparse output, so it costs n Dijkstras over O(n) edges.
func outputStretchOK(h *graph.Graph, m metric.Metric, t float64) bool {
	n := m.N()
	search := graph.NewSearcher(n)
	dist := make([]float64, n)
	for u := 0; u < n; u++ {
		search.Distances(h, u, dist)
		for v := u + 1; v < n; v++ {
			if dist[v] > t*m.Dist(u, v)+1e-12 {
				return false
			}
		}
	}
	return true
}

// AuditSecondShortestPath checks the Lemma 11 analogue on a run's output:
// for each kept heavy edge e = (u, v), the second-shortest path between u
// and v in the final spanner should be heavier than tPrime * w(e). Because
// our simulation is conservative (it may keep an edge the exact greedy
// would skip), a small number of violations is possible; the audit returns
// the violation count and the total edges checked so callers can report the
// observed fraction.
func AuditSecondShortestPath(r *Result, tPrime float64) (violations, checked int) {
	for _, e := range r.HeavyEdges {
		checked++
		if second := r.Spanner.SecondShortestPath(e.U, e.V); second <= tPrime*e.W {
			violations++
		}
	}
	return violations, checked
}
