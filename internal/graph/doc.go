// Package graph implements the weighted undirected graph substrate used by
// every spanner construction in this repository: adjacency-list graphs,
// Dijkstra variants (full, distance-bounded, target-pruned, and bounded
// bidirectional), breadth-first search, minimum spanning trees (Kruskal and
// Prim), a union-find structure, girth computation, second-shortest paths,
// and all-pairs shortest paths.
//
// Vertices are dense integers in [0, N()). Edge weights are positive
// float64s; all algorithms assume positive weights (shortest paths are
// well-defined and Dijkstra applies).
//
// The hot path of the greedy spanner engines is served by Searcher, which
// answers repeated distance queries and single-source rows over graphs of a
// fixed vertex count while reusing all internal scratch, so the per-query
// allocations of the convenience methods on Graph disappear from the main
// loops. Its BidirDistanceWithin grows bounded Dijkstra balls from both
// endpoints at once — two balls of radius ~limit/2 instead of one of radius
// limit — and is the certification primitive of the batched-parallel graph
// engine; its Distances fills a caller-owned row and backs the concurrent
// bound-matrix refreshes of the metric engine. A Searcher is not safe for
// concurrent use: parallel callers hold one Searcher per worker (the graph
// being queried may be shared read-only).
package graph
