package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/metric"
)

// HubOracle is the hub-label certification fast path shared by every greedy
// engine in this package. It maintains, for k selected hub vertices, the
// exact single-source distance array over the *current spanner*, and
// answers the certification query "is delta_H(u, v) <= limit?" in O(k) by
// the hub-label upper bound
//
//	min_h  d_H(u, h) + d_H(h, v)  >=  delta_H(u, v),
//
// an upper bound by the triangle inequality. A hub-certified skip is
// therefore always a decision the exact engine would also make — the
// oracle can only avoid Dijkstra searches, never change the output — so
// engines running with hubs stay bit-identical to the reference scans.
// One caveat, shared with the bidirectional primitive since PR 1: the
// label sum d(u,h)+d(h,v) adds the two legs' path weights in a different
// order than a single Dijkstra path sum, so the two could in principle
// disagree on a pair whose u–h–v path length ties t*w within a float64
// ulp. No such tie occurs in any of the repo's test families; the
// equivalence tests assert exact identity.
//
// # Maintenance
//
// Accepted edges only shrink spanner distances, so hub arrays are repaired
// lazily: OnAccept queues the edge, and the next query re-relaxes each hub
// array over exactly the dirty radius the edge improves
// (graph.Searcher.RelaxNewEdge) instead of re-running a full Dijkstra.
// Between syncs the arrays are distances on a sub-spanner of the live one,
// hence still valid upper bounds. After a sync the arrays are exact on the
// spanner at that moment, which additionally soundly supports the
// fault-avoidance certificate (CertifyAvoiding) used by the
// fault-tolerant engine.
//
// # Incremental rebase
//
// Rebase carries the oracle across IncrementalSpanner insertions the same
// way bound-row epochs survive: arrays synced to an accepted-edge prefix
// the replay preserves stay valid (distances on a subgraph of every replay
// spanner only overestimate) and are repaired by relaxing the preserved
// edges they have not seen; arrays synced past the preserved prefix are
// stale and are refreshed in place by one full bounded Dijkstra at the
// next sync. Arrays grow within reserved slack, so insertions churn no
// hub memory until the slack is exhausted.
//
// A HubOracle is not safe for concurrent use; the engines consult it only
// from their serial sections.
type HubOracle struct {
	h    *graph.Graph
	hubs []int
	rows [][]float64
	// epoch is the accepted-edge count the rows are synced to, live the
	// attached spanner's current accepted count (epoch plus the repairs
	// still queued); pending holds the accepted edges not yet relaxed in.
	// sync sets epoch to live absolutely — never by increments, which
	// would double-count preserved edges a rebase re-queues.
	epoch   int
	live    int
	pending []graph.Edge
	// stale marks rows invalidated by a rebase onto a shorter prefix;
	// the next sync refreshes every row with a full bounded Dijkstra.
	stale  bool
	search *graph.Searcher

	// lastHit rotates the certification scan to start at the hub that
	// certified the previous query: the supply emits pairs in weight
	// order, so consecutive queries share geometry and the same hub tends
	// to certify long runs of them, making the common case O(1) in k.
	lastHit int

	// ckpts is the checkpoint ring (EnableCheckpoints): up to
	// maxHubCheckpoints digest-guarded snapshots of all rows at ascending
	// epochs. A backward rebase restores the newest snapshot at or below
	// the keep prefix and repairs forward from it instead of refreshing
	// every row whole. ckptEvery is the accepted-edge snapshot interval
	// (0 = off), nextCkpt the epoch that triggers the next snapshot.
	ckpts     []hubCheckpoint
	ckptEvery int
	nextCkpt  int

	// Maintenance counters for benchmarks (query counters live in the
	// engine stats, which are zeroed per build or insertion).
	relaxed   int
	refreshes int
	// reselected counts hubs re-sampled after their vertex was deleted
	// (lifetime; surfaced as Stats.HubsReselected).
	reselected int
}

// NewHubOracle returns an oracle over the given hub vertices, attached to
// the spanner h (which the caller mutates through OnAccept notifications).
// h is expected to be empty or to contain exactly the epoch accepted edges
// the caller reports; a fresh build starts with an empty spanner, for
// which the all-+Inf arrays are exact. slack reserves per-array growth
// headroom for maintained spanners (0 for one-shot builds).
func NewHubOracle(hubs []int, h *graph.Graph, slack int) *HubOracle {
	n := h.N()
	o := &HubOracle{h: h, hubs: hubs, search: graph.NewSearcher(n)}
	o.rows = make([][]float64, len(hubs))
	for i, hub := range hubs {
		row := make([]float64, n, n+slack)
		for v := range row {
			row[v] = graph.Inf
		}
		row[hub] = 0
		o.rows[i] = row
	}
	return o
}

// hubCheckpoint is one epoch snapshot of every hub array, with per-row
// FNV-1a digests verified at restore time.
type hubCheckpoint struct {
	epoch int
	rows  [][]float64
	sums  []uint64
}

// maxHubCheckpoints bounds the checkpoint ring; older snapshots are
// evicted first.
const maxHubCheckpoints = 3

// sumFloatRow is the deterministic FNV-1a digest of one hub array.
func sumFloatRow(row []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range row {
		h ^= math.Float64bits(x)
		h *= 1099511628211
	}
	return h
}

// EnableCheckpoints arms the epoch snapshot ring with the given
// accepted-edge interval. Only the incremental engine enables this;
// one-shot builds never rebase backward and skip the copies entirely.
func (o *HubOracle) EnableCheckpoints(every int) {
	if every <= 0 {
		o.ckptEvery = 0
		o.ckpts = nil
		return
	}
	o.ckptEvery = every
	o.nextCkpt = every
	o.ckpts = o.ckpts[:0]
}

// maybeCheckpoint snapshots all rows right after a sync brought them
// exact at o.epoch, whenever the epoch crossed the snapshot interval.
func (o *HubOracle) maybeCheckpoint() {
	if o.ckptEvery <= 0 || o.epoch < o.nextCkpt {
		return
	}
	for o.nextCkpt <= o.epoch {
		o.nextCkpt += o.ckptEvery
	}
	if len(o.ckpts) > 0 && o.ckpts[len(o.ckpts)-1].epoch == o.epoch {
		return
	}
	ck := hubCheckpoint{epoch: o.epoch, rows: make([][]float64, len(o.rows)), sums: make([]uint64, len(o.rows))}
	for i, row := range o.rows {
		c := append([]float64(nil), row...)
		ck.rows[i] = c
		ck.sums[i] = sumFloatRow(c)
	}
	o.ckpts = append(o.ckpts, ck)
	if len(o.ckpts) > maxHubCheckpoints {
		copy(o.ckpts, o.ckpts[len(o.ckpts)-maxHubCheckpoints:])
		o.ckpts = o.ckpts[:maxHubCheckpoints]
	}
}

// restoreCheckpoint restores the newest snapshot with epoch <= keep and
// reports whether it did. Every candidate's row digests are verified
// first; a snapshot failing them is dropped on the spot — corruption in a
// checkpoint degrades to "no checkpoint", it is never restored. Restored
// rows are exact at the snapshot epoch; entries for points added after
// the snapshot reset to +Inf, their exact distance in that prefix spanner
// (the preserved prefix never touches points that did not exist yet).
func (o *HubOracle) restoreCheckpoint(keep int) bool {
	for len(o.ckpts) > 0 {
		ck := o.ckpts[len(o.ckpts)-1]
		if ck.epoch > keep {
			o.ckpts = o.ckpts[:len(o.ckpts)-1]
			continue
		}
		valid := true
		for i := range ck.rows {
			if sumFloatRow(ck.rows[i]) != ck.sums[i] {
				valid = false
				break
			}
		}
		if !valid {
			o.ckpts = o.ckpts[:len(o.ckpts)-1]
			continue
		}
		for i := range o.rows {
			row, data := o.rows[i], ck.rows[i]
			copy(row[:len(data)], data)
			for v := len(data); v < len(row); v++ {
				row[v] = graph.Inf
			}
		}
		o.epoch = ck.epoch
		o.stale = false
		return true
	}
	return false
}

// pruneCheckpoints drops snapshots proven past the keep prefix: their
// epochs lie on the timeline the rebase is discarding.
func (o *HubOracle) pruneCheckpoints(keep int) {
	kept := o.ckpts[:0]
	for _, ck := range o.ckpts {
		if ck.epoch <= keep {
			kept = append(kept, ck)
		}
	}
	o.ckpts = kept
}

// ReplaceHubs retires every hub whose vertex is marked dead, promoting a
// replacement chosen by pick — called with the current hub membership
// (surviving hubs plus promotions so far) and returning the vertex to
// promote, or a negative value when no candidate remains. The incremental
// engine passes the same farthest-point rule the initial selection used
// (see SelectMetricHubs), so coverage is re-sampled rather than defaulting
// to low ids; a nil pick falls back to the smallest live vertex not
// already serving. Promotion invalidates all rows (stale) and drops every
// snapshot: a snapshot's rows are distances from the old hub set, and
// restoring one under the new set would certify pairs through a vertex
// that no longer exists. When no candidate remains the dead hub is kept —
// the preserved prefix never touches dead vertices, so its row degrades
// to all-+Inf and certifies nothing, which is merely slow, never wrong.
func (o *HubOracle) ReplaceHubs(dead []bool, live []int, pick func(isHub map[int]bool) int) {
	isHub := make(map[int]bool, len(o.hubs))
	for _, h := range o.hubs {
		isHub[h] = true
	}
	replaced := false
	li := 0
	for i, h := range o.hubs {
		if h >= len(dead) || !dead[h] {
			continue
		}
		nh := -1
		if pick != nil {
			nh = pick(isHub)
		} else {
			for li < len(live) && isHub[live[li]] {
				li++
			}
			if li < len(live) {
				nh = live[li]
			}
		}
		if nh < 0 || isHub[nh] {
			continue
		}
		isHub[nh] = true
		o.hubs[i] = nh
		o.reselected++
		replaced = true
	}
	if replaced {
		o.ckpts = nil
		o.stale = true
	}
}

// Reselected reports the lifetime number of hubs re-sampled by
// ReplaceHubs after their vertex was deleted.
func (o *HubOracle) Reselected() int { return o.reselected }

// Hubs returns the oracle's hub vertices (read-only).
func (o *HubOracle) Hubs() []int { return o.hubs }

// Relaxed reports the total number of hub-array entries improved by the
// dirty-radius maintenance, and Refreshes the number of full per-hub
// Dijkstra refreshes (rebase repairs only; a one-shot build performs none).
func (o *HubOracle) Relaxed() int   { return o.relaxed }
func (o *HubOracle) Refreshes() int { return o.refreshes }

// Epoch reports the accepted-edge count the arrays are synced to. Between
// OnAccept and the next query it lags the live spanner; bounds proven at
// this epoch are stamped into pre-seeded bound rows.
func (o *HubOracle) Epoch() int { return o.epoch }

// OnAccept queues an accepted spanner edge for lazy maintenance. The
// caller must have already added the edge to the attached spanner.
func (o *HubOracle) OnAccept(e graph.Edge) {
	o.pending = append(o.pending, e)
	o.live++
}

// sync repairs every hub array to exact distances on the live spanner:
// the dirty radius of each queued edge is re-relaxed in acceptance order,
// or — after a rebase invalidated the arrays — each row is refreshed whole
// by one bounded Dijkstra.
func (o *HubOracle) sync() {
	switch {
	case o.stale:
		for i, hub := range o.hubs {
			o.search.BoundedDistances(o.h, hub, graph.Inf, o.rows[i])
			o.refreshes++
		}
		o.stale = false
	case len(o.pending) == 0:
		return
	default:
		for _, e := range o.pending {
			for i := range o.rows {
				o.relaxed += o.search.RelaxNewEdge(o.h, o.rows[i], e.U, e.V, e.W)
			}
		}
	}
	o.epoch = o.live
	o.pending = o.pending[:0]
	o.maybeCheckpoint()
}

// Certify reports whether the hub labels prove delta_H(u, v) <= limit on
// the live spanner, returning the certifying upper bound. A true result is
// exact-equivalent: the bound dominates the spanner distance, so the exact
// engine would skip too.
func (o *HubOracle) Certify(u, v int, limit float64) (float64, bool) {
	o.sync()
	k := len(o.rows)
	for j := 0; j < k; j++ {
		i := o.lastHit + j
		if i >= k {
			i -= k
		}
		row := o.rows[i]
		if b := row[u] + row[v]; b <= limit {
			o.lastHit = i
			return b, true
		}
	}
	return graph.Inf, false
}

// CertifyAvoiding reports whether the hub labels prove that the spanner
// minus the vertices in dead still connects u and v within limit. It
// certifies through a hub h with row[u]+row[v] <= limit whose shortest-path
// trees provably avoid every dead vertex a: after sync the rows are exact,
// so row[a] > max(row[u], row[v]) means no shortest h-u or h-v path can
// pass through a (a path through a would be strictly longer than the
// shortest), and the concatenated u-h-v path survives the failures. This
// is the fault-tolerant engine's per-fault-set fast path.
func (o *HubOracle) CertifyAvoiding(u, v int, limit float64, dead []int) bool {
	o.sync()
next:
	for i := range o.rows {
		row := o.rows[i]
		du, dv := row[u], row[v]
		if du+dv > limit {
			continue
		}
		far := du
		if dv > far {
			far = dv
		}
		for _, a := range dead {
			if row[a] <= far {
				continue next
			}
		}
		return true
	}
	return false
}

// Rebase carries the oracle across an incremental replay that restarts
// from the first keep accepted edges of the previous scan (accepted, in
// acceptance order), over a vertex set grown to n, with h the replay's
// starting spanner. Rows synced to a prefix of the preserved edges stay
// valid and queue the preserved edges they have not seen for dirty-radius
// repair; rows synced past the cut are refreshed in place at the next
// sync. Rows grow within their reserved slack; new points start at +Inf,
// their exact distance in the restart spanner.
func (o *HubOracle) Rebase(keep, n int, accepted []graph.Edge, h *graph.Graph, slack int) {
	o.h = h
	if n > o.search.N() {
		o.search = graph.NewSearcher(n)
	}
	o.pending = o.pending[:0]
	o.live = keep
	o.pruneCheckpoints(keep)
	switch {
	case o.epoch > keep:
		// Arrays synced past the cut: distances on the discarded suffix
		// could undercut the restart spanner's. A checkpoint at or below
		// the cut restores exact prefix rows and repairs forward like the
		// in-prefix case; with none, refresh whole at the next sync
		// (epoch then resets to the live count).
		if o.restoreCheckpoint(keep) {
			o.pending = append(o.pending, accepted[o.epoch:keep]...)
		} else {
			o.stale = true
		}
	case o.stale:
		// Still stale from an earlier rebase that never synced; a
		// surviving checkpoint below the cut beats the full refresh,
		// otherwise the refresh at the next sync covers the restart
		// spanner as well.
		if o.restoreCheckpoint(keep) {
			o.pending = append(o.pending, accepted[o.epoch:keep]...)
		}
	default:
		// Repair path: the preserved edges the rows have not seen yet are
		// exactly accepted[epoch:keep]; the replay's own accepts follow
		// through OnAccept, and sync advances epoch to the live count
		// only after relaxing them all.
		o.pending = append(o.pending, accepted[o.epoch:keep]...)
	}
	for i := range o.rows {
		row := o.rows[i]
		old := len(row)
		if cap(row) < n {
			grown := make([]float64, old, n+slack)
			copy(grown, row)
			row = grown
		}
		row = row[:n]
		for v := old; v < n; v++ {
			row[v] = graph.Inf
		}
		o.rows[i] = row
	}
}

// DefaultHubs suggests a hub count for an n-element instance: enough
// label coverage for the certification hit rate to stay high while the
// dirty-radius maintenance (which scales with k) stays a small fraction
// of build time — roughly 3·n^(1/3), the knee found by the hubbench
// ablation on uniform instances.
func DefaultHubs(n int) int {
	k := 3 * int(math.Cbrt(float64(n)))
	if k < 8 {
		k = 8
	}
	return k
}

// SelectGraphHubs picks k hub vertices for a graph build by the degree
// heuristic: the highest-degree vertices of the input graph (ties broken
// by id, deterministically) sit on the most candidate paths and make the
// best label roots. k is clamped to n.
func SelectGraphHubs(g *graph.Graph, k int) []int {
	n := g.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// Partial selection sort over the degree sequence: k is small (tens),
	// so O(k*n) beats sorting all n degrees.
	hubs := make([]int, 0, k)
	taken := make([]bool, n)
	for len(hubs) < k {
		best := -1
		for v := 0; v < n; v++ {
			if taken[v] {
				continue
			}
			if best < 0 || g.Degree(v) > g.Degree(best) {
				best = v
			}
		}
		taken[best] = true
		hubs = append(hubs, best)
	}
	return hubs
}

// SelectMetricHubs picks k hub vertices for a metric build by ball-growth
// (farthest-point) sampling: starting from point 0, each step adds the
// point maximizing the distance to the chosen set. The resulting hubs are
// a 2-approximate k-center of the point set, so every point has a hub
// within the optimal covering radius — the coverage that makes the
// triangle-inequality labels tight. Deterministic; O(k*n) distance
// evaluations; k is clamped to n.
func SelectMetricHubs(m metric.Metric, k int) []int {
	n := m.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	hubs := make([]int, 0, k)
	minDist := make([]float64, n)
	for v := range minDist {
		minDist[v] = graph.Inf
	}
	cur := 0
	for {
		hubs = append(hubs, cur)
		if len(hubs) == k {
			return hubs
		}
		next, far := -1, -1.0
		for v := 0; v < n; v++ {
			if d := m.Dist(cur, v); d < minDist[v] {
				minDist[v] = d
			}
			if minDist[v] > far {
				next, far = v, minDist[v]
			}
		}
		if next < 0 || far == 0 {
			// Degenerate set (all remaining points coincide with a hub):
			// pad with the lowest unchosen ids for a deterministic result.
			seen := make([]bool, n)
			for _, h := range hubs {
				seen[h] = true
			}
			for v := 0; v < n && len(hubs) < k; v++ {
				if !seen[v] {
					hubs = append(hubs, v)
				}
			}
			return hubs
		}
		cur = next
	}
}
