package chaos_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The crash-recovery property: for a fixed operation script, a crash
// injected at ANY IO point — mid-WAL-append, mid-snapshot-write, after a
// rename but before the directory sync, during garbage collection, or
// mid-replay during a recovery — must recover to a state bit-identical
// (result digest, counters included) to a clean run of some prefix of the
// script, namely exactly the operations whose log records became durable;
// and continuing the script from that point must land bit-identical to a
// run that never crashed. The suite enumerates every crash point of three
// workloads (Euclidean metric, +Inf matrix metric, graph) one run at a
// time and asserts both halves at each.

// crashPts is a tie-heavy 4x4 grid, the point universe for the Euclidean
// crash workload.
func crashPts() [][]float64 {
	pts := make([][]float64, 16)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), float64(i / 4)}
	}
	return pts
}

// crashDist is the matrix-universe distance over abstract ids, with +Inf
// holes and no zero distances.
func crashDist(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	if (a*b)%7 == 3 {
		return math.Inf(1)
	}
	return 1 + float64((a*31+b*17)%97)/13
}

// idMetric restricts the matrix universe to an id list.
type idMetric struct{ ids []int }

func (m idMetric) N() int                { return len(m.ids) }
func (m idMetric) Dist(i, j int) float64 { return crashDist(m.ids[i], m.ids[j]) }

// dynOp is one step of a crash workload script.
type dynOp struct {
	kind     string // insert, delete, policy, flush, checkpoint
	k        int    // insert: number of new points
	dense    []int  // delete: dense positions
	policy   core.IncrementalPolicy
	inEdges  []graph.Edge // graph insert
	delEdges []graph.Edge // graph delete
}

// logs reports how many WAL records the step appends: checkpoints rotate
// generations without logging; everything else is exactly one record.
func (o dynOp) logs() int {
	if o.kind == "checkpoint" {
		return 0
	}
	return 1
}

// dynTarget is the mutation surface shared by *core.IncrementalSpanner
// and *persist.Durable, so the same script drives both the durable run
// and its plain reference twin.
type dynTarget interface {
	Insert(metric.Metric) error
	InsertEdges(...graph.Edge) error
	Delete(...int) error
	DeleteEdges(...graph.Edge) error
	SetPolicy(core.IncrementalPolicy) error
	Flush() error
}

// crashMode bundles one workload: how to build the initial engine, the
// script, and how insert unions are materialized.
type crashMode struct {
	name      string
	graphMode bool
	euclid    bool
	initN     int
	mopts     core.MetricParallelOptions
	gopts     core.ParallelOptions
	ops       []dynOp
}

func (m *crashMode) build(t *testing.T) *core.IncrementalSpanner {
	t.Helper()
	var inc *core.IncrementalSpanner
	var err error
	switch {
	case m.graphMode:
		g := graph.New(10)
		for i := 0; i < 9; i++ {
			g.MustAddEdge(i, i+1, float64(1+i%3))
		}
		g.MustAddEdge(0, 9, 7)
		inc, err = core.NewIncrementalGraph(g, 1.5, m.gopts)
	case m.euclid:
		eu, eerr := metric.NewEuclidean(crashPts()[:m.initN])
		if eerr != nil {
			t.Fatal(eerr)
		}
		inc, err = core.NewIncrementalMetric(eu, 1.6, m.mopts)
	default:
		ids := make([]int, m.initN)
		for i := range ids {
			ids[i] = i
		}
		inc, err = core.NewIncrementalMetric(idMetric{ids}, 1.6, m.mopts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

// scriptState mirrors the live universe-id list so insert unions can be
// rebuilt at any script position.
type scriptState struct {
	mode *crashMode
	cur  []int // live universe ids in maintained dense order
	pool int   // next unused universe id
}

func newScriptState(m *crashMode) *scriptState {
	st := &scriptState{mode: m, pool: m.initN}
	for i := 0; i < m.initN; i++ {
		st.cur = append(st.cur, i)
	}
	return st
}

// advance applies a step's bookkeeping without touching any spanner.
func (st *scriptState) advance(op dynOp) {
	switch op.kind {
	case "insert":
		if !st.mode.graphMode {
			for j := 0; j < op.k; j++ {
				st.cur = append(st.cur, st.pool+j)
			}
			st.pool += op.k
		}
	case "delete":
		if !st.mode.graphMode {
			gone := make(map[int]bool, len(op.dense))
			for _, p := range op.dense {
				gone[p] = true
			}
			kept := st.cur[:0]
			for i, id := range st.cur {
				if !gone[i] {
					kept = append(kept, id)
				}
			}
			st.cur = kept
		}
	}
}

// union materializes the insert union for the current position plus k new
// points.
func (st *scriptState) union(t *testing.T, k int) metric.Metric {
	t.Helper()
	ids := append(append([]int(nil), st.cur...), nil...)
	for j := 0; j < k; j++ {
		ids = append(ids, st.pool+j)
	}
	if !st.mode.euclid {
		return idMetric{ids}
	}
	pts := crashPts()
	rows := make([][]float64, len(ids))
	for i, id := range ids {
		rows[i] = pts[id]
	}
	eu, err := metric.NewEuclidean(rows)
	if err != nil {
		t.Fatal(err)
	}
	return eu
}

// apply runs one step against a target (checkpoint goes through the given
// hook, nil to skip), then advances the mirror.
func (st *scriptState) apply(t *testing.T, tgt dynTarget, op dynOp, checkpoint func() error) error {
	t.Helper()
	var err error
	switch op.kind {
	case "insert":
		if st.mode.graphMode {
			err = tgt.InsertEdges(op.inEdges...)
		} else {
			err = tgt.Insert(st.union(t, op.k))
		}
	case "delete":
		if st.mode.graphMode {
			err = tgt.DeleteEdges(op.delEdges...)
		} else {
			err = tgt.Delete(op.dense...)
		}
	case "policy":
		err = tgt.SetPolicy(op.policy)
	case "flush":
		err = tgt.Flush()
	case "checkpoint":
		if checkpoint != nil {
			err = checkpoint()
		}
	default:
		t.Fatalf("unknown script op %q", op.kind)
	}
	if err != nil {
		return err
	}
	st.advance(op)
	return nil
}

// runScript applies steps [from, to) with the mirror reconstructed for
// the skipped prefix. Stops at the first error (a simulated crash).
func runScript(t *testing.T, m *crashMode, tgt dynTarget, checkpoint func() error, from, to int) error {
	t.Helper()
	st := newScriptState(m)
	for i := 0; i < from; i++ {
		st.advance(m.ops[i])
	}
	for i := from; i < to; i++ {
		if err := st.apply(t, tgt, m.ops[i], checkpoint); err != nil {
			return err
		}
	}
	return nil
}

// loggedBefore counts the WAL records steps [0, i) append.
func loggedBefore(ops []dynOp, i int) int {
	n := 0
	for _, op := range ops[:i] {
		n += op.logs()
	}
	return n
}

// resumeIndex finds where to resume a script when s records are durable:
// the earliest step not yet proven complete. A checkpoint step at the
// boundary may re-run; checkpoints are idempotent for the result digest.
func resumeIndex(ops []dynOp, s int) int {
	for i := range ops {
		if loggedBefore(ops, i) >= s {
			return i
		}
	}
	return len(ops)
}

// resulter is the query surface shared by the engine and the durable
// wrapper.
type resulter interface {
	Result() (*core.Result, error)
}

func targetDigest(t *testing.T, r resulter) uint64 {
	t.Helper()
	res, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	return core.ResultDigest(res)
}

// refDigests computes the reference digest for every durable-record count
// s in [0, S]: a plain engine (no persistence) built fresh and driven
// through exactly the first s logging steps. Entry s is what a crash that
// made exactly s records durable must recover to.
func refDigests(t *testing.T, m *crashMode) []uint64 {
	t.Helper()
	S := loggedBefore(m.ops, len(m.ops))
	refs := make([]uint64, S+1)
	for s := 0; s <= S; s++ {
		inc := m.build(t)
		if err := runScript(t, m, inc, nil, 0, resumeIndex(m.ops, s)); err != nil {
			t.Fatalf("ref prefix %d: %v", s, err)
		}
		refs[s] = targetDigest(t, inc)
	}
	return refs
}

func metricScript() []dynOp {
	return []dynOp{
		{kind: "insert", k: 2},
		{kind: "insert", k: 1},
		{kind: "delete", dense: []int{1, 5}},
		{kind: "policy", policy: core.IncrementalPolicy{CoalesceUntilQuery: true}},
		{kind: "insert", k: 2},
		{kind: "insert", k: 1},
		{kind: "flush"},
		{kind: "checkpoint"},
		{kind: "delete", dense: []int{0, 3}},
		{kind: "insert", k: 2},
		{kind: "policy"},
		{kind: "insert", k: 1},
		{kind: "checkpoint"},
		{kind: "delete", dense: []int{2}},
		{kind: "policy", policy: core.IncrementalPolicy{CoalesceUntilQuery: true}},
		{kind: "insert", k: 1},
		{kind: "flush"},
	}
}

func graphScript() []dynOp {
	return []dynOp{
		{kind: "insert", inEdges: []graph.Edge{{U: 2, V: 7, W: 2.5}, {U: 3, V: 8, W: 1.25}}},
		{kind: "delete", delEdges: []graph.Edge{{U: 0, V: 9, W: 7}}},
		{kind: "policy", policy: core.IncrementalPolicy{CoalesceUntilQuery: true}},
		{kind: "insert", inEdges: []graph.Edge{{U: 1, V: 6, W: 1.75}}},
		{kind: "flush"},
		{kind: "checkpoint"},
		{kind: "insert", inEdges: []graph.Edge{{U: 4, V: 9, W: 3.5}}},
		{kind: "delete", delEdges: []graph.Edge{{U: 2, V: 7, W: 2.5}}},
		{kind: "policy"},
		{kind: "insert", inEdges: []graph.Edge{{U: 0, V: 5, W: 4.5}}},
		{kind: "checkpoint"},
		{kind: "delete", delEdges: []graph.Edge{{U: 3, V: 8, W: 1.25}}},
	}
}

func crashModes() []*crashMode {
	return []*crashMode{
		{name: "euclid", euclid: true, initN: 6,
			mopts: core.MetricParallelOptions{Workers: 1, Hubs: 3}, ops: metricScript()},
		{name: "matrix", initN: 6,
			mopts: core.MetricParallelOptions{Workers: 1, GuardRows: true}, ops: metricScript()},
		{name: "graph", graphMode: true,
			gopts: core.ParallelOptions{Workers: 1, Hubs: 3}, ops: graphScript()},
	}
}

func (m *crashMode) options(hook func(int, string) bool) persist.Options {
	return persist.Options{Metric: m.mopts, Graph: m.gopts, NoSync: true,
		Hooks: persist.Hooks{Crash: hook}}
}

// runToCrash creates a durable state in dir under the given hook and
// drives the full script, reporting whether the injected crash fired.
func runToCrash(t *testing.T, m *crashMode, dir string, hook func(int, string) bool) (crashed bool) {
	t.Helper()
	d, err := persist.Create(dir, m.build(t), m.options(hook))
	if err != nil {
		if !errors.Is(err, persist.ErrSimulatedCrash) {
			t.Fatalf("create: %v", err)
		}
		return true
	}
	defer d.Close()
	if err := runScript(t, m, d, d.Checkpoint, 0, len(m.ops)); err != nil {
		if !errors.Is(err, persist.ErrSimulatedCrash) {
			t.Fatalf("script: %v", err)
		}
		return true
	}
	return false
}

// recoverAndFinish opens dir cleanly (rebuilding from scratch if the
// crash predates the first durable snapshot), asserts the recovered
// digest equals the reference for exactly the durable record count, then
// finishes the script and asserts the final digest matches the
// never-crashed run.
func recoverAndFinish(t *testing.T, m *crashMode, dir string, refs []uint64, label string) {
	t.Helper()
	d, err := persist.Open(dir, m.options(nil))
	s := 0
	if errors.Is(err, persist.ErrNoState) {
		// The crash predates generation 1 becoming durable: nothing to
		// recover, rebuild the initial state.
		if d, err = persist.Create(dir, m.build(t), m.options(nil)); err != nil {
			t.Fatalf("%s: re-create: %v", label, err)
		}
	} else if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	} else {
		s = int(d.OpSeq())
	}
	defer d.Close()
	if s >= len(refs) {
		t.Fatalf("%s: recovered %d ops, script logs only %d", label, s, len(refs)-1)
	}
	if got := targetDigest(t, d); got != refs[s] {
		t.Fatalf("%s: recovered digest %x at opseq %d, want %x", label, got, s, refs[s])
	}
	if err := runScript(t, m, d, d.Checkpoint, resumeIndex(m.ops, s), len(m.ops)); err != nil {
		t.Fatalf("%s: finish: %v", label, err)
	}
	if got := targetDigest(t, d); got != refs[len(refs)-1] {
		t.Fatalf("%s: final digest %x, want %x", label, got, refs[len(refs)-1])
	}
}

// TestRecoverCrashEquivalence is the exhaustive crash enumeration: a
// counting pass sizes each workload's deterministic crash schedule, then
// every single point is killed in its own run and recovery equivalence is
// asserted at both the recovery and the finish line. The combined
// schedule must cover at least 100 distinct crash points.
func TestRecoverCrashEquivalence(t *testing.T) {
	totalPoints := 0
	for _, m := range crashModes() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			refs := refDigests(t, m)
			countDir := t.TempDir()
			points := 0
			if crashed := runToCrash(t, m, countDir, chaos.CountCrashPoints(&points)); crashed {
				t.Fatal("counting hook fired")
			}
			if points == 0 {
				t.Fatal("no crash points enumerated")
			}
			// The clean run must land on the full-script reference.
			recoverAndFinish(t, m, countDir, refs, "clean")
			totalPoints += points
			for k := 0; k < points; k++ {
				dir := t.TempDir()
				if !runToCrash(t, m, dir, chaos.Kill{At: k}.Hook()) {
					t.Fatalf("kill %d never fired", k)
				}
				recoverAndFinish(t, m, dir, refs, persistLabel(k))
			}
		})
	}
	t.Run("replay", func(t *testing.T) {
		totalPoints += crashMidReplay(t)
	})
	if totalPoints < 100 {
		t.Fatalf("suite covered %d crash points, want >= 100", totalPoints)
	}
}

func persistLabel(k int) string {
	return "kill@" + string(rune('0'+k/100%10)) + string(rune('0'+k/10%10)) + string(rune('0'+k%10))
}

// crashMidReplay enumerates crashes during recovery itself: a directory
// with a long un-checkpointed WAL (plus a torn tail) is opened with a
// kill at each replay point; a second, clean open must still land on the
// reference digest. Returns the number of replay crash points covered.
func crashMidReplay(t *testing.T) int {
	m := &crashMode{name: "euclid", euclid: true, initN: 6,
		mopts: core.MetricParallelOptions{Workers: 1, Hubs: 3}}
	// The metric script minus its checkpoints, so every record stays in
	// the generation-1 WAL for replay.
	for _, op := range metricScript() {
		if op.kind != "checkpoint" {
			m.ops = append(m.ops, op)
		}
	}
	refs := refDigests(t, m)
	build := func() string {
		dir := t.TempDir()
		if crashed := runToCrash(t, m, dir, nil); crashed {
			t.Fatal("unhooked run crashed")
		}
		// A torn final record: recovery must truncate it, which is itself
		// a crash point.
		walPath := filepath.Join(dir, "wal-1")
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{99, 0, 0, 0, 5, 5})
		f.Close()
		return dir
	}

	points := 0
	dir := build()
	d, err := persist.Open(dir, m.options(chaos.CountCrashPoints(&points)))
	if err != nil {
		t.Fatalf("counting open: %v", err)
	}
	S := loggedBefore(m.ops, len(m.ops))
	if got := targetDigest(t, d); got != refs[S] || int(d.OpSeq()) != S {
		t.Fatalf("counting open recovered digest %x opseq %d, want %x/%d", got, d.OpSeq(), refs[S], S)
	}
	d.Close()
	if points == 0 {
		t.Fatal("no replay crash points")
	}
	for k := 0; k < points; k++ {
		dir := build()
		if _, err := persist.Open(dir, m.options(chaos.Kill{At: k}.Hook())); !errors.Is(err, persist.ErrSimulatedCrash) {
			t.Fatalf("replay kill %d: got %v", k, err)
		}
		recoverAndFinish(t, m, dir, refs, "replay-kill")
	}
	return points
}
