package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCapture(t *testing.T, args []string) (string, error) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	runErr := run(context.Background(), args, out)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunGraphInput(t *testing.T) {
	path := writeTemp(t, "g.txt", "# triangle\n0 1 1\n1 2 1\n0 2 1\n")
	got, err := runCapture(t, []string{"-t", "2", "-graph", path})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "# stats: edges=2") {
		t.Fatalf("unexpected output:\n%s", got)
	}
}

func TestRunPointsInput(t *testing.T) {
	path := writeTemp(t, "p.txt", "0 0\n1 0\n2 0\n0.5 1\n")
	got, err := runCapture(t, []string{"-t", "1.5", "-points", path})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "# stats:") || !strings.Contains(got, "maxstretch=") {
		t.Fatalf("unexpected output:\n%s", got)
	}
}

func TestRunPointsWorkers(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "%.4f %.4f\n", float64(i%6)*0.17, float64(i/6)*0.23)
	}
	path := writeTemp(t, "p.txt", sb.String())
	ref, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-workers", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"0", "1", "4"} {
		got, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-workers", w})
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("-workers %s diverged from serial reference:\n%s\nvs\n%s", w, got, ref)
		}
	}
}

func TestRunPointsInsert(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%.4f %.4f\n", float64(i%8)*0.19, float64(i/8)*0.31)
	}
	path := writeTemp(t, "p.txt", sb.String())
	want, err := runCapture(t, []string{"-t", "1.5", "-points", path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-insert", "10", "-workers", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("-insert diverged from the from-scratch build:\n%s\nvs\n%s", got, want)
	}
}

func TestRunGraphInsert(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "%d %d %.3f\n", i, (i+1)%20, 1+float64(i%5)*0.1)
		fmt.Fprintf(&sb, "%d %d %.3f\n", i, (i+7)%20, 2+float64(i%3)*0.2)
	}
	path := writeTemp(t, "g.txt", sb.String())
	want, err := runCapture(t, []string{"-t", "2", "-graph", path})
	if err != nil {
		t.Fatal(err)
	}
	got, err := runCapture(t, []string{"-t", "2", "-graph", path, "-insert", "12"})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("-insert diverged from the from-scratch build:\n%s\nvs\n%s", got, want)
	}
}

func TestRunPointsApprox(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "%.4f %.4f\n", float64(i)*0.13, float64(i*i%7)*0.21)
	}
	path := writeTemp(t, "p.txt", sb.String())
	got, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-algo", "approx"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "# stats:") {
		t.Fatalf("unexpected output:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	g := writeTemp(t, "g.txt", "0 1 1\n")
	p := writeTemp(t, "p.txt", "0 0\n1 1\n")
	cases := [][]string{
		{},                          // no input
		{"-graph", g, "-points", p}, // both inputs
		{"-graph", filepath.Join(t.TempDir(), "missing")},               // unreadable
		{"-t", "0.5", "-graph", g},                                      // bad stretch
		{"-points", p, "-algo", "nope"},                                 // unknown algo
		{"-points", p, "-algo", "approx", "-t", "3"},                    // approx needs t < 2
		{"-points", p, "-algo", "approx", "-t", "1.5", "-workers", "4"}, // -workers is greedy-only
		{"-points", p, "-insert", "-1"},                                 // negative holdout
		{"-points", p, "-insert", "2"},                                  // holds out everything
		{"-points", p, "-insert", "1", "-workers", "-1"},                // no serial reference mode
		{"-points", p, "-insert", "1", "-algo", "approx", "-t", "1.5"},  // greedy-only
		{"-graph", g, "-insert", "1"},                                   // holds out everything
	}
	for _, args := range cases {
		if _, err := runCapture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReadGraphBadLines(t *testing.T) {
	cases := []string{
		"0 1\n",
		"x 1 2\n",
		"0 y 2\n",
		"0 1 z\n",
	}
	for _, c := range cases {
		path := writeTemp(t, "bad.txt", c)
		if _, err := readGraph(path); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadPointsBadLine(t *testing.T) {
	path := writeTemp(t, "bad.txt", "1.0 zzz\n")
	if _, err := readPoints(path); err == nil {
		t.Error("bad point accepted")
	}
}

func TestRunHubsMatchesDefault(t *testing.T) {
	var pts strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&pts, "%d %d\n", i%6, i/6)
	}
	path := writeTemp(t, "p.txt", pts.String())
	base, err := runCapture(t, []string{"-t", "1.5", "-points", path})
	if err != nil {
		t.Fatal(err)
	}
	for _, hubs := range []string{"-1", "4"} {
		got, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-hubs", hubs})
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("-hubs %s output differs from the default engine:\n%s\nvs\n%s", hubs, got, base)
		}
	}
	gpath := writeTemp(t, "g.txt", "0 1 1\n1 2 1\n0 2 1.5\n2 3 1\n3 0 2\n")
	gbase, err := runCapture(t, []string{"-t", "2", "-graph", gpath})
	if err != nil {
		t.Fatal(err)
	}
	ghubs, err := runCapture(t, []string{"-t", "2", "-graph", gpath, "-hubs", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if ghubs != gbase {
		t.Fatalf("-hubs graph output differs:\n%s\nvs\n%s", ghubs, gbase)
	}
	if _, err := runCapture(t, []string{"-t", "1.5", "-points", path, "-hubs", "4", "-workers", "-1"}); err == nil {
		t.Fatal("want error for -hubs with the sequential reference engine")
	}
}
