package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The pair-stream benchmark isolates the candidate-supply ablation of the
// metric engine: the same batched-parallel engine is timed and
// memory-profiled against the classic materialize-then-sort supply (all
// n(n-1)/2 pairs built and globally sorted up front) and the streamed
// weight-bucketed supply at two bucket caps, with outputs compared
// edge-for-edge against the serial dense-matrix reference. It follows the
// repeated-run discipline of the other engine benchmarks and records
// runtime.MemStats peak/total allocation per configuration, which is the
// evidence for the memory acceptance criterion (streamed peak >= 5x below
// the materialized path at n=4000).

// PairStreamRun is the record for one supply configuration.
type PairStreamRun struct {
	// Supply names the candidate supply: "materialized" or "streamed".
	Supply string `json:"supply"`
	// BucketPairs is the streamed supply's bucket cap (0 = engine
	// default; unused for materialized).
	BucketPairs int       `json:"bucket_pairs,omitempty"`
	MS          []float64 `json:"ms"`
	MedianMS    float64   `json:"median_ms"`
	SpreadPct   float64   `json:"spread_pct"`
	// PeakAllocBytes / TotalAllocBytes are from a dedicated non-timed
	// pass (see measureAlloc).
	PeakAllocBytes  uint64 `json:"peak_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// PeakBucketPairs is the largest candidate bucket the streamed supply
	// materialized (0 for the materialized supply, which holds all pairs
	// at once).
	PeakBucketPairs int `json:"peak_bucket_pairs,omitempty"`
	// SupplyPasses counts the streamed supply's enumeration passes —
	// the figure the merged small buckets and the subdivision prefetch
	// shrink (0 for the materialized supply).
	SupplyPasses int `json:"supply_passes,omitempty"`
	// RowsAllocated counts sparse bound rows materialized by the engine.
	RowsAllocated int `json:"rows_allocated"`
	// Identical records edge-for-edge equality with the serial reference.
	Identical bool `json:"identical"`
}

// PairStreamBenchCase is the report for one metric instance.
type PairStreamBenchCase struct {
	Kind         string          `json:"kind"`
	N            int             `json:"n"`
	Pairs        int             `json:"pairs"`
	Stretch      float64         `json:"stretch"`
	SpannerEdges int             `json:"spanner_edges"`
	Runs         []PairStreamRun `json:"runs"`
	// PeakAllocRatio is the materialized run's peak over the default
	// streamed run's peak: the memory factor the streaming supply saves.
	PeakAllocRatio float64 `json:"peak_alloc_ratio"`
}

// PairStreamBenchReport is the top-level BENCH_pairstream.json document.
type PairStreamBenchReport struct {
	GoVersion  string                `json:"go_version"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Date       string                `json:"date"`
	Reps       int                   `json:"reps"`
	Workers    int                   `json:"workers"`
	Cases      []PairStreamBenchCase `json:"cases"`
}

// PairStreamBench times and memory-profiles the metric engine under the
// materialized vs streamed candidate supplies. workers selects the engine
// worker count (<= 0 uses 1, keeping the supply the only variable). Small
// scale runs n=500; Full adds n=2000 and the n=4000 acceptance instance.
func PairStreamBench(ctx context.Context, scale Scale, seed int64, reps, workers int) (*Table, *PairStreamBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	if workers <= 0 {
		workers = 1
	}
	tab := &Table{
		Title:  "PAIRSTREAM-BENCH: materialized vs streamed candidate supply (metric engine)",
		Header: []string{"kind", "n", "pairs", "supply", "bucket cap", "median ms", "peak MB", "total MB", "peak bucket", "rows", "identical"},
		Caption: "Same batched engine either fed by the fully materialized, globally sorted pair list or by\n" +
			"the streamed weight-bucketed supply (grid-bucketed for Euclidean points). peak/total MB\n" +
			"from a dedicated non-timed pass; rows = sparse bound rows materialized.",
	}
	report := &PairStreamBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
		Workers:    workers,
	}
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{500}
	if scale == Full {
		sizes = []int{500, 2000, 4000}
	}
	for _, n := range sizes {
		m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
		const stretch = 1.5
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		ref, err := core.GreedyMetricFastSerial(m, stretch)
		if err != nil {
			return nil, nil, err
		}
		c := PairStreamBenchCase{
			Kind: "euclidean", N: n, Pairs: n * (n - 1) / 2,
			Stretch: stretch, SpannerEdges: ref.Size(),
		}
		configs := []struct {
			supply string
			opts   core.MetricParallelOptions
		}{
			{"materialized", core.MetricParallelOptions{Workers: workers, Materialize: true}},
			{"streamed", core.MetricParallelOptions{Workers: workers}},
			{"streamed", core.MetricParallelOptions{Workers: workers, BucketPairs: 1 << 16}},
		}
		for _, cfg := range configs {
			run := PairStreamRun{Supply: cfg.supply, BucketPairs: cfg.opts.BucketPairs, Identical: true}
			var stats core.MetricParallelStats
			opts := cfg.opts
			opts.Stats = &stats
			opts.Ctx = ctx
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.GreedyMetricFastParallelOpts(m, stretch, opts)
				if err != nil {
					return nil, nil, err
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				run.Identical = run.Identical && sameOutput(ref, res)
			}
			run.MedianMS = median(run.MS)
			run.SpreadPct = spreadPct(run.MS)
			run.PeakBucketPairs = stats.PeakBucketPairs
			run.SupplyPasses = stats.SupplyPasses
			run.RowsAllocated = stats.RowsAllocated
			peak, totalAlloc, err := measureAlloc(func() error {
				_, err := core.GreedyMetricFastParallelOpts(m, stretch, opts)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, totalAlloc
			c.Runs = append(c.Runs, run)
			capLabel := "-"
			if cfg.supply == "streamed" {
				capLabel = "default"
				if cfg.opts.BucketPairs > 0 {
					capLabel = itoa(cfg.opts.BucketPairs)
				}
			}
			tab.AddRow(c.Kind, itoa(n), itoa(c.Pairs), cfg.supply, capLabel,
				f2(run.MedianMS), mb(run.PeakAllocBytes), mb(run.TotalAllocBytes),
				itoa(run.PeakBucketPairs), itoa(run.RowsAllocated), yesNo(run.Identical))
		}
		if len(c.Runs) >= 2 && c.Runs[1].PeakAllocBytes > 0 {
			c.PeakAllocRatio = float64(c.Runs[0].PeakAllocBytes) / float64(c.Runs[1].PeakAllocBytes)
		}
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// WriteJSON writes the report to path, pretty-printed, atomically
// (temp file + rename), so an interrupted run never damages a previous
// report at the same path.
func (r *PairStreamBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
