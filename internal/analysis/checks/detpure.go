package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Detpure keeps nondeterministic inputs out of engine decision paths.
// The reproduction's headline property is bit-identical output across
// engines and runs; that dies the moment a decision depends on the
// wall clock, a random source, or a float sum whose term order varies.
//
// The analyzer flags, in engine packages: (a) calls to time.Now,
// time.Since, time.Until — wall-clock reads; deliberate, output-
// invariant uses (deadline checks that only decide *whether* to keep
// working, never *what* to output) carry an ignore annotation; (b) any
// import of math/rand or math/rand/v2 — there is no sanctioned use of
// nondeterministic randomness in an engine; (c) floating-point += / -=
// accumulation inside a range over a map, where the summation order is
// randomized and float addition is not associative.
var Detpure = &framework.Analyzer{
	Name:  "detpure",
	Doc:   "forbid wall-clock reads, math/rand, and map-ordered float accumulation in engine decision paths",
	Scope: []string{"internal/core", "internal/graph", "internal/metric", "internal/geom"},
	Run:   runDetpure,
}

func runDetpure(pass *framework.Pass) error {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		for _, imp := range f.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "engine package imports %s: engines must be deterministic; derive any needed sampling from explicit seeds outside the engine", imp.Path.Value)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				for _, name := range []string{"Now", "Since", "Until"} {
					if pkgCall(info, n, "time", name) {
						pass.Reportf(n.Pos(), "time.%s in an engine decision path: wall-clock reads are nondeterministic; annotate //spannerlint:ignore detpure <reason> only for output-invariant deadline checks", name)
					}
				}
			case *ast.RangeStmt:
				if rangesOverMap(info, n) {
					flagFloatAccum(pass, info, n)
				}
			}
			return true
		})
	}
	return nil
}

// flagFloatAccum reports float += / -= inside a map-ordered loop body:
// float addition is order-sensitive, and map order is random.
func flagFloatAccum(pass *framework.Pass, info *types.Info, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || (asg.Tok.String() != "+=" && asg.Tok.String() != "-=") {
			return true
		}
		for _, lhs := range asg.Lhs {
			tv, ok := info.Types[lhs]
			if !ok || tv.Type == nil {
				continue
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(asg.Pos(), "float accumulation in map-iteration order: %s is order-sensitive under a randomized range; accumulate over sorted keys", exprString(lhs))
			}
		}
		return true
	})
}
