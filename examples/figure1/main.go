// Figure 1 of the paper, end to end: the greedy spanner is NOT
// instance-optimal (it keeps all 15 edges of a high-girth Petersen graph
// when a 9-edge star would do), yet it IS existentially optimal — its
// output on the gadget G is exactly the greedy spanner of the high-girth
// core H, whose size is forced for *any* spanner of H.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"os"

	spanner "repro"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		t   = 3.0
		eps = 0.05
	)
	// H = Petersen graph: girth 5, 15 unit edges. S = star of weight-(1+eps)
	// edges centered at vertex 0. G = H ∪ S.
	f1, err := gen.Figure1Gadget(gen.Petersen(), 0, eps)
	if err != nil {
		return err
	}
	fmt.Printf("G = Petersen(15 unit edges) ∪ star(%d edges of weight %.2f)\n", f1.StarEdges, 1+eps)

	res, err := spanner.Greedy(f1.G, t)
	if err != nil {
		return err
	}
	hEdges := 0
	for _, e := range res.Edges {
		if e.W == 1 {
			hEdges++
		}
	}
	fmt.Printf("greedy %.0f-spanner of G: %d edges (keeps %d/15 Petersen edges)\n", t, res.Size(), hEdges)

	// The star alone is a valid 3-spanner of G with only 9 edges.
	star := spanner.NewGraph(f1.G.N())
	for _, e := range f1.G.Edges() {
		if e.U == f1.Root || e.V == f1.Root {
			if err := star.AddEdge(e.U, e.V, e.W); err != nil {
				return err
			}
		}
	}
	if _, err := spanner.VerifySpanner(star, f1.G, t); err != nil {
		return fmt.Errorf("star is unexpectedly not a %v-spanner: %w", t, err)
	}
	fmt.Printf("star S: %d edges — also a valid %.0f-spanner of G\n", star.M(), t)
	fmt.Printf("instance-optimality gap: greedy/optimal = %d/%d = %.2fx edges\n",
		res.Size(), star.M(), float64(res.Size())/float64(star.M()))

	// Existential optimality in action (Lemma 3 / Theorem 4): greedy's
	// output is forced — it is its own unique 3-spanner, so *some* graph in
	// the family (namely H itself) requires this many edges.
	if v := spanner.VerifySelfSpanner(res.Graph(), t); len(v) != 0 {
		return fmt.Errorf("Lemma 3 violated: %v", v)
	}
	fmt.Println("Lemma 3: the greedy output is its own unique 3-spanner ✓")

	// And greedy on H alone keeps everything: l(G_greedy) = l(H).
	resH, err := spanner.Greedy(f1.H, t)
	if err != nil {
		return err
	}
	fmt.Printf("greedy %.0f-spanner of H alone: %d/15 edges — the gadget cost equals l(H), not l(G)\n",
		t, resH.Size())
	return nil
}
