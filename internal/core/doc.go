// Package core implements the paper's central object: the greedy spanner of
// Althöfer et al. (Algorithm 1 in Filtser–Solomon, "The Greedy Spanner is
// Existentially Optimal", PODC 2016), for both weighted graphs and finite
// metric spaces, together with the verifiers that realize the paper's
// optimality arguments — the Lemma 3 self-spanner property, the Lemma 8
// size-injection argument, and the MST-containment Observation 2.
//
// # The greedy algorithm
//
// The greedy algorithm examines candidate edges in non-decreasing weight
// order (ties broken by endpoint ids, so the scan is deterministic) and
// keeps edge (u, v) iff the current spanner distance delta_H(u, v) exceeds
// t * w(u, v). On graphs the candidates are the input's edges; on metrics
// they are all n(n-1)/2 interpoint distances ("path-greedy").
//
// # The batched-parallel engines and the frozen-snapshot invariant
//
// Both scan loops — GreedyGraphParallel for graphs and
// GreedyMetricFastParallel for metrics — parallelize the same way, and
// both rest on one invariant: spanner distances only shrink as the greedy
// scan adds edges, so any skip certified against a frozen snapshot H0 of
// the growing spanner stays correct for every later spanner H ⊇ H0.
// Concretely, if delta_{H0}(u, v) <= t * w(u, v) then the sequential
// algorithm — which would test (u, v) against some H ⊇ H0 — would also
// skip it, because delta_H <= delta_{H0}. Certification is therefore safe
// to run concurrently against an immutable snapshot, out of greedy order;
// only the pairs the snapshot fails to certify are replayed serially, in
// exact greedy order, against the live spanner. Every accept/reject
// decision thus matches the sequential scan, and the output — edge
// sequence, weight, counters — is deterministic and bit-identical
// regardless of worker count, batch width, or goroutine scheduling.
//
// The two engines differ only in the certification primitive:
//
//   - GreedyGraphParallel answers each query with bounded bidirectional
//     Dijkstra on the snapshot (two balls of radius ~t*w/2 instead of one
//     of radius t*w).
//   - GreedyMetricFastParallel maintains the cached distance-bound matrix
//     of GreedyMetricFastSerial (the Bose et al. [BCF+10] trick): cached
//     upper bounds certify most skips with no search at all, and the rows
//     that need recomputing are refreshed concurrently — each row is owned
//     by exactly one worker, so a batch's refreshes need no locking. A
//     refreshed row computed on H0 is again a valid row of upper bounds
//     for every later H, by the same monotonicity.
//
// Both engines scan in adaptive weight batches: the batch width grows
// while snapshots certify almost everything and shrinks when the snapshot
// goes stale too fast (too many pairs fall through to the serial
// re-check).
package core
