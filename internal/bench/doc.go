// Package bench drives the experiment suite E1–E12 defined in DESIGN.md —
// each experiment reproduces one figure, corollary, or cited empirical
// claim of the paper as a table of measurements — together with the
// ablations A1–A5 and the engine benchmarks. The same drivers back the
// testing.B benchmarks in the repository root and the cmd/spannerbench CLI.
//
// Three experiments follow the repeated-run benchmark discipline (timings
// measured >= 3 times, medians reported beside raw samples and spread,
// outputs compared edge-for-edge before any speedup is claimed, and
// runtime.MemStats peak/total allocation recorded in a dedicated
// non-timed pass per configuration):
//
//   - GreedyBench times the sequential greedy graph scan against the
//     batched-parallel graph engine and writes BENCH_greedy.json.
//   - GreedyMetricBench times the serial cached-bound metric scan against
//     the batched-parallel metric engine on Euclidean and graph-induced
//     metrics and writes BENCH_greedymetric.json, including the
//     materialized-vs-streamed peak-allocation ratio of the n=4000
//     acceptance case at Full scale.
//   - PairStreamBench isolates the candidate-supply ablation — the same
//     metric engine fed by the materialized, globally sorted pair list vs
//     the streamed weight-bucketed supply — and writes
//     BENCH_pairstream.json.
//
// The ablations A4 and A5 sweep the batch width of the graph and metric
// engines respectively; both must leave the spanner unchanged (the engines
// are deterministic in their tuning knobs), so their tables double as
// equivalence evidence.
package bench
