package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"

	"repro/internal/graph"
)

// Response codes carried in every error body, so clients distinguish
// overload from failure without parsing prose.
const (
	codeShed     = "shed"      // admission queue full: retry later
	codeDraining = "draining"  // server shutting down: retry elsewhere
	codeCancel   = "cancelled" // request context cancelled mid-flight
	codeDeadline = "deadline"  // per-request deadline exceeded
	codeInvalid  = "invalid"   // malformed request
	codePanic    = "panic"     // handler panic contained
	codeWedged   = "wedged"    // mutation path permanently failed
	codeMethod   = "method"    // wrong HTTP method
	codeInternal = "internal"  // anything else
)

type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// respWriter tracks whether a status was written, so the panic handler
// knows if it can still produce a typed error body.
type respWriter struct {
	http.ResponseWriter
	status int
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
		w.ResponseWriter.WriteHeader(code)
	}
}

func (w *respWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	if status < 300 {
		s.counters.Served.Add(1)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	switch code {
	case codeShed, codeDraining:
		w.Header().Set("Retry-After", "1")
	case codeInvalid, codeMethod:
		s.counters.Invalid.Add(1)
	case codeCancel, codeDeadline:
		s.counters.Cancelled.Add(1)
	}
	s.writeJSON(w, status, apiError{Error: msg, Code: code})
}

// writeCtxError maps a context failure to its typed response.
func (s *Server) writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.writeError(w, http.StatusGatewayTimeout, codeDeadline, "request deadline exceeded")
		return
	}
	s.writeError(w, http.StatusServiceUnavailable, codeCancel, "request cancelled")
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.contain(s.handleHealthz))
	mux.HandleFunc("/v1/distance", s.contain(s.read(s.handleDistance)))
	mux.HandleFunc("/v1/path", s.contain(s.read(s.handlePath)))
	mux.HandleFunc("/v1/stats", s.contain(s.handleStats))
	mux.HandleFunc("/v1/mutate", s.contain(s.handleMutate))
	mux.HandleFunc("/v1/checkpoint", s.contain(s.handleCheckpoint))
	return mux
}

// contain is the outermost middleware: per-request panic containment
// (capturePanic semantics at the serving layer — one request's panic
// becomes its own typed 500, never a process crash) plus in-flight
// accounting for Drain.
func (s *Server) contain(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rw := &respWriter{ResponseWriter: w}
		s.inflight.Add(1)
		defer s.inflight.Done()
		defer func() {
			if p := recover(); p != nil {
				s.counters.Panics.Add(1)
				if rw.status == 0 {
					s.writeError(rw, http.StatusInternalServerError, codePanic,
						fmt.Sprintf("handler panic contained: %v", p))
				}
				_ = debug.Stack // stack kept reachable for a debugger; not logged per-request
			}
		}()
		if s.draining.Load() {
			s.counters.Rejected.Add(1)
			s.writeError(rw, http.StatusServiceUnavailable, codeDraining, "server draining")
			return
		}
		h(rw, r)
	}
}

// read is the read-path middleware: admission control with a bounded
// wait queue, then a per-request deadline derived from the client
// context and cancelled by Drain's root context.
func (s *Server) read(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			s.writeError(w, http.StatusMethodNotAllowed, codeMethod, "use GET")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: queue if the bounded queue has room, shed
			// otherwise. The explicit shed keeps overload a typed,
			// bounded-latency outcome instead of unbounded queueing.
			if s.waiters.Add(1) > int64(s.cfg.QueueDepth) {
				s.waiters.Add(-1)
				s.counters.Shed.Add(1)
				s.writeError(w, http.StatusServiceUnavailable, codeShed, "admission queue full")
				return
			}
			ctx := r.Context()
			select {
			case s.sem <- struct{}{}:
				s.waiters.Add(-1)
			case <-ctx.Done():
				s.waiters.Add(-1)
				s.writeCtxError(w, ctx.Err())
				return
			case <-s.rootCtx.Done():
				s.waiters.Add(-1)
				s.writeError(w, http.StatusServiceUnavailable, codeCancel, "server draining")
				return
			}
		}
		defer func() { <-s.sem }()
		if s.cfg.Hooks.OnAdmit != nil {
			s.cfg.Hooks.OnAdmit()
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Drain's root cancel reaches into in-flight requests without a
		// goroutine per request.
		stop := context.AfterFunc(s.rootCtx, cancel)
		defer stop()
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// parsePair extracts and range-checks the u/v query vertices against the
// served snapshot.
func (s *Server) parsePair(w http.ResponseWriter, r *http.Request, snap *snapshot) (u, v int, ok bool) {
	var err error
	if u, err = strconv.Atoi(r.URL.Query().Get("u")); err == nil {
		v, err = strconv.Atoi(r.URL.Query().Get("v"))
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeInvalid, "u and v must be integers")
		return 0, 0, false
	}
	if u < 0 || u >= snap.res.N || v < 0 || v >= snap.res.N {
		s.writeError(w, http.StatusBadRequest, codeInvalid,
			fmt.Sprintf("vertex out of range [0, %d)", snap.res.N))
		return 0, 0, false
	}
	return u, v, true
}

// parseLimit reads the optional search limit (default: unbounded).
func (s *Server) parseLimit(w http.ResponseWriter, r *http.Request) (float64, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return graph.Inf, true
	}
	limit, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(limit) || limit <= 0 {
		s.writeError(w, http.StatusBadRequest, codeInvalid, "limit must be a positive number")
		return 0, false
	}
	return limit, true
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	snap := s.snap.Load()
	u, v, ok := s.parsePair(w, r, snap)
	if !ok {
		return
	}
	limit, ok := s.parseLimit(w, r)
	if !ok {
		return
	}
	sr := snap.searcher()
	sr.SetStop(func() bool { return ctx.Err() != nil })
	d, reachable := sr.BidirDistanceWithin(snap.g, u, v, limit)
	sr.SetStop(nil)
	snap.searchers.Put(sr)
	// A stopped search must never answer: its result may be truncated.
	if err := ctx.Err(); err != nil {
		s.writeCtxError(w, err)
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": reachable, "version": snap.version}
	if reachable {
		resp["distance"] = d
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	snap := s.snap.Load()
	u, v, ok := s.parsePair(w, r, snap)
	if !ok {
		return
	}
	limit, ok := s.parseLimit(w, r)
	if !ok {
		return
	}
	sr := snap.searcher()
	sr.SetStop(func() bool { return ctx.Err() != nil })
	path, d, reachable := sr.PathWithin(snap.g, u, v, limit)
	sr.SetStop(nil)
	snap.searchers.Put(sr)
	if err := ctx.Err(); err != nil {
		s.writeCtxError(w, err)
		return
	}
	resp := map[string]any{"u": u, "v": v, "reachable": reachable, "version": snap.version}
	if reachable {
		resp["distance"] = d
		resp["path"] = path
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, codeMethod, "use GET")
		return
	}
	st := s.Stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version":  st.Version,
		"n":        st.N,
		"edges":    st.Edges,
		"weight":   st.Weight,
		"digest":   fmt.Sprintf("%016x", st.Digest),
		"gen":      st.Gen,
		"opseq":    st.OpSeq,
		"draining": st.Draining,
		"wedged":   st.Wedged,
		"waiting":  s.WaitersGauge(),
		"counters": s.CounterValues(),
	})
}
