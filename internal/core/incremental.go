package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/metric"
)

// IncrementalSpanner is a maintained greedy t-spanner: after the initial
// build it accepts point insertions and deletions (metric mode) or edge
// insertions and deletions (graph mode), and after every batch its Result
// is bit-identical to a from-scratch greedy build on the surviving input —
// same edge sequence, weight, and examined-candidate count.
//
// # How an insertion replays
//
// The greedy scan consumes candidates in a fixed order (non-decreasing
// weight, ties by endpoint ids), so inserting elements splices their
// candidate pairs into that stream at known positions. Everything strictly
// before the first spliced position is untouched: the union scan sees the
// exact candidate prefix the previous scan saw, makes the same
// deterministic decisions, and therefore accepts the exact prefix of the
// maintained edge sequence. The engine keeps that prefix verbatim and
// replays only the stream's tail — pulled from the cut-resumed streamed
// supply, which skips whole weight buckets below the cut by count alone —
// through the same batched-certification scan that built the spanner.
//
// # How a deletion replays
//
// A deletion invalidates the decided *suffix* instead of disturbing a
// splice point: every candidate pair with a deleted endpoint vanishes from
// the stream, and each greedy decision depends only on the accepted edges
// before it. The earliest accepted edge touching a deleted element is
// therefore the first decision that can change; everything strictly
// before it was decided on surviving candidates against a spanner prefix
// made of surviving edges, and is kept verbatim. The replay resumes at
// that position over the tombstone-filtered supply (the maintained weight
// histogram is decremented pair-by-pair, so whole buckets below the cut
// are still skipped by count alone and a delete never re-enumerates the
// full candidate set). Internally points keep stable ids for life —
// deletion tombstones an id, insertion appends fresh ones — so the scan
// order never shifts under renumbering; Result translates to the caller's
// dense numbering of the survivors, which preserves scan order because
// the translation is monotone.
//
// # Why cached bound rows and hub arrays survive (metric mode)
//
// The sparse bound store tags every row with the accepted-edge prefix its
// bounds were proven on. A row proven on a prefix the replay preserves is
// proven on a subgraph of every partial spanner the replay will ever hold,
// and spanner distances only shrink as edges are added — so its entries
// remain true upper bounds and certify skips exactly as a freshly computed
// row would. Rows proven past the cut are restored from the nearest
// digest-verified epoch checkpoint at or below it (see boundStore) and
// otherwise rebuilt on demand; hub arrays restore from their own
// checkpoint ring and repair forward by dirty-radius re-relaxation. The
// prefix argument is what makes checkpoints sound under deletions too:
// the kept prefix contains no deleted endpoints (the cut precedes every
// accepted edge that touches one), so state proven on it never depends on
// a vanished edge or point.
//
// # Batching and deferral
//
// By default every batch replays immediately, keeping Result always
// current. SetPolicy installs a coalescing policy instead: insertions and
// deletions are validated and applied to the candidate bookkeeping
// eagerly (the cut and the weight histogram are maintained per call) but
// the replay is deferred until a query (Result) arrives or the pending
// operations reach a minimum batch width — so interleaved workloads
// amortize one replay over a whole run of updates. The flushed result is
// bit-identical to replaying each batch eagerly, because both equal the
// from-scratch build on the surviving input.
//
// # Concurrency
//
// An IncrementalSpanner is not safe for concurrent use: Result and Stats
// read the same state a concurrent Flush rewrites, so all calls must be
// serialized by the caller (the serving layer holds a single writer slot
// for this). What a concurrent architecture may rely on is that every
// *Result a flush has returned is immutable from then on — a later
// replay copies the kept prefix into fresh slices instead of truncating
// the old ones, and the caller-facing view is remapped into fresh
// storage whenever a deletion exists. Publishing a returned Result (plus
// anything derived from it, like Result.Graph) across goroutines is
// therefore race-free as long as the handoff itself is synchronized;
// internal/server makes an atomic snapshot swap the only such handoff.
type IncrementalSpanner struct {
	t float64

	// Metric mode: dyn is the stable-id view over the caller's metrics
	// (nil in graph mode).
	dyn   *dynMetric
	mopts MetricParallelOptions
	bound *boundStore

	// Graph mode. The spanner owns g (a private clone grown by
	// InsertEdges and shrunk by DeleteEdges).
	g     *graph.Graph
	gopts ParallelOptions

	// counts is the candidate set's maintained weight histogram: built
	// once at construction, then each inserted candidate is tallied and
	// each deleted one removed as it is discovered (the same loops that
	// find the cut). Seeding the replay's source with it removes the
	// counting pass — an update never enumerates the full candidate set,
	// only the touched pairs and the disturbed tail.
	counts pairCounts

	// oracle is the maintained hub-label fast path (nil when the engine
	// options disable hubs); it is rebased across updates exactly as the
	// bound rows are, and hubs on deleted vertices are replaced.
	oracle *HubOracle

	policy IncrementalPolicy
	// Deferred-replay state: the earliest scan position any pending
	// update disturbs and the number of pending operations (inserted
	// plus deleted elements). pendingCut == nil means no replay is owed.
	pendingCut *graph.Edge
	pendingOps int

	// res is the maintained result in the internal id space (stable ids
	// in metric mode); resView is the caller-facing translation over the
	// survivors' dense numbering, recomputed at each successful flush
	// (aliasing res while no deletion ever happened).
	res        *Result
	resView    *Result
	anyDeleted bool
}

// dynMetric is the incremental engine's stable-id view over the caller's
// metric. Internally the greedy scan runs over stable ids that are never
// renumbered: a deletion tombstones an id, an insertion appends fresh
// ones. This is what keeps replays bit-identical — remapping a resumed
// cut into a compacted id space could reorder equal-weight candidates
// around it, silently changing tie decisions. The live-stable-to-dense
// translation is monotone, so the stable-space output remaps to exactly
// the from-scratch build on the survivors.
//
// dynMetric implements metric.Metric over the stable id space (Dist is
// defined on live ids only) and pairEnumerator, which filters tombstoned
// pairs at collection — the supply never sees a dead candidate.
type dynMetric struct {
	// latest is the caller metric from the most recent Insert; between
	// Inserts it may still contain deleted points.
	latest metric.Metric
	// rank maps a stable id to its index in latest (-1 once dead).
	rank []int
	// live lists the surviving stable ids in increasing order; position
	// in this list is the caller-facing dense id.
	live []int
	// stableOf maps a latest index back to its stable id (-1 for dead).
	// Strictly increasing over non-dead entries, which is what makes the
	// translation monotone.
	stableOf []int
	// dead marks tombstoned stable ids.
	dead []bool
	// enum enumerates latest's pairs (grid-bucketed for Euclidean).
	enum pairEnumerator
}

func newDynMetric(m metric.Metric) *dynMetric {
	n := m.N()
	d := &dynMetric{
		latest:   m,
		rank:     make([]int, n),
		live:     make([]int, n),
		stableOf: make([]int, n),
		dead:     make([]bool, n),
		enum:     metricEnumeratorFor(m),
	}
	for i := 0; i < n; i++ {
		d.rank[i], d.live[i], d.stableOf[i] = i, i, i
	}
	return d
}

// N reports the stable-id capacity (live plus tombstoned ids).
func (d *dynMetric) N() int { return len(d.rank) }

// Dist reports the distance between two live stable ids.
func (d *dynMetric) Dist(i, j int) float64 {
	return d.latest.Dist(d.rank[i], d.rank[j])
}

// Pairs enumerates the surviving candidate pairs of one weight range in
// stable ids, filtering tombstoned endpoints at collection.
func (d *dynMetric) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	d.enum.Pairs(lo, hi, func(a, b int, w float64) {
		sa, sb := d.stableOf[a], d.stableOf[b]
		if sa < 0 || sb < 0 {
			return
		}
		fn(sa, sb, w)
	})
}

// extend replaces latest with union — whose first len(live) points are
// the current survivors in stable-id order — and appends k fresh stable
// ids for the points beyond them. Tombstoned points drop out of the
// latest mapping entirely.
func (d *dynMetric) extend(union metric.Metric, k int) {
	cap0 := len(d.rank)
	d.latest = union
	for j := 0; j < k; j++ {
		d.rank = append(d.rank, -1)
		d.dead = append(d.dead, false)
		d.live = append(d.live, cap0+j)
	}
	for sid := range d.rank {
		d.rank[sid] = -1
	}
	d.stableOf = make([]int, len(d.live))
	for j, sid := range d.live {
		d.rank[sid] = j
		d.stableOf[j] = sid
	}
	d.enum = metricEnumeratorFor(union)
}

// kill tombstones the given stable ids.
func (d *dynMetric) kill(sids []int) {
	for _, sid := range sids {
		d.dead[sid] = true
		d.stableOf[d.rank[sid]] = -1
		d.rank[sid] = -1
	}
	kept := d.live[:0]
	for _, sid := range d.live {
		if !d.dead[sid] {
			kept = append(kept, sid)
		}
	}
	d.live = kept
}

// IncrementalPolicy controls when an IncrementalSpanner replays pending
// updates; the zero value replays on every Insert/InsertEdges/Delete/
// DeleteEdges call.
type IncrementalPolicy struct {
	// CoalesceUntilQuery defers the replay until Result or Flush is
	// called, however many update calls arrive in between.
	CoalesceUntilQuery bool
	// MinBatch defers the replay until at least MinBatch operations
	// (inserted plus deleted elements) are pending; a query still
	// flushes earlier. It acts as a flush trigger even when
	// CoalesceUntilQuery is set.
	MinBatch int
}

// coalescing reports whether the policy defers replays at all.
func (p IncrementalPolicy) coalescing() bool {
	return p.CoalesceUntilQuery || p.MinBatch > 1
}

// SetPolicy installs the batching policy for subsequent updates. Any
// already-pending updates are flushed first if the new policy would have
// replayed them (it is eager, or its MinBatch trigger is already met); a
// non-nil error is that flush's error, with the pre-flush state preserved
// (see Flush).
func (s *IncrementalSpanner) SetPolicy(p IncrementalPolicy) error {
	s.policy = p
	if !p.coalescing() || (p.MinBatch > 0 && s.pendingOps >= p.MinBatch) {
		return s.Flush()
	}
	return nil
}

// SetContext installs the context every subsequent replay (and flush) runs
// under; nil removes it. A cancelled replay aborts with ErrCancelled and
// preserves the pre-flush state, so the same pending updates can be
// flushed again under a fresh context.
func (s *IncrementalSpanner) SetContext(ctx context.Context) {
	s.mopts.Ctx = ctx
	s.gopts.Ctx = ctx
}

// Pending reports how many updated elements (inserted plus deleted) await
// replay under a coalescing policy.
func (s *IncrementalSpanner) Pending() int { return s.pendingOps }

// errSupplyOption rejects supply overrides: a maintained spanner must own
// its candidate supply, because updates resume the stream mid-scan.
var errSupplyOption = fmt.Errorf("core: incremental spanner owns its candidate supply; Source and Materialize are not supported")

// checkpointInterval is the accepted-edge cadence at which a maintained
// spanner snapshots its bound rows and hub arrays: frequent enough that a
// backward rebase finds a checkpoint close below any cut, rare enough
// that snapshot copying stays a small fraction of scan time.
func checkpointInterval(n int) int {
	every := n / 8
	if every < 32 {
		every = 32
	}
	return every
}

// NewIncrementalMetric builds the greedy t-spanner of m and returns the
// maintained spanner ready for point insertions via Insert and deletions
// via Delete. Workers, BatchSize, BucketPairs, and Stats of opts apply to
// the initial build and to every replay; Source and Materialize are
// rejected.
func NewIncrementalMetric(m metric.Metric, t float64, opts MetricParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, dyn: newDynMetric(m), mopts: opts}
	n := m.N()
	s.res = &Result{N: n, Stretch: t}
	s.resView = s.res
	s.bound = newBoundStore(n)
	if opts.GuardRows {
		s.bound.setGuard()
	}
	// Reserve per-row growth headroom up front: insertions then extend
	// rows in place instead of reallocating the whole row set.
	s.bound.slack = boundRowSlack(n)
	s.bound.enableCheckpoints(checkpointInterval(n))
	// One histogram pass here replaces the source's own counting pass for
	// the initial build AND every future update's.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.counts.add(m.Dist(i, j))
		}
	}
	h := graph.New(n)
	st := s.scanStats()
	hubs := opts.Hubs
	resolveHubBudget(opts.Budget, st.degradationSink(), &hubs, n)
	if hubs > 0 && n > 0 {
		// Hubs are selected once, on the initial points, and their
		// arrays carry the same growth slack as the bound rows. The
		// oracle exists even when the initial set is too small to scan,
		// so insertions that grow the spanner still get the fast path.
		s.oracle = NewHubOracle(SelectMetricHubs(m, hubs), h, boundRowSlack(n))
		s.oracle.EnableCheckpoints(checkpointInterval(n))
	}
	if n > 1 {
		sc := &metricScan{
			t:       t,
			workers: opts.Workers,
			h:       h,
			bound:   s.bound,
			oracle:  s.oracle,
			res:     s.res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newMetricSourceSeeded(s.dyn, opts.BucketPairs, s.counts), opts.BatchSize); err != nil {
			return nil, fmt.Errorf("core: incremental initial build aborted: %w", err)
		}
	}
	return s, nil
}

// NewIncrementalGraph builds the greedy t-spanner of g and returns the
// maintained spanner ready for edge insertions via InsertEdges and
// deletions via DeleteEdges. The graph is cloned, so later mutations of g
// do not affect the maintained state. Workers, BatchSize, BucketPairs,
// and Stats of opts apply to the initial build and to every replay;
// Source and Materialize are rejected.
func NewIncrementalGraph(g *graph.Graph, t float64, opts ParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, g: g.Clone(), gopts: opts}
	s.res = &Result{N: g.N(), Stretch: t}
	s.resView = s.res
	for _, e := range s.g.Edges() {
		s.counts.add(e.W)
	}
	h := graph.New(g.N())
	st := s.graphScanStats()
	hubs := opts.Hubs
	resolveHubBudget(opts.Budget, st.degradationSink(), &hubs, g.N())
	if hubs > 0 {
		s.oracle = NewHubOracle(SelectGraphHubs(s.g, hubs), h, 0)
		s.oracle.EnableCheckpoints(checkpointInterval(g.N()))
	}
	sc := &graphScan{
		t:       t,
		workers: opts.Workers,
		h:       h,
		oracle:  s.oracle,
		res:     s.res,
		stats:   st,
		env:     s.scanEnvFor(st.degradationSink()),
	}
	if err := sc.run(newGraphEdgeSourceSeeded(s.g, opts.BucketPairs, s.counts), opts.BatchSize); err != nil {
		return nil, fmt.Errorf("core: incremental initial build aborted: %w", err)
	}
	return s, nil
}

// scanStats returns the stats sink for a metric-mode scan — the caller's
// Stats, zeroed so each build or replay reports its own counters — or a
// scratch struct so the engine always has one to fill.
func (s *IncrementalSpanner) scanStats() *MetricParallelStats {
	st := s.mopts.Stats
	if st == nil {
		st = &MetricParallelStats{}
	}
	*st = MetricParallelStats{}
	return st
}

func (s *IncrementalSpanner) graphScanStats() *ParallelStats {
	st := s.gopts.Stats
	if st == nil {
		st = &ParallelStats{}
	}
	*st = ParallelStats{}
	return st
}

// Result returns the maintained spanner, flushing any updates a
// coalescing policy deferred. The returned value is a snapshot: later
// updates build a fresh Result rather than mutating it, so it stays valid
// (and must not be modified) after further update calls. On a flush error
// the maintained pre-flush result is returned alongside it. After
// deletions the result is expressed over the survivors' dense numbering
// (vertex i is the i-th surviving point in original insertion order).
func (s *IncrementalSpanner) Result() (*Result, error) {
	if err := s.Flush(); err != nil {
		return s.resView, err
	}
	return s.resView, nil
}

// Flush replays any pending updates now. It is a no-op when nothing is
// pending (in particular under the default replay-every-batch policy).
//
// Flush is atomic: either the replay completes and the maintained result
// advances to the spanner of the updated input, or — on cancellation,
// deadline, captured panic, or a corrupted guarded row — the maintained
// result and pending tally are exactly what they were before the call,
// and a typed error is returned. The same pending updates can then be
// flushed again (for example under a fresh context via SetContext);
// cached rows and hub state the aborted replay rebased remain proven on
// the preserved prefix, so a retry is sound and loses no cache warmth.
// This holds for deletions exactly as for insertions: a delete's
// candidate bookkeeping (histogram, tombstones, cut) is applied eagerly
// at Delete/DeleteEdges time and is not part of the replay, so an
// aborted replay leaves it intact and a retry resumes from the same cut.
func (s *IncrementalSpanner) Flush() (err error) {
	if s.pendingCut == nil {
		return nil
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: flush of %d pending operations aborted; pre-flush state preserved: %w", s.pendingOps, panicErr(p))
		}
	}()
	cut := *s.pendingCut
	var n int
	if s.dyn != nil {
		n = s.dyn.N()
	} else {
		n = s.g.N()
	}
	keep := s.prefixLen(cut)
	res := s.restart(keep, n)
	h := res.Graph()
	// The rebase fault-injection window: panics land in the deferred
	// recover above, a cancellation is observed by the replay scan before
	// any decision commits, and checkpoint corruption is caught by the
	// restore-time digests inside the rebases below.
	var corrupter Corrupter
	hooks := s.gopts.Inject
	if s.dyn != nil {
		hooks = s.mopts.Inject
		corrupter = rowCorrupter{b: s.bound}
	}
	if hooks.OnRebase != nil {
		hooks.OnRebase(keep, corrupter)
	}
	if s.oracle != nil {
		slack := 0
		if s.dyn != nil {
			slack = boundRowSlack(n)
		}
		s.oracle.Rebase(keep, n, s.res.Edges, h, slack)
	}
	if s.dyn != nil {
		s.bound.rebase(keep, n)
		st := s.scanStats()
		sc := &metricScan{
			t:       s.t,
			workers: s.mopts.Workers,
			h:       h,
			bound:   s.bound,
			oracle:  s.oracle,
			res:     res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newMetricSourceAfter(s.dyn, s.mopts.BucketPairs, cut, s.counts), s.mopts.BatchSize); err != nil {
			return fmt.Errorf("core: flush of %d pending operations aborted; pre-flush state preserved: %w", s.pendingOps, err)
		}
	} else {
		st := s.graphScanStats()
		sc := &graphScan{
			t:       s.t,
			workers: s.gopts.Workers,
			h:       h,
			oracle:  s.oracle,
			res:     res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newGraphEdgeSourceAfter(s.g, s.gopts.BucketPairs, cut, s.counts), s.gopts.BatchSize); err != nil {
			return fmt.Errorf("core: flush of %d pending operations aborted; pre-flush state preserved: %w", s.pendingOps, err)
		}
	}
	s.res = res
	s.resView = s.remapResult(res)
	s.pendingCut = nil
	s.pendingOps = 0
	return nil
}

// remapResult translates the internal stable-space result to the caller's
// dense numbering over the surviving points. The translation is monotone
// (stable order is preserved among survivors), so the remapped edge
// sequence, weight sum, and examined count are exactly what a
// from-scratch greedy build on the survivors produces. While no deletion
// ever happened the spaces coincide and res is returned as-is.
func (s *IncrementalSpanner) remapResult(res *Result) *Result {
	if s.dyn == nil || !s.anyDeleted {
		return res
	}
	pos := make([]int, s.dyn.N())
	for j, sid := range s.dyn.live {
		pos[sid] = j
	}
	out := &Result{
		N:             len(s.dyn.live),
		Stretch:       res.Stretch,
		Weight:        res.Weight,
		EdgesExamined: res.EdgesExamined,
		Partial:       res.Partial,
	}
	out.Edges = make([]graph.Edge, len(res.Edges))
	for i, e := range res.Edges {
		out.Edges[i] = graph.Edge{U: pos[e.U], V: pos[e.V], W: e.W}
	}
	return out
}

// scanEnvFor builds the run environment for one replay from the mode's
// options (both modes share the incremental spanner's context).
func (s *IncrementalSpanner) scanEnvFor(record func(string)) *scanEnv {
	if s.dyn != nil {
		return newScanEnv(s.mopts.Ctx, s.mopts.Budget, s.mopts.Inject, record)
	}
	return newScanEnv(s.gopts.Ctx, s.gopts.Budget, s.gopts.Inject, record)
}

// notePending folds one update batch's earliest disturbed scan position
// and element count into the pending state and replays unless the policy
// defers it. A replay error leaves the update pending (see Flush).
func (s *IncrementalSpanner) notePending(cut graph.Edge, ops int) error {
	if s.pendingCut == nil || graph.EdgeLess(cut, *s.pendingCut) {
		c := cut
		s.pendingCut = &c
	}
	s.pendingOps += ops
	if !s.policy.coalescing() || (s.policy.MinBatch > 0 && s.pendingOps >= s.policy.MinBatch) {
		return s.Flush()
	}
	return nil
}

// Insert grows a metric-mode spanner with the points union appends to the
// current survivors. union must extend the maintained point set: its
// first Result().N points are the surviving points in their maintained
// order, with identical pairwise distances, and any points beyond them
// are the insertions. After the insertion is replayed — immediately by
// default, at the next Result/Flush or MinBatch trigger under a
// coalescing policy — the maintained result is bit-identical to a
// from-scratch greedy build on union.
//
// Cost scales with the tail of the greedy scan the insertions disturb: the
// candidate stream is resumed at the first scan position any new pair
// occupies (everything below it is preserved, never enumerated), and bound
// rows untouched since that position certify their skips from cache.
//
// A non-nil error from a cancelled or faulted replay does NOT reject the
// insertion: the points are recorded as pending and the pre-flush spanner
// is preserved; Flush replays them once the fault clears.
func (s *IncrementalSpanner) Insert(union metric.Metric) error {
	if s.dyn == nil {
		return fmt.Errorf("core: Insert on a graph-mode incremental spanner (use InsertEdges): %w", graph.ErrInvalidInput)
	}
	liveN := len(s.dyn.live)
	n := union.N()
	if n < liveN {
		return fmt.Errorf("core: union has %d points, fewer than the current %d: %w", n, liveN, graph.ErrInvalidInput)
	}
	if n == liveN {
		s.dyn.extend(union, 0)
		return nil
	}
	// One pass over the O(k*n) new pairs finds the cut — the earliest
	// scan position any candidate pair touching an inserted point
	// occupies (candidates strictly before it are exactly the previous
	// scan's prefix) — and folds the new pairs into the maintained
	// histogram that seeds the replay's source. Stable ids for the new
	// points are appended beyond the current capacity.
	cap0 := len(s.dyn.rank)
	k := n - liveN
	cut := graph.Edge{W: math.Inf(1), U: cap0 + k, V: cap0 + k}
	for z := 0; z < k; z++ {
		zi := liveN + z // union index of the z-th insertion
		sz := cap0 + z  // its stable id
		for i := 0; i < zi; i++ {
			w := union.Dist(i, zi)
			s.counts.add(w)
			si := cap0 + (i - liveN)
			if i < liveN {
				si = s.dyn.live[i]
			}
			if e := (graph.Edge{U: si, V: sz, W: w}); graph.EdgeLess(e, cut) {
				cut = e
			}
		}
	}
	s.dyn.extend(union, k)
	return s.notePending(cut, k)
}

// InsertEdges grows a graph-mode spanner with the given edges (validated
// against the maintained vertex set before any state changes). After the
// insertion is replayed — immediately by default, at the next
// Result/Flush or MinBatch trigger under a coalescing policy — the
// maintained result is bit-identical to a from-scratch greedy build on
// the grown graph.
//
// Cost scales with the tail of the greedy scan the insertions disturb,
// exactly as in Insert.
//
// A non-nil error from a cancelled or faulted replay does NOT reject the
// insertion: the edges are recorded as pending and the pre-flush spanner
// is preserved; Flush replays them once the fault clears.
func (s *IncrementalSpanner) InsertEdges(edges ...graph.Edge) error {
	if s.g == nil {
		return fmt.Errorf("core: InsertEdges on a metric-mode incremental spanner (use Insert): %w", graph.ErrInvalidInput)
	}
	if len(edges) == 0 {
		return nil
	}
	for _, e := range edges {
		if err := graph.CheckEdge(s.g.N(), e.U, e.V, e.W); err != nil {
			return err
		}
	}
	cut := edges[0].Canonical()
	for _, e := range edges {
		e = e.Canonical()
		s.g.MustAddEdge(e.U, e.V, e.W)
		s.counts.add(e.W)
		if graph.EdgeLess(e, cut) {
			cut = e
		}
	}
	return s.notePending(cut, len(edges))
}

// Delete removes points from a metric-mode spanner. Points are named by
// their current maintained indices — positions in the Result numbering,
// i.e. 0 <= p < Result().N — and must be distinct; on a validation error
// no state changes. After the deletion is replayed (immediately by
// default; see IncrementalPolicy), the maintained result is bit-identical
// to a from-scratch greedy build on the surviving points, renumbered
// densely in their maintained order.
//
// Cost scales with the suffix of the greedy scan the deletions disturb:
// the scan resumes at the earliest accepted edge that touched a deleted
// point (everything before it is preserved verbatim), checkpointed bound
// rows and hub arrays restore to that prefix instead of resetting, and
// the tombstone-filtered supply skips whole weight buckets below the cut
// by count alone. Deleting points no accepted edge touched costs no
// replay work at all beyond the bookkeeping.
//
// A non-nil error from a cancelled or faulted replay does NOT reject the
// deletion: it is recorded as pending and the pre-flush spanner is
// preserved; Flush replays it once the fault clears.
func (s *IncrementalSpanner) Delete(points ...int) error {
	if s.dyn == nil {
		return fmt.Errorf("core: Delete on a graph-mode incremental spanner (use DeleteEdges): %w", graph.ErrInvalidInput)
	}
	if len(points) == 0 {
		return nil
	}
	liveN := len(s.dyn.live)
	seen := make(map[int]bool, len(points))
	for _, p := range points {
		if p < 0 || p >= liveN {
			return fmt.Errorf("core: Delete point %d out of range [0, %d): %w", p, liveN, graph.ErrInvalidInput)
		}
		if seen[p] {
			return fmt.Errorf("core: Delete point %d listed twice: %w", p, graph.ErrInvalidInput)
		}
		seen[p] = true
	}
	capN := s.dyn.N()
	batch := make([]bool, capN)
	sids := make([]int, 0, len(points))
	for _, p := range points {
		sid := s.dyn.live[p]
		batch[sid] = true
		sids = append(sids, sid)
	}
	// Remove every candidate pair with a deleted endpoint from the
	// maintained histogram, each exactly once: a pair inside the batch is
	// removed by its larger endpoint's iteration only.
	for _, d := range sids {
		for _, x := range s.dyn.live {
			if x == d || (batch[x] && x < d) {
				continue
			}
			s.counts.remove(s.dyn.Dist(d, x))
		}
	}
	// The cut is the earliest accepted edge with a deleted endpoint: every
	// decision before it was made on surviving candidates against
	// surviving accepted edges, so the prefix is preserved verbatim. With
	// no such edge the sentinel sorts after every real candidate (accepted
	// weights are finite, and even +Inf-weight candidates have U < capN),
	// so the whole scan is preserved and the replay is pure accounting.
	cut := graph.Edge{W: math.Inf(1), U: capN, V: capN}
	for _, e := range s.res.Edges {
		if batch[e.U] || batch[e.V] {
			cut = e
			break
		}
	}
	s.dyn.kill(sids)
	s.anyDeleted = true
	if s.oracle != nil {
		// Hubs on deleted vertices are re-sampled by the same
		// farthest-point rule the initial selection used and every hub
		// array rebuilt (the replacement invalidates the rows and the
		// checkpoint ring wholesale; see ReplaceHubs).
		s.oracle.ReplaceHubs(s.dyn.dead, s.dyn.live, s.pickReplacementHub)
	}
	return s.notePending(cut, len(points))
}

// DeleteEdges removes edges from a graph-mode spanner. Each edge must
// match an existing edge exactly (endpoints up to orientation, weight
// bit-identical); requesting more copies of a parallel edge than the
// graph holds is a validation error, and on any validation error no state
// changes. After the deletion is replayed (immediately by default; see
// IncrementalPolicy), the maintained result is bit-identical to a
// from-scratch greedy build on the surviving graph.
//
// Cost scales with the suffix of the greedy scan the deletions disturb:
// the scan resumes at the earliest accepted edge matching a deleted
// value, exactly as in Delete. Deleting only edges the greedy scan had
// rejected costs no replay work beyond the bookkeeping.
func (s *IncrementalSpanner) DeleteEdges(edges ...graph.Edge) error {
	if err := s.ValidateDeleteEdges(edges...); err != nil {
		return err
	}
	if len(edges) == 0 {
		return nil
	}
	want := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		want[e.Canonical()]++
	}
	// The cut is the earliest accepted edge whose value matches a deleted
	// one. On multigraphs this is conservative — the accepted copy may be
	// a surviving parallel twin — but it is always sound, and the greedy
	// scan never accepts two edges of identical value (the first makes
	// the second's distance test fail for every t >= 1), so accepted
	// values are unambiguous.
	cut := graph.Edge{W: math.Inf(1), U: s.g.N(), V: s.g.N()}
	for _, e := range s.res.Edges {
		if _, ok := want[e]; ok {
			cut = e
			break
		}
	}
	for _, e := range edges {
		e = e.Canonical()
		if rerr := s.g.RemoveEdge(e.U, e.V, e.W); rerr != nil {
			panic(rerr) // unreachable: validated above
		}
		s.counts.remove(e.W)
	}
	return s.notePending(cut, len(edges))
}

// ValidateDeleteEdges checks a DeleteEdges batch against the current
// graph without changing any state: every edge must match an existing
// edge exactly (endpoints up to orientation, weight bit-identical), and a
// batch may not request more copies of a parallel edge than the graph
// holds. DeleteEdges performs exactly this check before mutating, so a
// batch this method accepts cannot subsequently be rejected — which is
// what lets a write-ahead log record the operation before applying it.
func (s *IncrementalSpanner) ValidateDeleteEdges(edges ...graph.Edge) error {
	if s.g == nil {
		return fmt.Errorf("core: DeleteEdges on a metric-mode incremental spanner (use Delete): %w", graph.ErrInvalidInput)
	}
	// Count requested copies per canonical edge, remembering first-seen
	// order so a rejection always names the same edge regardless of map
	// iteration order.
	want := make(map[graph.Edge]int, len(edges))
	order := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		c := e.Canonical()
		if want[c] == 0 {
			order = append(order, c)
		}
		want[c]++
	}
	have := make(map[graph.Edge]int, len(want))
	for _, e := range s.g.Edges() {
		if _, ok := want[e]; ok {
			have[e]++
		}
	}
	for _, e := range order {
		if k := want[e]; have[e] < k {
			return fmt.Errorf("core: DeleteEdges wants %d copies of edge (%d, %d, %v), graph has %d: %w",
				k, e.U, e.V, e.W, have[e], graph.ErrInvalidInput)
		}
	}
	return nil
}

// pickReplacementHub is the deletion-time hub re-selection rule: among
// live points not already serving as hubs, pick the one farthest from the
// surviving hub set (maximum over candidates of the minimum distance to a
// live hub), scanning live ids in increasing order so ties resolve to the
// smallest id — the same ball-growth step SelectMetricHubs grows the
// initial set by, restarted from the survivors. With no live hub left to
// measure against every candidate is infinitely far and the smallest live
// id wins, mirroring the initial selection's fixed starting point. The
// minimum over the hub set is order-independent, so iterating the
// membership map stays deterministic.
func (s *IncrementalSpanner) pickReplacementHub(isHub map[int]bool) int {
	best, far := -1, math.Inf(-1)
	for _, c := range s.dyn.live {
		if isHub[c] {
			continue
		}
		minD := math.Inf(1)
		//spannerlint:nondeterministic-ok minimum over the hub membership set is order-independent (see doc comment)
		for h := range isHub {
			if h < len(s.dyn.dead) && !s.dyn.dead[h] {
				if d := s.dyn.Dist(c, h); d < minD {
					minD = d
				}
			}
		}
		if minD > far {
			best, far = c, minD
		}
	}
	return best
}

// prefixLen reports how many of the maintained accepted edges precede cut
// in scan order — the prefix the replay reproduces verbatim. The accepted
// sequence is in scan order, so this is a binary search.
func (s *IncrementalSpanner) prefixLen(cut graph.Edge) int {
	return sort.Search(len(s.res.Edges), func(i int) bool {
		return !graph.EdgeLess(s.res.Edges[i], cut)
	})
}

// restart builds the replay's starting Result over n vertices: the first
// keep accepted edges, re-accumulated in order so the weight sum repeats
// the exact float64 additions a from-scratch scan performs.
func (s *IncrementalSpanner) restart(keep, n int) *Result {
	res := &Result{N: n, Stretch: s.t}
	res.Edges = append(make([]graph.Edge, 0, keep), s.res.Edges[:keep]...)
	for _, e := range res.Edges {
		res.Weight += e.W
	}
	return res
}
