package graph

import (
	"repro/internal/pq"
)

// BidirectionalDistance computes the shortest-path distance between src and
// dst by growing Dijkstra balls from both endpoints simultaneously and
// stopping when the frontiers certify the meeting distance. On spanner-like
// sparse graphs this typically settles far fewer vertices than a one-sided
// search — it is the query primitive a distance oracle built on a spanner
// would use. Returns Inf if dst is unreachable.
func (g *Graph) BidirectionalDistance(src, dst int) float64 {
	if src == dst {
		return 0
	}
	n := g.N()
	distF := make([]float64, n)
	distB := make([]float64, n)
	for i := 0; i < n; i++ {
		distF[i] = Inf
		distB[i] = Inf
	}
	doneF := make([]bool, n)
	doneB := make([]bool, n)
	hf := pq.NewIndexedMinHeap(n)
	hb := pq.NewIndexedMinHeap(n)
	distF[src] = 0
	distB[dst] = 0
	hf.Push(src, 0)
	hb.Push(dst, 0)

	best := Inf
	for hf.Len() > 0 && hb.Len() > 0 {
		// Standard stopping rule: once the sum of the two frontier minima
		// reaches the best meeting distance found, no shorter path exists.
		_, fMin := hf.Peek()
		_, bMin := hb.Peek()
		if fMin+bMin >= best {
			break
		}
		// Expand the side with the smaller frontier.
		if fMin <= bMin {
			v, dv := hf.Pop()
			if doneF[v] {
				continue
			}
			doneF[v] = true
			if distB[v] < Inf {
				if cand := dv + distB[v]; cand < best {
					best = cand
				}
			}
			for _, h := range g.adj[v] {
				u := int(h.to)
				if nd := dv + h.w; nd < distF[u] {
					distF[u] = nd
					hf.Push(u, nd)
				}
			}
		} else {
			v, dv := hb.Pop()
			if doneB[v] {
				continue
			}
			doneB[v] = true
			if distF[v] < Inf {
				if cand := dv + distF[v]; cand < best {
					best = cand
				}
			}
			for _, h := range g.adj[v] {
				u := int(h.to)
				if nd := dv + h.w; nd < distB[u] {
					distB[u] = nd
					hb.Push(u, nd)
				}
			}
		}
	}
	return best
}
