package spanner

import (
	"errors"
	"math"
	"testing"
)

// TestInvalidInputRejection table-tests every input-validation path of the
// public API: each rejected input must return an error matching
// ErrInvalidInput via errors.Is, so callers can branch on the sentinel
// without parsing messages.
func TestInvalidInputRejection(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)

	t.Run("edges", func(t *testing.T) {
		cases := []struct {
			name string
			u, v int
			w    float64
		}{
			{"nan weight", 0, 1, nan},
			{"negative weight", 0, 1, -1},
			{"zero weight", 0, 1, 0},
			{"inf weight", 0, 1, inf},
			{"u out of range", -1, 1, 1},
			{"v out of range", 0, 5, 1},
			{"self-loop", 2, 2, 1},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				g := NewGraph(4)
				err := g.AddEdge(tc.u, tc.v, tc.w)
				if !errors.Is(err, ErrInvalidInput) {
					t.Fatalf("AddEdge(%d, %d, %v) = %v, want ErrInvalidInput", tc.u, tc.v, tc.w, err)
				}
			})
		}
	})

	t.Run("points", func(t *testing.T) {
		cases := []struct {
			name string
			pts  [][]float64
		}{
			{"nan coordinate", [][]float64{{0, 0}, {1, nan}}},
			{"inf coordinate", [][]float64{{0, 0}, {inf, 1}}},
			{"zero dimension", [][]float64{{}, {}}},
			{"dimension mismatch", [][]float64{{0, 0}, {1}}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if _, err := NewEuclidean(tc.pts); !errors.Is(err, ErrInvalidInput) {
					t.Fatalf("NewEuclidean(%v) = %v, want ErrInvalidInput", tc.pts, err)
				}
			})
		}
	})

	t.Run("matrix", func(t *testing.T) {
		cases := []struct {
			name string
			d    [][]float64
		}{
			{"ragged row", [][]float64{{0, 1}, {1}}},
			{"nonzero diagonal", [][]float64{{1, 1}, {1, 0}}},
			{"nan distance", [][]float64{{0, nan}, {nan, 0}}},
			{"negative distance", [][]float64{{0, -1}, {-1, 0}}},
			{"zero off-diagonal", [][]float64{{0, 0}, {0, 0}}},
			{"asymmetric", [][]float64{{0, 1}, {2, 0}}},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if _, err := NewMetricFromMatrix(tc.d); !errors.Is(err, ErrInvalidInput) {
					t.Fatalf("NewMetricFromMatrix(%v) = %v, want ErrInvalidInput", tc.d, err)
				}
			})
		}
	})

	t.Run("stretch", func(t *testing.T) {
		g := NewGraph(3)
		g.MustAddEdge(0, 1, 1)
		g.MustAddEdge(1, 2, 1)
		m, err := NewEuclidean([][]float64{{0}, {1}, {3}})
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range []float64{0, 0.5, -2, nan} {
			if _, err := Greedy(g, bad); !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("Greedy(t=%v) = %v, want ErrInvalidInput", bad, err)
			}
			if _, err := GreedyMetric(m, bad); !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("GreedyMetric(t=%v) = %v, want ErrInvalidInput", bad, err)
			}
			if _, err := FaultTolerantGreedy(m, bad, 1); !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("FaultTolerantGreedy(t=%v) = %v, want ErrInvalidInput", bad, err)
			}
			if _, err := NewIncremental(m, bad, 1); !errors.Is(err, ErrInvalidInput) {
				t.Fatalf("NewIncremental(t=%v) = %v, want ErrInvalidInput", bad, err)
			}
		}
	})

	t.Run("incremental-insert", func(t *testing.T) {
		// InsertEdges validates before mutating: a batch with one bad edge
		// changes nothing.
		g := NewGraph(4)
		g.MustAddEdge(0, 1, 1)
		g.MustAddEdge(1, 2, 1)
		g.MustAddEdge(2, 3, 1)
		inc, err := NewIncrementalGraph(g, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		before, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.InsertEdges(Edge{U: 0, V: 3, W: 1}, Edge{U: 1, V: 1, W: 1}); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("InsertEdges with a self-loop = %v, want ErrInvalidInput", err)
		}
		after, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		if after != before {
			t.Fatalf("rejected batch still mutated the maintained spanner")
		}
	})
}
