package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestGreedyGraphRejectsBadStretch(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	for _, bad := range []float64{0.5, 0, -1, math.Inf(1), math.NaN()} {
		if _, err := GreedyGraph(g, bad); err == nil {
			t.Errorf("GreedyGraph accepted stretch %v", bad)
		}
	}
}

func TestGreedyStretchOne(t *testing.T) {
	// t = 1: the spanner must preserve all distances exactly. On a graph
	// with unique shortest paths, that keeps every edge that is a unique
	// shortest path between its endpoints.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 2.5) // strictly longer than the 2-path
	res, err := GreedyGraph(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("size = %d, want 2 (heavy edge dropped even at t=1)", res.Size())
	}
}

func TestGreedyTriangle(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	// t=2: third unit edge has a 2-path alternative of weight 2 <= 2*1.
	res, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("t=2 triangle: size = %d, want 2", res.Size())
	}
	// t=1.5: no alternative within 1.5, all edges kept.
	res, err = GreedyGraph(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("t=1.5 triangle: size = %d, want 3", res.Size())
	}
}

func TestGreedyIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tt := range []float64{1.5, 2, 3, 5} {
		for trial := 0; trial < 5; trial++ {
			g := gen.ErdosRenyi(rng, 40, 0.3, 0.5, 10)
			res, err := GreedyGraph(g, tt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := verify.Spanner(res.Graph(), g, tt, 1e-9); err != nil {
				t.Fatalf("t=%v: %v", tt, err)
			}
		}
	}
}

func TestGreedyContainsMST(t *testing.T) {
	// Observation 2: greedy t-spanner contains the (deterministic) MST.
	rng := rand.New(rand.NewSource(43))
	for _, tt := range []float64{1, 1.1, 2, 4, 10} {
		g := gen.ErdosRenyi(rng, 35, 0.4, 0.5, 10)
		res, err := GreedyGraph(g, tt)
		if err != nil {
			t.Fatal(err)
		}
		if err := ContainsMST(res, g); err != nil {
			t.Fatalf("t=%v: %v", tt, err)
		}
	}
}

func TestGreedySelfSpannerLemma3(t *testing.T) {
	// Lemma 3: the only t-spanner of the greedy t-spanner is itself.
	rng := rand.New(rand.NewSource(44))
	for _, tt := range []float64{1.5, 2, 3} {
		g := gen.ErdosRenyi(rng, 30, 0.4, 0.5, 10)
		res, err := GreedyGraph(g, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v := VerifySelfSpanner(res.Graph(), tt); len(v) != 0 {
			t.Fatalf("t=%v: self-spanner violations: %+v", tt, v)
		}
	}
}

func TestNonGreedySpannerFailsSelfCheck(t *testing.T) {
	// A spanner with a redundant edge must be caught by VerifySelfSpanner.
	h := graph.New(3)
	h.MustAddEdge(0, 1, 1)
	h.MustAddEdge(1, 2, 1)
	h.MustAddEdge(0, 2, 1) // redundant at t=2: path 0-1-2 has weight 2
	if v := VerifySelfSpanner(h, 2); len(v) == 0 {
		t.Fatal("VerifySelfSpanner missed a redundant edge")
	}
}

func TestGreedyMonotoneSizeInStretch(t *testing.T) {
	// Larger t should never produce more edges on the same instance.
	rng := rand.New(rand.NewSource(45))
	g := gen.ErdosRenyi(rng, 40, 0.5, 0.5, 10)
	prev := math.MaxInt
	for _, tt := range []float64{1, 1.5, 2, 3, 5, 9} {
		res, err := GreedyGraph(g, tt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() > prev {
			t.Fatalf("size increased from %d to %d at t=%v", prev, res.Size(), tt)
		}
		prev = res.Size()
	}
}

func TestGreedyPetersenKeepsAllEdges(t *testing.T) {
	// Petersen graph has girth 5: with t=3, removing any edge leaves the
	// endpoints at distance 4 > 3, so greedy keeps all 15 edges.
	p := gen.Petersen()
	res, err := GreedyGraph(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 15 {
		t.Fatalf("greedy 3-spanner of Petersen has %d edges, want 15", res.Size())
	}
}

func TestGreedyFigure1Gadget(t *testing.T) {
	// The paper's Figure 1: greedy 3-spanner of H ∪ S keeps all 15 edges of
	// the Petersen graph H (plus star edges as needed), while the star alone
	// is a valid 3-spanner with 9 edges.
	f1, err := gen.Figure1Gadget(gen.Petersen(), 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyGraph(f1.G, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every unit-weight H edge must be kept.
	kept := 0
	for _, e := range res.Edges {
		if e.W == 1 {
			kept++
		}
	}
	if kept != 15 {
		t.Fatalf("greedy kept %d H-edges, want all 15", kept)
	}
	// The star alone (9 weight-(1+eps) edges + root's 3 unit H-edges) is a
	// 3-spanner of G: check our star-edge count and that star+incident
	// H-edges span with stretch 3.
	if f1.StarEdges != 6 {
		t.Fatalf("star edges = %d, want 6 (9 non-neighbors minus... )", f1.StarEdges)
	}
}

func TestGreedyMetricMatchesGraphOnCompleteGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pts := gen.UniformPoints(rng, 25, 2)
	m := metric.MustEuclidean(pts)
	res, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Graph(), m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
	if res.EdgesExamined != 25*24/2 {
		t.Fatalf("examined %d pairs, want %d", res.EdgesExamined, 25*24/2)
	}
}

func TestGreedyMetricFastIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		pts := gen.UniformPoints(rng, 30, 2)
		m := metric.MustEuclidean(pts)
		for _, tt := range []float64{1.1, 1.5, 2} {
			a, err := GreedyMetric(m, tt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := GreedyMetricFast(m, tt)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Edges) != len(b.Edges) {
				t.Fatalf("t=%v: sizes differ %d vs %d", tt, len(a.Edges), len(b.Edges))
			}
			for i := range a.Edges {
				if a.Edges[i] != b.Edges[i] {
					t.Fatalf("t=%v: edge %d differs: %v vs %v", tt, i, a.Edges[i], b.Edges[i])
				}
			}
			if math.Abs(a.Weight-b.Weight) > 1e-9 {
				t.Fatalf("t=%v: weights differ", tt)
			}
		}
	}
}

func TestGreedyMetricFastDegenerate(t *testing.T) {
	empty := metric.MustEuclidean(nil)
	res, err := GreedyMetricFast(empty, 2)
	if err != nil || res.Size() != 0 {
		t.Fatalf("empty metric: %v, size %d", err, res.Size())
	}
	one := metric.MustEuclidean([][]float64{{1, 1}})
	res, err = GreedyMetricFast(one, 2)
	if err != nil || res.Size() != 0 {
		t.Fatalf("single point: %v, size %d", err, res.Size())
	}
}

func TestSizeInjectionOnGreedyOutput(t *testing.T) {
	// Build the greedy t-spanner H of a small metric (t < 2), then check
	// that the Lemma 8 injection exists from H into (a) H itself and (b) the
	// greedy t-spanner of M_H (which equals H by Lemma 3 — a sanity loop).
	rng := rand.New(rand.NewSource(48))
	pts := gen.UniformPoints(rng, 18, 2)
	m := metric.MustEuclidean(pts)
	const tt = 1.4
	res, err := GreedyMetric(m, tt)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	inj, err := SizeInjection(h, h, tt)
	if err != nil {
		t.Fatalf("self injection: %v", err)
	}
	if len(inj) != h.M() {
		t.Fatalf("injection covers %d edges, want %d", len(inj), h.M())
	}
	// Injectivity re-check.
	seen := make(map[graph.Edge]bool)
	for _, ep := range inj {
		if seen[ep] {
			t.Fatal("injection not injective")
		}
		seen[ep] = true
	}
}

func TestSizeInjectionAgainstRicherSpanner(t *testing.T) {
	// H' = complete graph on M_H is trivially a t-spanner of M_H; the
	// injection must exist and certify |H| <= |H'|.
	rng := rand.New(rand.NewSource(49))
	pts := gen.UniformPoints(rng, 12, 2)
	m := metric.MustEuclidean(pts)
	const tt = 1.3
	res, err := GreedyMetric(m, tt)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	mh, err := metric.FromGraph(h)
	if err != nil {
		t.Fatal(err)
	}
	hPrime := metric.CompleteGraph(mh)
	inj, err := SizeInjection(h, hPrime, tt)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj) != h.M() || h.M() > hPrime.M() {
		t.Fatalf("injection size %d, |H|=%d, |H'|=%d", len(inj), h.M(), hPrime.M())
	}
}

func TestSizeInjectionRejectsLargeStretch(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	if _, err := SizeInjection(g, g, 2); err == nil {
		t.Fatal("SizeInjection accepted t >= 2")
	}
}

func TestGreedyQuickPropertyStretchAndMST(t *testing.T) {
	// Property: on random connected graphs, the greedy spanner (random t in
	// [1.1, 4]) is a valid t-spanner containing the MST, and satisfies
	// Lemma 3.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		g := gen.ErdosRenyi(rng, n, 0.4, 0.5, 8)
		tt := 1.1 + rng.Float64()*2.9
		res, err := GreedyGraph(g, tt)
		if err != nil {
			return false
		}
		h := res.Graph()
		if _, err := verify.Spanner(h, g, tt, 1e-9); err != nil {
			return false
		}
		if err := ContainsMST(res, g); err != nil {
			return false
		}
		return len(VerifySelfSpanner(h, tt)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEdgesSortedByWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := gen.ErdosRenyi(rng, 30, 0.4, 0.5, 10)
	res, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Edges); i++ {
		if res.Edges[i].W < res.Edges[i-1].W {
			t.Fatalf("accepted edges out of weight order at %d", i)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	res, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 || res.Weight != 3 || res.N != 4 {
		t.Fatalf("accessors wrong: %+v", res)
	}
	if d := res.MaxDegree(); d != 2 {
		t.Fatalf("MaxDegree = %d, want 2", d)
	}
	l, ok := res.Lightness(3)
	if !ok || l != 1 {
		t.Fatalf("Lightness = %v, %v", l, ok)
	}
	if _, ok := res.Lightness(0); ok {
		t.Fatal("Lightness(0) should be not-ok")
	}
}

func TestGreedyOnDisconnectedGraph(t *testing.T) {
	// The greedy algorithm is well-defined per component: distances across
	// components are infinite, so every cross-component candidate would be
	// kept — but none exist in the input, and the output preserves the
	// component structure.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(3, 4, 2)
	g.MustAddEdge(4, 5, 2)
	res, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	if len(h.Components()) != len(g.Components()) {
		t.Fatal("component structure changed")
	}
	if _, err := verify.Spanner(h, g, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
	// The unit triangle loses one edge at t=2; the path component is kept.
	if res.Size() != 4 {
		t.Fatalf("size = %d, want 4", res.Size())
	}
}

func TestGreedyParallelEdgesInput(t *testing.T) {
	// Multigraph input: the lighter parallel edge wins; the heavier one is
	// always skippable at t >= 1.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 1, 3)
	res, err := GreedyGraph(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 || res.Edges[0].W != 3 {
		t.Fatalf("parallel edges mishandled: %+v", res.Edges)
	}
}
