package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any point leaves
// either the old file or the complete new one: the bytes go to a
// temporary file in the same directory, are fsynced, renamed over path,
// and the directory entry is fsynced too — without the final directory
// sync, ext4-style filesystems may journal the rename after a crash away
// again, losing a file the caller was told is durable. It is the shared
// helper behind every benchmark report and snapshot write in the repo.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename succeeded
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("persist: sync dir %s: %w", dir, serr)
	}
	return cerr
}
