package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// FuzzSnapshotDecode: arbitrary bytes fed to the snapshot decoder produce
// either a typed error (ErrUnsupportedVersion or ErrCorruptState) or a
// state that survives a full import attempt — never a panic and never an
// allocation out of proportion to the input. The seed corpus is the
// golden snapshots plus the interesting small prefixes.
func FuzzSnapshotDecode(f *testing.F) {
	for _, name := range []string{"snap_metric_v1.bin", "snap_matrix_v1.bin", "snap_graph_v1.bin"} {
		if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(data)
			f.Add(data[:16])
			f.Add(data[:len(data)/2])
		}
	}
	f.Add([]byte{})
	f.Add(snapMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, core.ErrCorruptState) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A structurally plausible decode must still be survivable: the
		// semantic layer may reject it, but only with its typed error.
		if _, err := core.ImportIncremental(st, core.MetricParallelOptions{Workers: 1, Hubs: len(st.Hubs)}, core.ParallelOptions{Workers: 1, Hubs: len(st.Hubs)}); err != nil {
			if !errors.Is(err, core.ErrCorruptState) && !errors.Is(err, graph.ErrInvalidInput) {
				t.Fatalf("untyped import error: %v", err)
			}
		}
	})
}

// FuzzWalDecode covers the WAL side: the header/record scanner and each
// record payload decoder must treat arbitrary bytes as a (possibly empty)
// valid prefix or a typed corruption, never panic.
func FuzzWalDecode(f *testing.F) {
	hdr := encodeWalHeader(1, 42)
	f.Add(hdr, 2)
	full := append(append([]byte(nil), hdr...), encodeWalRecord(walOp{kind: walInsertPoints, k: 1, coords: []float64{1, 2}})...)
	full = append(full, encodeWalRecord(walOp{kind: walDelete, dense: []int{0}})...)
	full = append(full, encodeWalRecord(walOp{kind: walPolicy, policy: core.IncrementalPolicy{MinBatch: 3}})...)
	full = append(full, encodeWalRecord(walOp{kind: walInsertMatrix, k: 1, base: 2, rows: [][]float64{{1, 2}}})...)
	full = append(full, encodeWalRecord(walOp{kind: walInsertEdges, edges: []graph.Edge{{U: 0, V: 1, W: 1}}})...)
	f.Add(full, 2)
	f.Add(full[:len(full)-5], 0)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		if dim < 0 || dim > 8 {
			dim = dim & 7
		}
		_, _, records, validLen, err := scanWal(data)
		if err != nil {
			if !errors.Is(err, core.ErrCorruptState) && !errors.Is(err, ErrUnsupportedVersion) {
				t.Fatalf("untyped scan error: %v", err)
			}
			return
		}
		if validLen < walHeaderLen || validLen > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [%d, %d]", validLen, walHeaderLen, len(data))
		}
		for _, payload := range records {
			if _, err := decodeWalPayload(payload, dim); err != nil && !errors.Is(err, core.ErrCorruptState) {
				t.Fatalf("untyped payload error: %v", err)
			}
		}
	})
}
