package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestThetaGraphIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := gen.UniformPoints(rng, 60, 2)
	m := metric.MustEuclidean(pts)
	k := 12
	g, err := ThetaGraph(pts, k)
	if err != nil {
		t.Fatal(err)
	}
	theta := 2 * math.Pi / float64(k)
	stretch := 1 / (math.Cos(theta) - math.Sin(theta))
	if _, err := verify.MetricSpanner(g, m, stretch, 1e-9); err != nil {
		t.Fatalf("theta graph stretch bound violated: %v", err)
	}
	if !g.Connected() {
		t.Fatal("theta graph disconnected")
	}
}

func TestThetaGraphValidation(t *testing.T) {
	if _, err := ThetaGraph(nil, 8); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ThetaGraph([][]float64{{1, 2, 3}}, 8); err == nil {
		t.Fatal("3D accepted")
	}
	if _, err := ThetaGraph([][]float64{{1, 2}}, 3); err == nil {
		t.Fatal("k=3 accepted")
	}
}

func TestYaoGraphIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gen.UniformPoints(rng, 60, 2)
	m := metric.MustEuclidean(pts)
	k := 12
	g, err := YaoGraph(pts, k)
	if err != nil {
		t.Fatal(err)
	}
	stretch := 1 / (1 - 2*math.Sin(math.Pi/float64(k)))
	if _, err := verify.MetricSpanner(g, m, stretch, 1e-9); err != nil {
		t.Fatalf("yao graph stretch bound violated: %v", err)
	}
	if !g.Connected() {
		t.Fatal("yao graph disconnected")
	}
}

func TestWSPDSpannerIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, eps := range []float64{0.5, 1.0} {
		pts := gen.UniformPoints(rng, 50, 2)
		m := metric.MustEuclidean(pts)
		g, err := WSPDSpanner(pts, eps)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.MetricSpanner(g, m, 1+eps, 1e-9); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if !g.Connected() {
			t.Fatalf("eps=%v: wspd spanner disconnected", eps)
		}
	}
	if _, err := WSPDSpanner(gen.UniformPoints(rng, 5, 2), -1); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestWSPDSpannerHigherDim(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := gen.UniformPoints(rng, 40, 3)
	m := metric.MustEuclidean(pts)
	g, err := WSPDSpanner(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(g, m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestBaswanaSenStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{2, 3} {
		for trial := 0; trial < 5; trial++ {
			g := gen.ErdosRenyi(rng, 40, 0.3, 0.5, 10)
			sp, err := BaswanaSen(rng, g, k)
			if err != nil {
				t.Fatal(err)
			}
			tt := float64(2*k - 1)
			if _, err := verify.Spanner(sp, g, tt, 1e-9); err != nil {
				t.Fatalf("k=%d trial %d: %v", k, trial, err)
			}
		}
	}
}

func TestBaswanaSenK1KeepsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.ErdosRenyi(rng, 20, 0.3, 1, 5)
	sp, err := BaswanaSen(rng, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.M() != g.M() {
		t.Fatalf("k=1 kept %d of %d edges", sp.M(), g.M())
	}
	if _, err := BaswanaSen(rng, g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBaswanaSenSparsifiesDenseGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := gen.UniformPoints(rng, 80, 2)
	m := metric.MustEuclidean(pts)
	sp, err := BaswanaSenMetric(rng, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	full := 80 * 79 / 2
	if sp.M() >= full/2 {
		t.Fatalf("BS kept %d of %d edges; expected substantial sparsification", sp.M(), full)
	}
	if _, err := verify.MetricSpanner(sp, m, 5, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestBaswanaSenOnMetricCompleteGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := gen.UniformPoints(rng, 30, 2)
	m := metric.MustEuclidean(pts)
	sp, err := BaswanaSenMetric(rng, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(sp, m, 3, 1e-9); err != nil {
		t.Fatal(err)
	}
}
