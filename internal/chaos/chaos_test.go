package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
)

// minSchedules is the property suite's coverage floor: the suite fails if
// it ran fewer randomized fault schedules than this, so the CI smoke run
// cannot silently shrink below the guaranteed fault coverage.
const minSchedules = 100

func randomPoints(rng *rand.Rand, n int) metric.Metric {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	m, err := metric.NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	return m
}

func randomGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 0.5+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.5+rng.Float64())
		}
	}
	return g
}

// requireTyped asserts the error wraps exactly one of the engines' fault
// sentinels — the "clean typed error" half of the robustness invariant.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, core.ErrCancelled) && !errors.Is(err, core.ErrEnginePanic) && !errors.Is(err, core.ErrCorruptState) {
		t.Fatalf("error is not a typed engine fault: %v", err)
	}
}

// checkOutcome asserts the robustness invariant for one faulted run: a nil
// error means output bit-identical to the clean reference; a non-nil error
// means a typed fault plus a Result that is the exact decided prefix of
// the reference's edge sequence, with the weight re-accumulated over that
// prefix bit-identically.
func checkOutcome(t *testing.T, ref, res *core.Result, err error) {
	t.Helper()
	if err == nil {
		if res.Partial {
			t.Fatalf("clean run marked Partial")
		}
		if res.Size() != ref.Size() || res.Weight != ref.Weight || res.EdgesExamined != ref.EdgesExamined {
			t.Fatalf("clean run diverged: (%d, %v, %d) vs reference (%d, %v, %d)",
				res.Size(), res.Weight, res.EdgesExamined, ref.Size(), ref.Weight, ref.EdgesExamined)
		}
		for i := range ref.Edges {
			if res.Edges[i] != ref.Edges[i] {
				t.Fatalf("clean run diverged at edge %d: %v vs %v", i, res.Edges[i], ref.Edges[i])
			}
		}
		return
	}
	requireTyped(t, err)
	if !res.Partial {
		t.Fatalf("faulted run (%v) not marked Partial", err)
	}
	if len(res.Edges) > len(ref.Edges) {
		t.Fatalf("faulted run accepted %d edges, reference only %d", len(res.Edges), len(ref.Edges))
	}
	var w float64
	for i, e := range res.Edges {
		if e != ref.Edges[i] {
			t.Fatalf("faulted run diverged at edge %d: %v vs %v (err: %v)", i, e, ref.Edges[i], err)
		}
		w += e.W
	}
	if res.Weight != w {
		t.Fatalf("faulted run's weight %v is not the prefix re-accumulation %v", res.Weight, w)
	}
	if res.EdgesExamined > ref.EdgesExamined {
		t.Fatalf("faulted run examined %d candidates, reference only %d", res.EdgesExamined, ref.EdgesExamined)
	}
}

// settleGoroutines waits for the goroutine count to return to the
// baseline; a faulted engine must join every worker before returning, so
// anything still running afterwards is a leak.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<18)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stallBudget pairs an imminent deadline with FaultStall so the stalled
// certification overshoots it; runs whose trigger never fires may still
// trip the deadline legitimately, which is an equally valid outcome.
func stallBudget(fault chaos.Fault) core.Budget {
	if fault != chaos.FaultStall {
		return core.Budget{}
	}
	return core.Budget{Deadline: time.Now().Add(3 * time.Millisecond)}
}

const stallFor = 25 * time.Millisecond

// TestChaosPropertySuite drives randomized fault schedules against all
// four engines and asserts, for every schedule, the documented invariant:
// output bit-identical to the serial reference, or a typed error with the
// exact decided prefix — never silent divergence, never a leaked
// goroutine.
func TestChaosPropertySuite(t *testing.T) {
	schedules := 0
	fired := 0

	// Graph engine: the corrupter is nil (no cached rows), so FaultCorrupt
	// would be a no-op; the other three classes all apply.
	t.Run("graph", func(t *testing.T) {
		rng := rand.New(rand.NewSource(41))
		g := randomGraph(rng, 48, 150)
		ref, err := core.GreedyGraph(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		maxCertify := int64(len(g.Edges()))
		for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultStall} {
			for seed := 0; seed < 12; seed++ {
				t.Run(fmt.Sprintf("%v/seed%d", fault, seed), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					sched := chaos.RandomSchedule(rng, fault, 48, maxCertify, stallFor)
					inj := chaos.New(sched)
					ctx, hooks := inj.Arm(context.Background())
					defer inj.Release()
					opts := core.ParallelOptions{Workers: 4, Ctx: ctx, Inject: hooks, Budget: stallBudget(fault)}
					if seed%2 == 0 {
						opts.Hubs = core.DefaultHubs(48)
					}
					res, err := core.GreedyGraphParallelOpts(g, 2, opts)
					checkOutcome(t, ref, res, err)
					schedules++
					if inj.Fired() {
						fired++
					}
					settleGoroutines(t, baseline)
				})
			}
		}
	})

	// Metric engine: all four classes, with GuardRows armed so bit flips
	// in the cached bound rows are detectable.
	t.Run("metric", func(t *testing.T) {
		rng := rand.New(rand.NewSource(43))
		m := randomPoints(rng, 36)
		ref, err := core.GreedyMetricFast(m, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		maxCertify := int64(36 * 35 / 2)
		for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultStall, chaos.FaultCorrupt} {
			for seed := 0; seed < 12; seed++ {
				t.Run(fmt.Sprintf("%v/seed%d", fault, seed), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					sched := chaos.RandomSchedule(rng, fault, 36, maxCertify, stallFor)
					inj := chaos.New(sched)
					ctx, hooks := inj.Arm(context.Background())
					defer inj.Release()
					opts := core.MetricParallelOptions{
						Workers: 4, Ctx: ctx, Inject: hooks,
						Budget: stallBudget(fault), GuardRows: true,
					}
					if seed%2 == 0 {
						opts.Hubs = core.DefaultHubs(36)
					}
					res, err := core.GreedyMetricFastParallelOpts(m, 1.8, opts)
					checkOutcome(t, ref, res, err)
					schedules++
					if inj.Fired() || inj.Corrupted() {
						fired++
					}
					settleGoroutines(t, baseline)
				})
			}
		}
	})

	// Fault-tolerant engine (serial scan, masked probes).
	t.Run("faulttolerant", func(t *testing.T) {
		rng := rand.New(rand.NewSource(47))
		m := randomPoints(rng, 16)
		ref, err := core.FaultTolerantGreedy(m, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		maxCertify := int64(16 * 15 / 2)
		for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultStall} {
			for seed := 0; seed < 8; seed++ {
				t.Run(fmt.Sprintf("%v/seed%d", fault, seed), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					sched := chaos.RandomSchedule(rng, fault, 16, maxCertify, stallFor)
					inj := chaos.New(sched)
					ctx, hooks := inj.Arm(context.Background())
					defer inj.Release()
					opts := core.FaultTolerantOptions{Ctx: ctx, Inject: hooks, Budget: stallBudget(fault)}
					if seed%2 == 0 {
						opts.Hubs = core.DefaultHubs(16)
					}
					res, err := core.FaultTolerantGreedyOpts(m, 2, 1, opts)
					checkOutcome(t, ref, res, err)
					schedules++
					if inj.Fired() {
						fired++
					}
					settleGoroutines(t, baseline)
				})
			}
		}
	})

	// Incremental engine: the fault may land in the initial build (the
	// constructor returns the typed error and no spanner) or in the
	// deferred replay (Flush aborts atomically); after the fault clears,
	// the retried flush must converge to the from-scratch union build.
	t.Run("incremental", func(t *testing.T) {
		rng := rand.New(rand.NewSource(53))
		pts := make([][]float64, 32)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		base, err := metric.NewEuclidean(pts[:28])
		if err != nil {
			t.Fatal(err)
		}
		union, err := metric.NewEuclidean(pts)
		if err != nil {
			t.Fatal(err)
		}
		refBase, err := core.GreedyMetricFast(base, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		refUnion, err := core.GreedyMetricFast(union, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		maxCertify := int64(32 * 31 / 2)
		for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultCorrupt} {
			for seed := 0; seed < 10; seed++ {
				t.Run(fmt.Sprintf("%v/seed%d", fault, seed), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					sched := chaos.RandomSchedule(rng, fault, 32, maxCertify, 0)
					inj := chaos.New(sched)
					ctx, hooks := inj.Arm(context.Background())
					defer inj.Release()
					opts := core.MetricParallelOptions{Workers: 3, Ctx: ctx, Inject: hooks, GuardRows: true}
					schedules++
					inc, err := core.NewIncrementalMetric(base, 1.8, opts)
					if err != nil {
						requireTyped(t, err)
						fired++
						settleGoroutines(t, baseline)
						return
					}
					if err := inc.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
						t.Fatalf("SetPolicy with nothing pending: %v", err)
					}
					if err := inc.Insert(union); err != nil {
						t.Fatalf("coalesced Insert replayed: %v", err)
					}
					res, ferr := inc.Result()
					if ferr == nil {
						checkOutcome(t, refUnion, res, nil)
						settleGoroutines(t, baseline)
						return
					}
					requireTyped(t, ferr)
					fired++
					// Atomicity: the maintained result must still be the
					// complete base spanner, and the insertions pending.
					checkOutcome(t, refBase, res, nil)
					if inc.Pending() != 4 {
						t.Fatalf("pending = %d after aborted flush, want 4", inc.Pending())
					}
					// Clear the fault (the injector fires at most once;
					// a cancelled context needs replacing) and retry: the
					// flush must now converge to the union build.
					inc.SetContext(context.Background())
					res, ferr = inc.Result()
					if ferr != nil {
						t.Fatalf("retried flush failed: %v", ferr)
					}
					checkOutcome(t, refUnion, res, nil)
					settleGoroutines(t, baseline)
				})
			}
		}
	})

	// Fully dynamic engine: mixed insert+delete batches, with half the
	// schedules aiming the fault at the backward-rebase window inside
	// Flush (Schedule.AtRebase) — a panic or cancellation mid-rebase, or
	// a flipped bit in a checkpoint snapshot. An aborted flush must
	// preserve the pre-flush spanner and pending tally exactly; corrupted
	// checkpoints must be detected by the restore digests (identical
	// output, never laundered state); and once the fault clears, the
	// retried flush must converge to the from-scratch build on the
	// survivors.
	t.Run("dynamic", func(t *testing.T) {
		rng := rand.New(rand.NewSource(59))
		pts := make([][]float64, 32)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		base, err := metric.NewEuclidean(pts[:28])
		if err != nil {
			t.Fatal(err)
		}
		union, err := metric.NewEuclidean(pts)
		if err != nil {
			t.Fatal(err)
		}
		deleted := map[int]bool{1: true, 5: true, 29: true}
		var surv [][]float64
		for i, p := range pts {
			if !deleted[i] {
				surv = append(surv, p)
			}
		}
		survMetric, err := metric.NewEuclidean(surv)
		if err != nil {
			t.Fatal(err)
		}
		refBase, err := core.GreedyMetricFast(base, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		refFinal, err := core.GreedyMetricFast(survMetric, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		maxCertify := int64(32 * 31 / 2)
		for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultCorrupt} {
			for seed := 0; seed < 8; seed++ {
				t.Run(fmt.Sprintf("%v/seed%d", fault, seed), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					sched := chaos.RandomSchedule(rng, fault, 32, maxCertify, 0)
					sched.AtRebase = seed%2 == 0
					inj := chaos.New(sched)
					ctx, hooks := inj.Arm(context.Background())
					defer inj.Release()
					opts := core.MetricParallelOptions{Workers: 3, Ctx: ctx, Inject: hooks, GuardRows: true}
					if seed%4 < 2 {
						opts.Hubs = 4
					}
					schedules++
					inc, err := core.NewIncrementalMetric(base, 1.8, opts)
					if err != nil {
						requireTyped(t, err)
						fired++
						settleGoroutines(t, baseline)
						return
					}
					if err := inc.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
						t.Fatalf("SetPolicy with nothing pending: %v", err)
					}
					if err := inc.Insert(union); err != nil {
						t.Fatalf("coalesced Insert replayed: %v", err)
					}
					if err := inc.Delete(1, 5, 29); err != nil {
						t.Fatalf("coalesced Delete replayed: %v", err)
					}
					res, ferr := inc.Result()
					if ferr == nil {
						checkOutcome(t, refFinal, res, nil)
						settleGoroutines(t, baseline)
						return
					}
					requireTyped(t, ferr)
					fired++
					// Atomicity: the maintained result must still be the
					// complete base spanner, with all 7 operations pending.
					checkOutcome(t, refBase, res, nil)
					if inc.Pending() != 7 {
						t.Fatalf("pending = %d after aborted flush, want 7", inc.Pending())
					}
					// Clear the fault and retry: the flush must converge to
					// the from-scratch build on the survivors.
					inc.SetContext(context.Background())
					res, ferr = inc.Result()
					if ferr != nil {
						t.Fatalf("retried flush failed: %v", ferr)
					}
					checkOutcome(t, refFinal, res, nil)
					settleGoroutines(t, baseline)
				})
			}
		}
	})

	if schedules < minSchedules {
		t.Fatalf("property suite ran %d schedules, below the %d floor", schedules, minSchedules)
	}
	t.Logf("chaos: %d schedules, %d faults fired", schedules, fired)
}
