#!/usr/bin/env bash
# serve_smoke.sh — end-to-end daemon smoke test, mirroring the CI step:
# seed-and-serve a fresh spannerd, poll /healthz until live, run a query
# and a durable mutation, SIGTERM it and require a clean drain, then
# restart on the same state directory and require the recovered digest to
# equal the digest served at shutdown. Uses only curl + grep so it runs
# anywhere the repo builds.
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:17641
dir=$(mktemp -d)
log=$(mktemp)
bin=$(mktemp -u)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$dir" "$log" "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/spannerd

wait_live() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve_smoke: daemon died before becoming live:" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "serve_smoke: daemon never became live:" >&2
  cat "$log" >&2
  return 1
}

digest() {
  curl -fsS "http://$addr/v1/stats" | grep -o '"digest":"[0-9a-f]*"'
}

echo "== seed + serve"
"$bin" -addr "$addr" -dir "$dir" -n 200 -seed 7 >"$log" 2>&1 &
pid=$!
wait_live

echo "== query"
curl -fsS "http://$addr/v1/distance?u=0&v=1" | grep -q '"distance"'
curl -fsS "http://$addr/v1/path?u=0&v=5" | grep -q '"path"'

echo "== mutate"
curl -fsS -X POST --data '{"op":"insert-points","points":[[1000,1000]]}' \
  "http://$addr/v1/mutate" | grep -q '"digest"'
before=$(digest)
[ -n "$before" ]

echo "== drain"
kill -TERM "$pid"
wait "$pid"
pid=""
grep -q "drained cleanly" "$log" || {
  echo "serve_smoke: no clean-drain line in daemon log:" >&2
  cat "$log" >&2
  exit 1
}

echo "== restart + digest compare"
"$bin" -addr "$addr" -dir "$dir" >"$log" 2>&1 &
pid=$!
wait_live
after=$(digest)
if [ "$before" != "$after" ]; then
  echo "serve_smoke: digest changed across restart: $before -> $after" >&2
  exit 1
fi
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve_smoke: ok ($before survives restart)"
