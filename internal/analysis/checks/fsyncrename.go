package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

// Fsyncrename enforces the persistence layer's two crash-safety
// disciplines, both stated in internal/persist's docs:
//
// Atomic replace: every os.Rename must be dominated by a Sync on the
// temp file (the rename may not publish bytes that are still only in the
// page cache) and followed by a sync of the containing directory (the
// rename itself must survive a crash).
//
// Log-before-apply: every call to applyOp must be dominated by an
// appendRecord in the same function — the WAL record is fsynced before
// the in-memory state changes, so a crash between the two replays
// cleanly. Open's recovery path replays records that are already durable
// and carries an ignore annotation.
//
// Domination here is positional within one function body: an event
// earlier in source order. That is deliberately cruder than a real CFG —
// conditional sync gates like NoSync remain visible to the analyzer —
// but it catches the real failure mode (the call simply missing) without
// false positives on the straight-line persist code.
var Fsyncrename = &framework.Analyzer{
	Name:  "fsyncrename",
	Doc:   "os.Rename needs temp-file Sync before and directory sync after; WAL applyOp needs a preceding appendRecord",
	Scope: []string{"internal/persist"},
	Run:   runFsyncrename,
}

func runFsyncrename(pass *framework.Pass) error {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		eachFunc(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkRenameDiscipline(pass, info, body)
		})
	}
	return nil
}

// fileEvent is one discipline-relevant call, in source order.
type fileEvent struct {
	pos  token.Pos
	kind int
}

const (
	evSync = iota
	evRename
	evDirSync
	evAppend
	evApply
)

func checkRenameDiscipline(pass *framework.Pass, info *types.Info, body *ast.BlockStmt) {
	var events []fileEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pkgCall(info, call, "os", "Rename"):
			events = append(events, fileEvent{call.Pos(), evRename})
		case isFileSync(info, call):
			events = append(events, fileEvent{call.Pos(), evSync})
		case isDirSync(info, call):
			events = append(events, fileEvent{call.Pos(), evDirSync})
		case calleeNamed(call, "appendRecord"):
			events = append(events, fileEvent{call.Pos(), evAppend})
		case calleeNamed(call, "applyOp"):
			events = append(events, fileEvent{call.Pos(), evApply})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for i, e := range events {
		switch e.kind {
		case evRename:
			if !hasKind(events[:i], evSync) {
				pass.Reportf(e.pos, "os.Rename without a preceding Sync on the temp file: renaming unsynced bytes can publish a torn file after a crash")
			}
			if !hasKind(events[i+1:], evDirSync) {
				pass.Reportf(e.pos, "os.Rename without a following directory sync: the rename itself is not durable until the directory entry is synced")
			}
		case evApply:
			if !hasKind(events[:i], evAppend) {
				pass.Reportf(e.pos, "applyOp without a preceding appendRecord: the WAL must be appended and fsynced before state changes (log-before-apply)")
			}
		}
	}
}

func hasKind(events []fileEvent, kind int) bool {
	for _, e := range events {
		if e.kind == kind {
			return true
		}
	}
	return false
}

// isFileSync recognizes f.Sync() where f is an *os.File.
func isFileSync(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// isDirSync recognizes a call to a function named syncDir — the repo's
// directory-durability helper (any receiver or package-level form).
func isDirSync(info *types.Info, call *ast.CallExpr) bool {
	return calleeNamed(call, "syncDir")
}

// calleeNamed reports whether the call's function is named name, whether
// a method, a package function, or a closure variable.
func calleeNamed(call *ast.CallExpr, name string) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == name
	case *ast.SelectorExpr:
		return fun.Sel.Name == name
	}
	return false
}
