package graph

import (
	"repro/internal/pq"
)

// ShortestPaths holds the result of a single-source shortest-path run.
type ShortestPaths struct {
	Source int
	// Dist[v] is the shortest-path distance from Source to v (Inf if
	// unreachable).
	Dist []float64
	// Parent[v] is the predecessor of v on a shortest path from Source, or
	// -1 for the source and unreachable vertices.
	Parent []int32
}

// PathTo reconstructs the shortest path from the source to v as a vertex
// sequence, or nil if v is unreachable.
func (sp *ShortestPaths) PathTo(v int) []int {
	if sp.Dist[v] == Inf {
		return nil
	}
	var rev []int
	for u := v; u != -1; u = int(sp.Parent[u]) {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Dijkstra computes single-source shortest paths from src using an indexed
// binary heap. Time O((m + n) log n).
func (g *Graph) Dijkstra(src int) *ShortestPaths {
	return g.dijkstra(src, -1, Inf, nil)
}

// DijkstraTo computes the shortest-path distance from src to dst, stopping
// as soon as dst is settled. Returns Inf if dst is unreachable.
func (g *Graph) DijkstraTo(src, dst int) float64 {
	sp := g.dijkstra(src, dst, Inf, nil)
	return sp.Dist[dst]
}

// DijkstraBounded computes shortest paths from src but abandons any vertex
// whose tentative distance exceeds limit. Distances in the result that
// exceed limit are unreliable and reported as Inf. This is the workhorse of
// the greedy spanner: to decide whether delta_H(u, v) > t*w(u, v) we run a
// bounded search with limit t*w and never explore further than necessary.
func (g *Graph) DijkstraBounded(src int, limit float64) *ShortestPaths {
	return g.dijkstra(src, -1, limit, nil)
}

// DistanceWithin reports the shortest-path distance from src to dst if it is
// at most limit, and (Inf, false) otherwise. It settles only vertices within
// distance limit of src, so the cost scales with the size of that ball.
func (g *Graph) DistanceWithin(src, dst int, limit float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	sp := g.dijkstra(src, dst, limit, nil)
	d := sp.Dist[dst]
	if d <= limit {
		return d, true
	}
	return Inf, false
}

// dijkstraScratch holds reusable buffers for repeated Dijkstra runs over the
// same graph, avoiding per-call allocation in the greedy main loop.
type dijkstraScratch struct {
	heap    *pq.IndexedMinHeap
	dist    []float64
	parent  []int32
	touched []int32
	// stop, when non-nil, is polled every stopMask+1 heap pops; a true
	// return abandons the search (see Searcher.SetStop for the contract).
	stop func() bool
}

// stopMask throttles the cooperative cancellation poll of every search
// loop: the predicate installed by Searcher.SetStop is consulted once per
// stopMask+1 heap pops, so an uncancelled search pays one nil check per
// pop and a cancelled one is abandoned within a few thousand rounds.
const stopMask = 4095

func newDijkstraScratch(n int) *dijkstraScratch {
	s := &dijkstraScratch{
		heap:   pq.NewIndexedMinHeap(n),
		dist:   make([]float64, n),
		parent: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		s.dist[i] = Inf
		s.parent[i] = -1
	}
	return s
}

// reset restores the touched entries to their pristine state.
func (s *dijkstraScratch) reset() {
	for _, v := range s.touched {
		s.dist[v] = Inf
		s.parent[v] = -1
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

// dijkstra runs the search from src. If dst >= 0 the search stops once dst
// is settled. Vertices with tentative distance > limit are not enqueued.
// If scratch is non-nil its buffers are used (and left dirty; caller resets).
func (g *Graph) dijkstra(src, dst int, limit float64, scratch *dijkstraScratch) *ShortestPaths {
	n := g.N()
	var s *dijkstraScratch
	if scratch != nil {
		s = scratch
	} else {
		s = newDijkstraScratch(n)
	}
	s.dist[src] = 0
	s.touched = append(s.touched, int32(src))
	s.heap.Push(src, 0)
	pops := 0
	for s.heap.Len() > 0 {
		u, du := s.heap.Pop()
		if u == dst {
			break
		}
		if s.stop != nil {
			if pops++; pops&stopMask == 0 && s.stop() {
				break
			}
		}
		for _, h := range g.adj[u] {
			v := int(h.to)
			nd := du + h.w
			if nd > limit {
				continue
			}
			if nd < s.dist[v] {
				if s.dist[v] == Inf {
					s.touched = append(s.touched, int32(v))
				}
				s.dist[v] = nd
				s.parent[v] = int32(u)
				s.heap.Push(v, nd)
			}
		}
	}
	// With scratch the caller owns the buffers and must reset; either way
	// the result is a view, not a copy.
	return &ShortestPaths{Source: src, Dist: s.dist, Parent: s.parent}
}

// dijkstraAvoiding is dijkstra on g minus one occurrence of edge avoid.
// The first matching half-edge relaxed in each direction is skipped (each
// adjacency list is scanned at most once per query, since the indexed
// heap settles every vertex once), which equals removing a single
// occurrence of the undirected edge: further parallel copies with the
// same endpoints and weight still relax. The relaxation loop deliberately
// mirrors dijkstra above rather than adding an avoid branch to it — that
// loop is the hot path of every greedy query — so a change to either loop
// must be reflected in the other (TestDistanceWithinAvoidingMatchesWithoutEdge
// cross-checks them). The caller owns the scratch and must reset it.
func (g *Graph) dijkstraAvoiding(src, dst int, limit float64, avoid Edge, s *dijkstraScratch) {
	avoid = avoid.Canonical()
	skippedFwd, skippedRev := false, false
	s.dist[src] = 0
	s.touched = append(s.touched, int32(src))
	s.heap.Push(src, 0)
	pops := 0
	for s.heap.Len() > 0 {
		u, du := s.heap.Pop()
		if u == dst {
			break
		}
		if s.stop != nil {
			if pops++; pops&stopMask == 0 && s.stop() {
				break
			}
		}
		for _, h := range g.adj[u] {
			v := int(h.to)
			if h.w == avoid.W {
				if !skippedFwd && u == avoid.U && v == avoid.V {
					skippedFwd = true
					continue
				}
				if !skippedRev && u == avoid.V && v == avoid.U {
					skippedRev = true
					continue
				}
			}
			nd := du + h.w
			if nd > limit {
				continue
			}
			if nd < s.dist[v] {
				if s.dist[v] == Inf {
					s.touched = append(s.touched, int32(v))
				}
				s.dist[v] = nd
				s.parent[v] = int32(u)
				s.heap.Push(v, nd)
			}
		}
	}
}

// dijkstraMasked is dijkstra on g minus every edge incident to a masked
// vertex (vertex failure): a relaxation into a masked vertex is skipped, so
// masked vertices are never enqueued and act as if isolated, which equals
// removing all their incident edges without materializing the reduced
// graph. A masked src keeps dist[src] = 0 but relaxes nothing, matching a
// copy that still contains the (isolated) vertex. Like dijkstraAvoiding,
// the relaxation loop deliberately mirrors dijkstra above instead of
// adding a mask branch to the hot loop — a change to either loop must be
// reflected in the other (TestDistanceWithinMaskedMatchesMaskedCopy
// cross-checks them). The caller owns both the scratch and the mask and
// must reset them.
func (g *Graph) dijkstraMasked(src, dst int, limit float64, masked []bool, s *dijkstraScratch) {
	s.dist[src] = 0
	s.touched = append(s.touched, int32(src))
	if masked[src] {
		return
	}
	s.heap.Push(src, 0)
	pops := 0
	for s.heap.Len() > 0 {
		u, du := s.heap.Pop()
		if u == dst {
			break
		}
		if s.stop != nil {
			if pops++; pops&stopMask == 0 && s.stop() {
				break
			}
		}
		for _, h := range g.adj[u] {
			v := int(h.to)
			if masked[v] {
				continue
			}
			nd := du + h.w
			if nd > limit {
				continue
			}
			if nd < s.dist[v] {
				if s.dist[v] == Inf {
					s.touched = append(s.touched, int32(v))
				}
				s.dist[v] = nd
				s.parent[v] = int32(u)
				s.heap.Push(v, nd)
			}
		}
	}
}

// APSP computes all-pairs shortest-path distances by running Dijkstra from
// every vertex. The result is an n x n matrix; row i holds distances from i.
// Time O(n (m + n) log n); intended for the metric-space constructions where
// n is moderate.
func (g *Graph) APSP() [][]float64 {
	n := g.N()
	out := make([][]float64, n)
	scratch := newDijkstraScratch(n)
	for i := 0; i < n; i++ {
		g.dijkstra(i, -1, Inf, scratch)
		row := make([]float64, n)
		copy(row, scratch.dist)
		out[i] = row
		scratch.reset()
	}
	return out
}

// Eccentricity returns the maximum finite shortest-path distance from v, and
// whether all vertices are reachable from v.
func (g *Graph) Eccentricity(v int) (float64, bool) {
	sp := g.Dijkstra(v)
	ecc, all := 0.0, true
	for _, d := range sp.Dist {
		if d == Inf {
			all = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, all
}
