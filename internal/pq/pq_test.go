package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedMinHeapBasic(t *testing.T) {
	h := NewIndexedMinHeap(10)
	if h.Len() != 0 {
		t.Fatalf("new heap Len = %d, want 0", h.Len())
	}
	h.Push(3, 5.0)
	h.Push(7, 1.0)
	h.Push(2, 3.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if !h.Contains(7) || h.Contains(4) {
		t.Fatal("Contains wrong")
	}
	v, k := h.Pop()
	if v != 7 || k != 1.0 {
		t.Fatalf("Pop = (%d, %v), want (7, 1)", v, k)
	}
	v, k = h.Pop()
	if v != 2 || k != 3.0 {
		t.Fatalf("Pop = (%d, %v), want (2, 3)", v, k)
	}
	v, k = h.Pop()
	if v != 3 || k != 5.0 {
		t.Fatalf("Pop = (%d, %v), want (3, 5)", v, k)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestIndexedMinHeapDecreaseKey(t *testing.T) {
	h := NewIndexedMinHeap(5)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if got := h.Key(2); got != 5 {
		t.Fatalf("Key(2) = %v, want 5", got)
	}
	v, _ := h.Pop()
	if v != 2 {
		t.Fatalf("Pop = %d, want 2", v)
	}
	// Increasing key must be a no-op.
	h.DecreaseKey(1, 100)
	if got := h.Key(1); got != 20 {
		t.Fatalf("Key(1) = %v after bogus decrease, want 20", got)
	}
	// DecreaseKey on an absent item must be a no-op.
	h.DecreaseKey(4, 1)
	if h.Contains(4) {
		t.Fatal("DecreaseKey inserted absent item")
	}
}

func TestIndexedMinHeapPushDuplicate(t *testing.T) {
	h := NewIndexedMinHeap(3)
	h.Push(1, 10)
	h.Push(1, 4) // acts as DecreaseKey
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	if h.Key(1) != 4 {
		t.Fatalf("Key = %v, want 4", h.Key(1))
	}
	h.Push(1, 99) // larger key: no-op
	if h.Key(1) != 4 {
		t.Fatalf("Key = %v after larger push, want 4", h.Key(1))
	}
}

func TestIndexedMinHeapReset(t *testing.T) {
	h := NewIndexedMinHeap(4)
	h.Push(0, 1)
	h.Push(3, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(3) {
		t.Fatal("Reset did not clear the heap")
	}
	h.Push(3, 7)
	if v, k := h.Pop(); v != 3 || k != 7 {
		t.Fatalf("Pop after Reset = (%d,%v), want (3,7)", v, k)
	}
}

// heapSortVia drains the heap and checks the output is sorted and a
// permutation of the input keys.
func heapSortVia(t *testing.T, push func(int, float64), pop func() (int, float64), length func() int, keys []float64) {
	t.Helper()
	for i, k := range keys {
		push(i, k)
	}
	got := make([]float64, 0, len(keys))
	for length() > 0 {
		_, k := pop()
		got = append(got, k)
	}
	if len(got) != len(keys) {
		t.Fatalf("drained %d items, want %d", len(got), len(keys))
	}
	want := append([]float64(nil), keys...)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order wrong at %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIndexedMinHeapSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
		}
		h := NewIndexedMinHeap(n)
		heapSortVia(t, h.Push, h.Pop, h.Len, keys)
	}
}

func TestPairingHeapSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
		}
		h := NewPairingHeap(n)
		heapSortVia(t, h.Push, h.Pop, h.Len, keys)
	}
}

func TestPairingHeapDecreaseKey(t *testing.T) {
	h := NewPairingHeap(6)
	for i := 0; i < 6; i++ {
		h.Push(i, float64(10+i))
	}
	h.DecreaseKey(5, 1)
	h.DecreaseKey(3, 2)
	v, k := h.Pop()
	if v != 5 || k != 1 {
		t.Fatalf("Pop = (%d,%v), want (5,1)", v, k)
	}
	v, k = h.Pop()
	if v != 3 || k != 2 {
		t.Fatalf("Pop = (%d,%v), want (3,2)", v, k)
	}
	v, _ = h.Pop()
	if v != 0 {
		t.Fatalf("Pop = %d, want 0", v)
	}
}

func TestPairingHeapPushDuplicateAndAbsentDecrease(t *testing.T) {
	h := NewPairingHeap(4)
	h.Push(2, 9)
	h.Push(2, 3)
	if h.Len() != 1 || h.Key(2) != 3 {
		t.Fatalf("duplicate push: Len=%d Key=%v, want 1, 3", h.Len(), h.Key(2))
	}
	h.DecreaseKey(1, 0.5)
	if h.Contains(1) {
		t.Fatal("DecreaseKey inserted absent item")
	}
}

// TestHeapsAgree cross-checks the two heap implementations under a random
// mixed workload of pushes, decrease-keys, and pops.
func TestHeapsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 64
	a := NewIndexedMinHeap(n)
	b := NewPairingHeap(n)
	// Continuous random keys make ties a measure-zero event, so both heaps
	// must pop the same (item, key) pair at every step.
	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || a.Len() == 0:
			v := rng.Intn(n)
			k := rng.Float64() * 1000
			if !a.Contains(v) {
				a.Push(v, k)
				b.Push(v, k)
			}
		case op == 1:
			v := rng.Intn(n)
			if a.Contains(v) {
				k := a.Key(v) - rng.Float64()*10
				a.DecreaseKey(v, k)
				b.DecreaseKey(v, k)
			}
		default:
			va, ka := a.Pop()
			vb, kb := b.Pop()
			if ka != kb || va != vb {
				t.Fatalf("step %d: popped (%d,%v) vs (%d,%v)", step, va, ka, vb, kb)
			}
		}
		if a.Len() != b.Len() {
			t.Fatalf("step %d: Len mismatch %d vs %d", step, a.Len(), b.Len())
		}
	}
}

func TestIndexedMinHeapQuickProperty(t *testing.T) {
	// Property: draining the heap yields keys in non-decreasing order.
	f := func(keys []float64) bool {
		if len(keys) == 0 {
			return true
		}
		if len(keys) > 512 {
			keys = keys[:512]
		}
		for i, k := range keys {
			if k != k { // NaN keys are out of contract
				keys[i] = 0
			}
		}
		h := NewIndexedMinHeap(len(keys))
		for i, k := range keys {
			h.Push(i, k)
		}
		prev := math.Inf(-1)
		for h.Len() > 0 {
			_, k := h.Pop()
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
