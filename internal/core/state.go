package core

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/graph"
	"repro/internal/metric"
)

// This file is the state-transfer boundary of the maintained spanner: it
// exports the full IncrementalSpanner into a flat, validated SpannerState
// and imports one back, so internal/persist can serialize maintained
// spanners without reaching into engine internals. The durability
// invariant: an imported spanner is update-for-update bit-identical to the
// exported one — same result digest, same accepted sequence after any
// further Insert/Delete stream — because everything the greedy replay's
// decisions depend on round-trips exactly: the stable-id space (tie order),
// the accepted edge sequence (the preserved prefix), the candidate weight
// histogram (bucket layout and skip accounting), epoch-stamped bound rows
// (cache validity), and the hub set with its distance arrays. Checkpoint
// rings and scratch state are deliberately NOT exported: they are
// output-invariant accelerators, rebuilt empty on import.

// ResultDigest is the order-sensitive FNV-1a digest of a Result used by
// the trace, persistence, and crash-recovery suites to compare spanners
// for bit-identity: it covers N, EdgesExamined, the Weight bits, and every
// edge's endpoints and weight bits in acceptance order.
func ResultDigest(res *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(res.N))
	put(uint64(res.EdgesExamined))
	put(math.Float64bits(res.Weight))
	for _, e := range res.Edges {
		put(uint64(e.U))
		put(uint64(e.V))
		put(math.Float64bits(e.W))
	}
	return h.Sum64()
}

// MetricKind identifies how a metric-mode SpannerState stores its point
// data.
type MetricKind uint8

const (
	// MetricNone marks a graph-mode state (no metric payload).
	MetricNone MetricKind = iota
	// MetricEuclidean stores the live points' coordinates; distances are
	// recomputed on import by the same L2 evaluation and are bit-identical.
	MetricEuclidean
	// MetricMatrix stores the live points' full pairwise distance matrix
	// (the fallback for any Metric implementation, +Inf entries included).
	MetricMatrix
)

// SpannerState is the flattened, serializable form of an
// IncrementalSpanner with no pending operations. All ids in Edges, Live,
// BoundRows, and Hubs are in the engine's internal space: stable ids in
// metric mode (tombstoned ids are the gaps in Live), dense vertex ids in
// graph mode.
type SpannerState struct {
	T         float64
	GraphMode bool
	Policy    IncrementalPolicy

	// Metric mode: the stable-id space and the live points' metric data.
	// Cap is the stable-id capacity (live plus tombstoned ids); Live lists
	// the surviving stable ids in increasing order; the i-th live id is
	// caller-facing dense id i.
	Cap        int
	Live       []int
	MetricKind MetricKind
	Dim        int       // MetricEuclidean: ambient dimension
	Coords     []float64 // MetricEuclidean: len(Live)*Dim, point-major, live order
	Matrix     []float64 // MetricMatrix: len(Live)^2, row-major, live order

	// Graph mode: the maintained input graph.
	GraphN     int
	GraphEdges []graph.Edge

	// The maintained result in the internal id space: the accepted edge
	// sequence in scan order, its ordered weight sum, and the examined-
	// candidate count.
	Edges         []graph.Edge
	Weight        float64
	EdgesExamined int

	// The candidate set's maintained weight histogram (metric mode only;
	// graph mode rebuilds it from GraphEdges). Sparse: HistCount[i]
	// candidates have binary exponent HistExp[i]-expOffset.
	HistExp   []int32
	HistCount []int64
	HistZeros int64
	HistInfs  int64

	// Sparse bfloat16 bound rows with proof epochs (metric mode). A nil
	// row was never materialized; a present row has length Cap and
	// BoundEpochs[u] is the accepted-edge prefix it was proven on.
	BoundRows   [][]uint16
	BoundEpochs []int

	// Hub oracle state (empty Hubs = oracle disabled): the hub vertex set,
	// each hub's exact distance array over the maintained spanner (length
	// Cap in metric mode, GraphN in graph mode), the accepted-edge epoch
	// the arrays are synced to (always len(Edges) at export, because
	// export syncs first), and the lifetime deletion-reselection count.
	Hubs           []int
	HubRows        [][]float64
	HubEpoch       int
	HubsReselected int
}

// GraphMode reports whether the spanner maintains a graph input
// (InsertEdges/DeleteEdges) rather than a metric one (Insert/Delete).
func (s *IncrementalSpanner) GraphMode() bool { return s.g != nil }

// LiveN reports the current number of live elements: surviving points in
// metric mode, vertices in graph mode. Unlike Result it never flushes.
func (s *IncrementalSpanner) LiveN() int {
	if s.g != nil {
		return s.g.N()
	}
	return len(s.dyn.live)
}

// Stretch reports the maintained spanner's stretch factor t.
func (s *IncrementalSpanner) Stretch() float64 { return s.t }

// Policy reports the installed replay policy.
func (s *IncrementalSpanner) Policy() IncrementalPolicy { return s.policy }

// ExportState flushes any pending updates and returns the spanner's full
// maintained state in serializable form. The returned state shares no
// mutable storage with the spanner except the metric coordinates, which
// are copied; it remains valid after further updates. A flush error
// aborts the export with the pre-flush state preserved (see Flush).
func (s *IncrementalSpanner) ExportState() (*SpannerState, error) {
	if err := s.Flush(); err != nil {
		return nil, fmt.Errorf("core: export aborted: %w", err)
	}
	st := &SpannerState{
		T:             s.t,
		GraphMode:     s.g != nil,
		Policy:        s.policy,
		Weight:        s.res.Weight,
		EdgesExamined: s.res.EdgesExamined,
	}
	st.Edges = append([]graph.Edge(nil), s.res.Edges...)
	if s.oracle != nil {
		// Quiesce the oracle so the exported arrays are exact on the full
		// maintained spanner and HubEpoch == len(Edges).
		s.oracle.sync()
		st.Hubs = append([]int(nil), s.oracle.hubs...)
		st.HubRows = make([][]float64, len(s.oracle.rows))
		for i, row := range s.oracle.rows {
			st.HubRows[i] = append([]float64(nil), row...)
		}
		st.HubEpoch = s.oracle.epoch
		st.HubsReselected = s.oracle.reselected
	}
	if s.g != nil {
		st.GraphN = s.g.N()
		st.GraphEdges = s.g.EdgesCopy()
		return st, nil
	}
	st.Cap = s.dyn.N()
	st.Live = append([]int(nil), s.dyn.live...)
	ln := len(st.Live)
	if eu, ok := s.dyn.latest.(*metric.Euclidean); ok && ln > 0 {
		st.MetricKind = MetricEuclidean
		st.Dim = eu.Dim()
		st.Coords = make([]float64, 0, ln*st.Dim)
		for _, sid := range st.Live {
			st.Coords = append(st.Coords, eu.Point(s.dyn.rank[sid])...)
		}
	} else {
		st.MetricKind = MetricMatrix
		st.Matrix = make([]float64, ln*ln)
		for i := 0; i < ln; i++ {
			for j := i + 1; j < ln; j++ {
				w := s.dyn.Dist(st.Live[i], st.Live[j])
				st.Matrix[i*ln+j] = w
				st.Matrix[j*ln+i] = w
			}
		}
	}
	for e, k := range s.counts.exp {
		if k != 0 {
			st.HistExp = append(st.HistExp, int32(e))
			st.HistCount = append(st.HistCount, int64(k))
		}
	}
	st.HistZeros = int64(s.counts.zeros)
	st.HistInfs = int64(s.counts.infs)
	st.BoundRows = make([][]uint16, len(s.bound.rows))
	st.BoundEpochs = make([]int, len(s.bound.epochs))
	copy(st.BoundEpochs, s.bound.epochs)
	for u, row := range s.bound.rows {
		if row != nil {
			st.BoundRows[u] = append([]uint16(nil), row...)
		}
	}
	return st, nil
}

// corrupt builds the import layer's validation error; every path wraps
// ErrCorruptState so callers can test with errors.Is.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("core: import: "+format+": %w", append(args, ErrCorruptState)...)
}

// validateEdges checks an accepted-edge sequence: endpoints in range and
// alive, canonical orientation, weights in [0, +Inf), and scan order
// (non-decreasing in graph.EdgeLess, the order Flush's prefix search
// assumes).
func validateEdges(edges []graph.Edge, n int, dead []bool) error {
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return corrupt("accepted edge %d endpoints (%d, %d) out of range [0, %d)", i, e.U, e.V, n)
		}
		if e.U >= e.V {
			return corrupt("accepted edge %d (%d, %d) not in canonical order", i, e.U, e.V)
		}
		if dead != nil && (dead[e.U] || dead[e.V]) {
			return corrupt("accepted edge %d (%d, %d) touches a tombstoned id", i, e.U, e.V)
		}
		if !(e.W > 0) || math.IsInf(e.W, 1) {
			// Accepted weights are strictly positive and finite: a +Inf
			// candidate always fails its distance test, and a zero-weight
			// one is rejected by the graph layer the scan accepts into.
			return corrupt("accepted edge %d has weight %v outside (0, +Inf)", i, e.W)
		}
		if i > 0 && graph.EdgeLess(e, edges[i-1]) {
			return corrupt("accepted edge %d out of scan order", i)
		}
	}
	return nil
}

// ImportIncremental reconstructs a maintained spanner from an exported
// state. The metric-mode engine options come from mopts and the
// graph-mode ones from gopts (whichever matches st.GraphMode applies;
// Source and Materialize are rejected as in the constructors, and
// opts.Hubs is ignored — the hub set, like everything else, comes from the
// state). The imported spanner is update-for-update bit-identical to the
// exported one. Validation is structural and O(state size): every index,
// length, epoch, and histogram total is checked and a violation returns an
// error wrapping ErrCorruptState; it does not re-verify distances against
// the metric payload (the persistence layer's digests own byte integrity).
func ImportIncremental(st *SpannerState, mopts MetricParallelOptions, gopts ParallelOptions) (*IncrementalSpanner, error) {
	if st == nil {
		return nil, corrupt("nil state")
	}
	if !validStretch(st.T) {
		return nil, errInvalidStretch(st.T)
	}
	if mopts.Source != nil || mopts.Materialize || gopts.Source != nil || gopts.Materialize {
		return nil, errSupplyOption
	}
	if st.GraphMode {
		return importGraph(st, gopts)
	}
	return importMetric(st, mopts)
}

func importGraph(st *SpannerState, opts ParallelOptions) (*IncrementalSpanner, error) {
	if st.GraphN < 0 {
		return nil, corrupt("negative vertex count %d", st.GraphN)
	}
	g := graph.New(st.GraphN)
	for i, e := range st.GraphEdges {
		if err := g.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, corrupt("graph edge %d: %v", i, err)
		}
	}
	if err := validateEdges(st.Edges, st.GraphN, nil); err != nil {
		return nil, err
	}
	s := &IncrementalSpanner{t: st.T, g: g, gopts: opts, policy: st.Policy}
	for _, e := range s.g.Edges() {
		s.counts.add(e.W)
	}
	if err := s.importResult(st, st.GraphN); err != nil {
		return nil, err
	}
	if err := s.importOracle(st, st.GraphN); err != nil {
		return nil, err
	}
	return s, nil
}

func importMetric(st *SpannerState, opts MetricParallelOptions) (*IncrementalSpanner, error) {
	ln := len(st.Live)
	if st.Cap < 0 || ln > st.Cap {
		return nil, corrupt("%d live ids exceed stable capacity %d", ln, st.Cap)
	}
	for i, sid := range st.Live {
		if sid < 0 || sid >= st.Cap {
			return nil, corrupt("live id %d out of range [0, %d)", sid, st.Cap)
		}
		if i > 0 && sid <= st.Live[i-1] {
			return nil, corrupt("live ids not strictly increasing at %d", i)
		}
	}
	var m metric.Metric
	switch st.MetricKind {
	case MetricEuclidean:
		if st.Dim <= 0 || len(st.Coords) != ln*st.Dim {
			return nil, corrupt("%d coordinates, want %d points x dim %d", len(st.Coords), ln, st.Dim)
		}
		pts := make([][]float64, ln)
		for i := range pts {
			pts[i] = st.Coords[i*st.Dim : (i+1)*st.Dim]
		}
		eu, err := metric.NewEuclidean(pts)
		if err != nil {
			return nil, corrupt("points: %v", err)
		}
		m = eu
	case MetricMatrix:
		fm, err := metric.NewFlatMatrix(ln, st.Matrix)
		if err != nil {
			return nil, corrupt("matrix: %v", err)
		}
		m = fm
	default:
		return nil, corrupt("metric payload kind %d unknown", st.MetricKind)
	}
	// Rebuild the stable-id view: the imported metric holds the survivors
	// in live order, so latest index j maps to stable id Live[j].
	d := &dynMetric{
		latest:   m,
		rank:     make([]int, st.Cap),
		live:     append([]int(nil), st.Live...),
		stableOf: make([]int, ln),
		dead:     make([]bool, st.Cap),
		enum:     metricEnumeratorFor(m),
	}
	for sid := range d.rank {
		d.rank[sid] = -1
		d.dead[sid] = true
	}
	for j, sid := range d.live {
		d.rank[sid] = j
		d.stableOf[j] = sid
		d.dead[sid] = false
	}
	if err := validateEdges(st.Edges, st.Cap, d.dead); err != nil {
		return nil, err
	}
	s := &IncrementalSpanner{t: st.T, dyn: d, mopts: opts, policy: st.Policy}
	s.anyDeleted = ln < st.Cap
	// The maintained histogram must tally exactly the live candidate
	// pairs; a drifted total would desynchronize the resumed supply's
	// bucket accounting (and EdgesExamined) from the candidate set.
	if len(st.HistExp) != len(st.HistCount) || st.HistZeros < 0 || st.HistInfs < 0 {
		return nil, corrupt("histogram shape mismatch")
	}
	var total int64
	for i, e := range st.HistExp {
		c := st.HistCount[i]
		if int(e) < 0 || int(e) >= len(s.counts.exp) || c <= 0 {
			return nil, corrupt("histogram bucket %d (exp %d, count %d) invalid", i, e, c)
		}
		s.counts.exp[e] = int(c)
		total += c
	}
	s.counts.zeros = int(st.HistZeros)
	s.counts.infs = int(st.HistInfs)
	total += st.HistZeros + st.HistInfs
	if want := int64(ln) * int64(ln-1) / 2; total != want {
		return nil, corrupt("histogram tallies %d candidates, live set has %d", total, want)
	}
	if err := s.importResult(st, st.Cap); err != nil {
		return nil, err
	}
	if err := s.importBounds(st); err != nil {
		return nil, err
	}
	if err := s.importOracle(st, st.Cap); err != nil {
		return nil, err
	}
	s.resView = s.remapResult(s.res)
	return s, nil
}

// importResult installs the maintained result, re-accumulating the weight
// sum in acceptance order (the exact float64 additions a scan performs)
// and cross-checking it against the stored sum.
func (s *IncrementalSpanner) importResult(st *SpannerState, n int) error {
	res := &Result{N: n, Stretch: st.T, EdgesExamined: st.EdgesExamined}
	if st.EdgesExamined < 0 {
		return corrupt("negative examined count %d", st.EdgesExamined)
	}
	res.Edges = append([]graph.Edge(nil), st.Edges...)
	for _, e := range res.Edges {
		res.Weight += e.W
	}
	if math.Float64bits(res.Weight) != math.Float64bits(st.Weight) {
		return corrupt("weight sum %v does not reproduce stored %v", res.Weight, st.Weight)
	}
	s.res = res
	s.resView = res
	return nil
}

// importBounds installs the sparse bound store (metric mode): rows carry
// their exported epochs, checkpointing re-arms empty, and guard digests
// are recomputed fresh when the options request them.
func (s *IncrementalSpanner) importBounds(st *SpannerState) error {
	n := st.Cap
	if len(st.BoundRows) != n || len(st.BoundEpochs) != n {
		return corrupt("bound store has %d rows and %d epochs, want %d", len(st.BoundRows), len(st.BoundEpochs), n)
	}
	b := newBoundStore(n)
	b.slack = boundRowSlack(n)
	for u, row := range st.BoundRows {
		ep := st.BoundEpochs[u]
		if row == nil {
			if ep != 0 {
				return corrupt("bound row %d absent but epoch %d nonzero", u, ep)
			}
			continue
		}
		if len(row) != n {
			return corrupt("bound row %d has %d entries, want %d", u, len(row), n)
		}
		if ep < 0 || ep > len(st.Edges) {
			return corrupt("bound row %d epoch %d outside [0, %d]", u, ep, len(st.Edges))
		}
		for v, h := range row {
			if h > inf16 {
				return corrupt("bound row %d entry %d is not a bfloat16 distance", u, v)
			}
		}
		if row[u] != 0 {
			return corrupt("bound row %d has nonzero diagonal", u)
		}
		r := make([]uint16, n, n+b.slack)
		copy(r, row)
		b.rows[u] = r
		b.epochs[u] = ep
	}
	if s.mopts.GuardRows {
		b.setGuard()
	}
	b.enableCheckpoints(checkpointInterval(n))
	s.bound = b
	return nil
}

// importOracle installs the hub oracle (both modes): the hub set and
// arrays come from the state, the attached spanner is rebuilt from the
// accepted edges, and the checkpoint ring re-arms empty. An exported
// oracle is always synced, so the epoch must equal the accepted count.
func (s *IncrementalSpanner) importOracle(st *SpannerState, n int) error {
	if len(st.Hubs) == 0 {
		if len(st.HubRows) != 0 {
			return corrupt("%d hub rows without hubs", len(st.HubRows))
		}
		return nil
	}
	if len(st.HubRows) != len(st.Hubs) {
		return corrupt("%d hub rows for %d hubs", len(st.HubRows), len(st.Hubs))
	}
	if st.HubEpoch != len(st.Edges) {
		return corrupt("hub epoch %d, want the accepted count %d", st.HubEpoch, len(st.Edges))
	}
	if st.HubsReselected < 0 {
		return corrupt("negative hub reselection count")
	}
	seen := make(map[int]bool, len(st.Hubs))
	for i, hv := range st.Hubs {
		if hv < 0 || hv >= n {
			return corrupt("hub %d vertex %d out of range [0, %d)", i, hv, n)
		}
		if seen[hv] {
			return corrupt("hub vertex %d listed twice", hv)
		}
		seen[hv] = true
	}
	slack := 0
	if s.dyn != nil {
		slack = boundRowSlack(n)
	}
	o := &HubOracle{
		h:          s.res.Graph(),
		hubs:       append([]int(nil), st.Hubs...),
		search:     graph.NewSearcher(n),
		epoch:      st.HubEpoch,
		live:       st.HubEpoch,
		reselected: st.HubsReselected,
	}
	o.rows = make([][]float64, len(st.HubRows))
	for i, row := range st.HubRows {
		if len(row) != n {
			return corrupt("hub row %d has %d entries, want %d", i, len(row), n)
		}
		for v, x := range row {
			if math.IsNaN(x) || x < 0 {
				return corrupt("hub row %d entry %d is not a distance", i, v)
			}
		}
		r := make([]float64, n, n+slack)
		copy(r, row)
		o.rows[i] = r
	}
	o.EnableCheckpoints(checkpointInterval(n))
	s.oracle = o
	return nil
}
