package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/persist"
)

// The greedy-engine benchmark compares the sequential greedy scan
// (core.GreedyGraph, one-sided bounded Dijkstra) against the
// batched-parallel engine (core.GreedyGraphParallel, bounded bidirectional
// search) and emits a machine-readable report. It follows the repeated-run
// discipline of the benchmark-validation protocol in SNIPPETS.md: every
// timing is measured reps times (>= 3 by default), the median is reported
// alongside the raw samples, run-to-run spread is recorded, and the two
// engines' outputs are compared edge-for-edge before any speedup is
// claimed. The binary itself is always freshly compiled by `go run` / `go
// test`, which is the protocol's clean-build requirement.

// GreedyBenchParallelRun is the timing record for one worker count.
type GreedyBenchParallelRun struct {
	Workers  int       `json:"workers"`
	MS       []float64 `json:"ms"`
	MedianMS float64   `json:"median_ms"`
	// SpreadPct is (max-min)/median over the samples, in percent.
	SpreadPct float64 `json:"spread_pct"`
	// Speedup is sequential median over this run's median.
	Speedup float64 `json:"speedup"`
	// PeakAllocBytes / TotalAllocBytes record the run's heap high-water
	// mark and cumulative allocation volume, measured in a dedicated
	// non-timed pass (see measureAlloc), so memory wins are tracked
	// alongside wall-clock.
	PeakAllocBytes  uint64 `json:"peak_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
}

// GreedyBenchCase is the report for one instance size.
type GreedyBenchCase struct {
	N                  int       `json:"n"`
	M                  int       `json:"m"`
	Stretch            float64   `json:"stretch"`
	SpannerEdges       int       `json:"spanner_edges"`
	SequentialMS       []float64 `json:"sequential_ms"`
	SequentialMedianMS float64   `json:"sequential_median_ms"`
	SequentialSpread   float64   `json:"sequential_spread_pct"`
	// SequentialPeakAllocBytes / SequentialTotalAllocBytes are the
	// sequential reference's heap figures (one dedicated non-timed pass).
	SequentialPeakAllocBytes  uint64                   `json:"sequential_peak_alloc_bytes"`
	SequentialTotalAllocBytes uint64                   `json:"sequential_total_alloc_bytes"`
	Parallel                  []GreedyBenchParallelRun `json:"parallel"`
	// IdenticalOutput records that every parallel run reproduced the
	// sequential engine's edge sequence and weight exactly.
	IdenticalOutput bool `json:"identical_output"`
}

// GreedyBenchReport is the top-level BENCH_greedy.json document.
type GreedyBenchReport struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Date       string            `json:"date"`
	Reps       int               `json:"reps"`
	Cases      []GreedyBenchCase `json:"cases"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func spreadPct(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if m := median(xs); m > 0 {
		return 100 * (hi - lo) / m
	}
	return 0
}

func sameOutput(a, b *core.Result) bool {
	if a.Weight != b.Weight || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// GreedyBench times sequential vs parallel greedy construction on random
// graphs and returns both a printable table and the JSON report. Small
// scale runs n=200 only; Full adds the n=2000 instance the acceptance
// benchmark tracks. Cancelling ctx aborts the run between repetitions (and
// mid-scan inside the parallel engine) with a typed error; nothing is
// written on abort.
func GreedyBench(ctx context.Context, scale Scale, seed int64, reps int) (*Table, *GreedyBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	tab := &Table{
		Title:  "GREEDY-BENCH: sequential vs batched-parallel greedy engine",
		Header: []string{"n", "m", "engine", "workers", "median ms", "spread %", "speedup", "peak MB", "identical"},
		Caption: "Sequential = one-sided bounded Dijkstra per candidate edge over a sorted edge copy;\n" +
			"parallel = weight-batched skip certification over bounded bidirectional searches, fed by\n" +
			"the streamed bucketed edge supply. Outputs are compared edge-for-edge; peak MB is the\n" +
			"heap high-water mark of a dedicated non-timed pass.",
	}
	report := &GreedyBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
	}
	type instance struct {
		n int
		p float64
		t float64
	}
	instances := []instance{{200, 0.2, 3}}
	if scale == Full {
		instances = append(instances, instance{2000, 0.05, 3})
	}
	workerSets := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, inst := range instances {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(rng, inst.n, inst.p, 0.5, 10)
		c := GreedyBenchCase{N: inst.n, M: g.M(), Stretch: inst.t, IdenticalOutput: true}

		var ref *core.Result
		for r := 0; r < reps; r++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			start := time.Now()
			res, err := core.GreedyGraph(g, inst.t)
			if err != nil {
				return nil, nil, err
			}
			c.SequentialMS = append(c.SequentialMS, time.Since(start).Seconds()*1000)
			ref = res
		}
		c.SpannerEdges = ref.Size()
		c.SequentialMedianMS = median(c.SequentialMS)
		c.SequentialSpread = spreadPct(c.SequentialMS)
		seqPeak, seqTotal, err := measureAlloc(func() error {
			_, err := core.GreedyGraph(g, inst.t)
			return err
		})
		if err != nil {
			return nil, nil, err
		}
		c.SequentialPeakAllocBytes, c.SequentialTotalAllocBytes = seqPeak, seqTotal
		tab.AddRow(itoa(inst.n), itoa(g.M()), "sequential", "-",
			f2(c.SequentialMedianMS), f2(c.SequentialSpread), "1.00",
			mb(c.SequentialPeakAllocBytes), "ref")

		seen := map[int]bool{}
		for _, w := range workerSets {
			if seen[w] {
				continue
			}
			seen[w] = true
			run := GreedyBenchParallelRun{Workers: w}
			identical := true
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.GreedyGraphParallelOpts(g, inst.t, core.ParallelOptions{Workers: w, Ctx: ctx})
				if err != nil {
					return nil, nil, err
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				identical = identical && sameOutput(ref, res)
			}
			run.MedianMS = median(run.MS)
			run.SpreadPct = spreadPct(run.MS)
			run.Speedup = c.SequentialMedianMS / run.MedianMS
			peak, totalAlloc, err := measureAlloc(func() error {
				_, err := core.GreedyGraphParallelOpts(g, inst.t, core.ParallelOptions{Workers: w, Ctx: ctx})
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, totalAlloc
			c.IdenticalOutput = c.IdenticalOutput && identical
			c.Parallel = append(c.Parallel, run)
			tab.AddRow(itoa(inst.n), itoa(g.M()), "parallel", itoa(w),
				f2(run.MedianMS), f2(run.SpreadPct), f2(run.Speedup),
				mb(run.PeakAllocBytes), yesNo(identical))
		}
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// WriteJSON writes the report to path, pretty-printed, atomically
// (temp file + rename), so an interrupted run never damages a previous
// report at the same path.
func (r *GreedyBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
