#!/usr/bin/env bash
# check_pkgdoc.sh — the CI docs gate: every package in the module must have
# a package (or command) doc comment, i.e. at least one non-test .go file
# with a comment line immediately preceding its `package` clause.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
  ok=0
  for f in "$dir"/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    # A doc comment is a line comment (not a //go: directive) or the tail
    # of a /* */ block immediately preceding the package clause.
    if awk '(prev ~ /^\/\// && prev !~ /^\/\/go:/ || prev ~ /\*\/[[:space:]]*$/) && /^package / { found = 1 } { prev = $0 } END { exit !found }' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -eq 0 ]; then
    echo "missing package doc comment: $dir"
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "add a '// Package <name> ...' (or '// <Command> ...') comment above the package clause"
fi
exit "$fail"
