package metric

import (
	"fmt"
	"math"
)

// LP is a Metric over points in R^d under an L_p norm (p >= 1, or p = +Inf
// for the Chebyshev metric). L_p norms on bounded-dimension point sets are
// doubling, so they exercise the paper's doubling-metric results beyond the
// Euclidean case.
type LP struct {
	pts [][]float64
	p   float64
}

// NewLP builds an L_p metric over the given points.
func NewLP(pts [][]float64, p float64) (*LP, error) {
	if p < 1 {
		return nil, fmt.Errorf("metric: L_p needs p >= 1, got %v", p)
	}
	if len(pts) > 0 {
		d := len(pts[0])
		if d == 0 {
			return nil, fmt.Errorf("metric: zero-dimensional points")
		}
		for i, pt := range pts {
			if len(pt) != d {
				return nil, fmt.Errorf("metric: point %d has dim %d, want %d", i, len(pt), d)
			}
		}
	}
	return &LP{pts: pts, p: p}, nil
}

// N reports the number of points.
func (m *LP) N() int { return len(m.pts) }

// P reports the norm exponent.
func (m *LP) P() float64 { return m.p }

// Dist returns the L_p distance between points i and j.
func (m *LP) Dist(i, j int) float64 {
	a, b := m.pts[i], m.pts[j]
	if math.IsInf(m.p, 1) {
		var best float64
		for k := range a {
			if d := math.Abs(a[k] - b[k]); d > best {
				best = d
			}
		}
		return best
	}
	if m.p == 1 {
		var s float64
		for k := range a {
			s += math.Abs(a[k] - b[k])
		}
		return s
	}
	if m.p == 2 {
		var s float64
		for k := range a {
			d := a[k] - b[k]
			s += d * d
		}
		return math.Sqrt(s)
	}
	var s float64
	for k := range a {
		s += math.Pow(math.Abs(a[k]-b[k]), m.p)
	}
	return math.Pow(s, 1/m.p)
}

// Snowflake is the alpha-snowflake of a base metric: distances d^alpha for
// 0 < alpha <= 1. Snowflaking preserves metricity (concavity of x^alpha)
// and reduces the doubling dimension by the factor alpha, making it a handy
// knob for doubling-metric experiments.
type Snowflake struct {
	base  Metric
	alpha float64
}

// NewSnowflake wraps base with exponent alpha in (0, 1].
func NewSnowflake(base Metric, alpha float64) (*Snowflake, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("metric: snowflake exponent must be in (0, 1], got %v", alpha)
	}
	return &Snowflake{base: base, alpha: alpha}, nil
}

// N reports the number of points.
func (m *Snowflake) N() int { return m.base.N() }

// Dist returns base distance raised to alpha.
func (m *Snowflake) Dist(i, j int) float64 {
	return math.Pow(m.base.Dist(i, j), m.alpha)
}

// Scaled multiplies every distance of a base metric by a positive factor
// (an isometry up to scale; spanner structure is invariant under it, which
// tests exploit as a sanity property).
type Scaled struct {
	base   Metric
	factor float64
}

// NewScaled wraps base with the given positive scale factor.
func NewScaled(base Metric, factor float64) (*Scaled, error) {
	if factor <= 0 || math.IsInf(factor, 0) || math.IsNaN(factor) {
		return nil, fmt.Errorf("metric: scale factor must be positive and finite, got %v", factor)
	}
	return &Scaled{base: base, factor: factor}, nil
}

// N reports the number of points.
func (m *Scaled) N() int { return m.base.N() }

// Dist returns factor * base distance.
func (m *Scaled) Dist(i, j int) float64 { return m.factor * m.base.Dist(i, j) }
