package gen

import (
	"math/rand"
	"testing"

	"repro/internal/metric"
)

func TestPetersen(t *testing.T) {
	p := Petersen()
	if p.N() != 10 || p.M() != 15 {
		t.Fatalf("Petersen: N=%d M=%d, want 10, 15", p.N(), p.M())
	}
	for v := 0; v < 10; v++ {
		if p.Degree(v) != 3 {
			t.Fatalf("Petersen degree(%d) = %d, want 3", v, p.Degree(v))
		}
	}
	if g := p.GirthUnweighted(); g != 5 {
		t.Fatalf("Petersen girth = %d, want 5", g)
	}
	if !p.Connected() {
		t.Fatal("Petersen disconnected")
	}
}

func TestGeneralizedPetersen(t *testing.T) {
	// GP(7, 2) has 14 vertices, 21 edges, girth... >= 3; check structure.
	g := GeneralizedPetersen(7, 2)
	if g.N() != 14 || g.M() != 21 {
		t.Fatalf("GP(7,2): N=%d M=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("GP(7,2) disconnected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GP(3, 2) should panic (2k >= n)")
		}
	}()
	GeneralizedPetersen(3, 2)
}

func TestFigure1Gadget(t *testing.T) {
	f1, err := Figure1Gadget(Petersen(), 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// G = 15 H edges + 6 star edges (root 0 has 3 H-neighbors among 9
	// non-root vertices).
	if f1.G.M() != 21 {
		t.Fatalf("gadget edges = %d, want 21", f1.G.M())
	}
	if f1.StarEdges != 6 {
		t.Fatalf("star edges = %d, want 6", f1.StarEdges)
	}
	if f1.G.Degree(0) != 9 {
		t.Fatalf("root degree = %d, want 9 (star center)", f1.G.Degree(0))
	}
	if _, err := Figure1Gadget(Petersen(), 0, -1); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := Figure1Gadget(Petersen(), 99, 0.1); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyi(rng, 30, 0.05, 1, 10)
		if !g.Connected() {
			t.Fatal("ErdosRenyi output disconnected")
		}
		if g.N() != 30 {
			t.Fatalf("N = %d", g.N())
		}
		for _, e := range g.Edges() {
			if e.W < 1 || e.W > 10 {
				t.Fatalf("weight %v out of [1, 10]", e.W)
			}
		}
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, pts := RandomGeometric(rng, 50, 0.15)
	if !g.Connected() {
		t.Fatal("RandomGeometric output disconnected")
	}
	if len(pts) != 50 || g.N() != 50 {
		t.Fatal("size mismatch")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	// Edges: 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	if g.GirthUnweighted() != 4 {
		t.Fatalf("grid girth = %d, want 4", g.GirthUnweighted())
	}
}

func TestPointGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := UniformPoints(rng, 20, 3)
	if len(u) != 20 || len(u[0]) != 3 {
		t.Fatal("UniformPoints shape wrong")
	}
	for _, p := range u {
		for _, c := range p {
			if c < 0 || c > 1 {
				t.Fatalf("uniform coordinate %v out of [0,1]", c)
			}
		}
	}
	cl := ClusteredPoints(rng, 40, 2, 4, 0.01)
	if len(cl) != 40 {
		t.Fatal("ClusteredPoints count wrong")
	}
	ci := CirclePoints(8)
	if len(ci) != 8 {
		t.Fatal("CirclePoints count wrong")
	}
	m := metric.MustEuclidean(ci)
	// All points at distance 1 from origin: diameter 2 (antipodal pairs).
	if d := metric.Diameter(m); d < 1.99 || d > 2.01 {
		t.Fatalf("circle diameter = %v, want ~2", d)
	}
	el := ExponentialLine(5)
	if el[4][0] != 16 {
		t.Fatalf("ExponentialLine[4] = %v, want 16", el[4][0])
	}
}

func TestUnboundedDegreeMetricValid(t *testing.T) {
	m, err := UnboundedDegreeMetric(3, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1+3*6 {
		t.Fatalf("N = %d, want 19", m.N())
	}
	if err := metric.Check(m, 1e-9); err != nil {
		t.Fatalf("metric axioms violated: %v", err)
	}
	if _, err := UnboundedDegreeMetric(0, 5, 0.1); err == nil {
		t.Fatal("scales=0 accepted")
	}
	if _, err := UnboundedDegreeMetric(2, 5, 0.5); err == nil {
		t.Fatal("eps=0.5 accepted")
	}
}

func TestHighGirthGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := HighGirthGraph(rng, 60, 90, 6)
	if g.M() == 0 {
		t.Fatal("no edges generated")
	}
	if girth := g.GirthUnweighted(); girth != 0 && girth < 6 {
		t.Fatalf("girth = %d, want >= 6 (or acyclic)", girth)
	}
}
