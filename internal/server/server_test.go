package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/persist"
)

// testPts returns n deterministic 2-D points.
func testPts(n int) [][]float64 {
	rng := rand.New(rand.NewSource(11))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	return pts
}

func mustEuclid(t *testing.T, pts [][]float64) *metric.Euclidean {
	t.Helper()
	eu, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	return eu
}

// newTestDurable creates a durable Euclidean spanner on n points in a
// fresh temp dir.
func newTestDurable(t *testing.T, n int) *persist.Durable {
	t.Helper()
	o := persist.Options{Metric: core.MetricParallelOptions{Workers: 1}}
	inc, err := core.NewIncrementalMetric(mustEuclid(t, testPts(n)), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}
	d, err := persist.Create(t.TempDir(), inc, o)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// newTestServer builds a Server (owning a fresh durable on n points)
// behind an httptest listener. mutate lets callers tweak the config.
func newTestServer(t *testing.T, n int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Durable:        newTestDurable(t, n),
		RequestTimeout: 5 * time.Second,
		MutateTimeout:  10 * time.Second,
		DrainGrace:     2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON decodes a GET response and returns the body and status.
func getJSON(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return body, resp.StatusCode
}

// postJSON posts v as JSON and decodes the response.
func postJSON(t *testing.T, url string, v any) (map[string]any, int) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return body, resp.StatusCode
}

// TestServeDistanceAndPath cross-checks the HTTP read API against a
// direct searcher on the same snapshot: identical distances, valid
// paths, typed 400s for malformed queries.
func TestServeDistanceAndPath(t *testing.T) {
	s, ts := newTestServer(t, 40, nil)
	snap := s.snap.Load()
	sr := graph.NewSearcher(snap.res.N)
	rng := rand.New(rand.NewSource(3))

	for q := 0; q < 25; q++ {
		u, v := rng.Intn(snap.res.N), rng.Intn(snap.res.N)
		body, status := getJSON(t, fmt.Sprintf("%s/v1/distance?u=%d&v=%d", ts.URL, u, v))
		if status != http.StatusOK {
			t.Fatalf("distance %d-%d: status %d body %v", u, v, status, body)
		}
		want, ok := sr.BidirDistanceWithin(snap.g, u, v, graph.Inf)
		if body["reachable"].(bool) != ok {
			t.Fatalf("distance %d-%d: reachable %v, want %v", u, v, body["reachable"], ok)
		}
		if ok && body["distance"].(float64) != want {
			t.Fatalf("distance %d-%d: %v, want %v", u, v, body["distance"], want)
		}

		body, status = getJSON(t, fmt.Sprintf("%s/v1/path?u=%d&v=%d", ts.URL, u, v))
		if status != http.StatusOK {
			t.Fatalf("path %d-%d: status %d", u, v, status)
		}
		if ok {
			path := body["path"].([]any)
			if int(path[0].(float64)) != u || int(path[len(path)-1].(float64)) != v {
				t.Fatalf("path %d-%d endpoints wrong: %v", u, v, path)
			}
			if d := body["distance"].(float64); d < want-1e-9 {
				t.Fatalf("path %d-%d distance %v under spanner distance %v", u, v, d, want)
			}
		}
	}

	for _, bad := range []string{
		"/v1/distance?u=0&v=xyz",
		"/v1/distance?u=-1&v=2",
		fmt.Sprintf("/v1/distance?u=0&v=%d", snap.res.N),
		"/v1/path?u=0&v=1&limit=-3",
		"/v1/path?u=0&v=1&limit=NaN",
	} {
		body, status := getJSON(t, ts.URL+bad)
		if status != http.StatusBadRequest || body["code"] != codeInvalid {
			t.Fatalf("%s: status %d code %v, want 400/invalid", bad, status, body["code"])
		}
	}
	if _, status := getJSON(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
}

// TestServeMutatePublishesSnapshot drives insert/delete mutations over
// HTTP and verifies each acknowledged mutation bumps the snapshot
// version, advances opseq, and lands on the exact digest a twin plain
// engine reaches with the same ops.
func TestServeMutatePublishesSnapshot(t *testing.T) {
	const n = 30
	s, ts := newTestServer(t, n, nil)
	twin, err := core.NewIncrementalMetric(mustEuclid(t, testPts(n)), 1.6, core.MetricParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	extra := [][]float64{{500, 500}, {501, 500}, {500, 501}}
	body, status := postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "insert-points", Points: extra})
	if status != http.StatusOK {
		t.Fatalf("insert-points: status %d body %v", status, body)
	}
	all := append(testPts(n), extra...)
	if err := twin.Insert(mustEuclid(t, all)); err != nil {
		t.Fatal(err)
	}
	if v := s.snap.Load().version; v != 2 {
		t.Fatalf("version %d after first mutation, want 2", v)
	}

	if body, status = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "delete-points", Ids: []int{5, 12}}); status != http.StatusOK {
		t.Fatalf("delete-points: status %d body %v", status, body)
	}
	if err := twin.Delete(5, 12); err != nil {
		t.Fatal(err)
	}

	twinRes, err := twin.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.snap.Load().digest, core.ResultDigest(twinRes); got != want {
		t.Fatalf("served digest %x, twin digest %x", got, want)
	}

	// Rejections are typed and advance nothing.
	before := s.Stats()
	for _, bad := range []mutateRequest{
		{Op: "no-such-op"},
		{Op: "insert-points", Points: [][]float64{{1, 2, 3}}},
		{Op: "delete-points", Ids: []int{99999}},
		{Op: "insert-edges", Edges: []edgeJSON{{U: 0, V: 1, W: 1}}}, // metric-mode durable
	} {
		body, status := postJSON(t, ts.URL+"/v1/mutate", bad)
		if status != http.StatusBadRequest || body["code"] != codeInvalid {
			t.Fatalf("op %q: status %d code %v, want 400/invalid", bad.Op, status, body["code"])
		}
	}
	if after := s.Stats(); after.OpSeq != before.OpSeq || after.Version != before.Version {
		t.Fatalf("rejected mutations moved state: %+v -> %+v", before, after)
	}

	// Stats endpoint mirrors the published snapshot.
	body, status = getJSON(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	if body["digest"] != fmt.Sprintf("%016x", s.snap.Load().digest) {
		t.Fatalf("stats digest %v, snapshot %016x", body["digest"], s.snap.Load().digest)
	}

	// Checkpoint rotates the generation and republishes.
	if body, status = postJSON(t, ts.URL+"/v1/checkpoint", struct{}{}); status != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %v", status, body)
	}
	if body["gen"].(float64) != 2 {
		t.Fatalf("gen %v after checkpoint, want 2", body["gen"])
	}
}

// TestServeDrainRecovery drains a server with durable mutations applied
// and reopens the directory: the recovered digest must match what the
// server was serving when it acknowledged the last mutation.
func TestServeDrainRecovery(t *testing.T) {
	o := persist.Options{Metric: core.MetricParallelOptions{Workers: 1}}
	inc, err := core.NewIncrementalMetric(mustEuclid(t, testPts(20)), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := persist.Create(dir, inc, o)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServerOn(t, d)

	if body, status := postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "insert-points", Points: [][]float64{{9, 9}, {9, 10}}}); status != http.StatusOK {
		t.Fatalf("mutate: status %d body %v", status, body)
	}
	want := s.snap.Load().digest

	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Post-drain requests answer typed draining responses.
	body, status := getJSON(t, ts.URL+"/v1/distance?u=0&v=1")
	if status != http.StatusServiceUnavailable || body["code"] != codeDraining {
		t.Fatalf("post-drain read: status %d code %v", status, body["code"])
	}

	d2, err := persist.Open(dir, o)
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer d2.Close()
	res, err := d2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := core.ResultDigest(res); got != want {
		t.Fatalf("recovered digest %x, served digest %x", got, want)
	}
}

// newTestServerOn wraps an existing durable in a served test instance.
func newTestServerOn(t *testing.T, d *persist.Durable) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Durable: d, DrainGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}
