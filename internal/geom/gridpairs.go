package geom

import (
	"encoding/binary"
	"math"

	"repro/internal/graph"
)

// GridEnumerator enumerates the point pairs of a Euclidean point set whose
// distance falls in a weight range [lo, hi), using a uniform grid: a pair
// at distance < hi differs by less than R cells in every coordinate (R
// determined by the cell size), so only cell pairs within the R-offset
// neighborhood of each occupied cell are ever inspected. Producing the
// pairs of one distance bucket therefore never touches pairs farther than
// the bucket's upper edge — the enumeration cost scales with the number of
// pairs near the bucket, not with n^2.
//
// In low dimension (d <= 3) the cell size additionally tracks the range's
// width: a narrow annulus [lo, hi) gets cells of side ~hi-lo, and every
// candidate cell pair is pre-filtered by conservative per-offset distance
// bounds, so pairs well below lo — the bulk, when a wide weight bucket is
// subdivided to the supply's pair cap — are skipped at whole-cell
// granularity without a single distance evaluation. In higher dimension
// the offset neighborhood grows like (2R+1)^d, so the enumerator falls
// back to cells of side hi (R = 1), the classic 3^d scheme.
//
// Distances are reported by the caller-supplied dist function (typically
// metric.Euclidean.Dist), so downstream consumers see weights
// bit-identical to the materialized pipeline's; the grid only decides
// which pairs get tested.
type GridEnumerator struct {
	pts  [][]float64
	dist func(i, j int) float64
	dim  int
	// boxLo is the per-dimension lower corner, boxSpan the extents.
	boxLo, boxSpan []float64
	// Reused across Pairs calls so repeated bucket production does not
	// leave a trail of per-call garbage: the packed cell coordinates, the
	// cell hash, the per-cell member lists' backing, and the offset sets
	// (cached per offset radius R).
	coords    []int64
	cellOf    map[string]int32
	cells     [][]int32
	cellCoord [][]int64
	offsets   map[int][]gridOffset
	live      []gridOffset
}

// gridOffset is one candidate cell displacement together with the squared
// separation bounds (in cell units) of any two points in cells at that
// displacement: minUnits2 underestimates, maxUnits2 overestimates, each
// with a full cell of slack per axis, which dwarfs the sub-cell rounding
// of the coordinate-to-index computation.
type gridOffset struct {
	off       []int64
	minUnits2 float64
	maxUnits2 float64
}

// NewGridEnumerator builds a grid enumerator over pts (all sharing one
// dimension) with the given distance oracle.
func NewGridEnumerator(pts [][]float64, dist func(i, j int) float64) *GridEnumerator {
	e := &GridEnumerator{pts: pts, dist: dist}
	if len(pts) == 0 {
		return e
	}
	e.dim = len(pts[0])
	e.boxLo = append([]float64(nil), pts[0]...)
	hi := append([]float64(nil), pts[0]...)
	for _, p := range pts[1:] {
		for k, c := range p {
			if c < e.boxLo[k] {
				e.boxLo[k] = c
			}
			if c > hi[k] {
				hi[k] = c
			}
		}
	}
	e.boxSpan = make([]float64, e.dim)
	for k := range hi {
		e.boxSpan[k] = hi[k] - e.boxLo[k]
	}
	return e
}

// maxCellsPerDim guards the float64 cell-coordinate computation: the
// quotient (c-boxLo)/cell carries relative error ~2^-52, so at q cells per
// axis the absolute error is ~q*2^-52 cells — with q capped at 2^25 that
// is < 2^-27 of a cell, far too small to ever shift a floor() across a
// boundary by more than the one-cell slack every neighborhood bound
// already carries. Narrower ranges fall back to the brute-force scan,
// which is always correct; such ranges hold few pairs, so the fallback is
// cheap in aggregate.
const maxCellsPerDim = 1 << 25

// annulusMaxDim bounds the dimensions in which the annulus-filtered cell
// size is used: the offset neighborhood has (2R+1)^d candidates, so past
// d = 3 the classic one-cell-per-range scheme (R = 1) wins.
const annulusMaxDim = 3

// maxOffsetRadius caps R, and with it the per-call offset enumeration at
// (2R+1)^d vectors; ranges narrower than hi/maxOffsetRadius simply get
// less cell-level filtering, never more scanning.
const maxOffsetRadius = 8

// Pairs calls fn exactly once for every unordered pair (u, v), u < v, with
// dist(u, v) in [lo, hi) — hi == +Inf includes infinite distances. Pairs
// with distance beyond the range's upper edge are never evaluated, and in
// low dimension pairs well below lo are pre-filtered at cell granularity,
// unless the grid degenerates (hi at or beyond the point spread, or too
// fine to index safely).
func (e *GridEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	n := len(e.pts)
	if n < 2 {
		return
	}
	// Pick the cell side: the range width (annulus filtering) in low
	// dimension, clamped so the offset radius stays bounded; the range's
	// upper edge (R = 1, the classic 3^d scheme) otherwise.
	cell := hi
	annulus := e.dim <= annulusMaxDim && lo > 0 && hi-lo < hi
	if annulus {
		if cell = hi - lo; cell < hi/maxOffsetRadius {
			cell = hi / maxOffsetRadius
		}
	}
	// Pad the cell a relative 2^-20 wider: an in-range pair's per-axis
	// difference is then strictly less than (hi/cell) cells even after the
	// bounded quotient rounding, so R below never misses a pair.
	cell *= 1 + 1.0/(1<<20)
	usable := cell > 0 && !math.IsInf(cell, 1)
	for k := 0; usable && k < e.dim; k++ {
		if e.boxSpan[k]/cell >= maxCellsPerDim {
			usable = false
		}
	}
	if !usable {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if w := e.dist(i, j); graph.WeightInRange(w, lo, hi) {
					fn(i, j, w)
				}
			}
		}
		return
	}
	// An in-range pair's per-axis index difference is at most
	// floor(hi/cell)+1 even at the worst floor() boundary; in annulus
	// mode the extra +1 absorbs the pathological case of hi/cell within
	// rounding of an integer, and the pruning below discards the spurious
	// corner offsets it admits. With cell = hi (padded), the difference
	// is at most 1 — the classic 3^d neighborhood.
	r := 1
	if annulus {
		r = int(hi/cell) + 2
	}

	// Bucket the points into cells of side `cell`, keyed by packed integer
	// coordinates. All buffers (and the member lists' backing arrays) are
	// reused across calls.
	if cap(e.coords) < n*e.dim {
		e.coords = make([]int64, n*e.dim)
	}
	coords := e.coords[:n*e.dim]
	if e.cellOf == nil {
		e.cellOf = make(map[string]int32, n)
	} else {
		clear(e.cellOf)
	}
	cellOf := e.cellOf
	e.cellCoord = e.cellCoord[:0]
	nCells := 0
	key := make([]byte, 8*e.dim)
	for i, p := range e.pts {
		cc := coords[i*e.dim : (i+1)*e.dim]
		for k, c := range p {
			cc[k] = int64((c - e.boxLo[k]) / cell)
			binary.LittleEndian.PutUint64(key[8*k:], uint64(cc[k]))
		}
		id, ok := cellOf[string(key)]
		if !ok {
			id = int32(nCells)
			cellOf[string(key)] = id
			if nCells < len(e.cells) {
				e.cells[nCells] = e.cells[nCells][:0]
			} else {
				e.cells = append(e.cells, nil)
			}
			e.cellCoord = append(e.cellCoord, cc)
			nCells++
		}
		e.cells[id] = append(e.cells[id], int32(i))
	}
	cells := e.cells[:nCells]
	cellCoord := e.cellCoord

	emit := func(i, j int32) {
		u, v := int(i), int(j)
		if u > v {
			u, v = v, u
		}
		if w := e.dist(u, v); graph.WeightInRange(w, lo, hi) {
			fn(u, v, w)
		}
	}

	// Prune offsets against the annulus once per call: a cell pair at
	// displacement off only holds in-range pairs if its separation bounds
	// straddle [lo, hi).
	// slack pads the squared comparisons against both the multiplication
	// rounding of cell2 and the coordinate-to-index quotient rounding: a
	// point's true coordinate can sit up to ~2^-27 of a cell outside its
	// cell's nominal bounds (see maxCellsPerDim), so separation upper
	// bounds are inflated by up to (1+2^-26)^2 ≈ 1+3e-8 before they are
	// safe to prune against. 1e-6 covers that with two orders of margin
	// while remaining far too small to admit a uselessly distant cell.
	const slack = 1 + 1e-6
	offsets := e.offsetsFor(r)
	cell2 := cell * cell
	hi2 := hi * hi
	lo2 := lo * lo
	live := e.live[:0]
	if math.IsInf(cell2, 1) || math.IsInf(hi2, 1) {
		// The squared bounds overflow near the float64 ceiling
		// (coordinates ~1e154+): 0*Inf comparisons would go NaN and prune
		// real candidates, so keep the whole neighborhood unpruned.
		live = append(live, offsets...)
	} else {
		for _, o := range offsets {
			if o.minUnits2*cell2 < hi2*slack && o.maxUnits2*cell2*slack >= lo2 {
				live = append(live, o)
			}
		}
	}
	e.live = live
	// Same-cell pairs are separated by at most sqrt(d) cells; at an
	// overflowed cell2 the product is +Inf and the test stays true.
	sameCell := float64(e.dim)*cell2*slack >= lo2

	nb := make([]int64, e.dim)
	for id, members := range cells {
		if sameCell {
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					emit(members[a], members[b])
				}
			}
		}
		for _, o := range live {
			for k := range nb {
				nb[k] = cellCoord[id][k] + o.off[k]
				binary.LittleEndian.PutUint64(key[8*k:], uint64(nb[k]))
			}
			other, ok := cellOf[string(key)]
			if !ok {
				continue
			}
			for _, i := range members {
				for _, j := range cells[other] {
					emit(i, j)
				}
			}
		}
	}
}

// offsetsFor returns the lexicographically positive half of [-r, r]^d with
// per-offset separation bounds, cached per radius, so each unordered pair
// of distinct cells is visited exactly once.
func (e *GridEnumerator) offsetsFor(r int) []gridOffset {
	if e.offsets == nil {
		e.offsets = make(map[int][]gridOffset)
	}
	if out, ok := e.offsets[r]; ok {
		return out
	}
	var out []gridOffset
	cur := make([]int64, e.dim)
	var rec func(k int, positive bool)
	rec = func(k int, positive bool) {
		if k == e.dim {
			if !positive {
				return
			}
			o := gridOffset{off: append([]int64(nil), cur...)}
			for _, c := range cur {
				a := float64(c)
				if a < 0 {
					a = -a
				}
				if m := a - 1; m > 0 {
					o.minUnits2 += m * m
				}
				o.maxUnits2 += (a + 1) * (a + 1)
			}
			out = append(out, o)
			return
		}
		for v := int64(-r); v <= int64(r); v++ {
			if !positive && v < 0 {
				continue // first nonzero component must be positive
			}
			cur[k] = v
			rec(k+1, positive || v > 0)
		}
	}
	rec(0, false)
	e.offsets[r] = out
	return out
}
