package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestErrtypedFixtures(t *testing.T) {
	analysistest.Run(t, checks.Errtyped, analysistest.Fixture("errtyped"))
}
