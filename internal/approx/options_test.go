package approx

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestGreedyRecordsAttemptStats(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 50, 2))
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Attempts < 1 {
		t.Fatalf("Attempts = %d, want >= 1", res.Stats.Attempts)
	}
	if res.Stats.BaseGamma <= 0 {
		t.Fatalf("BaseGamma = %v, want > 0", res.Stats.BaseGamma)
	}
}

func TestGreedyExplicitMuAndDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 60, 2))
	base, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit mu/delta must not change correctness, and decisions are
	// delta-independent thanks to the exact fallback tier.
	for _, opts := range []Options{
		{Eps: 0.5, Mu: 4},
		{Eps: 0.5, Delta: 0.1},
		{Eps: 0.5, Mu: 1.5, Delta: 0.002},
	} {
		res, err := Greedy(m, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if _, err := verify.MetricSpanner(res.Spanner, m, 1.5, 1e-9); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.Spanner.M() != base.Spanner.M() {
			t.Fatalf("%+v: decision drift: %d vs %d edges", opts, res.Spanner.M(), base.Spanner.M())
		}
	}
}

func TestGreedyOnRingGadgetBoundsDegree(t *testing.T) {
	// The E9 headline as a unit test: the approximate-greedy degree on the
	// ring gadget stays below greedy's hub degree once scales grow.
	m, err := gen.UnboundedDegreeMetric(6, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(m, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Spanner, m, 1.1, 1e-9); err != nil {
		t.Fatal(err)
	}
	if d := res.Spanner.MaxDegree(); d >= m.N()-1 {
		t.Fatalf("approx degree %d matches greedy's unbounded hub (n-1 = %d)", d, m.N()-1)
	}
}

func TestGreedyOnGraphInducedMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := gen.ErdosRenyi(rng, 40, 0.3, 0.5, 4)
	m, err := metric.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Spanner, m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
}
