package graph

// Searcher runs repeated shortest-path queries over graphs with a fixed
// vertex count while reusing all internal buffers, eliminating the per-call
// allocations of the convenience methods on Graph. It is the workhorse of
// the greedy main loops, which issue one distance query per candidate edge.
//
// A Searcher is not safe for concurrent use. The graph passed to each call
// may differ between calls (e.g., a growing spanner) as long as its vertex
// count matches the Searcher's.
type Searcher struct {
	scratch *dijkstraScratch
	// bidir is allocated on first use so Searchers that only ever run
	// one-sided queries don't pay for the second set of buffers.
	bidir *bidirScratch
	// masked is the vertex-failure mark buffer of the masked searches,
	// allocated on first use and cleared after every call.
	masked []bool
	// lastTouched is the vertex count of the most recent single-source
	// sweep; see LastTouched.
	lastTouched int
	// stop is the cooperative cancellation predicate installed by SetStop,
	// propagated to the bidirectional scratch when that is allocated.
	stop func() bool
	n    int
}

// NewSearcher returns a Searcher for graphs on n vertices.
func NewSearcher(n int) *Searcher {
	return &Searcher{scratch: newDijkstraScratch(n), n: n}
}

// N reports the vertex count the Searcher was sized for.
func (s *Searcher) N() int { return s.n }

// SetStop installs a cooperative cancellation predicate: every search the
// Searcher runs polls stop every few thousand heap pops and abandons the
// search when it returns true. An abandoned search leaves only valid
// tentative distances behind (Dijkstra relaxations never undercut true
// distances), but its point answers may be overestimates — callers must
// check their own cancellation signal after each query and discard the
// answer when it fired. A nil stop restores unconditional searches and
// costs the hot loops nothing.
func (s *Searcher) SetStop(stop func() bool) {
	s.stop = stop
	s.scratch.stop = stop
	if s.bidir != nil {
		s.bidir.stop = stop
	}
}

// DistanceWithin reports the shortest-path distance from src to dst in g if
// it is at most limit, and (Inf, false) otherwise, like
// Graph.DistanceWithin but allocation-free.
func (s *Searcher) DistanceWithin(g *Graph, src, dst int, limit float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	g.dijkstra(src, dst, limit, s.scratch)
	d := s.scratch.dist[dst]
	s.scratch.reset()
	if d <= limit {
		return d, true
	}
	return Inf, false
}

// BidirDistanceWithin reports the shortest-path distance from src to dst in
// g if it is at most limit, and (Inf, false) otherwise, growing bounded
// Dijkstra balls from both endpoints at once. Each side explores radius
// roughly limit/2, so on graphs whose balls grow with radius it settles far
// fewer vertices than the one-sided DistanceWithin. This is the greedy
// engine's query primitive; it is allocation-free after the first call.
func (s *Searcher) BidirDistanceWithin(g *Graph, src, dst int, limit float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	if s.bidir == nil {
		s.bidir = newBidirScratch(s.n)
		s.bidir.stop = s.stop
	}
	d := g.bidirDistanceWithin(src, dst, limit, s.bidir)
	s.bidir.reset()
	if d < Inf && d <= limit {
		return d, true
	}
	return Inf, false
}

// PathWithin reports a shortest path from src to dst in g of total weight
// at most limit as a vertex sequence (src first, dst last) together with
// its length, and (nil, Inf, false) when dst is farther than limit. The
// returned slice is freshly allocated — the path outlives the Searcher's
// scratch, which the next query reuses. Like every Searcher query it
// honors SetStop; a stopped search may report (nil, Inf, false) for a
// reachable pair, so callers re-check their cancellation signal after
// the call and discard the answer when it fired.
func (s *Searcher) PathWithin(g *Graph, src, dst int, limit float64) ([]int, float64, bool) {
	if src == dst {
		return []int{src}, 0, true
	}
	g.dijkstra(src, dst, limit, s.scratch)
	d := s.scratch.dist[dst]
	var path []int
	if d < Inf && d <= limit {
		for v := dst; v != -1; v = int(s.scratch.parent[v]) {
			path = append(path, v)
		}
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
	}
	s.scratch.reset()
	if path != nil {
		return path, d, true
	}
	return nil, Inf, false
}

// DistanceWithinAvoiding is DistanceWithin on the graph g minus one
// occurrence of edge avoid: it reports the shortest src–dst distance that
// uses at most limit weight and does not traverse the avoided edge, and
// (Inf, false) when no such path exists. Parallel copies of avoid (same
// endpoints and weight) remain usable, matching Graph.WithoutEdge
// semantics — but without materializing the reduced graph, which is what
// makes an O(m)-allocation VerifySelfSpanner sweep possible.
func (s *Searcher) DistanceWithinAvoiding(g *Graph, src, dst int, limit float64, avoid Edge) (float64, bool) {
	if src == dst {
		return 0, true
	}
	g.dijkstraAvoiding(src, dst, limit, avoid, s.scratch)
	d := s.scratch.dist[dst]
	s.scratch.reset()
	if d <= limit {
		return d, true
	}
	return Inf, false
}

// mark sets the failure marks for dead and returns the mask; the caller
// must call unmark with the same slice before returning.
func (s *Searcher) mark(dead []int) []bool {
	if s.masked == nil {
		s.masked = make([]bool, s.n)
	}
	for _, v := range dead {
		s.masked[v] = true
	}
	return s.masked
}

func (s *Searcher) unmark(dead []int) {
	for _, v := range dead {
		s.masked[v] = false
	}
}

// DistanceWithinMasked is DistanceWithin on the graph g minus every edge
// incident to a vertex in dead (vertex failures): it reports the shortest
// src–dst distance that uses at most limit weight and avoids all dead
// vertices, and (Inf, false) when no such path exists. The dead vertices
// themselves remain in the vertex set, matching a materialized copy with
// their incident edges removed — but without building that copy, which is
// what lets the fault-tolerant paths probe every fault set allocation-free
// instead of cloning the graph once per set.
func (s *Searcher) DistanceWithinMasked(g *Graph, src, dst int, limit float64, dead []int) (float64, bool) {
	if src == dst {
		return 0, true
	}
	masked := s.mark(dead)
	g.dijkstraMasked(src, dst, limit, masked, s.scratch)
	d := s.scratch.dist[dst]
	s.scratch.reset()
	s.unmark(dead)
	if d <= limit {
		return d, true
	}
	return Inf, false
}

// BoundedDistancesMasked computes single-source shortest-path distances
// from src in g minus every edge incident to a vertex in dead, filling dst
// (length n) with the result. Vertices beyond limit — and every dead
// vertex other than src itself, which keeps distance 0 exactly as in the
// materialized masked copy — keep Inf. One call answers every surviving
// pair out of src for one fault set, the access pattern of
// VerifyFaultTolerance.
func (s *Searcher) BoundedDistancesMasked(g *Graph, src int, limit float64, dead []int, dst []float64) {
	masked := s.mark(dead)
	g.dijkstraMasked(src, -1, limit, masked, s.scratch)
	copy(dst, s.scratch.dist)
	s.scratch.reset()
	s.unmark(dead)
}

// Distances computes single-source shortest-path distances from src in g,
// filling dst (length n) with the result. Unreachable vertices get Inf.
func (s *Searcher) Distances(g *Graph, src int, dst []float64) {
	g.dijkstra(src, -1, Inf, s.scratch)
	s.lastTouched = len(s.scratch.touched)
	copy(dst, s.scratch.dist)
	s.scratch.reset()
}

// BoundedDistances is Distances with a search limit: vertices beyond limit
// keep Inf.
func (s *Searcher) BoundedDistances(g *Graph, src int, limit float64, dst []float64) {
	g.dijkstra(src, -1, limit, s.scratch)
	s.lastTouched = len(s.scratch.touched)
	copy(dst, s.scratch.dist)
	s.scratch.reset()
}

// LastTouched reports how many vertices the most recent Distances or
// BoundedDistances call reached — the search's actual work, which the
// engine benchmarks aggregate to compare full-row refreshes against the
// bounded refreshes of the hub-label fast path.
func (s *Searcher) LastTouched() int { return s.lastTouched }
