package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
)

// FaultTolerantGreedy computes an f-vertex-fault-tolerant t-spanner of a
// finite metric space using the fault-tolerant greedy algorithm of
// Czumaj–Zhao (the construction whose doubling-metrics optimality is the
// subject of the paper's citation [Sol14]): pairs are examined in
// non-decreasing distance order, and pair (u, v) is added iff there exists
// a fault set F (|F| <= f, F avoiding u and v) whose removal leaves
// delta_{H-F}(u, v) > t * d(u, v).
//
// The output H satisfies: for EVERY fault set F of at most f vertices and
// every surviving pair (u, v), delta_{H-F}(u, v) <= t * d(u, v) — the
// greedy exchange argument is identical to Algorithm 1's.
//
// Candidates are pulled from the streamed weight-bucketed supply
// (NewMetricSource) instead of a materialized, globally sorted pair list,
// so the scan's resident set is one weight bucket rather than all
// n(n-1)/2 pairs; each fault set is probed with a masked bounded search on
// the live spanner (Searcher.DistanceWithinMasked) rather than a per-set
// graph copy. The output is bit-identical to the materialize-and-copy
// reference (property-tested in faulttolerant_test.go).
//
// Checking all fault sets costs C(n, f) bounded searches per pair, so this
// implementation supports the practically relevant f in {0, 1, 2}; f = 0
// degenerates to GreedyMetric. Complexity O(n^{2+f} * search) — a
// reference implementation for experiments and audits, not a large-n tool.
func FaultTolerantGreedy(m metric.Metric, t float64, f int) (*Result, error) {
	return FaultTolerantGreedyOpts(m, t, f, FaultTolerantOptions{})
}

// FaultTolerantOptions configures FaultTolerantGreedyOpts.
type FaultTolerantOptions struct {
	// Hubs enables the hub-label fast path for the per-fault-set probes:
	// a probe is skipped when some hub h proves a surviving u-h-v path
	// within the limit whose shortest-path trees avoid every fault (see
	// HubOracle.CertifyAvoiding). Certificates are sound, so the output
	// is bit-identical for every k; <= 0 disables the oracle.
	Hubs int
	// Stats, when non-nil, is filled with probe counters.
	Stats *FaultTolerantStats

	// Ctx, when non-nil, cancels the scan: the build stops at the next
	// candidate boundary and returns the exact decided prefix (Partial
	// set) with an error wrapping ErrCancelled. Nil means no cancellation.
	Ctx context.Context
	// Budget bounds the run (here: the deadline and batch width; the
	// fault-tolerant scan holds no droppable caches beyond the hub
	// oracle, which the byte budget may shrink before allocation).
	Budget Budget
	// Inject installs fault-injection hooks; see InjectionHooks.
	Inject InjectionHooks
}

// FaultTolerantStats reports how the fault-tolerant greedy scan spent its
// effort: every fault-set probe is answered either by a hub certificate
// (no search) or by a masked bounded search.
type FaultTolerantStats struct {
	// MaskedSearches counts masked bounded Dijkstra probes run.
	MaskedSearches int
	// HubCertified counts fault-set probes the hub labels certified.
	HubCertified int
	// HubRelaxed is the hub arrays' total maintenance cost, in re-relaxed
	// entries.
	HubRelaxed int
	// Degradations records each budget-degradation step taken, in order.
	Degradations []string
}

func (st *FaultTolerantStats) degradationSink() func(string) {
	return func(step string) { st.Degradations = append(st.Degradations, step) }
}

// FaultTolerantGreedyOpts is FaultTolerantGreedy with the hub-label fast
// path and probe counters; see FaultTolerantOptions.
func FaultTolerantGreedyOpts(m metric.Metric, t float64, f int, opts FaultTolerantOptions) (*Result, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	if f < 0 || f > 2 {
		return nil, fmt.Errorf("core: fault parameter %d out of supported range [0, 2]: %w", f, graph.ErrInvalidInput)
	}
	stats := opts.Stats
	if stats == nil {
		stats = &FaultTolerantStats{}
	}
	*stats = FaultTolerantStats{}
	if f == 0 {
		return GreedyMetricFastParallelOpts(m, t, MetricParallelOptions{
			Hubs:   opts.Hubs,
			Ctx:    opts.Ctx,
			Budget: opts.Budget,
			Inject: opts.Inject,
		})
	}
	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res, nil
	}
	env := newScanEnv(opts.Ctx, opts.Budget, opts.Inject, stats.degradationSink())
	err := ftScan(m, t, f, opts, env, res, stats)
	if err != nil {
		res.Partial = true
	}
	return res, err
}

// ftScan is the fault-tolerant greedy main loop. The scan is serial, so
// cancellation is checked at batch boundaries and after each candidate's
// probes, before its accept/skip decision commits: an abandoned masked
// search can only under-report coverage (claim "not covered" spuriously),
// never fabricate a surviving path, so a decision is committed only when
// the cancel predicate — monotone — was still false after its probes ran.
// The deferred recover converts any panic (including one injected through
// OnCertify or raised during hub re-relaxation in OnAccept) into a typed
// ErrEnginePanic with the decided prefix preserved.
func ftScan(m metric.Metric, t float64, f int, opts FaultTolerantOptions, env *scanEnv, res *Result, stats *FaultTolerantStats) (err error) {
	defer capturePanic(&err)
	n := m.N()
	src := NewMetricSource(m, 0)
	h := graph.New(n)
	search := graph.NewSearcher(n)
	search.SetStop(env.stopFn())
	var oracle *HubOracle
	hubs := opts.Hubs
	if env != nil {
		resolveHubBudget(env.budget, env.record, &hubs, n)
	}
	if hubs > 0 {
		oracle = NewHubOracle(SelectMetricHubs(m, hubs), h, 0)
	}
	batch := env.clampBatch(maxBatch)
	for batchNo := 0; ; batchNo++ {
		if cerr := env.cancelled(); cerr != nil {
			return cerr
		}
		env.onBatch(batchNo, nil)
		pairs := src.NextBatch(batch)
		if len(pairs) == 0 {
			break
		}
		for _, e := range pairs {
			env.onCertify(e)
			covered := ftCovered(search, h, oracle, e, t, f, stats)
			if env.active() {
				if cerr := env.cancelled(); cerr != nil {
					return cerr
				}
			}
			if !covered {
				h.MustAddEdge(e.U, e.V, e.W)
				res.Edges = append(res.Edges, e)
				res.Weight += e.W
				if oracle != nil {
					oracle.OnAccept(e)
				}
			}
			res.EdgesExamined++
		}
	}
	if oracle != nil {
		stats.HubRelaxed = oracle.Relaxed()
	}
	return nil
}

// ftCovered reports whether, for every fault set F with |F| <= f avoiding
// e's endpoints, the current spanner minus F still connects e's endpoints
// within t*w(e). Fault sets are enumerated directly (f <= 2); each is
// probed first against the hub labels (a certificate proves a surviving
// path without any search) and only then with the reusable searcher's
// masked bounded search — no graph copy and no allocation per fault set
// (asserted by TestFaultTolerantNoGraphCopies).
func ftCovered(search *graph.Searcher, h *graph.Graph, oracle *HubOracle, e graph.Edge, t float64, f int, stats *FaultTolerantStats) bool {
	limit := t * e.W
	n := h.N()
	var buf [2]int
	probe := func(dead []int) bool {
		if oracle != nil && oracle.CertifyAvoiding(e.U, e.V, limit, dead) {
			stats.HubCertified++
			return true
		}
		stats.MaskedSearches++
		_, within := search.DistanceWithinMasked(h, e.U, e.V, limit, dead)
		return within
	}
	// F = {} must also be covered.
	if !probe(nil) {
		return false
	}
	for a := 0; a < n; a++ {
		if a == e.U || a == e.V {
			continue
		}
		buf[0] = a
		if !probe(buf[:1]) {
			return false
		}
		if f < 2 {
			continue
		}
		for b := a + 1; b < n; b++ {
			if b == e.U || b == e.V {
				continue
			}
			buf[1] = b
			if !probe(buf[:2]) {
				return false
			}
		}
	}
	return true
}

// VerifyFaultTolerance exhaustively audits that h is an f-fault-tolerant
// t-spanner of the metric m: for every fault set F with |F| <= f and every
// surviving pair, delta_{H-F} <= t * d (+eps). Supported for f in {0, 1, 2};
// returns a descriptive error on the first violation.
//
// One reusable searcher answers every fault set with masked bounded
// searches on h itself (no graph copy per set), and each single-source
// sweep stops at the largest t*d+eps radius any of its pairs needs, so
// the audit never explores past the distances it has to certify. A pair
// whose surviving distance exceeds even that radius is reported with
// distance +Inf.
func VerifyFaultTolerance(h *graph.Graph, m metric.Metric, t float64, f int, eps float64) error {
	if f < 0 || f > 2 {
		return fmt.Errorf("core: fault parameter %d out of supported range [0, 2]: %w", f, graph.ErrInvalidInput)
	}
	n := m.N()
	search := graph.NewSearcher(h.N())
	row := make([]float64, h.N())
	check := func(faults []int) error {
		isDead := func(v int) bool {
			for _, d := range faults {
				if d == v {
					return true
				}
			}
			return false
		}
		for u := 0; u < n; u++ {
			if isDead(u) {
				continue
			}
			// Early-out radius: the largest bound any pair out of u has to
			// meet; beyond it nothing needs certifying.
			limit := 0.0
			for v := u + 1; v < n; v++ {
				if isDead(v) {
					continue
				}
				if d := t*m.Dist(u, v) + eps; d > limit {
					limit = d
				}
			}
			search.BoundedDistancesMasked(h, u, limit, faults, row)
			for v := u + 1; v < n; v++ {
				if isDead(v) {
					continue
				}
				if row[v] > t*m.Dist(u, v)+eps {
					return fmt.Errorf("core: fault set %v breaks pair (%d, %d): %v > %v",
						faults, u, v, row[v], t*m.Dist(u, v))
				}
			}
		}
		return nil
	}
	if err := check(nil); err != nil {
		return err
	}
	var buf [2]int
	if f >= 1 {
		for a := 0; a < n; a++ {
			buf[0] = a
			if err := check(buf[:1]); err != nil {
				return err
			}
		}
	}
	if f >= 2 {
		for a := 0; a < n; a++ {
			buf[0] = a
			for b := a + 1; b < n; b++ {
				buf[1] = b
				if err := check(buf[:2]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
