package bench

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
)

// TestHubRegressionGuardMetricN4000 is the regression gate for the
// hub-label certification fast path: on the n=4000 Euclidean acceptance
// instance the oracle must carry at least half of the certification load
// (hub-certified skips / all certified skips) and the output must be
// bit-identical to the hubs-disabled engine, counters included. A
// selection or maintenance regression that silently starves the oracle
// shows up here as a hit-share collapse long before anyone reads a
// benchmark. Gated behind HUB_GUARD=1 because the two n=4000 builds take
// seconds; CI runs it as a dedicated step.
func TestHubRegressionGuardMetricN4000(t *testing.T) {
	if os.Getenv("HUB_GUARD") != "1" {
		t.Skip("set HUB_GUARD=1 to run the n=4000 hub-certification guard")
	}
	const n = 4000
	rng := rand.New(rand.NewSource(42))
	m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	base, err := core.GreedyMetricFastParallelOpts(m, 1.5, core.MetricParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stats core.MetricParallelStats
	res, err := core.GreedyMetricFastParallelOpts(m, 1.5, core.MetricParallelOptions{
		Workers: 1, Hubs: core.DefaultHubs(n), Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutput(base, res) || base.EdgesExamined != res.EdgesExamined {
		t.Fatalf("hub run output differs from the hubs-disabled engine")
	}
	certified := stats.CachedSkips + stats.HubSkips + stats.CertifiedSkips + stats.SerialSkips
	share := float64(stats.HubSkips) / float64(certified)
	t.Logf("hub share %.1f%% (hubSkips %d of %d certified skips), hit rate %.1f%%, %d exact refreshes",
		100*share, stats.HubSkips, certified,
		100*float64(stats.HubSkips)/float64(stats.HubQueries),
		stats.ParallelRefreshes+stats.SerialRefreshes)
	if share < 0.5 {
		t.Fatalf("hub-certified skip fraction %.3f below the 0.5 regression floor", share)
	}
}
