package verify

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/metric"
)

// MetricSpannerParallel is MetricSpanner with the per-source Dijkstra runs
// fanned out over `workers` goroutines (0 selects GOMAXPROCS). Each worker
// owns its Searcher and distance buffer; results are merged after all
// workers join. Used by the experiment harness on large audits.
func MetricSpannerParallel(h *graph.Graph, m metric.Metric, t, eps float64, workers int) (StretchReport, error) {
	n := m.N()
	if h.N() != n {
		return StretchReport{}, fmt.Errorf("verify: vertex sets differ (%d vs %d)", h.N(), n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return StretchReport{}, nil
	}

	type partial struct {
		rep StretchReport
		err error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	sources := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			search := graph.NewSearcher(n)
			dist := make([]float64, n)
			local := &parts[slot]
			for u := range sources {
				if local.err != nil {
					continue // drain remaining work after a failure
				}
				search.Distances(h, u, dist)
				for v := u + 1; v < n; v++ {
					local.rep.Pairs++
					d, want := dist[v], m.Dist(u, v)
					if d > t*want+eps {
						local.err = fmt.Errorf("verify: stretch violated at (%d, %d): %v > %v", u, v, d, t*want)
						break
					}
					if want > 0 {
						if s := d / want; s > local.rep.MaxStretch {
							local.rep.MaxStretch, local.rep.WorstU, local.rep.WorstV = s, u, v
						}
					}
				}
			}
		}(w)
	}
	for u := 0; u < n; u++ {
		sources <- u
	}
	close(sources)
	wg.Wait()

	var merged StretchReport
	for _, p := range parts {
		if p.err != nil {
			return merged, p.err
		}
		merged.Pairs += p.rep.Pairs
		if p.rep.MaxStretch > merged.MaxStretch {
			merged.MaxStretch, merged.WorstU, merged.WorstV = p.rep.MaxStretch, p.rep.WorstU, p.rep.WorstV
		}
	}
	return merged, nil
}
