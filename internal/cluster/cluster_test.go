package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBuildClustersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := gen.ErdosRenyi(rng, 50, 0.15, 0.5, 5)
	cg, err := Build(h, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() == 0 {
		t.Fatal("no clusters")
	}
	// Every vertex assigned; member within radius of its center (in H).
	for v := 0; v < h.N(); v++ {
		c := cg.Center[v]
		if c < 0 || c >= cg.Clusters() {
			t.Fatalf("vertex %d unassigned", v)
		}
		d := h.DijkstraTo(cg.Centers[c], v)
		if d > cg.Radius+1e-9 {
			t.Fatalf("vertex %d at H-distance %v > radius %v from center", v, d, cg.Radius)
		}
	}
	// Centers are their own cluster representatives.
	for ci, c := range cg.Centers {
		if cg.Center[c] != ci {
			t.Fatalf("center %d not in its own cluster", c)
		}
	}
}

func TestBuildRadiusZero(t *testing.T) {
	h := gen.Grid(3, 3)
	cg, err := Build(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() != 9 {
		t.Fatalf("radius 0: %d clusters, want 9 singletons", cg.Clusters())
	}
}

func TestBuildRejectsInvalidRadius(t *testing.T) {
	h := gen.Grid(2, 2)
	if _, err := Build(h, -1); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := Build(h, math.NaN()); err == nil {
		t.Fatal("NaN radius accepted")
	}
}

func TestQueryBoundsSandwichTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		h := gen.ErdosRenyi(rng, 40, 0.2, 0.5, 5)
		for _, r := range []float64{0.5, 1, 3} {
			cg, err := Build(h, r)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 50; q++ {
				u, v := rng.Intn(40), rng.Intn(40)
				if u == v {
					continue
				}
				lo, hi := cg.Query(u, v)
				d := h.DijkstraTo(u, v)
				if lo > d+1e-9 {
					t.Fatalf("r=%v: lower bound %v exceeds true distance %v", r, lo, d)
				}
				if hi < d-1e-9 {
					t.Fatalf("r=%v: upper bound %v below true distance %v", r, hi, d)
				}
			}
		}
	}
}

func TestQuerySameCluster(t *testing.T) {
	h := gen.Grid(3, 3)
	cg, err := Build(h, 100) // everything one cluster
	if err != nil {
		t.Fatal(err)
	}
	if cg.Clusters() != 1 {
		t.Fatalf("clusters = %d, want 1", cg.Clusters())
	}
	lo, hi := cg.Query(0, 8)
	if lo != 0 || hi != 200 {
		t.Fatalf("Query = (%v, %v), want (0, 200)", lo, hi)
	}
}

func TestUpperBoundGivesUp(t *testing.T) {
	// Path graph with distant endpoints: a small limit must report not-ok.
	h := graph.New(10)
	for i := 0; i+1 < 10; i++ {
		h.MustAddEdge(i, i+1, 1)
	}
	cg, err := Build(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := cg.UpperBound(0, 9, 3); ok {
		t.Fatalf("UpperBound = (%v, ok) under a tight limit", b)
	}
	b, ok := cg.UpperBound(0, 9, 100)
	if !ok || b != 9 {
		t.Fatalf("UpperBound with slack limit = (%v, %v), want (9, true)", b, ok)
	}
}

func TestUpperBoundIsRealizable(t *testing.T) {
	// The certified upper bound must never fall below the true spanner
	// distance, at any cluster radius.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		h := gen.ErdosRenyi(rng, 35, 0.2, 0.5, 5)
		for _, r := range []float64{0.25, 1, 4} {
			cg, err := Build(h, r)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 40; q++ {
				u, v := rng.Intn(35), rng.Intn(35)
				if u == v {
					continue
				}
				b, ok := cg.UpperBound(u, v, math.Inf(1))
				if !ok {
					continue
				}
				if d := h.DijkstraTo(u, v); b < d-1e-9 {
					t.Fatalf("r=%v: upper bound %v below true distance %v", r, b, d)
				}
			}
		}
	}
}

func TestAddEdgeUpdatesQueries(t *testing.T) {
	// Two far apart cliques; adding a bridge must slash the estimate.
	h := graph.New(6)
	h.MustAddEdge(0, 1, 1)
	h.MustAddEdge(1, 2, 1)
	h.MustAddEdge(3, 4, 1)
	h.MustAddEdge(4, 5, 1)
	h.MustAddEdge(2, 3, 100) // weak long bridge
	cg, err := Build(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	loBefore, _ := cg.Query(0, 5)
	// Simulate the spanner gaining a direct edge 0-5 of weight 5.
	cg.AddEdge(0, 5, 5)
	loAfter, _ := cg.Query(0, 5)
	if loAfter > loBefore {
		t.Fatalf("lower bound grew after AddEdge: %v -> %v", loBefore, loAfter)
	}
	if loAfter > 5 {
		t.Fatalf("lower bound %v after adding weight-5 edge", loAfter)
	}
	// Intra-cluster AddEdge is a no-op and must not panic.
	cg.AddEdge(0, 1, 0.5)
}
