package persist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Snapshot format, version 1. All integers are little-endian.
//
//	[0:8)    magic "GSPSNAP1"
//	[8:12)   u32 format version (1)
//	[12:16)  u32 section count C
//	16 + 32i  per-section table entry i: u32 id, u32 reserved,
//	          u64 offset, u64 length, u64 FNV-1a digest of the payload
//	16 + 32C  u64 header digest (FNV-1a of everything before it)
//	...      section payloads at their table offsets
//
// The header digest makes the table itself tamper-evident, and doubles as
// the snapshot's identity: the WAL header stores the digest of the whole
// snapshot file, binding log to state. Unknown format versions are
// rejected with ErrUnsupportedVersion before the table is trusted;
// everything else that fails to parse wraps core.ErrCorruptState and
// names the offending section.

const snapVersion = 1

var snapMagic = [8]byte{'G', 'S', 'P', 'S', 'N', 'A', 'P', '1'}

// Section ids. The meta section is mandatory; the rest are present per
// mode (see encode). Unknown ids in a version-1 file are a corruption.
const (
	secMeta    = 1
	secPoints  = 2
	secMatrix  = 3
	secGraph   = 4
	secIDSpace = 5
	secEdges   = 6
	secHist    = 7
	secBounds  = 8
	secHubs    = 9
)

var sectionNames = map[uint32]string{
	secMeta:    "meta",
	secPoints:  "points",
	secMatrix:  "matrix",
	secGraph:   "graph",
	secIDSpace: "idspace",
	secEdges:   "edges",
	secHist:    "histogram",
	secBounds:  "bounds",
	secHubs:    "hubs",
}

// maxDecodeElems bounds every element count a decoder trusts before
// allocating (stable-id capacity, vertex count, hub count, ...): a fuzzed
// or corrupted header must not be able to demand an allocation unrelated
// to the input's size. Real states beyond this need a format bump.
const maxDecodeElems = 1 << 21

// ErrUnsupportedVersion reports a snapshot or WAL whose format version
// this build does not understand.
var ErrUnsupportedVersion = errors.New("persist: unsupported format version")

// ErrNoState reports a directory with no snapshot to recover from.
var ErrNoState = errors.New("persist: no snapshot found")

// ErrSimulatedCrash reports that an injected crash hook fired (see Hooks);
// the Durable is dead and the directory holds the crash point's surviving
// disk state.
var ErrSimulatedCrash = errors.New("persist: simulated crash injected")

// corruptf builds a decode/validation error wrapping core.ErrCorruptState.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("persist: "+format+": %w", append(args, core.ErrCorruptState)...)
}

// fnv1a is the repo's standard FNV-1a 64 digest over raw bytes.
func fnv1a(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// SnapshotDigest is the identity digest of an encoded snapshot, stored in
// the bound WAL's header.
func SnapshotDigest(data []byte) uint64 { return fnv1a(data) }

// buf is the append-only little-endian encoder.
type buf struct{ b []byte }

func (w *buf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *buf) u32(v uint32) { w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
func (w *buf) u64(v uint64) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *buf) u16(v uint16)  { w.b = append(w.b, byte(v), byte(v>>8)) }
func (w *buf) f64(v float64) { w.u64(math.Float64bits(v)) }

// rdr is the bounds-checked little-endian decoder over one section
// payload; the first short read poisons it and every later read fails.
type rdr struct {
	b    []byte
	pos  int
	sec  string
	fail error
}

func (r *rdr) errTruncated() error {
	if r.fail == nil {
		r.fail = corruptf("section %s truncated at byte %d", r.sec, r.pos)
	}
	return r.fail
}

func (r *rdr) take(n int) []byte {
	if r.fail != nil || n < 0 || r.pos+n > len(r.b) {
		r.errTruncated()
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *rdr) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rdr) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *rdr) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *rdr) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *rdr) f64() float64 { return math.Float64frombits(r.u64()) }

// count reads an element count and checks it against the global ceiling
// and the bytes actually remaining (each element needs at least per
// bytes), so no corrupted count can demand an out-of-proportion
// allocation.
func (r *rdr) count(what string, per int) (int, error) {
	v := r.u64()
	if r.fail != nil {
		return 0, r.fail
	}
	if v > maxDecodeElems {
		r.fail = corruptf("section %s: %s count %d exceeds limit %d", r.sec, what, v, maxDecodeElems)
		return 0, r.fail
	}
	n := int(v)
	if per > 0 && n > (len(r.b)-r.pos)/per {
		r.fail = corruptf("section %s: %s count %d exceeds remaining payload", r.sec, what, n)
		return 0, r.fail
	}
	return n, nil
}

// done checks the payload was consumed exactly; trailing garbage in a
// digested section means the writer and reader disagree on the format.
func (r *rdr) done() error {
	if r.fail != nil {
		return r.fail
	}
	if r.pos != len(r.b) {
		return corruptf("section %s has %d trailing bytes", r.sec, len(r.b)-r.pos)
	}
	return nil
}

// snapMeta is the decoded meta section: everything scalar about the
// state, plus the WAL op sequence number the snapshot was taken at.
type snapMeta struct {
	graphMode  bool
	metricKind core.MetricKind
	policy     core.IncrementalPolicy
	t          float64
	opSeq      uint64
	capN       int
	liveN      int
	dim        int
	graphN     int
	examined   int
	weight     float64
	hubEpoch   int
	hubsResel  int
}

// EncodeSnapshot serializes an exported state (with the WAL position
// opSeq it corresponds to) into the version-1 snapshot format. Encoding
// is deterministic: the same state always produces the same bytes, which
// is what lets golden files guard format drift byte-for-byte.
func EncodeSnapshot(st *core.SpannerState, opSeq uint64) []byte {
	type section struct {
		id      uint32
		payload []byte
	}
	var secs []section
	add := func(id uint32, w *buf) { secs = append(secs, section{id, w.b}) }

	meta := &buf{}
	if st.GraphMode {
		meta.u8(1)
	} else {
		meta.u8(0)
	}
	meta.u8(uint8(st.MetricKind))
	if st.Policy.CoalesceUntilQuery {
		meta.u8(1)
	} else {
		meta.u8(0)
	}
	meta.u64(uint64(st.Policy.MinBatch))
	meta.f64(st.T)
	meta.u64(opSeq)
	meta.u64(uint64(st.Cap))
	meta.u64(uint64(len(st.Live)))
	meta.u64(uint64(st.Dim))
	meta.u64(uint64(st.GraphN))
	meta.u64(uint64(st.EdgesExamined))
	meta.f64(st.Weight)
	meta.u64(uint64(st.HubEpoch))
	meta.u64(uint64(st.HubsReselected))
	add(secMeta, meta)

	edges := &buf{}
	edges.u64(uint64(len(st.Edges)))
	for _, e := range st.Edges {
		edges.u64(uint64(e.U))
		edges.u64(uint64(e.V))
		edges.f64(e.W)
	}
	add(secEdges, edges)

	if st.GraphMode {
		gw := &buf{}
		gw.u64(uint64(len(st.GraphEdges)))
		for _, e := range st.GraphEdges {
			gw.u64(uint64(e.U))
			gw.u64(uint64(e.V))
			gw.f64(e.W)
		}
		add(secGraph, gw)
	} else {
		ids := &buf{}
		for _, sid := range st.Live {
			ids.u64(uint64(sid))
		}
		add(secIDSpace, ids)
		switch st.MetricKind {
		case core.MetricEuclidean:
			pw := &buf{}
			for _, c := range st.Coords {
				pw.f64(c)
			}
			add(secPoints, pw)
		default:
			mw := &buf{}
			for _, c := range st.Matrix {
				mw.f64(c)
			}
			add(secMatrix, mw)
		}
		hw := &buf{}
		hw.u64(uint64(len(st.HistExp)))
		for i, e := range st.HistExp {
			hw.u32(uint32(e))
			hw.u64(uint64(st.HistCount[i]))
		}
		hw.u64(uint64(st.HistZeros))
		hw.u64(uint64(st.HistInfs))
		add(secHist, hw)

		bw := &buf{}
		for _, ep := range st.BoundEpochs {
			bw.u64(uint64(ep))
		}
		materialized := 0
		for _, row := range st.BoundRows {
			if row != nil {
				materialized++
			}
		}
		bw.u64(uint64(materialized))
		for u, row := range st.BoundRows {
			if row == nil {
				continue
			}
			bw.u64(uint64(u))
			for _, h := range row {
				bw.u16(h)
			}
		}
		add(secBounds, bw)
	}

	if len(st.Hubs) > 0 {
		hw := &buf{}
		hw.u64(uint64(len(st.Hubs)))
		for _, h := range st.Hubs {
			hw.u64(uint64(h))
		}
		for _, row := range st.HubRows {
			for _, x := range row {
				hw.f64(x)
			}
		}
		add(secHubs, hw)
	}

	// Assemble: header, table, header digest, payloads.
	tableEnd := 16 + 32*len(secs)
	out := &buf{b: make([]byte, 0, tableEnd+8+totalLen(secs, func(s section) int { return len(s.payload) }))}
	out.b = append(out.b, snapMagic[:]...)
	out.u32(snapVersion)
	out.u32(uint32(len(secs)))
	off := uint64(tableEnd + 8)
	for _, s := range secs {
		out.u32(s.id)
		out.u32(0)
		out.u64(off)
		out.u64(uint64(len(s.payload)))
		out.u64(fnv1a(s.payload))
		off += uint64(len(s.payload))
	}
	out.u64(fnv1a(out.b))
	for _, s := range secs {
		out.b = append(out.b, s.payload...)
	}
	return out.b
}

// totalLen sums a per-section length without generics noise.
func totalLen[T any](xs []T, f func(T) int) int {
	n := 0
	for _, x := range xs {
		n += f(x)
	}
	return n
}

// DecodeSnapshot parses and digest-verifies a version-1 snapshot,
// returning the state and the WAL op sequence it was taken at. Arbitrary
// input bytes produce a typed error — ErrUnsupportedVersion for a foreign
// version, otherwise an error wrapping core.ErrCorruptState naming the
// offending section — never a panic or an allocation out of proportion to
// the input. The returned state is structurally plausible but not deeply
// validated; core.ImportIncremental owns semantic validation.
func DecodeSnapshot(data []byte) (*core.SpannerState, uint64, error) {
	if len(data) < 16 {
		return nil, 0, corruptf("snapshot header truncated (%d bytes)", len(data))
	}
	var magic [8]byte
	copy(magic[:], data[:8])
	if magic != snapMagic {
		return nil, 0, corruptf("bad snapshot magic %q", string(magic[:]))
	}
	version := leU32(data[8:])
	if version != snapVersion {
		return nil, 0, fmt.Errorf("persist: snapshot format version %d (this build reads %d): %w", version, snapVersion, ErrUnsupportedVersion)
	}
	nsec := leU32(data[12:])
	if nsec > uint32(len(data)/32) {
		return nil, 0, corruptf("section table of %d entries exceeds file size", nsec)
	}
	tableEnd := 16 + 32*int(nsec)
	if tableEnd+8 > len(data) {
		return nil, 0, corruptf("section table truncated")
	}
	if leU64(data[tableEnd:]) != fnv1a(data[:tableEnd]) {
		return nil, 0, corruptf("header digest mismatch")
	}
	sections := make(map[uint32][]byte, nsec)
	for i := 0; i < int(nsec); i++ {
		ent := data[16+32*i:]
		id := leU32(ent)
		name := sectionNames[id]
		if name == "" {
			return nil, 0, corruptf("unknown section id %d", id)
		}
		if _, dup := sections[id]; dup {
			return nil, 0, corruptf("section %s listed twice", name)
		}
		off, length := leU64(ent[8:]), leU64(ent[16:])
		if off < uint64(tableEnd+8) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, 0, corruptf("section %s range [%d, +%d) outside file", name, off, length)
		}
		payload := data[off : off+length]
		if fnv1a(payload) != leU64(ent[24:]) {
			return nil, 0, corruptf("section %s digest mismatch", name)
		}
		sections[id] = payload
	}
	need := func(id uint32) (*rdr, error) {
		p, ok := sections[id]
		if !ok {
			return nil, corruptf("section %s missing", sectionNames[id])
		}
		return &rdr{b: p, sec: sectionNames[id]}, nil
	}

	mr, err := need(secMeta)
	if err != nil {
		return nil, 0, err
	}
	var meta snapMeta
	meta.graphMode = mr.u8() != 0
	meta.metricKind = core.MetricKind(mr.u8())
	meta.policy.CoalesceUntilQuery = mr.u8() != 0
	minBatch := mr.u64()
	meta.t = mr.f64()
	meta.opSeq = mr.u64()
	capN := mr.u64()
	liveN := mr.u64()
	dim := mr.u64()
	graphN := mr.u64()
	examined := mr.u64()
	meta.weight = mr.f64()
	hubEpoch := mr.u64()
	hubsResel := mr.u64()
	if err := mr.done(); err != nil {
		return nil, 0, err
	}
	for _, c := range []struct {
		name string
		v    uint64
	}{{"capacity", capN}, {"live count", liveN}, {"dimension", dim}, {"vertex count", graphN},
		{"min batch", minBatch}, {"hub epoch", hubEpoch}, {"hub reselections", hubsResel}} {
		if c.v > maxDecodeElems {
			return nil, 0, corruptf("section meta: %s %d exceeds limit %d", c.name, c.v, maxDecodeElems)
		}
	}
	if examined > math.MaxInt64/2 {
		return nil, 0, corruptf("section meta: examined count overflows")
	}
	meta.capN, meta.liveN, meta.dim, meta.graphN = int(capN), int(liveN), int(dim), int(graphN)
	meta.examined = int(examined)
	meta.hubEpoch, meta.hubsResel = int(hubEpoch), int(hubsResel)
	meta.policy.MinBatch = int(minBatch)

	st := &core.SpannerState{
		T:              meta.t,
		GraphMode:      meta.graphMode,
		Policy:         meta.policy,
		MetricKind:     meta.metricKind,
		Cap:            meta.capN,
		Dim:            meta.dim,
		GraphN:         meta.graphN,
		Weight:         meta.weight,
		EdgesExamined:  meta.examined,
		HubEpoch:       meta.hubEpoch,
		HubsReselected: meta.hubsResel,
	}

	er, err := need(secEdges)
	if err != nil {
		return nil, 0, err
	}
	if st.Edges, err = decodeEdgeList(er); err != nil {
		return nil, 0, err
	}

	if meta.graphMode {
		gr, err := need(secGraph)
		if err != nil {
			return nil, 0, err
		}
		if st.GraphEdges, err = decodeEdgeList(gr); err != nil {
			return nil, 0, err
		}
	} else {
		if err := decodeMetricSections(st, meta, sections, need); err != nil {
			return nil, 0, err
		}
	}

	if hp, ok := sections[secHubs]; ok {
		hr := &rdr{b: hp, sec: "hubs"}
		rowLen := meta.capN
		if meta.graphMode {
			rowLen = meta.graphN
		}
		k, err := hr.count("hub", 8)
		if err != nil {
			return nil, 0, err
		}
		st.Hubs = make([]int, k)
		for i := range st.Hubs {
			v := hr.u64()
			if v > maxDecodeElems {
				return nil, 0, corruptf("section hubs: hub id %d out of range", v)
			}
			st.Hubs[i] = int(v)
		}
		if k > 0 && (rowLen > (len(hp)-hr.pos)/8/k) {
			return nil, 0, corruptf("section hubs: %d rows of %d entries exceed payload", k, rowLen)
		}
		st.HubRows = make([][]float64, k)
		for i := range st.HubRows {
			row := make([]float64, rowLen)
			for v := range row {
				row[v] = hr.f64()
			}
			st.HubRows[i] = row
		}
		if err := hr.done(); err != nil {
			return nil, 0, err
		}
	}
	return st, meta.opSeq, nil
}

// decodeMetricSections fills the metric-mode sections: idspace, the point
// payload (coordinates or matrix), the histogram, and the bound store.
func decodeMetricSections(st *core.SpannerState, meta snapMeta, sections map[uint32][]byte, need func(uint32) (*rdr, error)) error {
	ir, err := need(secIDSpace)
	if err != nil {
		return err
	}
	if len(ir.b) != 8*meta.liveN {
		return corruptf("section idspace has %d bytes, want %d live ids", len(ir.b), meta.liveN)
	}
	st.Live = make([]int, meta.liveN)
	for i := range st.Live {
		v := ir.u64()
		if v > maxDecodeElems {
			return corruptf("section idspace: live id %d out of range", v)
		}
		st.Live[i] = int(v)
	}
	if err := ir.done(); err != nil {
		return err
	}

	switch meta.metricKind {
	case core.MetricEuclidean:
		pr, err := need(secPoints)
		if err != nil {
			return err
		}
		if meta.dim == 0 || meta.liveN > len(pr.b)/8/max(meta.dim, 1) {
			return corruptf("section points: %d points x dim %d exceed payload", meta.liveN, meta.dim)
		}
		st.Coords = make([]float64, meta.liveN*meta.dim)
		for i := range st.Coords {
			st.Coords[i] = pr.f64()
		}
		if err := pr.done(); err != nil {
			return err
		}
	default:
		// Any other kind reaches core.ImportIncremental, which rejects
		// unknown kinds; the matrix payload decodes for MetricMatrix.
		mr, err := need(secMatrix)
		if err != nil {
			return err
		}
		if meta.liveN > 0 && meta.liveN > len(mr.b)/8/meta.liveN {
			return corruptf("section matrix: %d x %d entries exceed payload", meta.liveN, meta.liveN)
		}
		st.Matrix = make([]float64, meta.liveN*meta.liveN)
		for i := range st.Matrix {
			st.Matrix[i] = mr.f64()
		}
		if err := mr.done(); err != nil {
			return err
		}
	}

	hr, err := need(secHist)
	if err != nil {
		return err
	}
	nb, err := hr.count("bucket", 12)
	if err != nil {
		return err
	}
	st.HistExp = make([]int32, nb)
	st.HistCount = make([]int64, nb)
	for i := range st.HistExp {
		st.HistExp[i] = int32(hr.u32())
		c := hr.u64()
		if c > math.MaxInt64/2 {
			return corruptf("section histogram: bucket %d count overflows", i)
		}
		st.HistCount[i] = int64(c)
	}
	zeros, infs := hr.u64(), hr.u64()
	if zeros > math.MaxInt64/2 || infs > math.MaxInt64/2 {
		return corruptf("section histogram: tally overflows")
	}
	st.HistZeros, st.HistInfs = int64(zeros), int64(infs)
	if err := hr.done(); err != nil {
		return err
	}

	br, err := need(secBounds)
	if err != nil {
		return err
	}
	if meta.capN > len(br.b)/8 {
		return corruptf("section bounds: %d epochs exceed payload", meta.capN)
	}
	st.BoundEpochs = make([]int, meta.capN)
	for u := range st.BoundEpochs {
		v := br.u64()
		if v > maxDecodeElems {
			return corruptf("section bounds: epoch %d out of range", v)
		}
		st.BoundEpochs[u] = int(v)
	}
	st.BoundRows = make([][]uint16, meta.capN)
	materialized, err := br.count("row", 8)
	if err != nil {
		return err
	}
	for i := 0; i < materialized; i++ {
		u := br.u64()
		if u >= uint64(meta.capN) {
			return corruptf("section bounds: row vertex %d outside capacity %d", u, meta.capN)
		}
		if br.fail == nil && meta.capN > (len(br.b)-br.pos)/2 {
			return corruptf("section bounds: row of %d entries exceeds payload", meta.capN)
		}
		row := make([]uint16, meta.capN)
		for v := range row {
			row[v] = br.u16()
		}
		if br.fail != nil {
			return br.fail
		}
		if st.BoundRows[u] != nil {
			return corruptf("section bounds: row %d listed twice", u)
		}
		st.BoundRows[u] = row
	}
	return br.done()
}

// decodeEdgeList reads a u64-counted edge list (u, v, weight bits).
func decodeEdgeList(r *rdr) ([]graph.Edge, error) {
	n, err := r.count("edge", 24)
	if err != nil {
		return nil, err
	}
	edges := make([]graph.Edge, n)
	for i := range edges {
		u, v := r.u64(), r.u64()
		w := r.f64()
		if u > maxDecodeElems || v > maxDecodeElems {
			return nil, corruptf("section %s: edge %d endpoints out of range", r.sec, i)
		}
		edges[i] = graph.Edge{U: int(u), V: int(v), W: w}
	}
	return edges, r.done()
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
