package framework

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the module root from this test file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// TestLoadTypeChecksCore proves the export-data loader stands in for
// go/packages: internal/core type-checks from source with its std and
// in-module imports resolved, and the type info answers the questions the
// analyzers ask (selections, uses, expression types).
func TestLoadTypeChecksCore(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Pkg.Path() != "repro/internal/core" {
		t.Fatalf("loaded %d packages, want exactly repro/internal/core", len(pkgs))
	}
	unit := pkgs[0]
	if len(unit.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// The analyzers lean on Info.Types for range operands; check a map
	// type and a method selection resolve.
	var sawMapRange, sawSelection bool
	for _, f := range unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := unit.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						sawMapRange = true
					}
				}
			case *ast.SelectorExpr:
				if unit.Info.Selections[n] != nil {
					sawSelection = true
				}
			}
			return true
		})
	}
	if !sawMapRange {
		t.Error("no range-over-map resolved in internal/core; type info incomplete")
	}
	if !sawSelection {
		t.Error("no method selection resolved; type info incomplete")
	}
}

// TestLoadComments proves comments survive parsing, which the suppression
// index depends on.
func TestLoadComments(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/analysis/framework")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, unit := range pkgs {
		for _, f := range unit.Files {
			if len(f.Comments) > 0 {
				return
			}
		}
	}
	t.Error("no comments parsed")
}
