package persist

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
)

// TestLockSecondOpenRejected proves the single-writer guarantee: while a
// Durable holds a directory, a second Open (and a second Create) on the
// same directory must fail fast with ErrLocked rather than interleave WAL
// writes. Closing the holder releases the directory.
func TestLockSecondOpenRejected(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	d := newEuclidDurable(t, dir, o)

	if _, err := Open(dir, o); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}
	inc, err := core.NewIncrementalMetric(mustEuclid(t, euclidPts()[:8]), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, inc, o); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Create: %v, want ErrLocked", err)
	}

	want := mustDigest(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer d2.Close()
	if got := mustDigest(t, d2); got != want {
		t.Fatalf("digest %x after lock release reopen, want %x", got, want)
	}
}

// TestLockStaleRecovery plants lock files no live process can own — a pid
// far above the kernel's pid ceiling, and plain garbage as a torn-write
// stand-in — and verifies Open breaks them and recovers. A lock naming a
// provably live pid (our own) must still be honored.
func TestLockStaleRecovery(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	d := newEuclidDurable(t, dir, o)
	want := mustDigest(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		content string
	}{
		{"dead-pid", fmt.Sprintf("%d\n", 1<<30)}, // above linux pid_max: cannot be alive
		{"garbage", "not-a-pid\x00\xff"},         // torn write during the holder's crash
		{"empty", ""},
	} {
		if err := os.WriteFile(lockPath(dir), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		d2, err := Open(dir, o)
		if err != nil {
			t.Fatalf("%s: Open with stale lock: %v", tc.name, err)
		}
		if got := mustDigest(t, d2); got != want {
			t.Fatalf("%s: digest %x after stale-lock recovery, want %x", tc.name, got, want)
		}
		if err := d2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A live pid is not stale, even when the file was planted by hand.
	if err := os.WriteFile(lockPath(dir), fmt.Appendf(nil, "%d\n", os.Getpid()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, o); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open with live-pid lock: %v, want ErrLocked", err)
	}
	releaseLock(dir)
}

// TestLockReleasedOnFailedOpen verifies an Open that fails after taking
// the lock (here: an empty directory, ErrNoState) does not leave the
// directory wedged for the next caller.
func TestLockReleasedOnFailedOpen(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	if _, err := Open(dir, o); !errors.Is(err, ErrNoState) {
		t.Fatalf("Open empty dir: %v, want ErrNoState", err)
	}
	if _, err := os.Stat(lockPath(dir)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock left behind by failed Open: %v", err)
	}
	// The directory is immediately creatable.
	d := newEuclidDurable(t, dir, o)
	d.Close()
}

// TestLockDroppedOnSimulatedCrash verifies a Durable killed by a crash
// hook releases the directory the way a real crash does (stale pidfile,
// breakable): recovery in the same process must not see ErrLocked.
func TestLockDroppedOnSimulatedCrash(t *testing.T) {
	dir := t.TempDir()
	o := Options{Metric: core.MetricParallelOptions{Workers: 1}}
	d := newEuclidDurable(t, dir, o)
	want := mustDigest(t, d)

	step := 0
	d.o.Hooks.Crash = func(seq int, label string) bool { step++; return step == 1 }
	if err := d.Insert(mustEuclid(t, euclidPts()[:9])); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("Insert under crash hook: %v, want ErrSimulatedCrash", err)
	}

	d2, err := Open(dir, Options{Metric: o.Metric})
	if err != nil {
		t.Fatalf("Open after simulated crash: %v", err)
	}
	defer d2.Close()
	if got := mustDigest(t, d2); got != want {
		t.Fatalf("digest %x after crash recovery, want %x", got, want)
	}
}
