package main

import "testing"

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// e1 is deterministic and fast; it exercises the full path through
	// table rendering.
	if err := run([]string{"-exp", "e1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallAblation(t *testing.T) {
	if err := run([]string{"-exp", "a2", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}
