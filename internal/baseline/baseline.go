// Package baseline implements the competing spanner constructions used in
// the experimental comparison (experiment E6, reproducing the folklore from
// [FG05, Far08] that the paper cites: greedy is roughly 10x sparser and 30x
// lighter than other popular constructions): Θ-graphs and Yao graphs for
// planar point sets, the WSPD spanner for any dimension, and the
// Baswana–Sen randomized (2k-1)-spanner for general weighted graphs.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metric"
)

// ThetaGraph builds the Θ-graph on 2-D points with k >= 4 cones per point:
// each point connects to, in every cone of angle 2π/k around it, the point
// whose projection onto the cone's bisector is nearest. The result is a
// t-spanner for t = 1 / (cos θ - sin θ) with θ = 2π/k (finite for k >= 9).
// O(k n^2) time (a simple scan; the classic O(n log n) sweep is not needed
// at benchmark scale).
func ThetaGraph(pts [][]float64, k int) (*graph.Graph, error) {
	if err := check2D(pts); err != nil {
		return nil, err
	}
	if k < 4 {
		return nil, fmt.Errorf("baseline: theta graph needs k >= 4 cones, got %d", k)
	}
	n := len(pts)
	g := graph.New(n)
	theta := 2 * math.Pi / float64(k)
	for i := 0; i < n; i++ {
		// best[c] is the index minimizing projection length in cone c.
		best := make([]int, k)
		bestProj := make([]float64, k)
		for c := range best {
			best[c] = -1
			bestProj[c] = math.Inf(1)
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pts[j][0] - pts[i][0]
			dy := pts[j][1] - pts[i][1]
			ang := math.Atan2(dy, dx)
			if ang < 0 {
				ang += 2 * math.Pi
			}
			c := int(ang / theta)
			if c >= k {
				c = k - 1
			}
			// Projection onto the cone bisector.
			bis := (float64(c) + 0.5) * theta
			proj := dx*math.Cos(bis) + dy*math.Sin(bis)
			if proj < bestProj[c] {
				bestProj[c] = proj
				best[c] = j
			}
		}
		for _, j := range best {
			if j >= 0 && !g.HasEdge(i, j) {
				g.MustAddEdge(i, j, geom.Dist(pts[i], pts[j]))
			}
		}
	}
	return g, nil
}

// YaoGraph builds the Yao graph on 2-D points with k >= 4 cones: each point
// connects to the nearest point (by Euclidean distance) in each cone. A
// t-spanner for t = 1/(1 - 2 sin(π/k)) once k > 6. O(k n^2).
func YaoGraph(pts [][]float64, k int) (*graph.Graph, error) {
	if err := check2D(pts); err != nil {
		return nil, err
	}
	if k < 4 {
		return nil, fmt.Errorf("baseline: yao graph needs k >= 4 cones, got %d", k)
	}
	n := len(pts)
	g := graph.New(n)
	theta := 2 * math.Pi / float64(k)
	for i := 0; i < n; i++ {
		best := make([]int, k)
		bestD := make([]float64, k)
		for c := range best {
			best[c] = -1
			bestD[c] = math.Inf(1)
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pts[j][0] - pts[i][0]
			dy := pts[j][1] - pts[i][1]
			ang := math.Atan2(dy, dx)
			if ang < 0 {
				ang += 2 * math.Pi
			}
			c := int(ang / theta)
			if c >= k {
				c = k - 1
			}
			if d := math.Hypot(dx, dy); d < bestD[c] {
				bestD[c] = d
				best[c] = j
			}
		}
		for _, j := range best {
			if j >= 0 && !g.HasEdge(i, j) {
				g.MustAddEdge(i, j, geom.Dist(pts[i], pts[j]))
			}
		}
	}
	return g, nil
}

func check2D(pts [][]float64) error {
	if len(pts) == 0 {
		return fmt.Errorf("baseline: no points")
	}
	for i, p := range pts {
		if len(p) != 2 {
			return fmt.Errorf("baseline: point %d has dim %d, want 2", i, len(p))
		}
	}
	return nil
}

// WSPDSpanner builds a (1+eps)-spanner from a well-separated pair
// decomposition with separation s = 4(t+1)/(t-1), t = 1+eps: one edge
// between representatives per pair. Works in any dimension; O(s^d n) edges.
func WSPDSpanner(pts [][]float64, eps float64) (*graph.Graph, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("baseline: eps must be positive, got %v", eps)
	}
	tree, err := geom.BuildSplitTree(pts)
	if err != nil {
		return nil, err
	}
	t := 1 + eps
	s := 4 * (t + 1) / (t - 1)
	g := graph.New(len(pts))
	for _, pr := range tree.WSPD(s) {
		u, v := pr.A.Rep, pr.B.Rep
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, geom.Dist(pts[u], pts[v]))
		}
	}
	return g, nil
}

// BaswanaSen runs the randomized (2k-1)-spanner algorithm of Baswana and
// Sen (ICALP'03 / RSA'07) on a weighted graph: k-1 clustering phases with
// sampling probability n^{-1/k}, then a vertex-cluster joining phase. The
// output is always a (2k-1)-spanner; its expected size is O(k n^{1+1/k}).
func BaswanaSen(rng *rand.Rand, g *graph.Graph, k int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	n := g.N()
	out := graph.New(n)
	if k == 1 {
		// (2*1-1)=1-spanner: keep everything.
		for _, e := range g.Edges() {
			out.MustAddEdge(e.U, e.V, e.W)
		}
		return out, nil
	}
	p := math.Pow(float64(n), -1.0/float64(k))

	// cluster[v] = center of v's cluster at the current level, or -1 if v
	// has been discarded from the clustering.
	cluster := make([]int, n)
	for v := range cluster {
		cluster[v] = v
	}
	// Live edge set, pruned as the algorithm discards covered edges.
	type edge = graph.Edge
	live := g.EdgesCopy()

	addEdge := func(e edge) {
		if !out.HasEdge(e.U, e.V) {
			out.MustAddEdge(e.U, e.V, e.W)
		}
	}

	// buildAdj groups, for every vertex, the lightest live edge into each
	// adjacent cluster (keyed by cluster center). O(m) per phase.
	buildAdj := func(live []edge, cluster []int) []map[int]edge {
		adj := make([]map[int]edge, n)
		at := func(v, o int, e edge) {
			c := cluster[o]
			if c < 0 {
				return
			}
			if adj[v] == nil {
				adj[v] = make(map[int]edge)
			}
			if cur, ok := adj[v][c]; !ok || e.W < cur.W {
				adj[v][c] = e
			}
		}
		for _, e := range live {
			at(e.U, e.V, e)
			at(e.V, e.U, e)
		}
		return adj
	}

	for phase := 1; phase <= k-1; phase++ {
		// Sample cluster centers.
		sampled := make(map[int]bool)
		centers := make(map[int]bool)
		for v := 0; v < n; v++ {
			if c := cluster[v]; c >= 0 {
				centers[c] = true
			}
		}
		for c := range centers {
			if rng.Float64() < p {
				sampled[c] = true
			}
		}
		next := make([]int, n)
		for v := range next {
			next[v] = -1
		}
		// Vertices in sampled clusters stay put.
		for v := 0; v < n; v++ {
			if c := cluster[v]; c >= 0 && sampled[c] {
				next[v] = c
			}
		}
		var stillLive []edge
		discard := make(map[[2]int]bool) // (vertex, cluster) pairs whose edges die
		discardVertex := make([]bool, n) // vertices leaving the clustering entirely
		adjAll := buildAdj(live, cluster)
		for v := 0; v < n; v++ {
			if cluster[v] < 0 || sampled[cluster[v]] {
				continue
			}
			adj := adjAll[v]
			// Find the lightest edge into a sampled adjacent cluster.
			bestC, bestE := -1, edge{W: math.Inf(1)}
			for c, e := range adj {
				if sampled[c] && e.W < bestE.W {
					bestC, bestE = c, e
				}
			}
			if bestC < 0 {
				// Not adjacent to any sampled cluster: add the lightest edge
				// to every adjacent cluster; v leaves the clustering and all
				// its incident edges are removed (each is now covered via
				// the added cluster edges).
				for _, e := range adj {
					addEdge(e)
				}
				discardVertex[v] = true
			} else {
				// Join the sampled cluster via the lightest edge; also add
				// the lighter-than-bestE edges to other clusters.
				addEdge(bestE)
				next[v] = bestC
				discard[[2]int{v, bestC}] = true
				for c, e := range adj {
					if c != bestC && e.W < bestE.W {
						addEdge(e)
						discard[[2]int{v, c}] = true
					}
				}
			}
		}
		// Prune live edges: drop edges covered by this phase's additions
		// (edges from v into clusters v connected to) and intra-cluster
		// edges of the new clustering.
		for _, e := range live {
			if discardVertex[e.U] || discardVertex[e.V] {
				continue
			}
			cu, cv := cluster[e.U], cluster[e.V]
			if discard[[2]int{e.U, cv}] || discard[[2]int{e.V, cu}] {
				continue
			}
			nu, nv := next[e.U], next[e.V]
			if nu >= 0 && nu == nv {
				continue // intra-cluster at the new level
			}
			stillLive = append(stillLive, e)
		}
		live = stillLive
		cluster = next
	}

	// Phase 2: every still-clustered vertex adds its lightest edge to each
	// adjacent cluster.
	adjAll := buildAdj(live, cluster)
	for v := 0; v < n; v++ {
		for _, e := range adjAll[v] {
			addEdge(e)
		}
	}
	return out, nil
}

// BaswanaSenMetric runs BaswanaSen on the complete distance graph of a
// metric, the form used in the E6 comparison table.
func BaswanaSenMetric(rng *rand.Rand, m metric.Metric, k int) (*graph.Graph, error) {
	return BaswanaSen(rng, metric.CompleteGraph(m), k)
}
