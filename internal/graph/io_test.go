package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 25, 40)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: N %d->%d, M %d->%d", g.N(), back.N(), g.M(), back.M())
	}
	if back.Weight() != g.Weight() {
		t.Fatalf("round trip weight %v -> %v", g.Weight(), back.Weight())
	}
	// Edge multiset must match.
	a, b := g.SortedEdges(), back.SortedEdges()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEdgeListIsolatedVertices(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 {
		t.Fatalf("isolated vertices lost: N = %d, want 5", back.N())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 1\n",          // too few fields
		"a 1 2\n",        // bad vertex
		"0 b 2\n",        // bad vertex
		"0 1 x\n",        // bad weight
		"# n 2\n0 5 1\n", // id exceeds declared count
		"0 0 1\n",        // self loop rejected by AddEdge
		"0 1 -3\n",       // negative weight rejected by AddEdge
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n0 1 2.5\n"))
	if err != nil || g.M() != 1 {
		t.Fatalf("benign input rejected: %v", err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1.5)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph demo {", "0 -- 1", "1.5", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "graph G {") {
		t.Fatal("default name not applied")
	}
}

func TestComputeStats(t *testing.T) {
	g := pathGraph(5)
	s := g.ComputeStats()
	if s.N != 5 || s.M != 4 || s.Weight != 4 {
		t.Fatalf("basic stats wrong: %+v", s)
	}
	if s.MaxDegree != 2 || s.AvgDegree != 1.6 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if s.Diameter != 4 || s.HopRadius != 4 || s.Components != 1 {
		t.Fatalf("distance stats wrong: %+v", s)
	}
	disc := New(3)
	ds := disc.ComputeStats()
	if ds.Components != 3 || !isInf(ds.Diameter) {
		t.Fatalf("disconnected stats wrong: %+v", ds)
	}
}

func isInf(v float64) bool { return v > 1e300 }

func TestDegreeHistogram(t *testing.T) {
	g := pathGraph(4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if len(h) != 3 || h[0] != 0 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestWeightQuantiles(t *testing.T) {
	g := New(6)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, i+1, float64(i+1))
	}
	qs := g.WeightQuantiles(1) // median
	if len(qs) != 1 || qs[0] != 3 {
		t.Fatalf("median = %v, want [3]", qs)
	}
	if g.WeightQuantiles(0) != nil || New(2).WeightQuantiles(3) != nil {
		t.Fatal("degenerate quantiles should be nil")
	}
}

func TestAPSPParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, workers := range []int{0, 1, 3, 16} {
		g := randomConnectedGraph(rng, 40, 80)
		serial := g.APSP()
		parallel := g.APSPParallel(workers)
		for i := range serial {
			for j := range serial[i] {
				if serial[i][j] != parallel[i][j] {
					t.Fatalf("workers=%d: APSP mismatch at (%d, %d)", workers, i, j)
				}
			}
		}
	}
	if got := New(0).APSPParallel(4); len(got) != 0 {
		t.Fatal("empty graph APSPParallel wrong")
	}
}

func TestSearcherMatchesGraphMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnectedGraph(rng, 30, 60)
	s := NewSearcher(g.N())
	dist := make([]float64, g.N())
	for trial := 0; trial < 20; trial++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		want := g.DijkstraTo(u, v)
		if got, ok := s.DistanceWithin(g, u, v, Inf); !ok || got != want {
			t.Fatalf("DistanceWithin(%d,%d) = %v, want %v", u, v, got, want)
		}
		limit := want / 2
		if u != v {
			if _, ok := s.DistanceWithin(g, u, v, limit); ok && limit < want {
				t.Fatalf("DistanceWithin accepted beyond limit")
			}
		}
		s.Distances(g, u, dist)
		full := g.Dijkstra(u)
		for x := range dist {
			if dist[x] != full.Dist[x] {
				t.Fatalf("Distances mismatch at %d", x)
			}
		}
	}
}
