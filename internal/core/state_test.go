package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
)

// driveMetric applies a fixed mixed op stream (inserts, deletes, a policy
// switch, queries) to a maintained metric spanner, keeping alive/pool in
// sync, and returns the updated bookkeeping. The stream is deterministic
// so an original and an imported spanner can be driven identically.
func driveMetric(t *testing.T, inc *IncrementalSpanner, uni metric.Metric, alive []int, pool int, label string) ([]int, int) {
	t.Helper()
	step := func(err error, what string) {
		if err != nil {
			t.Fatalf("%s: %s: %v", label, what, err)
		}
	}
	for _, k := range []int{2, 1} {
		if pool+k > uni.N() {
			break
		}
		for j := 0; j < k; j++ {
			alive = append(alive, pool+j)
		}
		pool += k
		step(inc.Insert(restrictMetric(uni, alive)), "insert")
	}
	if len(alive) > 3 {
		dense := []int{1, len(alive) - 2}
		step(inc.Delete(dense...), "delete")
		alive = deleteAt(alive, dense)
	}
	step(inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true}), "policy")
	if pool < uni.N() {
		alive = append(alive, pool)
		pool++
		step(inc.Insert(restrictMetric(uni, alive)), "insert")
	}
	if len(alive) > 2 {
		step(inc.Delete(0), "delete")
		alive = deleteAt(alive, []int{0})
	}
	return alive, pool
}

// TestStateRoundTripMetric exports a maintained metric spanner mid-life,
// imports it, and drives both through an identical further op stream:
// every quiesce point must be digest-identical, across the trace
// universes (tie-heavy Euclidean, random Euclidean, +Inf matrix) and an
// option matrix covering hubs and guarded rows.
func TestStateRoundTripMetric(t *testing.T) {
	for kind := 0; kind < 3; kind++ {
		for ci, opts := range []MetricParallelOptions{
			{Workers: 1},
			{Workers: 2, Hubs: 4},
			{Workers: 1, Hubs: 3, GuardRows: true},
		} {
			label := fmt.Sprintf("kind%d/opts%d", kind, ci)
			uni := traceMetric(kind)
			alive := []int{0, 1, 2, 3, 4, 5, 6, 7}
			pool := len(alive)
			inc, err := NewIncrementalMetric(restrictMetric(uni, alive), 1.6, opts)
			if err != nil {
				t.Fatalf("%s: build: %v", label, err)
			}
			alive, pool = driveMetric(t, inc, uni, alive, pool, label)
			st, err := inc.ExportState()
			if err != nil {
				t.Fatalf("%s: export: %v", label, err)
			}
			if inc.Pending() != 0 {
				t.Fatalf("%s: export left %d ops pending", label, inc.Pending())
			}
			opts2 := opts
			imp, err := ImportIncremental(st, opts2, ParallelOptions{})
			if err != nil {
				t.Fatalf("%s: import: %v", label, err)
			}
			if g, w := resultDigest(mustResult(t, imp)), resultDigest(mustResult(t, inc)); g != w {
				t.Fatalf("%s: imported digest %x, want %x", label, g, w)
			}
			if g, w := imp.LiveN(), inc.LiveN(); g != w {
				t.Fatalf("%s: imported LiveN %d, want %d", label, g, w)
			}
			if g, w := imp.Policy(), inc.Policy(); g != w {
				t.Fatalf("%s: imported policy %+v, want %+v", label, g, w)
			}
			// Drive both spanners onward identically; the digests must
			// stay locked at every step, proving the imported candidate
			// bookkeeping (histogram, stable ids, bound epochs, hub set)
			// is the original's, not merely result-equal.
			a2, p2 := driveMetric(t, inc, uni, append([]int(nil), alive...), pool, label+"/orig")
			b2, q2 := driveMetric(t, imp, uni, append([]int(nil), alive...), pool, label+"/imported")
			if len(a2) != len(b2) || p2 != q2 {
				t.Fatalf("%s: drive diverged", label)
			}
			got, want := mustResult(t, imp), mustResult(t, inc)
			equalResults(t, label+"/after-drive", want, got)
			if g, w := resultDigest(got), resultDigest(want); g != w {
				t.Fatalf("%s: post-drive digest %x, want %x", label, g, w)
			}
		}
	}
}

// TestStateRoundTripGraph is the graph-mode twin: export/import a
// maintained graph spanner and drive both through identical further edge
// updates.
func TestStateRoundTripGraph(t *testing.T) {
	g := graph.New(10)
	for i := 0; i < 9; i++ {
		g.MustAddEdge(i, i+1, float64(1+i%3))
	}
	g.MustAddEdge(0, 9, 7)
	g.MustAddEdge(2, 7, 2.5)
	for _, opts := range []ParallelOptions{{Workers: 1}, {Workers: 2, Hubs: 3}} {
		label := fmt.Sprintf("hubs%d", opts.Hubs)
		inc, err := NewIncrementalGraph(g, 1.5, opts)
		if err != nil {
			t.Fatalf("%s: build: %v", label, err)
		}
		if err := inc.InsertEdges(graph.Edge{U: 3, V: 8, W: 1.25}); err != nil {
			t.Fatalf("%s: insert: %v", label, err)
		}
		if err := inc.DeleteEdges(graph.Edge{U: 0, V: 9, W: 7}); err != nil {
			t.Fatalf("%s: delete: %v", label, err)
		}
		st, err := inc.ExportState()
		if err != nil {
			t.Fatalf("%s: export: %v", label, err)
		}
		if !st.GraphMode {
			t.Fatalf("%s: exported state not graph mode", label)
		}
		imp, err := ImportIncremental(st, MetricParallelOptions{}, opts)
		if err != nil {
			t.Fatalf("%s: import: %v", label, err)
		}
		if g, w := resultDigest(mustResult(t, imp)), resultDigest(mustResult(t, inc)); g != w {
			t.Fatalf("%s: imported digest %x, want %x", label, g, w)
		}
		more := []graph.Edge{{U: 1, V: 6, W: 1.75}, {U: 4, V: 9, W: 3.5}}
		for _, s := range []*IncrementalSpanner{inc, imp} {
			if err := s.InsertEdges(more...); err != nil {
				t.Fatalf("%s: post-import insert: %v", label, err)
			}
			if err := s.DeleteEdges(graph.Edge{U: 2, V: 7, W: 2.5}); err != nil {
				t.Fatalf("%s: post-import delete: %v", label, err)
			}
		}
		equalResults(t, label+"/after-drive", mustResult(t, inc), mustResult(t, imp))
	}
}

// TestStateExportFlushesPending: exporting under a coalescing policy
// flushes the deferred replay first, so the state never contains pending
// operations.
func TestStateExportFlushesPending(t *testing.T) {
	uni := traceMetric(1)
	alive := []int{0, 1, 2, 3, 4, 5}
	inc, err := NewIncrementalMetric(restrictMetric(uni, alive), 1.6, MetricParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
		t.Fatal(err)
	}
	alive = append(alive, 6, 7)
	if err := inc.Insert(restrictMetric(uni, alive)); err != nil {
		t.Fatal(err)
	}
	if inc.Pending() == 0 {
		t.Fatal("setup: expected pending ops under coalescing policy")
	}
	st, err := inc.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if inc.Pending() != 0 {
		t.Fatalf("export left %d ops pending", inc.Pending())
	}
	if len(st.Edges) == 0 || st.Cap != 8 {
		t.Fatalf("exported state looks unflushed: %d edges, cap %d", len(st.Edges), st.Cap)
	}
}

// TestImportRejectsCorruptState: structural violations in an exported
// state surface as ErrCorruptState, never as a panic or a silently wrong
// spanner.
func TestImportRejectsCorruptState(t *testing.T) {
	uni := traceMetric(1)
	alive := []int{0, 1, 2, 3, 4, 5, 6}
	build := func() *SpannerState {
		inc, err := NewIncrementalMetric(restrictMetric(uni, alive), 1.6, MetricParallelOptions{Workers: 1, Hubs: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Delete(2); err != nil {
			t.Fatal(err)
		}
		st, err := inc.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cases := []struct {
		name string
		mut  func(st *SpannerState)
	}{
		{"live id out of range", func(st *SpannerState) { st.Live[0] = st.Cap }},
		{"live ids unsorted", func(st *SpannerState) { st.Live[0], st.Live[1] = st.Live[1], st.Live[0] }},
		{"edge endpoint dead", func(st *SpannerState) { st.Edges[0].U = 2 }},
		{"edge out of order", func(st *SpannerState) {
			st.Edges[0], st.Edges[len(st.Edges)-1] = st.Edges[len(st.Edges)-1], st.Edges[0]
		}},
		{"weight mismatch", func(st *SpannerState) { st.Weight *= 2 }},
		{"negative examined", func(st *SpannerState) { st.EdgesExamined = -1 }},
		{"histogram drift", func(st *SpannerState) { st.HistZeros += 3 }},
		{"coords truncated", func(st *SpannerState) { st.Coords = st.Coords[:len(st.Coords)-1] }},
		{"metric kind unknown", func(st *SpannerState) { st.MetricKind = 99 }},
		{"bound rows missing", func(st *SpannerState) { st.BoundRows = st.BoundRows[:1] }},
		{"bound row short", func(st *SpannerState) {
			for u := range st.BoundRows {
				if st.BoundRows[u] != nil {
					st.BoundRows[u] = st.BoundRows[u][:1]
					return
				}
			}
		}},
		{"bound epoch beyond accepted", func(st *SpannerState) {
			for u := range st.BoundRows {
				if st.BoundRows[u] != nil {
					st.BoundEpochs[u] = len(st.Edges) + 1
					return
				}
			}
		}},
		{"hub out of range", func(st *SpannerState) { st.Hubs[0] = -1 }},
		{"hub duplicated", func(st *SpannerState) { st.Hubs[0] = st.Hubs[1] }},
		{"hub epoch drift", func(st *SpannerState) { st.HubEpoch++ }},
		{"hub row short", func(st *SpannerState) { st.HubRows[0] = st.HubRows[0][:1] }},
		{"hub row NaN", func(st *SpannerState) { st.HubRows[0][0] = nan() }},
	}
	for _, tc := range cases {
		st := build()
		tc.mut(st)
		if _, err := ImportIncremental(st, MetricParallelOptions{Workers: 1}, ParallelOptions{}); !errors.Is(err, ErrCorruptState) {
			t.Errorf("%s: got %v, want ErrCorruptState", tc.name, err)
		}
	}
	// A pristine state still imports: the corruption cases above are not
	// rejecting everything.
	if _, err := ImportIncremental(build(), MetricParallelOptions{Workers: 1}, ParallelOptions{}); err != nil {
		t.Errorf("pristine state rejected: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
