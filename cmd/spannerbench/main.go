// Command spannerbench runs the experiment suite E1–E10 (DESIGN.md) that
// reproduces every figure, corollary, and cited empirical claim of "The
// Greedy Spanner is Existentially Optimal" (Filtser & Solomon, PODC 2016),
// and prints the result tables.
//
// Usage:
//
//	spannerbench [-exp all|e1|...|e12|a1..a5|ablations|greedybench|greedymetricbench|pairstreambench|incrementalbench|dynamicbench|persistbench|servebench] [-scale small|full] [-seed N]
//
// The "full" scale is what EXPERIMENTS.md records; "small" finishes in a
// few seconds.
//
// -exp greedybench times the sequential greedy scan against the
// batched-parallel graph engine (repeated runs, median + spread, outputs
// compared edge-for-edge) and writes the machine-readable report to the
// -json path (default BENCH_greedy.json).
//
// -exp greedymetricbench does the same for the metric path: the serial
// cached-bound scan against the batched-parallel metric engine on
// Euclidean and graph-induced metrics, writing BENCH_greedymetric.json by
// default. -workers restricts its parallel sweep to one worker count
// (0 sweeps 1, 4, and GOMAXPROCS). Both engine benchmarks also record
// runtime.MemStats peak/total allocation per configuration.
//
// -exp pairstreambench isolates the candidate-supply ablation: the same
// metric engine fed by the materialized, globally sorted pair list vs the
// streamed weight-bucketed supply, with peak/total allocation recorded,
// writing BENCH_pairstream.json by default. -workers selects the engine
// worker count (default 1).
//
// -exp incrementalbench times the maintained incremental spanner against
// the rebuild-per-insert policy (one from-scratch build per inserted
// point): amortized per-insert cost, peak/total allocation for both,
// the coalescing policy's amortization of fine-grained insert streams,
// and edge-for-edge identity of the final spanner, writing
// BENCH_incremental.json by default. -workers selects the engine worker
// count (default 1).
//
// -exp dynamicbench times the fully dynamic maintained spanner against
// the rebuild-per-op policy (one from-scratch build at n per operation):
// insert-only and delete-only batches amortized over the updated points,
// and a mixed 80/10/10 query/insert/delete trace under the coalescing
// policy, with every final spanner checked edge-for-edge against the
// from-scratch build on its survivors, writing BENCH_dynamic.json by
// default. -workers selects the engine worker count (default 1).
//
// -exp hubbench times the hub-label certification fast path against the
// hubs-disabled engines on the graph, metric, and incremental acceptance
// instances: wall-clock, exact searches avoided, hub hit rate and load
// share, maintenance cost, and peak/total allocation, with outputs
// compared edge-for-edge (counters included), writing BENCH_hub.json by
// default. -workers selects the engine worker count (default 1); -hubs
// overrides the enabled run's hub count (default: auto per instance).
//
// -exp persistbench times the durability layer: snapshot save (export +
// encode + atomic fsynced write), warm start from a snapshot versus a
// from-scratch build, the amortized cost of a logged fsynced dynamic
// operation, and a full recovery that replays a WAL tail, with every
// loaded and recovered spanner checked against the original result
// digest, writing BENCH_persist.json by default. -workers selects the
// engine worker count (default 1).
//
// -exp servebench measures spannerd's serving layer over live HTTP:
// read throughput and tail latency against the RCU snapshot, a mixed
// scenario with durable mutations republishing snapshots under live
// readers, and an overload scenario against a deliberately undersized
// admission configuration where excess load must be shed with typed
// 503s — a response outside {200, typed shed} anywhere is a failure.
// Writes BENCH_serve.json by default. -workers selects the engine
// worker count (default 1).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	// SIGINT/SIGTERM cancel the benchmark context: the engine benchmarks
	// abort between repetitions (and mid-scan inside the parallel
	// engines), nothing partial is written, and any previous BENCH_*.json
	// is left intact because reports are written via temp file + rename.
	// After the first signal default handling is restored, so a second
	// signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "spannerbench: interrupted; partial results discarded, previous BENCH_*.json reports left intact")
		}
		fmt.Fprintln(os.Stderr, "spannerbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("spannerbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: all, e1..e12, a1..a5, ablations, greedybench, greedymetricbench, pairstreambench, incrementalbench, dynamicbench, hubbench, persistbench, servebench")
	scaleFlag := fs.String("scale", "small", "experiment scale: small or full")
	seed := fs.Int64("seed", 42, "random seed for workload generation")
	jsonPath := fs.String("json", "", "output path for the greedybench/greedymetricbench report (default BENCH_greedy.json / BENCH_greedymetric.json)")
	reps := fs.Int("reps", 3, "repetitions per timing in greedybench/greedymetricbench (min 3)")
	workers := fs.Int("workers", 0, "metric-path workers for greedymetricbench (0 = sweep 1, 4, GOMAXPROCS)")
	hubCount := fs.Int("hubs", 0, "hub count for hubbench's enabled run (<= 0 = auto per instance)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale bench.Scale
	switch strings.ToLower(*scaleFlag) {
	case "small":
		scale = bench.Small
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", *scaleFlag)
	}

	type runner func() (*bench.Table, error)
	runners := map[string]runner{
		"e1":  func() (*bench.Table, error) { return bench.E1Figure1() },
		"e2":  func() (*bench.Table, error) { return bench.E2GeneralGraphs(scale, *seed) },
		"e3":  func() (*bench.Table, error) { return bench.E3SelfSpanner(scale, *seed+1) },
		"e4":  func() (*bench.Table, error) { return bench.E4DoublingLightness(scale, *seed+2) },
		"e5":  func() (*bench.Table, error) { return bench.E5ApproxGreedy(scale, *seed+3) },
		"e6":  func() (*bench.Table, error) { return bench.E6Comparison(scale, *seed+4) },
		"e7":  func() (*bench.Table, error) { return bench.E7MSTContainment(scale, *seed+5) },
		"e8":  func() (*bench.Table, error) { return bench.E8LogStretch(scale, *seed+6) },
		"e9":  func() (*bench.Table, error) { return bench.E9UnboundedDegree(scale) },
		"e10": func() (*bench.Table, error) { return bench.E10Lemma11(scale, *seed+7) },
		"e11": func() (*bench.Table, error) { return bench.E11FaultTolerance(scale, *seed+10) },
		"e12": func() (*bench.Table, error) { return bench.E12GraphFamilies(scale, *seed+11) },
		"a1":  func() (*bench.Table, error) { return bench.A1Deputies(scale) },
		"a2":  func() (*bench.Table, error) { return bench.A2BucketWidth(scale, *seed+8) },
		"a3":  func() (*bench.Table, error) { return bench.A3Certification(scale, *seed+9) },
		"a4":  func() (*bench.Table, error) { return bench.A4ParallelBatchWidth(scale, *seed+12) },
		"a5":  func() (*bench.Table, error) { return bench.A5MetricBatchWidth(scale, *seed+13) },
	}

	// The engine benchmarks print their table and additionally write a
	// machine-readable JSON report.
	writeReport := func(defaultPath string, tab *bench.Table, report interface{ WriteJSON(string) error }, err error) error {
		if err != nil {
			return err
		}
		path := *jsonPath
		if path == "" {
			path = defaultPath
		}
		tab.Fprint(os.Stdout)
		if err := report.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "\nwrote %s\n", path)
		return nil
	}

	name := strings.ToLower(*exp)
	if name == "greedybench" {
		tab, report, err := bench.GreedyBench(ctx, scale, *seed, *reps)
		return writeReport("BENCH_greedy.json", tab, report, err)
	}
	if name == "greedymetricbench" {
		if *workers < 0 {
			return fmt.Errorf("-workers must be >= 0 (0 sweeps 1, 4, GOMAXPROCS)")
		}
		tab, report, err := bench.GreedyMetricBench(ctx, scale, *seed, *reps, *workers)
		return writeReport("BENCH_greedymetric.json", tab, report, err)
	}
	if name == "pairstreambench" {
		tab, report, err := bench.PairStreamBench(ctx, scale, *seed, *reps, *workers)
		return writeReport("BENCH_pairstream.json", tab, report, err)
	}
	if name == "incrementalbench" {
		tab, report, err := bench.IncrementalBench(ctx, scale, *seed, *reps, *workers)
		return writeReport("BENCH_incremental.json", tab, report, err)
	}
	if name == "dynamicbench" {
		tab, report, err := bench.DynamicBench(ctx, scale, *seed, *reps, *workers)
		return writeReport("BENCH_dynamic.json", tab, report, err)
	}
	if name == "hubbench" {
		tab, report, err := bench.HubBench(ctx, scale, *seed, *reps, *workers, *hubCount)
		return writeReport("BENCH_hub.json", tab, report, err)
	}
	if name == "persistbench" {
		tab, report, err := bench.PersistBench(ctx, scale, *seed, *reps, *workers)
		return writeReport("BENCH_persist.json", tab, report, err)
	}
	if name == "servebench" {
		tab, report, err := bench.ServeBench(ctx, scale, *seed, *workers)
		return writeReport("BENCH_serve.json", tab, report, err)
	}
	if name == "all" || name == "ablations" {
		var (
			tabs []*bench.Table
			err  error
		)
		if name == "all" {
			tabs, err = bench.All(scale, *seed)
			if err == nil {
				var abl []*bench.Table
				abl, err = bench.Ablations(scale, *seed+8)
				tabs = append(tabs, abl...)
			}
		} else {
			tabs, err = bench.Ablations(scale, *seed+8)
		}
		for _, t := range tabs {
			t.Fprint(os.Stdout)
		}
		return err
	}
	r, ok := runners[name]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want all, e1..e12, a1..a5, ablations, greedybench, greedymetricbench, pairstreambench, incrementalbench, dynamicbench, hubbench, persistbench, or servebench)", *exp)
	}
	tab, err := r()
	if err != nil {
		return err
	}
	tab.Fprint(os.Stdout)
	return nil
}
