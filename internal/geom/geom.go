// Package geom provides the computational-geometry substrate for the
// Euclidean spanner constructions: axis-aligned bounding boxes, a fair
// split tree (Callahan–Kosaraju), the well-separated pair decomposition
// (WSPD) built on it, and the grid pair enumerator that produces the
// distance buckets of the streamed greedy candidate supply without
// touching farther pairs. Works in any dimension d >= 1.
package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned box given by per-dimension [Lo, Hi] intervals.
type Rect struct {
	Lo, Hi []float64
}

// NewRect returns the degenerate box at point p.
func NewRect(p []float64) Rect {
	lo := append([]float64(nil), p...)
	hi := append([]float64(nil), p...)
	return Rect{Lo: lo, Hi: hi}
}

// Extend grows r to include point p.
func (r *Rect) Extend(p []float64) {
	for k := range p {
		if p[k] < r.Lo[k] {
			r.Lo[k] = p[k]
		}
		if p[k] > r.Hi[k] {
			r.Hi[k] = p[k]
		}
	}
}

// LongestSide returns the dimension and length of the box's longest side.
func (r Rect) LongestSide() (dim int, length float64) {
	for k := range r.Lo {
		if l := r.Hi[k] - r.Lo[k]; l > length {
			dim, length = k, l
		}
	}
	return dim, length
}

// Diameter returns the box diagonal length, an upper bound on the diameter
// of any point set inside.
func (r Rect) Diameter() float64 {
	var s float64
	for k := range r.Lo {
		d := r.Hi[k] - r.Lo[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// Center returns the box center.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Lo))
	for k := range c {
		c[k] = (r.Lo[k] + r.Hi[k]) / 2
	}
	return c
}

// Dist returns the L2 distance between points a and b.
func Dist(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// SplitTree is a fair split tree over a point set: each internal node splits
// its points at the midpoint of the longest side of their bounding box.
type SplitTree struct {
	Pts   [][]float64
	Root  *SplitNode
	nodes int
}

// SplitNode is one node of a split tree. Leaves hold exactly one point.
type SplitNode struct {
	// Idx are the indices (into the tree's point slice) covered by this node.
	Idx []int
	// Box is the bounding box of the node's points.
	Box Rect
	// Rep is the index of a representative point (the first one).
	Rep int
	// Left, Right are nil for leaves.
	Left, Right *SplitNode
}

// IsLeaf reports whether the node holds a single point.
func (n *SplitNode) IsLeaf() bool { return n.Left == nil }

// BuildSplitTree constructs a fair split tree over pts. All points must
// share one dimension; duplicate points are rejected because they make the
// midpoint split non-terminating.
func BuildSplitTree(pts [][]float64) (*SplitTree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("geom: no points")
	}
	d := len(pts[0])
	seen := make(map[string]bool, len(pts))
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("geom: point %d has dim %d, want %d", i, len(p), d)
		}
		key := fmt.Sprint(p)
		if seen[key] {
			return nil, fmt.Errorf("geom: duplicate point %v", p)
		}
		seen[key] = true
	}
	t := &SplitTree{Pts: pts}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.build(idx)
	return t, nil
}

func (t *SplitTree) build(idx []int) *SplitNode {
	t.nodes++
	box := NewRect(t.Pts[idx[0]])
	for _, i := range idx[1:] {
		box.Extend(t.Pts[i])
	}
	n := &SplitNode{Idx: idx, Box: box, Rep: idx[0]}
	if len(idx) == 1 {
		return n
	}
	dim, _ := box.LongestSide()
	mid := (box.Lo[dim] + box.Hi[dim]) / 2
	var left, right []int
	for _, i := range idx {
		if t.Pts[i][dim] <= mid {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	// With distinct points and the longest-side midpoint, both halves are
	// non-empty except for pathological ties; guard by moving one point.
	if len(left) == 0 {
		left, right = right[:1], right[1:]
	} else if len(right) == 0 {
		right, left = left[:1], left[1:]
	}
	n.Left = t.build(left)
	n.Right = t.build(right)
	return n
}

// Nodes reports the number of nodes in the tree.
func (t *SplitTree) Nodes() int { return t.nodes }

// Pair is one well-separated pair: every point of A is at distance at least
// s * max(diam(A), diam(B)) from every point of B, where s is the
// separation the WSPD was built with.
type Pair struct {
	A, B *SplitNode
}

// WSPD computes a well-separated pair decomposition with separation s > 0:
// a set of pairs such that every unordered pair of distinct points is
// covered by exactly one pair. The number of pairs is O(s^d * n) for fixed
// dimension d.
func (t *SplitTree) WSPD(s float64) []Pair {
	var out []Pair
	var findPairs func(a, b *SplitNode)
	wellSeparated := func(a, b *SplitNode) bool {
		r := math.Max(a.Box.Diameter(), b.Box.Diameter())
		// Distance between box centers minus radii lower-bounds the
		// inter-set distance; use it conservatively.
		d := Dist(a.Box.Center(), b.Box.Center()) - a.Box.Diameter()/2 - b.Box.Diameter()/2
		return d >= s*r
	}
	findPairs = func(a, b *SplitNode) {
		if wellSeparated(a, b) {
			out = append(out, Pair{A: a, B: b})
			return
		}
		// Split the node with the larger box.
		if a.Box.Diameter() < b.Box.Diameter() {
			a, b = b, a
		}
		if a.IsLeaf() {
			// Both are leaves at the same point? Impossible with distinct
			// points; but two distinct single points are always separated
			// for any finite s only if distance >= 0 = s*0. diam = 0 so
			// wellSeparated(a,b) held above. Unreachable; guard anyway.
			out = append(out, Pair{A: a, B: b})
			return
		}
		findPairs(a.Left, b)
		findPairs(a.Right, b)
	}
	var selfPairs func(n *SplitNode)
	selfPairs = func(n *SplitNode) {
		if n.IsLeaf() {
			return
		}
		selfPairs(n.Left)
		selfPairs(n.Right)
		findPairs(n.Left, n.Right)
	}
	selfPairs(t.Root)
	return out
}
