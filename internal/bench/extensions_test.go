package bench

import "testing"

func TestE11FaultToleranceSmall(t *testing.T) {
	tab, err := E11FaultTolerance(Small, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (f = 0, 1, 2)", len(tab.Rows))
	}
	prevEdges := -1
	for _, row := range tab.Rows {
		if row[6] != "yes" {
			t.Fatalf("fault-tolerance audit failed: %v", row)
		}
		e := atoiMust(t, row[3])
		if e < prevEdges {
			t.Fatalf("edges decreased with larger f: %v", tab.Rows)
		}
		prevEdges = e
	}
	// f = 1 requires min degree >= 2.
	if atoiMust(t, tab.Rows[1][5]) < 2 {
		t.Fatalf("1-FT spanner has min degree < 2: %v", tab.Rows[1])
	}
}

func TestE12GraphFamiliesSmall(t *testing.T) {
	tab, err := E12GraphFamilies(Small, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 families x 2 stretches)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[6] != "yes" {
			t.Fatalf("Lemma 3 failed on %v", row)
		}
	}
}
