package persist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// WAL format, version 1. All integers are little-endian.
//
// Header (40 bytes, written atomically when the generation is created):
//
//	[0:8)    magic "GSPWAL01"
//	[8:12)   u32 format version (1)
//	[12:16)  u32 reserved
//	[16:24)  u64 generation number
//	[24:32)  u64 digest of the bound snapshot's file bytes
//	[32:40)  u64 FNV-1a digest of bytes [0:32)
//
// The snapshot digest binds the log to the exact state it extends: a WAL
// paired with the wrong snapshot (a partially-completed checkpoint, a
// hand-copied file) is rejected rather than replayed onto a state it was
// never logged against.
//
// Records follow, each {u32 payload length, u64 FNV-1a payload digest,
// payload}. The digest makes torn appends self-delimiting: a crash
// mid-append leaves a record whose digest cannot verify, and recovery
// truncates the log at that exact prefix. Payloads start with an op byte:
//
//	1 insert points   u64 k, then k*dim coordinate f64s
//	2 insert matrix   u64 k, u64 base, then for z in [0,k) the f64
//	                  distances from element base+z to elements [0,base+z)
//	3 delete          u64 c, then c u64 dense positions
//	4 insert edges    u64 c, then c of {u64 u, u64 v, f64 w}
//	5 delete edges    same shape as insert edges
//	6 flush           (no fields)
//	7 set policy      u8 coalesce flag, u64 min batch
const walVersion = 1

var walMagic = [8]byte{'G', 'S', 'P', 'W', 'A', 'L', '0', '1'}

const walHeaderLen = 40

// walRecHdrLen is the fixed prefix of every record: u32 length + u64 digest.
const walRecHdrLen = 12

// maxWalRecord bounds a single record's payload; a torn length field must
// not be able to claim the rest of the file is one record.
const maxWalRecord = 1 << 28

const (
	walInsertPoints = 1
	walInsertMatrix = 2
	walDelete       = 3
	walInsertEdges  = 4
	walDeleteEdges  = 5
	walFlush        = 6
	walPolicy       = 7
)

// walOp is one decoded log record: exactly one of the payload groups is
// populated, per kind.
type walOp struct {
	kind   byte
	coords []float64    // walInsertPoints: k*dim coordinates, point-major
	k      int          // walInsertPoints / walInsertMatrix: insertion count
	base   int          // walInsertMatrix: dense size before the insert
	rows   [][]float64  // walInsertMatrix: row z holds base+z distances
	dense  []int        // walDelete: dense positions, as passed to Delete
	edges  []graph.Edge // walInsertEdges / walDeleteEdges
	policy core.IncrementalPolicy
}

// encodeWalHeader builds the 40-byte generation header.
func encodeWalHeader(gen uint64, snapDigest uint64) []byte {
	w := &buf{b: make([]byte, 0, walHeaderLen)}
	w.b = append(w.b, walMagic[:]...)
	w.u32(walVersion)
	w.u32(0)
	w.u64(gen)
	w.u64(snapDigest)
	w.u64(fnv1a(w.b))
	return w.b
}

// decodeWalHeader verifies a generation header and returns the generation
// and bound snapshot digest.
func decodeWalHeader(data []byte) (gen, snapDigest uint64, err error) {
	if len(data) < walHeaderLen {
		return 0, 0, corruptf("wal header truncated (%d bytes)", len(data))
	}
	var magic [8]byte
	copy(magic[:], data[:8])
	if magic != walMagic {
		return 0, 0, corruptf("bad wal magic %q", string(magic[:]))
	}
	if v := leU32(data[8:]); v != walVersion {
		return 0, 0, fmt.Errorf("persist: wal format version %d (this build reads %d): %w", v, walVersion, ErrUnsupportedVersion)
	}
	if leU64(data[32:]) != fnv1a(data[:32]) {
		return 0, 0, corruptf("wal header digest mismatch")
	}
	return leU64(data[16:]), leU64(data[24:]), nil
}

// encodeWalRecord wraps an op payload in the length+digest record frame.
func encodeWalRecord(op walOp) []byte {
	p := &buf{}
	p.u8(op.kind)
	switch op.kind {
	case walInsertPoints:
		p.u64(uint64(op.k))
		for _, c := range op.coords {
			p.f64(c)
		}
	case walInsertMatrix:
		p.u64(uint64(op.k))
		p.u64(uint64(op.base))
		for _, row := range op.rows {
			for _, d := range row {
				p.f64(d)
			}
		}
	case walDelete:
		p.u64(uint64(len(op.dense)))
		for _, d := range op.dense {
			p.u64(uint64(d))
		}
	case walInsertEdges, walDeleteEdges:
		p.u64(uint64(len(op.edges)))
		for _, e := range op.edges {
			p.u64(uint64(e.U))
			p.u64(uint64(e.V))
			p.f64(e.W)
		}
	case walPolicy:
		if op.policy.CoalesceUntilQuery {
			p.u8(1)
		} else {
			p.u8(0)
		}
		p.u64(uint64(op.policy.MinBatch))
	case walFlush:
		// no fields
	default:
		panic("persist: encodeWalRecord: unknown op kind")
	}
	w := &buf{b: make([]byte, 0, walRecHdrLen+len(p.b))}
	w.u32(uint32(len(p.b)))
	w.u64(fnv1a(p.b))
	w.b = append(w.b, p.b...)
	return w.b
}

// decodeWalPayload parses one digest-verified record payload. dim is the
// snapshot's ambient dimension (0 outside Euclidean mode); a structurally
// invalid payload — which a torn write cannot produce once the digest
// verified — is a corruption, not a truncation.
func decodeWalPayload(payload []byte, dim int) (walOp, error) {
	r := &rdr{b: payload, sec: "wal record"}
	op := walOp{kind: r.u8()}
	switch op.kind {
	case walInsertPoints:
		k, err := r.count("point", max(8*dim, 1))
		if err != nil {
			return op, err
		}
		if dim == 0 {
			return op, corruptf("wal insert-points record in a dimensionless state")
		}
		op.k = k
		op.coords = make([]float64, k*dim)
		for i := range op.coords {
			op.coords[i] = r.f64()
		}
	case walInsertMatrix:
		k, err := r.count("row", 0)
		if err != nil {
			return op, err
		}
		base := r.u64()
		if base > maxDecodeElems {
			return op, corruptf("wal record: matrix base %d exceeds limit", base)
		}
		op.k, op.base = k, int(base)
		// Total distance count k*base + k*(k-1)/2 must fit the payload.
		rem := (len(payload) - r.pos) / 8
		if k > 0 && (op.base > rem/k || k*op.base+k*(k-1)/2 > rem) {
			return op, corruptf("wal record: %d matrix rows exceed payload", k)
		}
		op.rows = make([][]float64, k)
		for z := range op.rows {
			row := make([]float64, op.base+z)
			for i := range row {
				row[i] = r.f64()
			}
			op.rows[z] = row
		}
	case walDelete:
		c, err := r.count("position", 8)
		if err != nil {
			return op, err
		}
		op.dense = make([]int, c)
		for i := range op.dense {
			v := r.u64()
			if v > maxDecodeElems {
				return op, corruptf("wal record: delete position %d exceeds limit", v)
			}
			op.dense[i] = int(v)
		}
	case walInsertEdges, walDeleteEdges:
		var err error
		if op.edges, err = decodeEdgeList(r); err != nil {
			return op, err
		}
		return op, nil // decodeEdgeList already consumed exactly
	case walPolicy:
		op.policy.CoalesceUntilQuery = r.u8() != 0
		mb := r.u64()
		if mb > maxDecodeElems {
			return op, corruptf("wal record: min batch %d exceeds limit", mb)
		}
		op.policy.MinBatch = int(mb)
	case walFlush:
		// no fields
	default:
		if r.fail != nil {
			return op, r.fail
		}
		return op, corruptf("wal record: unknown op kind %d", op.kind)
	}
	return op, r.done()
}

// scanWal splits a WAL file's bytes into the verified header plus the
// longest valid record prefix. A torn or digest-failing record ends the
// scan: validLen is the byte offset of the first invalid record (i.e. the
// length recovery truncates the file to), and records holds only the
// still-undecoded verified payloads. Structural validity of each payload
// is the replayer's to check — this layer only proves the bytes were
// completely written.
func scanWal(data []byte) (gen, snapDigest uint64, records [][]byte, validLen int64, err error) {
	gen, snapDigest, err = decodeWalHeader(data)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	pos := walHeaderLen
	for {
		if pos+walRecHdrLen > len(data) {
			break
		}
		n := int(leU32(data[pos:]))
		if n > maxWalRecord || pos+walRecHdrLen+n > len(data) {
			break
		}
		payload := data[pos+walRecHdrLen : pos+walRecHdrLen+n]
		if fnv1a(payload) != leU64(data[pos+4:]) {
			break
		}
		records = append(records, payload)
		pos += walRecHdrLen + n
	}
	return gen, snapDigest, records, int64(pos), nil
}
