package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Header:  []string{"a", "long-header"},
		Caption: "caption here",
	}
	tab.AddRow("1", "2")
	tab.AddRow("333333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "long-header", "333333", "caption here"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestE1Figure1(t *testing.T) {
	tab, err := E1Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	// Greedy keeps 15 H-edges; the star is a valid 3-spanner with 9 edges.
	if tab.Rows[0][3] != "15" {
		t.Fatalf("greedy H-edges kept = %s, want 15", tab.Rows[0][3])
	}
	if tab.Rows[1][1] != "9" || tab.Rows[1][4] != "yes" {
		t.Fatalf("star row = %v, want 9 edges and a valid spanner", tab.Rows[1])
	}
}

func TestE2Small(t *testing.T) {
	tab, err := E2GeneralGraphs(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestE3SmallNoViolations(t *testing.T) {
	tab, err := E3SelfSpanner(Small, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Fatalf("Lemma 3 violations in row %v", row)
		}
	}
}

func TestE4Small(t *testing.T) {
	tab, err := E4DoublingLightness(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
}

func TestE5Small(t *testing.T) {
	tab, err := E5ApproxGreedy(Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 sizes x 2 algos)", len(tab.Rows))
	}
}

func TestE6SmallGreedyWins(t *testing.T) {
	tab, err := E6Comparison(Small, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Within each (n, t) block, the greedy rows must have the fewest
	// edges. Rows come in blocks of 7 constructions; the two greedy
	// engines (sequential and parallel, identical output) lead each block.
	const block = 7
	const edgesCol = 4
	if len(tab.Rows)%block != 0 {
		t.Fatalf("unexpected row count %d", len(tab.Rows))
	}
	for b := 0; b < len(tab.Rows); b += block {
		greedyEdges := atoiMust(t, tab.Rows[b][edgesCol])
		if par := atoiMust(t, tab.Rows[b+1][edgesCol]); par != greedyEdges {
			t.Fatalf("parallel greedy size %d != sequential %d", par, greedyEdges)
		}
		for r := b + 2; r < b+block; r++ {
			if other := atoiMust(t, tab.Rows[r][edgesCol]); other < greedyEdges {
				t.Fatalf("construction %s beat greedy on edges: %d < %d",
					tab.Rows[r][2], other, greedyEdges)
			}
		}
	}
}

func atoiMust(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("atoi(%q): %v", s, err)
	}
	return v
}

func parseFloatMust(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parseFloat(%q): %v", s, err)
	}
	return v
}

func TestE7Small(t *testing.T) {
	tab, err := E7MSTContainment(Small, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "yes" || row[4] != "yes" {
			t.Fatalf("MST property failed: %v", row)
		}
	}
}

func TestE8Small(t *testing.T) {
	tab, err := E8LogStretch(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		light := parseFloatMust(t, row[5])
		target := parseFloatMust(t, row[6])
		if light > target+1e-9 {
			t.Fatalf("Corollary 5 violated: lightness %v > 1+delta %v (row %v)", light, target, row)
		}
	}
}

func TestE9Small(t *testing.T) {
	tab, err := E9UnboundedDegree(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	// Hub degree grows between the two configurations.
	d0 := atoiMust(t, tab.Rows[0][4])
	d1 := atoiMust(t, tab.Rows[1][4])
	if d1 <= d0 {
		t.Fatalf("hub degree did not grow: %d -> %d", d0, d1)
	}
}

func TestE10Small(t *testing.T) {
	tab, err := E10Lemma11(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Fatalf("Lemma 11 audit violations: %v", row)
		}
	}
}

func TestAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in non-short mode only")
	}
	tabs, err := All(Small, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 12 {
		t.Fatalf("tables = %d, want 12", len(tabs))
	}
}
