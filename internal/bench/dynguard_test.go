package bench

import (
	"context"
	"os"
	"testing"
)

// TestDynamicRegressionGuardN4000 is the regression gate for the fully
// dynamic maintained spanner: on the n=4000 Euclidean acceptance instance
// the amortized per-operation cost of the insert-only, delete-only, and
// mixed 80/10/10 workloads must each beat the rebuild-per-op policy by at
// least 5x, and every workload's final spanner must be edge-for-edge
// identical to the from-scratch build on its survivors. A rebase that
// silently falls back to full replays, a checkpoint store that stops
// restoring, or a hub oracle that rebuilds from scratch on every delete
// shows up here as a speedup collapse long before anyone reads a
// benchmark. Gated behind DYN_GUARD=1 because the n=4000 workloads take a
// couple of minutes; CI runs it as a dedicated step.
func TestDynamicRegressionGuardN4000(t *testing.T) {
	if os.Getenv("DYN_GUARD") != "1" {
		t.Skip("set DYN_GUARD=1 to run the n=4000 dynamic maintenance guard")
	}
	const floor = 5.0
	_, report, err := DynamicBench(context.Background(), Full, 42, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var guard *DynamicBenchCase
	for i := range report.Cases {
		if report.Cases[i].N == 4000 {
			guard = &report.Cases[i]
		}
	}
	if guard == nil {
		t.Fatalf("full-scale dynamic benchmark produced no n=4000 case")
	}
	if !guard.Identical {
		t.Fatalf("n=4000 maintained spanner diverged from the from-scratch build on its survivors")
	}
	t.Logf("n=4000 rebuild %.1f ms/op; speedups: insert %.1fx, delete %.1fx, mixed %.1fx",
		guard.RebuildMedianMS, guard.InsertOpSpeedup, guard.DeleteOpSpeedup, guard.MixedOpSpeedup)
	for _, s := range []struct {
		name    string
		speedup float64
	}{
		{"insert-only", guard.InsertOpSpeedup},
		{"delete-only", guard.DeleteOpSpeedup},
		{"mixed-80/10/10", guard.MixedOpSpeedup},
	} {
		if s.speedup < floor {
			t.Errorf("%s per-op speedup %.2fx below the %.0fx regression floor", s.name, s.speedup, floor)
		}
	}
}
