package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestFrozensnapFixtures(t *testing.T) {
	analysistest.Run(t, checks.Frozensnap, analysistest.Fixture("frozensnap"))
}
