package spanner

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/graph"
)

// baswanaSen indirection keeps the re-export surface in spanner.go tidy.
func baswanaSen(rng *rand.Rand, g *graph.Graph, k int) (*graph.Graph, error) {
	return baseline.BaswanaSen(rng, g, k)
}

// ThetaGraph builds the Θ-graph baseline on 2-D points with k cones.
func ThetaGraph(pts [][]float64, k int) (*Graph, error) { return baseline.ThetaGraph(pts, k) }

// YaoGraph builds the Yao-graph baseline on 2-D points with k cones.
func YaoGraph(pts [][]float64, k int) (*Graph, error) { return baseline.YaoGraph(pts, k) }

// WSPDSpanner builds the WSPD-based (1+eps)-spanner baseline (any
// dimension).
func WSPDSpanner(pts [][]float64, eps float64) (*Graph, error) {
	return baseline.WSPDSpanner(pts, eps)
}
