package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// LoadedPackage is one type-checked target package: the parsed files (with
// comments), the package's type information, and the shared FileSet. It is
// the unit an Analyzer runs on.
type LoadedPackage struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs:
// where the package lives, which files compile into it, and where the
// toolchain cached its export data.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export data files `go list
// -export` reported, through the standard library's gc importer. Loaded
// packages are cached, so a dependency shared by many targets is decoded
// once.
type exportImporter struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	cache   map[string]*types.Package
	imp     types.Importer
}

func newExportImporter(fset *token.FileSet, pkgs []*listedPackage) *exportImporter {
	e := &exportImporter{
		fset:    fset,
		exports: make(map[string]string, len(pkgs)),
		cache:   make(map[string]*types.Package),
	}
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
	e.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.cache[path]; ok {
		return p, nil
	}
	p, err := e.imp.Import(path)
	if err != nil {
		return nil, err
	}
	e.cache[path] = p
	return p, nil
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, e.g. "./...") from source and returns them ready for analysis.
// Dependencies — standard library and in-module alike — are imported from
// the build cache's export data, which `go list -export` materializes, so
// loading needs no network and no third-party machinery. Test files are
// not part of the load: the invariants under analysis live in the
// engines, and fixtures exercise analyzers through non-test sources.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One walk of the full dependency graph populates the export cache;
	// a second, cheap listing names just the analysis targets.
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, deps)

	var out []*LoadedPackage
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Standard {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, perr := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return nil, perr
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		pkg, terr := conf.Check(t.ImportPath, fset, files, info)
		if terr != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, terr)
		}
		out = append(out, &LoadedPackage{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
