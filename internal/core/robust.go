package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/graph"
)

// This file is the engines' shared robustness layer: typed failure
// sentinels, the cancellation/deadline plumbing, the resource-budget
// degradation ladder, panic capture, and the fault-injection hooks the
// internal/chaos harness drives. The design invariant, shared with the
// bit-identity guarantees of the batched engines, is:
//
//	any fault — cancellation, deadline, worker panic, injected stall,
//	corrupted bound row — yields either a Result that is a bit-identical
//	prefix of the serial reference's output together with a typed error,
//	or the full bit-identical output; never silent divergence and never
//	a half-applied state.
//
// The engines uphold it structurally: state mutations (accepts, bound-row
// folds, hub relaxations) happen only in serial sections or behind the
// worker join, cancellation is detected before any decision derived from a
// possibly-truncated search is committed, and every worker is joined on
// every exit path, so a cancelled build leaks no goroutines and abandons
// in-flight work without applying it.
var (
	// ErrCancelled is wrapped by every cancellation- or deadline-driven
	// abort. The Result returned alongside it is the clean prefix built so
	// far, marked Partial.
	ErrCancelled = errors.New("core: build cancelled")
	// ErrEnginePanic is wrapped by every panic captured in a certification
	// worker or serial engine section; the message carries the panic value
	// and stack.
	ErrEnginePanic = errors.New("core: engine panic")
	// ErrCorruptState is wrapped when a guarded bound row fails its
	// checksum — the cache no longer matches what was proven, so the
	// engine refuses to certify from it.
	ErrCorruptState = errors.New("core: corrupt engine state")
)

// Budget bounds the resources one engine run may consume. The zero value
// imposes no bounds. Degradation under a budget is graceful and recorded:
// each step the engine takes down the ladder (materialized → streamed
// supply, shrink batch width, drop the hub oracle, drop cached bound rows)
// lands in the stats' Degradations log instead of an OOM kill, and none of
// the steps can change the output — every knob the ladder turns is
// output-invariant by the engines' bit-identity guarantees.
type Budget struct {
	// MaxBytes caps the engine's estimated working-set bytes (candidate
	// supply + searcher pools + hub arrays + cached bound rows). The
	// estimate is deterministic byte accounting, not allocator telemetry,
	// so budgeted runs behave identically across runs and platforms.
	MaxBytes int64
	// MaxBatchWidth caps the certification batch width, bounding both the
	// per-batch candidate buffer and the width of worker fan-outs.
	MaxBatchWidth int
	// Deadline aborts the build (typed ErrCancelled, prefix Result) when
	// it passes; zero means none. It is checked wherever a context
	// cancellation is checked.
	Deadline time.Time
}

func (b Budget) active() bool {
	return b.MaxBytes > 0 || b.MaxBatchWidth > 0 || !b.Deadline.IsZero()
}

// Corrupter is the handle a fault injector uses to corrupt engine state in
// a controlled way. FlipRowBit flips one bit of a materialized bound-row
// entry *without* touching the row's checksum — a simulated memory fault —
// and reports whether a materialized row was there to corrupt. Engines
// without corruptible state pass a nil Corrupter to the OnBatch hook.
type Corrupter interface {
	FlipRowBit(u, v int, bit uint) bool
}

// InjectionHooks are the engines' fault-injection points, exposed as
// options so the internal/chaos harness can inject faults exactly where
// real ones would land. Zero hooks cost the hot paths nothing.
type InjectionHooks struct {
	// OnCertify runs before a certification query decides a candidate:
	// in parallel workers (concurrently!) and in the serial decision
	// paths. A panic raised here models a worker panic; a sleep models a
	// stalled certification.
	OnCertify func(e graph.Edge)
	// OnBatch runs serially at each batch boundary, before the batch is
	// pulled, with the 0-based batch index and the engine's Corrupter
	// (nil when the engine holds no corruptible cache).
	OnBatch func(batch int, c Corrupter)
	// OnRebase runs serially inside IncrementalSpanner.Flush, after the
	// replay's keep prefix is decided but before the bound store and hub
	// oracle rebase onto it — the window where backward-rebase faults
	// (panic, stall, cancellation, checkpoint corruption) land. keep is
	// the preserved accepted-edge count; c is the engine's Corrupter (nil
	// when the engine holds no corruptible cache). Corrupters handed to
	// this hook may additionally implement FlipCheckpointBit (see
	// internal/chaos) to corrupt checkpoint snapshots rather than live
	// rows.
	OnRebase func(keep int, c Corrupter)
}

func (h InjectionHooks) active() bool {
	return h.OnCertify != nil || h.OnBatch != nil || h.OnRebase != nil
}

// scanEnv bundles one engine run's cancellation, budget, and injection
// state. A nil *scanEnv is valid and means "no context, no budget, no
// hooks" — the pre-robustness engine behavior at zero cost.
type scanEnv struct {
	ctx      context.Context
	done     <-chan struct{}
	deadline time.Time
	timed    bool
	budget   Budget
	hooks    InjectionHooks
	// record appends one step to the owning stats' degradation log.
	record func(step string)
	// exhausted marks that the ladder has no steps left, so the budget
	// overrun is recorded once instead of once per batch.
	exhausted bool
}

// newScanEnv returns the run environment, or nil when every robustness
// feature is off (the common case, keeping the hot paths branch-free).
func newScanEnv(ctx context.Context, b Budget, hooks InjectionHooks, record func(string)) *scanEnv {
	if ctx == nil && !b.active() && !hooks.active() {
		return nil
	}
	env := &scanEnv{ctx: ctx, budget: b, hooks: hooks, record: record}
	if ctx != nil {
		env.done = ctx.Done()
	}
	if !b.Deadline.IsZero() {
		env.deadline, env.timed = b.Deadline, true
	}
	if record == nil {
		env.record = func(string) {}
	}
	return env
}

// cancelled reports the typed cancellation error once the context is done
// or the budget deadline has passed, and nil before that. Both predicates
// are monotone: once cancelled returns non-nil it never returns nil again,
// which is what lets the engines trust "not cancelled after the join" to
// mean "no search in the joined batch was truncated".
func (e *scanEnv) cancelled() error {
	if e == nil {
		return nil
	}
	if e.done != nil {
		select {
		case <-e.done:
			return fmt.Errorf("%w: %v", ErrCancelled, e.ctx.Err())
		default:
		}
	}
	//spannerlint:ignore detpure deadline check decides only whether to keep working; a tripped deadline yields ErrCancelled, never a different spanner
	if e.timed && time.Now().After(e.deadline) {
		return fmt.Errorf("%w: budget deadline exceeded", ErrCancelled)
	}
	return nil
}

// active reports whether cancellation checks can ever fire, so serial
// loops can skip the per-candidate poll entirely when they cannot.
func (e *scanEnv) active() bool {
	return e != nil && (e.done != nil || e.timed)
}

// stopFn returns the cooperative-stop predicate for Searcher.SetStop, or
// nil when no cancellation source exists. The predicate is safe for
// concurrent use from many searchers.
func (e *scanEnv) stopFn() func() bool {
	if !e.active() {
		return nil
	}
	done, deadline, timed := e.done, e.deadline, e.timed
	return func() bool {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		//spannerlint:ignore detpure stop predicate decides only whether to truncate; truncated searches never decide (see ctxcommit)
		return timed && time.Now().After(deadline)
	}
}

// clampBatch applies the budget's batch-width cap.
func (e *scanEnv) clampBatch(batch int) int {
	if e == nil || e.budget.MaxBatchWidth <= 0 || batch <= e.budget.MaxBatchWidth {
		return batch
	}
	return e.budget.MaxBatchWidth
}

// onBatch fires the batch-boundary injection hook.
func (e *scanEnv) onBatch(batch int, c Corrupter) {
	if e != nil && e.hooks.OnBatch != nil {
		e.hooks.OnBatch(batch, c)
	}
}

// onCertify fires the certification injection hook (possibly from a
// worker; the hook must tolerate concurrent calls).
func (e *scanEnv) onCertify(edge graph.Edge) {
	if e != nil && e.hooks.OnCertify != nil {
		e.hooks.OnCertify(edge)
	}
}

// degradationSink returns the record callback newScanEnv and the budget
// resolvers append degradation-ladder steps to.
func (st *ParallelStats) degradationSink() func(string) {
	return func(step string) { st.Degradations = append(st.Degradations, step) }
}

func (st *MetricParallelStats) degradationSink() func(string) {
	return func(step string) { st.Degradations = append(st.Degradations, step) }
}

// panicErr converts a recovered panic value into the typed engine error,
// preserving the value and the stack for the caller's diagnostics.
func panicErr(p any) error {
	return fmt.Errorf("%w: %v\n%s", ErrEnginePanic, p, debug.Stack())
}

// capturePanic is the deferred run-level recover of every engine: it
// converts a panic anywhere in the scan's serial sections (including hub
// re-relaxation, supply refills, and injected serial faults) into a typed
// error instead of crossing the API boundary as a crash.
func capturePanic(err *error) {
	if p := recover(); p != nil {
		*err = panicErr(p)
	}
}

// firstWorkerErr selects the error a joined worker pool reports: panics
// win over cancellations (a cancellation is recoverable and expected; a
// panic is the bug the caller must see), earlier workers win ties.
func firstWorkerErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrEnginePanic) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Deterministic working-set byte accounting for the budget ladder. The
// constants are close-enough upper bounds chosen once so budgeted runs
// degrade at reproducible points; they are not allocator ground truth.
const (
	edgeBytes = 24 // graph.Edge: two ints + one float64
	// searcherBytes is the per-vertex cost of one pooled searcher: the
	// bidirectional scratch holds two distance arrays, two heaps, and two
	// touched lists.
	searcherBytesPerVertex = 56
	hubBytesPerVertex      = 8 // one float64 distance entry per hub per vertex
	boundRowBytesPerVertex = 2 // one bfloat16 entry
)

func searcherPoolBytes(workers, n int) int64 {
	return int64(workers+1) * int64(n) * searcherBytesPerVertex
}

func hubBytes(hubs, n int) int64 {
	return int64(hubs) * int64(n) * hubBytesPerVertex
}

// resolveSupplyBudget degrades the supply configuration before the scan
// starts: under a byte budget a materialized supply falls back to the
// streamed one when the full candidate list alone would eat more than half
// the budget, and the streamed bucket cap is clamped so one resident
// bucket fits in a quarter of it. Both knobs are output-invariant.
func resolveSupplyBudget(b Budget, record func(string), materialize *bool, bucketPairs *int, candidates int) {
	if b.MaxBytes <= 0 {
		return
	}
	if *materialize && int64(candidates)*edgeBytes > b.MaxBytes/2 {
		*materialize = false
		record(fmt.Sprintf("supply: materialized list (%d candidates) over budget; streaming", candidates))
	}
	if !*materialize {
		if cap := int(b.MaxBytes / 4 / edgeBytes); cap > 0 && (*bucketPairs <= 0 || *bucketPairs > cap) {
			if *bucketPairs > 0 || int64(DefaultBucketPairs)*edgeBytes > b.MaxBytes/4 {
				record(fmt.Sprintf("supply: bucket cap clamped to %d pairs", cap))
			}
			*bucketPairs = cap
		}
	}
}

// resolveHubBudget drops the hub count to what the byte budget accommodates
// (at most a quarter of it) before any hub arrays are allocated; hub count
// is output-invariant, so this only trades speed for memory.
func resolveHubBudget(b Budget, record func(string), hubs *int, n int) {
	if b.MaxBytes <= 0 || *hubs <= 0 || n <= 0 {
		return
	}
	fit := int(b.MaxBytes / 4 / int64(n) / hubBytesPerVertex)
	if fit < *hubs {
		record(fmt.Sprintf("hubs: count dropped %d -> %d under byte budget", *hubs, fit))
		*hubs = fit
	}
}
