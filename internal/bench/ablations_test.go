package bench

import (
	"context"
	"os"
	"testing"
)

func TestA1DeputiesSmall(t *testing.T) {
	tab, err := A1Deputies(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: ring gadget on/off, uniform on/off.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// On the gadget, deputies must not increase the max degree.
	on := atoiMust(t, tab.Rows[0][4])
	off := atoiMust(t, tab.Rows[1][4])
	if on > off {
		t.Fatalf("deputies increased gadget degree: %d > %d", on, off)
	}
}

func TestA2BucketWidthSmall(t *testing.T) {
	tab, err := A2BucketWidth(Small, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Wider buckets cannot need more rebuilds.
	prev := 1 << 30
	for _, row := range tab.Rows {
		r := atoiMust(t, row[3])
		if r > prev {
			t.Fatalf("rebuilds increased with wider mu: %v", tab.Rows)
		}
		prev = r
	}
}

func TestA3CertificationSmall(t *testing.T) {
	tab, err := A3Certification(Small, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if atoiMust(t, row[2])+atoiMust(t, row[3]) == 0 {
			t.Fatalf("no skips at all in row %v", row)
		}
	}
}

func TestA4ParallelBatchWidthSmall(t *testing.T) {
	tab, err := A4ParallelBatchWidth(Small, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: fixed widths 32/128/512/2048 plus adaptive.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		kept := atoiMust(t, row[7])
		if kept == 0 {
			t.Fatalf("no edges kept in row %v", row)
		}
		// Every examined edge is either certified, serially skipped, or kept.
		if atoiMust(t, row[5])+atoiMust(t, row[6])+kept != atoiMust(t, row[1]) {
			t.Fatalf("skip accounting broken in row %v", row)
		}
	}
	// All widths must agree on the spanner size (identical decisions).
	first := atoiMust(t, tab.Rows[0][7])
	for _, row := range tab.Rows[1:] {
		if atoiMust(t, row[7]) != first {
			t.Fatalf("batch width changed the spanner: %v", tab.Rows)
		}
	}
}

func TestA5MetricBatchWidthSmall(t *testing.T) {
	tab, err := A5MetricBatchWidth(Small, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (fixed widths 32/128/512/2048 plus adaptive) x two metric kinds.
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		kept := atoiMust(t, row[10])
		if kept == 0 {
			t.Fatalf("no edges kept in row %v", row)
		}
		// Every examined pair is cached-skipped, snapshot-certified,
		// serially skipped, or kept.
		n := atoiMust(t, row[1])
		total := atoiMust(t, row[5]) + atoiMust(t, row[6]) + atoiMust(t, row[7]) + kept
		if total != n*(n-1)/2 {
			t.Fatalf("pair accounting broken in row %v: got %d, want %d", row, total, n*(n-1)/2)
		}
	}
	// Within each metric kind, all widths must agree on the spanner size
	// (identical decisions).
	sizeByKind := map[string]int{}
	for _, row := range tab.Rows {
		kept := atoiMust(t, row[10])
		if want, ok := sizeByKind[row[0]]; ok && kept != want {
			t.Fatalf("batch width changed the %s spanner: %v", row[0], tab.Rows)
		}
		sizeByKind[row[0]] = kept
	}
}

func TestAblationsAll(t *testing.T) {
	tabs, err := Ablations(Small, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("tables = %d, want 5", len(tabs))
	}
}

func TestGreedyBenchSmall(t *testing.T) {
	tab, report, err := GreedyBench(context.Background(), Small, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != 1 || report.Cases[0].N != 200 {
		t.Fatalf("unexpected cases: %+v", report.Cases)
	}
	c := report.Cases[0]
	if !c.IdenticalOutput {
		t.Fatal("parallel engine output diverged from sequential")
	}
	if len(c.SequentialMS) != 3 {
		t.Fatalf("want 3 sequential samples, got %d", len(c.SequentialMS))
	}
	for _, run := range c.Parallel {
		if len(run.MS) != 3 || run.MedianMS <= 0 || run.Speedup <= 0 {
			t.Fatalf("implausible parallel run: %+v", run)
		}
	}
	if len(tab.Rows) != 1+len(c.Parallel) {
		t.Fatalf("table rows = %d, want %d", len(tab.Rows), 1+len(c.Parallel))
	}
	path := t.TempDir() + "/BENCH_greedy.json"
	if err := report.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMetricBenchSmall(t *testing.T) {
	tab, report, err := GreedyMetricBench(context.Background(), Small, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != 2 {
		t.Fatalf("unexpected cases: %+v", report.Cases)
	}
	rows := 0
	for _, c := range report.Cases {
		if !c.IdenticalOutput {
			t.Fatalf("parallel metric engine output diverged from serial (%s, n=%d)", c.Kind, c.N)
		}
		if len(c.SequentialMS) != 3 {
			t.Fatalf("want 3 sequential samples, got %d", len(c.SequentialMS))
		}
		if c.Pairs != c.N*(c.N-1)/2 {
			t.Fatalf("pair count %d inconsistent with n=%d", c.Pairs, c.N)
		}
		for _, run := range c.Parallel {
			if len(run.MS) != 3 || run.MedianMS <= 0 || run.Speedup <= 0 {
				t.Fatalf("implausible parallel run: %+v", run)
			}
		}
		rows += 1 + len(c.Parallel)
	}
	if len(tab.Rows) != rows {
		t.Fatalf("table rows = %d, want %d", len(tab.Rows), rows)
	}
	path := t.TempDir() + "/BENCH_greedymetric.json"
	if err := report.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMetricBenchSingleWorkerSet(t *testing.T) {
	_, report, err := GreedyMetricBench(context.Background(), Small, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Cases {
		if len(c.Parallel) != 1 || c.Parallel[0].Workers != 2 {
			t.Fatalf("-workers 2 should restrict the sweep, got %+v", c.Parallel)
		}
	}
}
