// Package fixture seeds errtyped violations and exemptions.
package fixture

import (
	"errors"
	"fmt"
)

// errFixture stands in for a package sentinel.
var errFixture = errors.New("fixture: sentinel")

// OpenFixture mints an error no caller can classify.
func OpenFixture(fail bool) error {
	if fail {
		return errors.New("fixture: something went wrong") // want "untyped errors.New escapes an exported operation"
	}
	return nil
}

// CreateFixture formats an error without wrapping a sentinel.
func CreateFixture(n int) error {
	if n < 0 {
		return fmt.Errorf("fixture: bad n %d", n) // want "fmt.Errorf without %w escapes an exported operation"
	}
	return nil
}

// DeleteFixture wraps the sentinel: callers dispatch with errors.Is.
func DeleteFixture(n int) error {
	if n < 0 {
		return fmt.Errorf("fixture: bad n %d: %w", n, errFixture)
	}
	return nil
}

// InsertFixture propagates an existing error, which always passes.
func InsertFixture(n int) error {
	if err := DeleteFixture(n); err != nil {
		return err
	}
	return helperError(n)
}

// SetFixture is the annotated escape shape.
func SetFixture(n int) error {
	if n > 0 {
		//spannerlint:ignore errtyped fixture demonstrates a documented deliberate escape
		return errors.New("fixture: deliberate")
	}
	return nil
}

// helperError is unexported: sentinels are attached at the exported
// surface, so this is not inspected.
func helperError(n int) error {
	if n == 42 {
		return errors.New("fixture: helper detail")
	}
	return nil
}
