package framework

import (
	"strings"
	"testing"
)

// TestParseAnnotation pins the suppression grammar: both verbs, the
// mapdet alias, mandatory reasons, and malformed forms turning into
// diagnostics instead of silent suppressions.
func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		errPart  string
	}{
		{"// ordinary comment", false, "", ""},
		{"//spannerlint:ignore mapdet keys sorted by construction", true, "mapdet", ""},
		{"//spannerlint:ignore detpure deadline check is output-invariant", true, "detpure", ""},
		{"//spannerlint:nondeterministic-ok argmin is order-independent", true, "mapdet", ""},
		{"//spannerlint:ignore", true, "", "needs an analyzer and a reason"},
		{"//spannerlint:ignore mapdet", true, "", "needs an analyzer and a reason"},
		{"//spannerlint:nondeterministic-ok", true, "", "needs a reason"},
		{"//spannerlint:silence mapdet because", true, "", "unknown spannerlint annotation"},
	}
	for _, c := range cases {
		ann, ok := parseAnnotation(c.text)
		if ok != c.ok {
			t.Errorf("parseAnnotation(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if c.errPart != "" {
			if !strings.Contains(ann.err, c.errPart) {
				t.Errorf("parseAnnotation(%q) err = %q, want containing %q", c.text, ann.err, c.errPart)
			}
			continue
		}
		if ann.err != "" {
			t.Errorf("parseAnnotation(%q) unexpected err %q", c.text, ann.err)
		}
		if ann.analyzer != c.analyzer {
			t.Errorf("parseAnnotation(%q) analyzer = %q, want %q", c.text, ann.analyzer, c.analyzer)
		}
		if ann.reason == "" {
			t.Errorf("parseAnnotation(%q) reason empty", c.text)
		}
	}
}

// TestAnalyzerScope pins the package-path suffix matching InScope uses.
func TestAnalyzerScope(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"internal/core", "repro"}}
	for path, want := range map[string]bool{
		"repro/internal/core":  true,
		"repro":                true,
		"repro/internal/graph": false,
		"other/internal/corex": false,
	} {
		p := &Pass{Analyzer: a, Unit: &LoadedPackage{Path: path}}
		if got := p.InScope(); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
	open := &Pass{Analyzer: &Analyzer{Name: "y"}, Unit: &LoadedPackage{Path: "anything"}}
	if !open.InScope() {
		t.Error("empty scope should match every package")
	}
	forced := &Pass{Analyzer: a, Unit: &LoadedPackage{Path: "elsewhere"}, ForceScope: true}
	if !forced.InScope() {
		t.Error("ForceScope should bypass scope matching")
	}
}
