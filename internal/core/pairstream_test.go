package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
)

// drainSource pulls src dry with a rotating pull width, exercising batch
// boundaries that do not align with bucket boundaries.
func drainSource(src CandidateSource, widths []int) []graph.Edge {
	var out []graph.Edge
	for i := 0; ; i++ {
		batch := src.NextBatch(widths[i%len(widths)])
		if len(batch) == 0 {
			return out
		}
		out = append(out, batch...)
	}
}

func equalEdgeSeq(t *testing.T, label string, want, got []graph.Edge) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length mismatch: want %d candidates, got %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: candidate %d differs: want %+v, got %+v", label, i, want[i], got[i])
		}
	}
}

// TestStreamedPairOrderMatchesMaterialized is the supply-level equivalence
// property: the streamed weight-bucketed supply must emit exactly the
// sequence sortedPairs materializes — same pairs, same weights, same
// order, ties included — across Euclidean (grid-bucketed), matrix, and
// graph-induced metrics, for several bucket caps and pull widths.
func TestStreamedPairOrderMatchesMaterialized(t *testing.T) {
	pullWidths := [][]int{{1}, {7, 64, 3}, {100000}}
	for name, m := range testMetrics(t) {
		want := sortedPairs(m)
		for _, bucketPairs := range []int{0, 17, 256, 1 << 20} {
			for wi, widths := range pullWidths {
				src := NewMetricSource(m, bucketPairs)
				got := drainSource(src, widths)
				label := fmt.Sprintf("%s/bucket=%d/pull=%d", name, bucketPairs, wi)
				equalEdgeSeq(t, label, want, got)
			}
		}
	}
}

// TestStreamedPairOrderBucketCap asserts the streamed supply honors its
// bucket cap: no materialized bucket may exceed the configured pair count
// (distinct-weight instances; only single-weight spikes may overflow).
func TestStreamedPairOrderBucketCap(t *testing.T) {
	for name, m := range testMetrics(t) {
		if name == "matrix-ring-gadget" {
			// The ring gadget has large groups of equal weights, which a
			// weight partition cannot split below the cap by design.
			continue
		}
		const cap = 97
		src := NewMetricSource(m, cap).(*bucketedSource)
		got := drainSource(src, []int{64})
		n := m.N()
		if len(got) != n*(n-1)/2 {
			t.Fatalf("%s: emitted %d of %d pairs", name, len(got), n*(n-1)/2)
		}
		if src.PeakBucket() > cap {
			t.Fatalf("%s: peak bucket %d exceeds cap %d", name, src.PeakBucket(), cap)
		}
	}
}

// TestGraphEdgeSourceOrder checks the graph-side supplier: the streamed
// bucketed edge supply equals SortedEdges for every test family.
func TestGraphEdgeSourceOrder(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := g.SortedEdges()
		for _, bucketPairs := range []int{0, 13, 1024} {
			src := NewGraphEdgeSource(g, bucketPairs)
			got := drainSource(src, []int{5, 1000, 1})
			equalEdgeSeq(t, fmt.Sprintf("%s/bucket=%d", name, bucketPairs), want, got)
		}
	}
}

// TestMaterializedSourceDrain covers the slice-backed source used by the
// Materialize option.
func TestMaterializedSourceDrain(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 2}, {U: 1, V: 2, W: 3}}
	src := NewMaterializedSource(edges)
	got := drainSource(src, []int{2})
	equalEdgeSeq(t, "materialized", edges, got)
	if more := src.NextBatch(4); more != nil {
		t.Fatalf("exhausted source returned %v", more)
	}
}

// TestGreedyMetricSupplyParallelEquivalence runs the metric engine through
// every supply mode — default streamed, explicit bucket caps, and the
// materialized fallback — across worker counts and batch widths, and
// demands bit-identical output against the serial dense-matrix reference.
func TestGreedyMetricSupplyParallelEquivalence(t *testing.T) {
	for name, m := range testMetrics(t) {
		for _, stretch := range []float64{1.2, 2} {
			want, err := GreedyMetricFastSerial(m, stretch)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 8} {
				for _, opts := range []MetricParallelOptions{
					{Workers: workers},
					{Workers: workers, Materialize: true},
					{Workers: workers, BucketPairs: 41},
					{Workers: workers, BucketPairs: 41, BatchSize: 9},
					{Workers: workers, Source: NewMetricSource(m, 200)},
				} {
					got, err := GreedyMetricFastParallelOpts(m, stretch, opts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s/t=%v/w=%d/mat=%v/bucket=%d/batch=%d",
						name, stretch, workers, opts.Materialize, opts.BucketPairs, opts.BatchSize)
					equalResults(t, label, want, got)
				}
			}
		}
	}
}

// TestGreedyGraphSupplyParallelEquivalence is the graph-engine
// counterpart: streamed vs materialized supply across worker counts, all
// bit-identical to the sequential GreedyGraph reference.
func TestGreedyGraphSupplyParallelEquivalence(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, stretch := range []float64{1.5, 3} {
			want, err := GreedyGraph(g, stretch)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for _, opts := range []ParallelOptions{
					{Workers: workers},
					{Workers: workers, Materialize: true},
					{Workers: workers, BucketPairs: 29},
					{Workers: workers, Source: NewGraphEdgeSource(g, 64)},
				} {
					got, err := GreedyGraphParallelOpts(g, stretch, opts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s/t=%v/w=%d/mat=%v/bucket=%d",
						name, stretch, workers, opts.Materialize, opts.BucketPairs)
					equalResults(t, label, want, got)
				}
			}
		}
	}
}

// TestSparseBoundRowsParallelStats checks the memory-side counters: the
// sparse store reports how many rows were materialized (at most n, usually
// far fewer than n for generous stretches) and the streamed supply reports
// its peak bucket.
func TestSparseBoundRowsParallelStats(t *testing.T) {
	for name, m := range testMetrics(t) {
		for _, workers := range []int{1, 4} {
			var stats MetricParallelStats
			res, err := GreedyMetricFastParallelOpts(m, 2, MetricParallelOptions{Workers: workers, Stats: &stats})
			if err != nil {
				t.Fatal(err)
			}
			if stats.RowsAllocated <= 0 || stats.RowsAllocated > m.N() {
				t.Fatalf("%s/w=%d: RowsAllocated = %d out of [1, %d]", name, workers, stats.RowsAllocated, m.N())
			}
			if stats.PeakBucketPairs <= 0 || stats.PeakBucketPairs > res.EdgesExamined {
				t.Fatalf("%s/w=%d: PeakBucketPairs = %d out of [1, %d]", name, workers, stats.PeakBucketPairs, res.EdgesExamined)
			}
			total := stats.CachedSkips + stats.CertifiedSkips + stats.SerialSkips + stats.Kept
			if total != res.EdgesExamined {
				t.Fatalf("%s/w=%d: stats don't cover scan: %d vs %d examined", name, workers, total, res.EdgesExamined)
			}
		}
	}
}

// infMetric is a custom metric with one +Inf distance (a "disconnected"
// sentinel some user metrics use); the streamed supply must examine it
// exactly like the materialized path does.
type infMetric struct{ n int }

func (m infMetric) N() int { return m.n }
func (m infMetric) Dist(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	if i == 0 && j == m.n-1 {
		return math.Inf(1)
	}
	return float64(j - i)
}

// TestStreamedPairOrderInfiniteWeights pins the infinite-weight contract:
// +Inf pairs are emitted exactly once, last, and the engines examine the
// same pair count as the serial reference (which skips them via
// Inf <= t*Inf).
func TestStreamedPairOrderInfiniteWeights(t *testing.T) {
	m := infMetric{n: 12}
	want := sortedPairs(m)
	got := drainSource(NewMetricSource(m, 8), []int{3})
	equalEdgeSeq(t, "inf-weights", want, got)
	if last := got[len(got)-1]; !math.IsInf(last.W, 1) {
		t.Fatalf("infinite pair not last: %+v", last)
	}
	ref, err := GreedyMetricFastSerial(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		res, err := GreedyMetricFastParallel(m, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("inf-weights/w=%d", workers), ref, res)
	}
}

// TestStreamedPairOrderSeededCounts checks the seeded supply: a source
// given a caller-maintained weight histogram (the incremental engine's
// mode) must emit exactly the sequence the self-counting source emits,
// and honor a cut with identical Skipped accounting.
func TestStreamedPairOrderSeededCounts(t *testing.T) {
	for name, m := range testMetrics(t) {
		var counts pairCounts
		n := m.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				counts.add(m.Dist(i, j))
			}
		}
		want := sortedPairs(m)
		got := drainSource(newMetricSourceSeeded(m, 64, counts), []int{9, 100})
		equalEdgeSeq(t, name+"/seeded", want, got)
		// Cut at the median candidate: emitted tail + skipped count must
		// partition the scan exactly.
		cut := want[len(want)/2]
		src := newMetricSourceAfter(m, 64, cut, counts)
		tail := drainSource(src, []int{13})
		equalEdgeSeq(t, name+"/seeded-cut", want[len(want)/2:], tail)
		if src.Skipped() != len(want)/2 {
			t.Fatalf("%s: Skipped() = %d, want %d", name, src.Skipped(), len(want)/2)
		}
	}
}

// hugeMetric pins the top-of-range bucketing: one pair lands in the
// overflow exponent bucket [2^1023, MaxFloat64] whose hi overflows to
// +Inf, and another pair is genuinely infinite. The two must never be
// conflated — the +Inf pair streams exactly once, last.
type hugeMetric struct{ n int }

func (m hugeMetric) N() int { return m.n }
func (m hugeMetric) Dist(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	switch {
	case i == 0 && j == m.n-1:
		return math.Inf(1)
	case i == 1 && j == m.n-1:
		return math.MaxFloat64
	case i == 2 && j == m.n-1:
		return math.Ldexp(1, 1023)
	}
	return float64(j - i)
}

// TestStreamedPairOrderOverflowBucket: weights at and above 2^1023 share
// a bucket whose upper bound overflows Ldexp to +Inf; the collection must
// still exclude the genuinely infinite pairs from it (they have their own
// final bucket), or candidates would be emitted twice.
func TestStreamedPairOrderOverflowBucket(t *testing.T) {
	m := hugeMetric{n: 8}
	want := sortedPairs(m)
	got := drainSource(NewMetricSource(m, 4), []int{3})
	equalEdgeSeq(t, "overflow-bucket", want, got)
	if last := got[len(got)-1]; !math.IsInf(last.W, 1) {
		t.Fatalf("infinite pair not last: %+v", last)
	}
	if n := len(got); n != m.n*(m.n-1)/2 {
		t.Fatalf("emitted %d pairs, want %d (no duplicates)", n, m.n*(m.n-1)/2)
	}
}

// TestMetricSourceDegenerateInputs covers empty, single-point, and
// duplicate-point (zero-distance) supplies.
func TestMetricSourceDegenerateInputs(t *testing.T) {
	if got := drainSource(NewMetricSource(metric.MustEuclidean(nil), 0), []int{8}); len(got) != 0 {
		t.Fatalf("empty metric emitted %d pairs", len(got))
	}
	one := metric.MustEuclidean([][]float64{{1, 2}})
	if got := drainSource(NewMetricSource(one, 0), []int{8}); len(got) != 0 {
		t.Fatalf("single point emitted %d pairs", len(got))
	}
	// Duplicate points produce zero-weight pairs, which must come first.
	dup := metric.MustEuclidean([][]float64{{0, 0}, {0, 0}, {3, 4}})
	got := drainSource(NewMetricSource(dup, 0), []int{8})
	want := sortedPairs(dup)
	equalEdgeSeq(t, "duplicate-points", want, got)
	if got[0].W != 0 {
		t.Fatalf("zero-weight pair not first: %+v", got[0])
	}
}

// TestMergedBucketsReducePasses pins the pass-merging optimization: a
// candidate set spread over many small geometric weight buckets must be
// collected in far fewer enumeration passes than buckets (adjacent small
// buckets merge into one collection range up to the pair cap), with the
// emitted sequence unchanged.
func TestMergedBucketsReducePasses(t *testing.T) {
	// 40 points on an exponential line: pair distances span ~40 binary
	// exponents, one tiny bucket each.
	n := 40
	pts := make([][]float64, n)
	x := 0.0
	for i := range pts {
		pts[i] = []float64{x, 0}
		x += math.Ldexp(1, i/2-10)
	}
	m := metric.MustEuclidean(pts)
	want := sortedPairs(m)
	src := newBucketedSource(metricEnumeratorFor(m), 0)
	got := drainSource(src, []int{64})
	equalEdgeSeq(t, "exponential-line", want, got)
	// One counting pass plus one merged collection pass for the whole set
	// (everything fits one cap-sized range); without merging this would be
	// one pass per occupied exponent (~tens).
	if src.Passes() > 4 {
		t.Fatalf("merged supply used %d passes, want <= 4", src.Passes())
	}
}

// TestSplitPrefetchReusesCountingPass pins the subdivision prefetch: when
// an oversized bucket splits, the first child must be served from the
// split's own counting pass (no extra enumeration), and the sequence must
// stay exact.
func TestSplitPrefetchReusesCountingPass(t *testing.T) {
	for name, m := range testMetrics(t) {
		want := sortedPairs(m)
		// A tiny cap forces splits on every real bucket.
		src := newBucketedSource(metricEnumeratorFor(m), 13)
		got := drainSource(src, []int{5, 17})
		equalEdgeSeq(t, name, want, got)
	}
	// Pass accounting on a single-bucket instance: weights all in [1, 2),
	// cap 10, n*(n-1)/2 = 120 pairs -> the bucket splits into ~12 children;
	// the prefetch must save at least the first child's collection pass
	// relative to the no-prefetch floor of 1 count + 1 split-count per
	// round + 1 collection per child.
	n := 16
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	w := 1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d[i][j], d[j][i] = w, w
			w += 1.0 / 256
		}
	}
	m := tableMetric{d: d}
	want := sortedPairs(m)
	src := newBucketedSource(metricEnumeratorFor(m), 10)
	got := drainSource(src, []int{3})
	equalEdgeSeq(t, "single-bucket", want, got)
	if src.prefetchHits == 0 {
		t.Fatalf("no split collection was served from a prefetch (%d passes total)", src.Passes())
	}
	// Every prefetch hit is one whole enumeration pass the supply did not
	// run; the counters must be consistent with that.
	t.Logf("passes %d, prefetch hits %d", src.Passes(), src.prefetchHits)
}
