package graph

import (
	"sort"
)

// WeightedPath is a path with its total weight.
type WeightedPath struct {
	Vertices []int
	Weight   float64
}

// KShortestPaths returns up to k shortest simple (loopless) paths from src
// to dst in non-decreasing weight order, using Yen's algorithm with
// Dijkstra as the underlying search. SecondShortestPath is the k = 2
// special case of this routine; the general form backs the Lemma 11 audits
// and the fault-tolerance experiments.
//
// Complexity O(k * n * Dijkstra) in the worst case. Returns fewer than k
// paths when src and dst admit fewer simple paths, and nil when dst is
// unreachable.
func (g *Graph) KShortestPaths(src, dst, k int) []WeightedPath {
	if k <= 0 || src == dst {
		return nil
	}
	first := g.Dijkstra(src)
	base := first.PathTo(dst)
	if base == nil {
		return nil
	}
	accepted := []WeightedPath{{Vertices: base, Weight: first.Dist[dst]}}
	// Candidate pool; paths keyed by their vertex sequence to avoid dupes.
	var candidates []WeightedPath
	seen := map[string]bool{pathKey(base): true}

	for len(accepted) < k {
		prev := accepted[len(accepted)-1].Vertices
		// For each spur vertex on the previous path, forbid the edges used
		// by already accepted paths sharing the same root, and the root's
		// interior vertices, then search for a deviation.
		for i := 0; i+1 < len(prev); i++ {
			spur := prev[i]
			root := prev[:i+1]
			rootW := pathWeight(g, root)

			banned := newEdgeBan()
			for _, acc := range accepted {
				if len(acc.Vertices) > i && sameVertices(acc.Vertices[:i+1], root) {
					banned.add(acc.Vertices[i], acc.Vertices[i+1])
				}
			}
			for _, c := range candidates {
				if len(c.Vertices) > i && sameVertices(c.Vertices[:i+1], root) {
					banned.add(c.Vertices[i], c.Vertices[i+1])
				}
			}
			deadVerts := make(map[int]bool, i)
			for _, v := range root[:i] {
				deadVerts[v] = true
			}

			masked := g.maskedCopy(deadVerts, banned)
			sp := masked.Dijkstra(spur)
			tail := sp.PathTo(dst)
			if tail == nil {
				continue
			}
			full := append(append([]int(nil), root[:i]...), tail...)
			key := pathKey(full)
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, WeightedPath{
				Vertices: full,
				Weight:   rootW + sp.Dist[dst],
			})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].Weight != candidates[b].Weight {
				return candidates[a].Weight < candidates[b].Weight
			}
			return pathKey(candidates[a].Vertices) < pathKey(candidates[b].Vertices)
		})
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted
}

// edgeBan is a small set of forbidden undirected edges (by endpoints).
type edgeBan struct{ set map[[2]int]bool }

func newEdgeBan() *edgeBan { return &edgeBan{set: make(map[[2]int]bool)} }

func (b *edgeBan) add(u, v int) {
	if u > v {
		u, v = v, u
	}
	b.set[[2]int{u, v}] = true
}

func (b *edgeBan) has(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return b.set[[2]int{u, v}]
}

// maskedCopy returns a copy of g without the dead vertices' edges and
// without banned edges.
func (g *Graph) maskedCopy(dead map[int]bool, banned *edgeBan) *Graph {
	out := New(g.N())
	for _, e := range g.edges {
		if dead[e.U] || dead[e.V] || banned.has(e.U, e.V) {
			continue
		}
		out.addEdgeUnchecked(e.U, e.V, e.W)
	}
	return out
}

// pathWeight sums the (minimum) edge weights along consecutive vertices.
func pathWeight(g *Graph, path []int) float64 {
	var w float64
	for i := 0; i+1 < len(path); i++ {
		ew, ok := g.EdgeWeight(path[i], path[i+1])
		if !ok {
			return Inf
		}
		w += ew
	}
	return w
}

func sameVertices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(path []int) string {
	// Compact deterministic key; paths are short relative to n.
	buf := make([]byte, 0, len(path)*3)
	for _, v := range path {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(buf)
}
