package geom

import (
	"encoding/binary"
	"math"

	"repro/internal/graph"
)

// GridEnumerator enumerates the point pairs of a Euclidean point set whose
// distance falls in a weight range [lo, hi), using a uniform grid with
// cell size just above hi: a pair at distance < hi differs by less than a
// cell in every coordinate, so its two cells are identical or
// axis-adjacent, and only the 3^d neighborhood of each occupied cell is
// ever inspected. Producing
// the pairs of one distance bucket therefore never touches pairs farther
// than the bucket's upper edge — the enumeration cost scales with the
// number of pairs at or below the bucket, not with n^2.
//
// Distances are reported by the caller-supplied dist function (typically
// metric.Euclidean.Dist), so downstream consumers see weights
// bit-identical to the materialized pipeline's; the grid only decides
// which pairs get tested.
type GridEnumerator struct {
	pts  [][]float64
	dist func(i, j int) float64
	dim  int
	// boxLo is the per-dimension lower corner, boxSpan the extents.
	boxLo, boxSpan []float64
	// Reused across Pairs calls so repeated bucket production does not
	// leave a trail of per-call garbage: the packed cell coordinates, the
	// cell hash, the per-cell member lists' backing, and the offset set.
	coords    []int64
	cellOf    map[string]int32
	cells     [][]int32
	cellCoord [][]int64
	offsets   [][]int64
}

// NewGridEnumerator builds a grid enumerator over pts (all sharing one
// dimension) with the given distance oracle.
func NewGridEnumerator(pts [][]float64, dist func(i, j int) float64) *GridEnumerator {
	e := &GridEnumerator{pts: pts, dist: dist}
	if len(pts) == 0 {
		return e
	}
	e.dim = len(pts[0])
	e.boxLo = append([]float64(nil), pts[0]...)
	hi := append([]float64(nil), pts[0]...)
	for _, p := range pts[1:] {
		for k, c := range p {
			if c < e.boxLo[k] {
				e.boxLo[k] = c
			}
			if c > hi[k] {
				hi[k] = c
			}
		}
	}
	e.boxSpan = make([]float64, e.dim)
	for k := range hi {
		e.boxSpan[k] = hi[k] - e.boxLo[k]
	}
	return e
}

// maxCellsPerDim guards the float64 cell-coordinate computation: the
// quotient (c-boxLo)/hi carries relative error ~2^-52, so at q cells per
// axis the absolute error is ~q*2^-52 cells — with q capped at 2^25 that
// is < 2^-27 of a cell, far too small to ever shift a floor() across a
// boundary and strand an in-range pair outside the 3^d neighborhood.
// Narrower ranges fall back to the brute-force scan, which is always
// correct; such ranges hold few pairs, so the fallback is cheap in
// aggregate.
const maxCellsPerDim = 1 << 25

// Pairs calls fn exactly once for every unordered pair (u, v), u < v, with
// dist(u, v) in [lo, hi) — hi == +Inf includes infinite distances. Pairs
// with distance beyond the range's upper edge are never evaluated unless
// the grid degenerates (hi at or beyond the point spread, or too fine to
// index safely).
func (e *GridEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	n := len(e.pts)
	if n < 2 {
		return
	}
	// Cells are padded a relative 2^-20 wider than the range: an in-range
	// pair's per-axis difference is then < cell*(1 - 2^-21), and with the
	// quotient rounding error capped below 2^-26 cells (maxCellsPerDim),
	// computed cell indices provably differ by at most 1 per axis — no
	// in-range pair can ever escape the 3^d neighborhood.
	cell := hi * (1 + 1.0/(1<<20))
	usable := cell > 0 && !math.IsInf(cell, 1)
	for k := 0; usable && k < e.dim; k++ {
		if e.boxSpan[k]/cell >= maxCellsPerDim {
			usable = false
		}
	}
	if !usable {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if w := e.dist(i, j); graph.WeightInRange(w, lo, hi) {
					fn(i, j, w)
				}
			}
		}
		return
	}

	// Bucket the points into cells of side `cell`, keyed by packed integer
	// coordinates. All buffers (and the member lists' backing arrays) are
	// reused across calls.
	if cap(e.coords) < n*e.dim {
		e.coords = make([]int64, n*e.dim)
	}
	coords := e.coords[:n*e.dim]
	if e.cellOf == nil {
		e.cellOf = make(map[string]int32, n)
	} else {
		clear(e.cellOf)
	}
	cellOf := e.cellOf
	e.cellCoord = e.cellCoord[:0]
	nCells := 0
	key := make([]byte, 8*e.dim)
	for i, p := range e.pts {
		cc := coords[i*e.dim : (i+1)*e.dim]
		for k, c := range p {
			cc[k] = int64((c - e.boxLo[k]) / cell)
			binary.LittleEndian.PutUint64(key[8*k:], uint64(cc[k]))
		}
		id, ok := cellOf[string(key)]
		if !ok {
			id = int32(nCells)
			cellOf[string(key)] = id
			if nCells < len(e.cells) {
				e.cells[nCells] = e.cells[nCells][:0]
			} else {
				e.cells = append(e.cells, nil)
			}
			e.cellCoord = append(e.cellCoord, cc)
			nCells++
		}
		e.cells[id] = append(e.cells[id], int32(i))
	}
	cells := e.cells[:nCells]
	cellCoord := e.cellCoord

	emit := func(i, j int32) {
		u, v := int(i), int(j)
		if u > v {
			u, v = v, u
		}
		if w := e.dist(u, v); graph.WeightInRange(w, lo, hi) {
			fn(u, v, w)
		}
	}

	// Within-cell pairs once per cell; cross-cell pairs once per
	// lexicographically positive offset in {-1, 0, 1}^d.
	if e.offsets == nil {
		e.offsets = positiveOffsets(e.dim)
	}
	offsets := e.offsets
	nb := make([]int64, e.dim)
	for id, members := range cells {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				emit(members[a], members[b])
			}
		}
		for _, off := range offsets {
			for k := range nb {
				nb[k] = cellCoord[id][k] + off[k]
				binary.LittleEndian.PutUint64(key[8*k:], uint64(nb[k]))
			}
			other, ok := cellOf[string(key)]
			if !ok {
				continue
			}
			for _, i := range members {
				for _, j := range cells[other] {
					emit(i, j)
				}
			}
		}
	}
}

// positiveOffsets returns the lexicographically positive half of
// {-1, 0, 1}^d (first nonzero component is +1), so each unordered pair of
// adjacent cells is visited exactly once.
func positiveOffsets(d int) [][]int64 {
	var out [][]int64
	cur := make([]int64, d)
	var rec func(k int, positive bool)
	rec = func(k int, positive bool) {
		if k == d {
			if positive {
				out = append(out, append([]int64(nil), cur...))
			}
			return
		}
		for _, v := range [3]int64{-1, 0, 1} {
			if !positive && v == -1 {
				continue // first nonzero component must be +1
			}
			cur[k] = v
			rec(k+1, positive || v == 1)
		}
	}
	rec(0, false)
	return out
}
