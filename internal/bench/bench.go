package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned results table.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f1 formats a float with 1 decimal; f2, f3, and f4 likewise.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
