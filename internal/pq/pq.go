// Package pq provides indexed priority queues used by the shortest-path and
// minimum-spanning-tree algorithms in this repository.
//
// The central type is IndexedMinHeap, a binary min-heap keyed by float64
// priorities over a dense universe of integer items [0, n). It supports the
// DecreaseKey operation required by Dijkstra's and Prim's algorithms in
// O(log n) time, and O(1) membership and priority lookup.
package pq

// IndexedMinHeap is a binary min-heap over items 0..n-1 with float64 keys.
// Each item may appear at most once. The zero value is not usable; construct
// with NewIndexedMinHeap.
type IndexedMinHeap struct {
	// heap[i] is the item stored at heap position i.
	heap []int32
	// pos[v] is the heap position of item v, or -1 if v is not in the heap.
	pos []int32
	// key[v] is the current priority of item v (valid only when pos[v] >= 0).
	key []float64
}

// NewIndexedMinHeap returns an empty heap over the universe [0, n).
func NewIndexedMinHeap(n int) *IndexedMinHeap {
	h := &IndexedMinHeap{
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
		key:  make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *IndexedMinHeap) Len() int { return len(h.heap) }

// Contains reports whether item v is currently in the heap.
func (h *IndexedMinHeap) Contains(v int) bool { return h.pos[v] >= 0 }

// Key returns the current priority of item v. It must only be called when
// Contains(v) is true; otherwise the returned value is stale or zero.
func (h *IndexedMinHeap) Key(v int) float64 { return h.key[v] }

// Push inserts item v with priority k. If v is already present, Push behaves
// like DecreaseKey when k is smaller than the current key and is a no-op
// otherwise.
func (h *IndexedMinHeap) Push(v int, k float64) {
	if h.pos[v] >= 0 {
		if k < h.key[v] {
			h.DecreaseKey(v, k)
		}
		return
	}
	h.key[v] = k
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, int32(v))
	h.siftUp(len(h.heap) - 1)
}

// DecreaseKey lowers the priority of item v to k. It is a no-op if v is not
// in the heap or k is not smaller than the current key.
func (h *IndexedMinHeap) DecreaseKey(v int, k float64) {
	p := h.pos[v]
	if p < 0 || k >= h.key[v] {
		return
	}
	h.key[v] = k
	h.siftUp(int(p))
}

// Peek returns the item with the minimum key and that key without removing
// it. It must not be called on an empty heap.
func (h *IndexedMinHeap) Peek() (v int, k float64) {
	top := h.heap[0]
	return int(top), h.key[top]
}

// Pop removes and returns the item with the minimum key along with that key.
// It must not be called on an empty heap (Len() == 0); doing so panics, which
// indicates a programming error in the caller.
func (h *IndexedMinHeap) Pop() (v int, k float64) {
	top := h.heap[0]
	k = h.key[top]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.siftDown(0)
	}
	return int(top), k
}

// Reset empties the heap without releasing its backing storage, allowing it
// to be reused across repeated runs over the same universe.
func (h *IndexedMinHeap) Reset() {
	for _, v := range h.heap {
		h.pos[v] = -1
	}
	h.heap = h.heap[:0]
}

func (h *IndexedMinHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *IndexedMinHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.key[h.heap[parent]] <= h.key[h.heap[i]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedMinHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.key[h.heap[l]] < h.key[h.heap[smallest]] {
			smallest = l
		}
		if r < n && h.key[h.heap[r]] < h.key[h.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
