package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Frozensnap enforces the frozen-snapshot certification discipline from
// core/doc.go: worker goroutines spawned during batch certification read
// a snapshot of the spanner-so-far and must not mutate any captured
// shared state — the snapshot graph, the result, the hub oracle, the
// bound store. Workers communicate exclusively through owner-indexed
// slots (errs[w], certified[i]) so no two goroutines touch the same
// element and the join can merge results deterministically.
//
// Inside every `go func` literal the analyzer flags: (a) assignments and
// ++/-- on captured variables or fields of captured variables; (b)
// element writes through a captured slice or map when any index on the
// access path is itself captured (an owner-indexed write uses only the
// literal's own parameters and locals as indices); (c) method calls on
// captured values of the engine's shared snapshot types, unless the
// method is in the read-only allowlist. Writes that are genuinely safe
// (e.g. a fold row owned by exactly one worker) carry a
// //spannerlint:ignore frozensnap <reason> annotation.
var Frozensnap = &framework.Analyzer{
	Name:  "frozensnap",
	Doc:   "worker closures in batch certification must not write captured snapshot state",
	Scope: []string{"internal/core"},
	Run:   runFrozensnap,
}

// frozenTypes are the named types that constitute shared snapshot state
// during certification.
var frozenTypes = map[string]bool{
	"Graph":               true,
	"Result":              true,
	"HubOracle":           true,
	"boundStore":          true,
	"IncrementalSpanner":  true,
	"ParallelStats":       true,
	"MetricParallelStats": true,
	"FaultTolerantStats":  true,
}

// frozenReadOnly are methods on frozen types that only observe state.
var frozenReadOnly = map[string]bool{
	"N": true, "M": true, "Edges": true, "EdgesCopy": true,
	"Neighbors": true, "EdgeWeight": true, "SortedEdges": true,
	"Certify": true, "CertifyAvoiding": true, "Hubs": true,
	"Relaxed": true, "Epoch": true, "Reselected": true,
	"countRows": true, "get": true, "Size": true, "Graph": true,
	"MaxDegree": true, "Lightness": true, "Weight": true,
	"Stretch": true, "verifyPair": true, "PeakBucket": true,
}

func runFrozensnap(pass *framework.Pass) error {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWorker(pass, info, lit)
			// Nested go statements inside the literal are visited again by
			// the outer Inspect; their own literals get their own pass.
			return true
		})
	}
	return nil
}

// checkWorker walks one worker literal. Locality is positional: an
// object declared anywhere inside the literal (parameters included) is
// the worker's own; everything else is captured.
func checkWorker(pass *framework.Pass, info *types.Info, lit *ast.FuncLit) {
	local := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End()
	}
	capturedVar := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && !local(obj) {
			return obj
		}
		return nil
	}

	flagWrite := func(pos token.Pos, lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := capturedVar(root)
		if obj == nil {
			return
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			pass.Reportf(pos, "worker closure writes captured variable %s: workers must only write owner-indexed slots", root.Name)
		case *ast.SelectorExpr:
			pass.Reportf(pos, "worker closure writes field %s of captured %s: snapshot state is frozen during certification", lhs.Sel.Name, root.Name)
		case *ast.StarExpr:
			pass.Reportf(pos, "worker closure writes through captured pointer %s: snapshot state is frozen during certification", root.Name)
		default:
			// Indexed write: owner-indexed (all indices local) is the
			// sanctioned communication channel; a captured index means two
			// workers can collide on the same slot.
			if !allIndicesLocal(info, lhs, local) {
				pass.Reportf(pos, "worker closure writes %s through a non-owner index: workers may only write slots indexed by their own parameters and locals", exprString(lhs))
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagWrite(n.TokPos, lhs)
			}
		case *ast.IncDecStmt:
			flagWrite(n.TokPos, n.X)
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			root := rootIdent(sel.X)
			if root == nil {
				return true
			}
			obj := capturedVar(root)
			if obj == nil {
				return true
			}
			tname := namedTypeName(obj.Type())
			if frozenTypes[tname] && !frozenReadOnly[sel.Sel.Name] {
				pass.Reportf(n.Pos(), "worker closure calls %s.%s on captured %s state: certification snapshots are frozen; only read-only methods are allowed", root.Name, sel.Sel.Name, tname)
			}
		}
		return true
	})
}

// allIndicesLocal walks the selector/index chain of an lvalue and
// reports whether every index expression is a worker-local identifier or
// a constant.
func allIndicesLocal(info *types.Info, e ast.Expr, local func(types.Object) bool) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if !indexIsLocal(info, x.Index, local) {
				return false
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return true
		}
	}
}

// indexIsLocal accepts constants, worker-local identifiers, and simple
// arithmetic over them (i+1, start+k).
func indexIsLocal(info *types.Info, idx ast.Expr, local func(types.Object) bool) bool {
	ok := true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return ok
		}
		obj := info.Uses[id]
		if obj == nil {
			return ok
		}
		if v, isVar := obj.(*types.Var); isVar && !v.IsField() && !local(obj) {
			ok = false
		}
		return ok
	})
	return ok
}
