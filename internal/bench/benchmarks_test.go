package bench

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
)

// testing.B benchmarks over the greedy engines and their candidate
// supplies, small enough that CI's smoke step (-benchtime=1x) stays
// cheap while still compiling and exercising every engine/supply
// combination.

func benchMetric(b *testing.B, n int) metric.Metric {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	return metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
}

func BenchmarkGreedyMetricSerialMaterialized(b *testing.B) {
	m := benchMetric(b, 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFastSerial(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricStreamed(b *testing.B) {
	m := benchMetric(b, 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFastParallel(m, 1.5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricMaterialized(b *testing.B) {
	m := benchMetric(b, 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.MetricParallelOptions{Workers: 1, Materialize: true}
		if _, err := core.GreedyMetricFastParallelOpts(m, 1.5, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricStreamedParallel(b *testing.B) {
	m := benchMetric(b, 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFastParallel(m, 1.5, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricPairSourceDrain(b *testing.B) {
	m := benchMetric(b, 220)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := core.NewMetricSource(m, 0)
		for len(src.NextBatch(4096)) > 0 {
		}
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := gen.UniformPoints(rng, 240, 2)
	base := metric.MustEuclidean(pts[:220])
	union := metric.MustEuclidean(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := core.NewIncrementalMetric(base, 1.5, core.MetricParallelOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := inc.Insert(union); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyGraphStreamed(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := gen.ErdosRenyi(rng, 200, 0.2, 0.5, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyGraphParallel(g, 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricHubs(b *testing.B) {
	m := benchMetric(b, 220)
	opts := core.MetricParallelOptions{Workers: 1, Hubs: core.DefaultHubs(220)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFastParallelOpts(m, 1.5, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyGraphHubs(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := gen.ErdosRenyi(rng, 300, 0.15, 0.5, 10)
	opts := core.ParallelOptions{Workers: 1, Hubs: core.DefaultHubs(300)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyGraphParallelOpts(g, 3, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalInsertCoalesced(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := gen.UniformPoints(rng, 240, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:200]), 1.5,
			core.MetricParallelOptions{Workers: 1, Hubs: 16})
		if err != nil {
			b.Fatal(err)
		}
		inc.SetPolicy(core.IncrementalPolicy{MinBatch: 8})
		for k := 201; k <= len(pts); k++ {
			if err := inc.Insert(metric.MustEuclidean(pts[:k])); err != nil {
				b.Fatal(err)
			}
		}
		inc.Flush()
	}
}
