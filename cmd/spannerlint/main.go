// Command spannerlint runs the repo's soundness analyzers (see
// internal/analysis/checks) over the given package patterns — ./... by
// default — and exits nonzero if any diagnostic is reported. It is the
// multichecker CI runs and the one-command local gate behind
// scripts/lint.sh.
//
// Usage:
//
//	spannerlint [-list] [packages]
//
// -list prints the analyzer names and the invariant each enforces.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/checks"
	"repro/internal/analysis/framework"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerlint:", err)
		os.Exit(2)
	}
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerlint:", err)
		os.Exit(2)
	}
	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spannerlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
