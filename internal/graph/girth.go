package graph

// GirthUnweighted computes the girth of g viewed as an unweighted graph: the
// minimum number of edges on any cycle, or 0 if g is acyclic. It runs a BFS
// from every vertex, O(n(m+n)). Multi-edges count as cycles of length 2.
//
// High-girth graphs are the classical lower-bound instances for spanner
// size: a graph with girth > t+1 has no proper t-spanner (removing any edge
// stretches its endpoints beyond t), which is what makes the Figure-1
// construction work.
func (g *Graph) GirthUnweighted() int {
	n := g.N()
	// Detect multi-edges first: any repeated pair is a 2-cycle.
	type pair struct{ u, v int }
	seen := make(map[pair]bool, g.M())
	for _, e := range g.edges {
		p := pair{e.U, e.V}
		if seen[p] {
			return 2
		}
		seen[p] = true
	}

	best := 0 // 0 encodes "no cycle found yet"
	dist := make([]int32, n)
	parent := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		queue = queue[:0]
		dist[s] = 0
		queue = append(queue, int32(s))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if best > 0 && int(dist[v])*2 >= best {
				// Any cycle through s found beyond this depth is no shorter
				// than the current best.
				break
			}
			for _, h := range g.adj[v] {
				u := h.to
				switch {
				case dist[u] == -1:
					dist[u] = dist[v] + 1
					parent[u] = v
					queue = append(queue, u)
				case u != parent[v]:
					// Non-tree edge closes a cycle through s of length
					// dist[v] + dist[u] + 1 (a lower bound that is tight for
					// the cycle through the BFS root in some BFS; scanning
					// all roots makes the overall minimum exact).
					if c := int(dist[v]) + int(dist[u]) + 1; best == 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// HasProperTSpanner reports whether g admits a t-spanner that omits at least
// one edge, by checking each edge e for an alternative path of weight at
// most t*w(e) in g - e. Exponentially cheaper than enumerating subgraphs and
// exact: a proper t-spanner exists iff some single edge is removable,
// because removing one removable edge keeps all other alternative paths
// (their weights only matter against g's distances, which only grow).
// Intended for small instances (Figure 1 scale); O(m * Dijkstra).
func (g *Graph) HasProperTSpanner(t float64) bool {
	for _, e := range g.edges {
		rest, err := g.WithoutEdge(e)
		if err != nil {
			continue
		}
		if d, ok := rest.DistanceWithin(e.U, e.V, t*e.W); ok && d <= t*e.W {
			return true
		}
	}
	return false
}
