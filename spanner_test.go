package spanner

import (
	"math/rand"
	"testing"
)

// TestPublicAPIRoundTrip exercises the facade end to end: build a graph,
// construct greedy and baseline spanners, and verify them.
func TestPublicAPIRoundTrip(t *testing.T) {
	g := NewGraph(5)
	edges := [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 2, 1.8}}
	for _, e := range edges {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() == 0 || res.Size() > g.M() {
		t.Fatalf("spanner size %d out of range", res.Size())
	}
	if _, err := VerifySpanner(res.Graph(), g, 2); err != nil {
		t.Fatal(err)
	}
	if v := VerifySelfSpanner(res.Graph(), 2); len(v) != 0 {
		t.Fatalf("self-spanner violations: %v", v)
	}
	if _, err := Lightness(res.Graph(), g); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMetric(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := GreedyMetricFast(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != fast.Size() {
		t.Fatalf("naive and fast greedy disagree: %d vs %d", res.Size(), fast.Size())
	}
	if _, err := VerifyMetricSpanner(res.Graph(), m, 1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := MetricLightness(res.Graph(), m); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIApproxGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxGreedy(m, ApproxOptions{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyMetricSpanner(res.Spanner, m, 1.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	if g, err := ThetaGraph(pts, 12); err != nil || g.M() == 0 {
		t.Fatalf("ThetaGraph: %v", err)
	}
	if g, err := YaoGraph(pts, 12); err != nil || g.M() == 0 {
		t.Fatalf("YaoGraph: %v", err)
	}
	if g, err := WSPDSpanner(pts, 0.5); err != nil || g.M() == 0 {
		t.Fatalf("WSPDSpanner: %v", err)
	}
	cg := NewGraph(m.N())
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			cg.MustAddEdge(i, j, m.Dist(i, j))
		}
	}
	sp, err := BaswanaSen(rng, cg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySpanner(sp, cg, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMetricFromGraphAndMatrix(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	m, err := MetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 2) != 3 {
		t.Fatalf("Dist(0,2) = %v, want 3", m.Dist(0, 2))
	}
	mm, err := NewMetricFromMatrix([][]float64{{0, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Dist(1, 0) != 5 {
		t.Fatalf("matrix Dist = %v", mm.Dist(1, 0))
	}
}

// TestPublicAPIIncremental exercises the maintained-spanner facade in both
// modes against from-scratch rebuilds.
func TestPublicAPIIncremental(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.4, 0.6}, {2, 2}, {2.5, 0.5}}
	sub, err := NewEuclidean(pts[:4])
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(sub, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 7} {
		union, err := NewEuclidean(pts[:k])
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert(union); err != nil {
			t.Fatal(err)
		}
		want, err := GreedyMetric(union, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != want.Size() || got.Weight != want.Weight {
			t.Fatalf("k=%d: incremental (%d, %v) vs from-scratch (%d, %v)",
				k, got.Size(), got.Weight, want.Size(), want.Weight)
		}
		for i := range want.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("k=%d: edge %d differs", k, i)
			}
		}
		if _, err := VerifyMetricSpanner(got.Graph(), union, 1.5); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(9))
	g := NewGraph(30)
	var held []Edge
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v {
			continue
		}
		e := Edge{U: u, V: v, W: 0.5 + rng.Float64()}
		if i%4 == 3 {
			held = append(held, e)
			continue
		}
		g.MustAddEdge(e.U, e.V, e.W)
	}
	ginc, err := NewIncrementalGraph(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ginc.InsertEdges(held...); err != nil {
		t.Fatal(err)
	}
	for _, e := range held {
		g.MustAddEdge(e.U, e.V, e.W)
	}
	want, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ginc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != want.Size() || got.Weight != want.Weight || got.EdgesExamined != want.EdgesExamined {
		t.Fatalf("graph mode: incremental (%d, %v, %d) vs from-scratch (%d, %v, %d)",
			got.Size(), got.Weight, got.EdgesExamined, want.Size(), want.Weight, want.EdgesExamined)
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("graph mode: edge %d differs", i)
		}
	}
}

func TestPublicAPIHubsAndPolicy(t *testing.T) {
	pts := make([][]float64, 0, 36)
	for i := 0; i < 36; i++ {
		pts = append(pts, []float64{float64(i % 6), float64(i / 6)})
	}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var stats MetricParallelStats
	got, err := GreedyMetricParallelOpts(m, 1.5, MetricParallelOptions{
		Workers: 1, Hubs: DefaultHubs(len(pts)), Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != want.Size() || got.Weight != want.Weight || got.EdgesExamined != want.EdgesExamined {
		t.Fatalf("hubs: (%d, %v, %d) vs (%d, %v, %d)",
			got.Size(), got.Weight, got.EdgesExamined, want.Size(), want.Weight, want.EdgesExamined)
	}
	if stats.HubSkips == 0 {
		t.Fatal("hub oracle certified nothing on a grid instance")
	}

	// FT hub fast path through the facade.
	ftRef, err := FaultTolerantGreedy(m, 1.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	ftHub, err := FaultTolerantGreedyOpts(m, 1.6, 1, FaultTolerantOptions{Hubs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ftHub.Size() != ftRef.Size() || ftHub.Weight != ftRef.Weight {
		t.Fatalf("FT hubs: (%d, %v) vs (%d, %v)", ftHub.Size(), ftHub.Weight, ftRef.Size(), ftRef.Weight)
	}

	// Coalescing policy through the facade: defer, then flush via Result.
	base, err := NewEuclidean(pts[:30])
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(base, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true})
	for k := 31; k <= len(pts); k++ {
		union, err := NewEuclidean(pts[:k])
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Insert(union); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", inc.Pending())
	}
	res, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != want.Size() || res.Weight != want.Weight || res.EdgesExamined != want.EdgesExamined {
		t.Fatalf("coalesced: (%d, %v, %d) vs (%d, %v, %d)",
			res.Size(), res.Weight, res.EdgesExamined, want.Size(), want.Weight, want.EdgesExamined)
	}
}
