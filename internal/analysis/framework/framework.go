// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface the spannerlint suite needs: an
// Analyzer is a named check with a Run function over one type-checked
// package (a Pass), and diagnostics are positions plus messages. The repo
// vendors this shape instead of depending on x/tools so the linters build
// offline with the standard toolchain alone; the API is kept close enough
// that migrating to the real go/analysis driver is a mechanical change.
//
// Suppression grammar (enforced here, shared by every analyzer):
//
//	//spannerlint:ignore <analyzer> <reason>
//	//spannerlint:nondeterministic-ok <reason>        (alias: ignore mapdet)
//
// An annotation suppresses the named analyzer's diagnostics on its own
// line and on the line directly below it (so it can sit above a statement
// or trail it). The reason is mandatory: an annotation without one is
// itself reported, because an unexplained exemption is exactly the
// reviewer-memory failure mode the suite exists to remove.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //spannerlint:ignore annotations.
	Name string
	// Doc states the invariant the analyzer enforces, one paragraph.
	Doc string
	// Scope lists the import-path suffixes the analyzer inspects; a
	// package outside every suffix is skipped. Empty means every package.
	// The fixture runner bypasses the scope with Pass.ForceScope.
	Scope []string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Unit     *LoadedPackage
	// ForceScope makes InScope true regardless of the package path; the
	// fixture runner sets it so testdata packages exercise scoped
	// analyzers.
	ForceScope bool

	diags       []Diagnostic
	suppression map[string][]suppressedLine // filename -> annotations
}

type suppressedLine struct {
	line     int
	analyzer string // "" suppresses nothing (malformed, already reported)
}

// InScope reports whether the package under analysis is one the analyzer's
// Scope covers.
func (p *Pass) InScope() bool {
	if p.ForceScope || len(p.Analyzer.Scope) == 0 {
		return true
	}
	for _, s := range p.Analyzer.Scope {
		if p.Unit.Path == s || strings.HasSuffix(p.Unit.Path, "/"+s) {
			return true
		}
	}
	return false
}

// Reportf records a diagnostic at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Unit.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore annotation for this analyzer sits
// on the diagnostic's line or the line above it.
func (p *Pass) suppressed(pos token.Position) bool {
	if p.suppression == nil {
		p.buildSuppression()
	}
	for _, s := range p.suppression[pos.Filename] {
		if s.analyzer == p.Analyzer.Name && (s.line == pos.Line || s.line == pos.Line-1) {
			return true
		}
	}
	return false
}

const (
	annPrefix    = "//spannerlint:"
	annIgnore    = "//spannerlint:ignore"
	annNondetOK  = "//spannerlint:nondeterministic-ok"
	mapdetName   = "mapdet"
	annMalformed = "" // sentinel analyzer name for malformed annotations
)

func (p *Pass) buildSuppression() {
	p.suppression = make(map[string][]suppressedLine)
	for _, f := range p.Unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ann, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := p.Unit.Fset.Position(c.Pos())
				if ann.err != "" {
					// Malformed annotations are reported by whichever
					// analyzer visits the file first, once per pass; the
					// driver dedupes identical diagnostics.
					p.diags = append(p.diags, Diagnostic{
						Analyzer: p.Analyzer.Name,
						Pos:      pos,
						Message:  ann.err,
					})
					continue
				}
				p.suppression[pos.Filename] = append(p.suppression[pos.Filename], suppressedLine{
					line:     pos.Line,
					analyzer: ann.analyzer,
				})
			}
		}
	}
}

type annotation struct {
	analyzer string
	reason   string
	err      string
}

// parseAnnotation decodes one //spannerlint: comment; ok is false for
// ordinary comments.
func parseAnnotation(text string) (annotation, bool) {
	if !strings.HasPrefix(text, annPrefix) {
		return annotation{}, false
	}
	switch {
	case strings.HasPrefix(text, annNondetOK):
		reason := strings.TrimSpace(strings.TrimPrefix(text, annNondetOK))
		if reason == "" {
			return annotation{err: "spannerlint annotation needs a reason: //spannerlint:nondeterministic-ok <reason>"}, true
		}
		return annotation{analyzer: mapdetName, reason: reason}, true
	case strings.HasPrefix(text, annIgnore):
		rest := strings.TrimSpace(strings.TrimPrefix(text, annIgnore))
		name, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if name == "" || reason == "" {
			return annotation{err: "spannerlint annotation needs an analyzer and a reason: //spannerlint:ignore <analyzer> <reason>"}, true
		}
		return annotation{analyzer: name, reason: reason}, true
	default:
		verb, _, _ := strings.Cut(strings.TrimPrefix(text, annPrefix), " ")
		return annotation{err: fmt.Sprintf("unknown spannerlint annotation %q (grammar: ignore <analyzer> <reason> | nondeterministic-ok <reason>)", verb)}, true
	}
}

// Run executes the analyzers over the loaded packages and returns every
// diagnostic, position-sorted and deduplicated (malformed annotations
// would otherwise repeat once per analyzer).
func Run(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, unit := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Unit: unit}
			if !pass.InScope() {
				continue
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, unit.Path, err)
			}
			all = append(all, pass.diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	dedup := all[:0]
	for i, d := range all {
		if i > 0 && d.Pos == all[i-1].Pos && d.Message == all[i-1].Message {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup, nil
}

// RunOne executes a single analyzer over one package with the scope
// forced open — the fixture runner's entry point.
func RunOne(unit *LoadedPackage, a *Analyzer) []Diagnostic {
	pass := &Pass{Analyzer: a, Unit: unit, ForceScope: true}
	if err := a.Run(pass); err != nil {
		pass.diags = append(pass.diags, Diagnostic{
			Analyzer: a.Name,
			Pos:      token.Position{Filename: unit.Path},
			Message:  fmt.Sprintf("analyzer error: %v", err),
		})
	}
	return pass.diags
}

// File returns the *ast.File containing pos, so analyzers can relate a
// node to file-level state (imports, comments).
func (u *LoadedPackage) File(pos token.Pos) *ast.File {
	for _, f := range u.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
