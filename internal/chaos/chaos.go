package chaos

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Fault names one injectable fault class.
type Fault int

const (
	// FaultNone injects nothing; the engine must complete identically.
	FaultNone Fault = iota
	// FaultPanic panics inside the AtCertify-th certification — in a
	// worker goroutine when the engine fans certifications out, in a
	// serial section otherwise. The engine must convert it into a typed
	// ErrEnginePanic, never crash the process.
	FaultPanic
	// FaultCancel cancels the build's context from inside the
	// AtCertify-th certification, modelling a caller cancelling at a
	// randomized scan position. The engine must return ErrCancelled with
	// the exact decided prefix.
	FaultCancel
	// FaultStall sleeps inside the AtCertify-th certification. Paired
	// with a budget deadline it models a stalled worker: the deadline
	// passes mid-certification and the engine must abort cleanly.
	FaultStall
	// FaultCorrupt flips one bit of a materialized cached bound row at
	// the AtBatch-th batch boundary, bypassing the row's checksum — a
	// simulated memory fault. A guarded engine must either never consult
	// the damaged row (identical output) or surface ErrCorruptState;
	// never silently certify from it.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultCancel:
		return "cancel"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// Schedule is one deterministic fault schedule: the fault class and the
// exact trigger point it fires at. The zero Schedule injects nothing.
type Schedule struct {
	Fault Fault
	// AtCertify fires FaultPanic/FaultCancel/FaultStall at the k-th
	// OnCertify call (1-based, counted across the whole run — for a
	// maintained spanner that spans the initial build and every replay).
	// A trigger past the run's last certification simply never fires.
	AtCertify int64
	// AtBatch fires FaultCorrupt at this 0-based batch boundary.
	AtBatch int
	// Row, Col, Bit locate the corrupted bound-row entry and the bit to
	// flip within it.
	Row, Col int
	Bit      uint
	// Stall is how long the stalled certification sleeps.
	Stall time.Duration
	// AtRebase redirects the fault to the backward-rebase window instead
	// of the certification path: the fault fires inside
	// IncrementalSpanner.Flush after the keep prefix is decided, before
	// the bound store and hub oracle rebase onto it. FaultCorrupt then
	// targets a checkpoint snapshot (falling back to a live row when the
	// corrupter exposes no checkpoints), modelling a damaged saved state
	// that the digest-verified restore must detect, never launder.
	AtRebase bool
}

// RandomSchedule draws a schedule for the given fault class: the certify
// trigger lands uniformly in [1, maxCertify] (so some schedules fire
// mid-scan and some never fire), the corruption batch in [0, 4), and the
// corruption target anywhere in an n-point instance.
func RandomSchedule(rng *rand.Rand, fault Fault, n int, maxCertify int64, stall time.Duration) Schedule {
	s := Schedule{Fault: fault, Stall: stall}
	if maxCertify > 0 {
		s.AtCertify = 1 + rng.Int63n(maxCertify)
	}
	s.AtBatch = rng.Intn(4)
	if n > 0 {
		s.Row, s.Col = rng.Intn(n), rng.Intn(n)
	}
	s.Bit = uint(rng.Intn(16))
	return s
}

// Injector arms one Schedule: Arm returns the context the engine must run
// under and the hooks to install as the engine's Inject option. Each fault
// fires at most once, and every hook is safe for concurrent calls (the
// engines invoke OnCertify from worker goroutines).
type Injector struct {
	sched     Schedule
	cancel    context.CancelFunc
	certs     atomic.Int64
	fired     atomic.Bool
	corrupted atomic.Bool
}

// New returns an injector for the schedule.
func New(s Schedule) *Injector { return &Injector{sched: s} }

// Arm wires the schedule to a context derived from parent (cancellable by
// FaultCancel) and the engines' injection hooks. Call Release when the run
// is over to release the derived context.
func (in *Injector) Arm(parent context.Context) (context.Context, core.InjectionHooks) {
	ctx := parent
	if in.sched.Fault == FaultCancel {
		ctx, in.cancel = context.WithCancel(parent)
	}
	return ctx, core.InjectionHooks{OnCertify: in.onCertify, OnBatch: in.onBatch, OnRebase: in.onRebase}
}

// Release releases the cancellable context Arm derived; safe to call
// whether or not the fault fired.
func (in *Injector) Release() {
	if in.cancel != nil {
		in.cancel()
	}
}

// Fired reports whether the certify-triggered fault fired.
func (in *Injector) Fired() bool { return in.fired.Load() }

// Corrupted reports whether FaultCorrupt actually damaged a materialized
// row (a miss on an unmaterialized row leaves the run fault-free).
func (in *Injector) Corrupted() bool { return in.corrupted.Load() }

// Certifications reports how many certification points the run passed.
func (in *Injector) Certifications() int64 { return in.certs.Load() }

func (in *Injector) onCertify(graph.Edge) {
	hit := in.certs.Add(1) == in.sched.AtCertify
	if in.sched.AtRebase || in.sched.AtCertify <= 0 || !hit {
		return
	}
	switch in.sched.Fault {
	case FaultPanic:
		in.fired.Store(true)
		panic("chaos: injected certification panic")
	case FaultCancel:
		in.fired.Store(true)
		in.cancel()
	case FaultStall:
		in.fired.Store(true)
		time.Sleep(in.sched.Stall)
	}
}

// onRebase fires the scheduled fault inside the maintained spanner's
// backward-rebase window, at most once — a retried flush revisits the
// window, and recovery is the property under test.
func (in *Injector) onRebase(_ int, c core.Corrupter) {
	if !in.sched.AtRebase {
		return
	}
	switch in.sched.Fault {
	case FaultPanic:
		if in.fired.CompareAndSwap(false, true) {
			panic("chaos: injected rebase panic")
		}
	case FaultCancel:
		if in.fired.CompareAndSwap(false, true) {
			in.cancel()
		}
	case FaultStall:
		if in.fired.CompareAndSwap(false, true) {
			time.Sleep(in.sched.Stall)
		}
	case FaultCorrupt:
		if c == nil || !in.corrupted.CompareAndSwap(false, true) {
			return
		}
		// Prefer damaging a checkpoint snapshot — the saved state a
		// backward rebase restores from — and fall back to a live row
		// when no checkpoint exists yet. Un-fire on a double miss.
		if ck, ok := c.(interface {
			FlipCheckpointBit(u, v int, bit uint) bool
		}); ok && ck.FlipCheckpointBit(in.sched.Row, in.sched.Col, in.sched.Bit) {
			return
		}
		if !c.FlipRowBit(in.sched.Row, in.sched.Col, in.sched.Bit) {
			in.corrupted.Store(false)
		}
	}
}

func (in *Injector) onBatch(batch int, c core.Corrupter) {
	if in.sched.Fault != FaultCorrupt || c == nil || batch != in.sched.AtBatch {
		return
	}
	// Fire at most once: a retried replay revisits batch AtBatch, and
	// re-corrupting it would make recovery impossible by construction.
	if !in.corrupted.CompareAndSwap(false, true) {
		return
	}
	if !c.FlipRowBit(in.sched.Row, in.sched.Col, in.sched.Bit) {
		in.corrupted.Store(false)
	}
}
