package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// ErrLocked reports that another live process holds the state directory.
// Two writers interleaving WAL appends on one directory would corrupt the
// log-before-apply invariant silently, so the second Open/Create must
// fail fast instead. errors.Is-match this to distinguish "directory busy"
// from real corruption.
var ErrLocked = errors.New("persist: state directory locked by a live process")

// lockName is the pidfile guarding a state directory. It is created with
// O_EXCL by the opening process and removed on Close; a crash leaves it
// behind, which the next Open treats as stale once the recorded pid is
// provably not alive.
const lockName = "LOCK"

func lockPath(dir string) string { return filepath.Join(dir, lockName) }

// acquireLock takes the exclusive pidfile for dir. A present lock naming
// a live pid (including our own: a second Durable in this process is just
// as unsound as one in another) returns ErrLocked; a lock naming a dead
// pid or holding garbage is stale debris from a crash and is broken once.
// The break-then-recreate window is a documented best-effort race: two
// recoverers can both observe the same stale lock, and the O_EXCL
// recreate serializes them — the loser sees the winner's fresh lock and
// reports ErrLocked.
func acquireLock(dir string) error {
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(lockPath(dir), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(lockPath(dir))
				return werr
			}
			return nil
		}
		if !errors.Is(err, os.ErrExist) || attempt > 0 {
			if errors.Is(err, os.ErrExist) {
				return fmt.Errorf("persist: %s reappeared while breaking a stale lock: %w", lockPath(dir), ErrLocked)
			}
			return err
		}
		data, rerr := os.ReadFile(lockPath(dir))
		if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return rerr
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if rerr == nil && perr == nil && pidAlive(pid) {
			return fmt.Errorf("persist: %s held by pid %d: %w", dir, pid, ErrLocked)
		}
		// Stale (dead pid) or unreadable (torn write during a crash):
		// break it and retry the exclusive create exactly once.
		if err := os.Remove(lockPath(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
}

// releaseLock drops the pidfile. Idempotent: a lock already removed by a
// simulated crash (see Durable.fire) is not an error.
func releaseLock(dir string) {
	os.Remove(lockPath(dir))
}

// pidAlive reports whether pid refers to a live process. Signal 0 probes
// existence without delivering anything; EPERM means the process exists
// but belongs to someone else — still alive, still a conflict.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
