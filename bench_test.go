package spanner

// This file hosts one testing.B benchmark per experiment in DESIGN.md's
// per-experiment index (E1–E10), each regenerating the corresponding
// figure/claim of the paper at reduced scale, plus micro-benchmarks for the
// core constructions. Run the full-scale experiment tables with:
//
//	go run ./cmd/spannerbench -scale full
import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/approx"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

func BenchmarkE1Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E1Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2GeneralGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E2GeneralGraphs(bench.Small, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3SelfSpanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E3SelfSpanner(bench.Small, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4DoublingLightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E4DoublingLightness(bench.Small, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ApproxGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5ApproxGreedy(bench.Small, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E6Comparison(bench.Small, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7MSTContainment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7MSTContainment(bench.Small, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8LogStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8LogStretch(bench.Small, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9UnboundedDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9UnboundedDegree(bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Lemma11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Lemma11(bench.Small, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the core constructions ---

func benchGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.ErdosRenyi(rng, n, 0.2, 0.5, 10)
}

func BenchmarkGreedyGraphN200(b *testing.B) {
	g := benchGraph(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyGraph(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyGraphParallel compares the sequential greedy scan against
// the batched-parallel engine at the acceptance sizes. The n=2000 instance
// uses density 0.05 (~100k candidate edges) so the sequential baseline
// completes in sensible benchmark time; spannerbench -exp greedybench
// records the same comparison in BENCH_greedy.json.
func BenchmarkGreedyGraphParallel(b *testing.B) {
	for _, cfg := range []struct {
		n int
		p float64
	}{{200, 0.2}, {2000, 0.05}} {
		rng := rand.New(rand.NewSource(1))
		g := gen.ErdosRenyi(rng, cfg.n, cfg.p, 0.5, 10)
		b.Run(fmt.Sprintf("n=%d/sequential", cfg.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GreedyGraph(g, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
		workerSet := []int{1, 4}
		if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
			workerSet = append(workerSet, p)
		}
		for _, w := range workerSet {
			b.Run(fmt.Sprintf("n=%d/workers=%d", cfg.n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.GreedyGraphParallel(g, 3, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBoundedDistanceQuery isolates the greedy engine's query
// primitive: the same skip-certification queries (endpoints and limit
// t*w of every candidate edge) answered by one-sided bounded Dijkstra
// versus bounded bidirectional search, both against the final greedy
// spanner.
func BenchmarkBoundedDistanceQuery(b *testing.B) {
	g := benchGraph(1000, 4)
	res, err := core.GreedyGraph(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	h := res.Graph()
	queries := g.SortedEdges()
	if len(queries) > 4096 {
		queries = queries[:4096]
	}
	search := graph.NewSearcher(g.N())
	b.Run("unidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := queries[i%len(queries)]
			search.DistanceWithin(h, e.U, e.V, 3*e.W)
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := queries[i%len(queries)]
			search.BidirDistanceWithin(h, e.U, e.V, 3*e.W)
		}
	})
}

func benchMetric(n int, seed int64) Metric {
	rng := rand.New(rand.NewSource(seed))
	return metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
}

func BenchmarkGreedyMetricNaiveN128(b *testing.B) {
	m := benchMetric(128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetric(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricFastN128(b *testing.B) {
	m := benchMetric(128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFast(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricFastN512(b *testing.B) {
	m := benchMetric(512, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFast(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxGreedyN512(b *testing.B) {
	m := benchMetric(512, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Greedy(m, approx.Options{Eps: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraN1000(b *testing.B) {
	g := benchGraph(1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(i % g.N())
	}
}

func BenchmarkMSTKruskalN1000(b *testing.B) {
	g := benchGraph(1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MSTKruskal()
	}
}

// --- Ablation benchmarks (design-choice probes from DESIGN.md) ---

func BenchmarkA1Deputies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A1Deputies(bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2BucketWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A2BucketWidth(bench.Small, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3Certification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A3Certification(bench.Small, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E11FaultTolerance(bench.Small, 11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12GraphFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E12GraphFamilies(bench.Small, 12); err != nil {
			b.Fatal(err)
		}
	}
}
