package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ParallelOptions configures GreedyGraphParallelOpts.
type ParallelOptions struct {
	// Workers is the number of goroutines certifying skips concurrently;
	// 0 selects GOMAXPROCS. With Workers == 1 the engine degenerates to a
	// serial scan that still benefits from the bidirectional query
	// primitive.
	Workers int
	// BatchSize fixes the number of sorted edges examined per
	// certification round. 0 (the default) selects adaptive batching:
	// the width grows while batches certify cleanly and shrinks when too
	// many edges fall through to the serial re-check.
	BatchSize int
	// Source overrides the candidate supply. The default is the streamed
	// weight-bucketed supply of NewGraphEdgeSource; any CandidateSource
	// emitting all of g's edges in greedy scan order yields the identical
	// spanner.
	Source CandidateSource
	// Materialize forces the classic supply (one globally sorted O(m)
	// copy of the edge list, as GreedyGraph scans). Output is identical
	// either way. Ignored when Source is set.
	Materialize bool
	// BucketPairs caps how many candidates the default streamed supply
	// holds materialized at once; <= 0 selects DefaultBucketPairs (scaled
	// up on very large instances). Ignored when Source is set or
	// Materialize is true.
	BucketPairs int
	// Hubs enables the hub-label certification fast path: k hub vertices
	// are selected by the degree heuristic and their exact distance
	// arrays over the growing spanner are maintained incrementally
	// (HubOracle). Each candidate edge is first tested against the O(k)
	// hub upper bound, and only uncertified edges pay a bidirectional
	// search. Hub-certified skips are exact-equivalent, so output stays
	// bit-identical for every k; <= 0 disables the oracle and reproduces
	// the pre-hub engine verbatim.
	Hubs int
	// Stats, when non-nil, is filled with engine counters for ablations
	// and benchmarks.
	Stats *ParallelStats
	// Ctx, when non-nil, makes the build cancellable: cancellation is
	// checked at batch boundaries, inside the certification fan-out, and
	// before every serial decision, and a cancelled build returns the
	// clean prefix Result (Partial set) with a typed ErrCancelled.
	Ctx context.Context
	// Budget bounds the run's resources; see Budget. Degradation steps
	// land in Stats.Degradations.
	Budget Budget
	// Inject installs fault-injection hooks (see InjectionHooks); nil
	// hooks cost nothing. Exposed for the internal/chaos harness.
	Inject InjectionHooks
}

// ParallelStats reports how the batched engine spent its effort.
type ParallelStats struct {
	// Batches is the number of certification rounds.
	Batches int
	// CertifiedSkips counts edges whose skip was certified in parallel
	// against the frozen snapshot.
	CertifiedSkips int
	// SerialSkips counts edges that failed certification but were skipped
	// by the serial re-check (a path appeared within their own batch).
	SerialSkips int
	// Kept counts accepted edges.
	Kept int
	// PeakBucketPairs is the largest candidate bucket the streamed supply
	// held materialized at once (0 for materialized or custom supplies).
	PeakBucketPairs int
	// SupplyPasses counts the streamed supply's enumeration passes
	// (counting, subdivision, collection; 0 for materialized or custom
	// supplies).
	SupplyPasses int
	// FinalBatchSize is the adaptive batch width at the end of the scan.
	FinalBatchSize int
	// HubQueries / HubSkips count certification queries put to the hub
	// oracle and the skips it certified without any search. HubRelaxed is
	// the total number of hub-array entries the dirty-radius maintenance
	// re-relaxed — the oracle's whole upkeep cost, in vertices.
	HubQueries int
	HubSkips   int
	HubRelaxed int
	// Degradations logs, in order, each step the engine took down the
	// resource-budget ladder (supply streamed, batch width floored, hub
	// oracle dropped, ...). Empty for unbudgeted or in-budget runs. Every
	// logged step is output-invariant: it changes speed and memory, never
	// the spanner.
	Degradations []string
}

// Batch-width bounds for the adaptive policy.
const (
	minBatch = 32
	maxBatch = 8192
)

// initialBatch is the starting width of the adaptive policy, shared by the
// graph and metric engines: wide enough to feed every worker a few queries
// on the first round.
func initialBatch(workers int) int {
	b := minBatch
	if w := 4 * workers; w > b {
		b = w
	}
	return b
}

// adaptBatch is the shared width-update rule: survivors cost extra serial
// work on top of the batch's parallel certification, so the width grows
// while batches certify almost everything — wider batches amortize the
// worker fan-out — and shrinks when the snapshot goes stale too fast to
// certify.
func adaptBatch(batch, survivors, span int) int {
	switch {
	case survivors*4 <= span && batch < maxBatch:
		return batch * 2
	case survivors*2 > span && batch > minBatch:
		return batch / 2
	}
	return batch
}

// serialBatchStat is the FinalBatchSize reported by the workers==1 fast
// paths, which do not batch: the explicitly configured width when one was
// given, otherwise the whole scan.
func serialBatchStat(batchSize, scanLen int) int {
	if batchSize > 0 {
		return batchSize
	}
	return scanLen
}

// GreedyGraphParallel computes the greedy t-spanner of g like GreedyGraph,
// but fans the per-edge distance queries out over `workers` goroutines
// (0 selects GOMAXPROCS). The output — edge sequence, weight, and
// EdgesExamined — is deterministic (independent of workers, batching, and
// scheduling) and identical to GreedyGraph's, with one caveat: the
// bidirectional search sums path weights in a different order than the
// one-sided search, so the two engines could in principle disagree on an
// edge whose alternative-path length ties t*w within a float64 ulp. No
// such tie occurs in any of the repo's test families; the equivalence
// tests assert exact identity.
//
// The engine scans the sorted edge list in batches. Within a batch, every
// edge (u, v) is tested concurrently against the *frozen* spanner snapshot
// H0 taken at the batch boundary: if delta_{H0}(u, v) <= t*w(u, v) the skip
// is certified once and for all, because the sequential algorithm would
// test the edge against a superset of H0 and spanner distances only shrink
// as edges are added. Edges the snapshot cannot certify are re-checked
// serially, in exact greedy order, against the live spanner — so every
// accept/reject decision matches the sequential scan bit for bit. Distance
// queries use bounded bidirectional Dijkstra (Searcher.BidirDistanceWithin),
// which explores two balls of radius ~t*w/2 instead of one of radius t*w.
func GreedyGraphParallel(g *graph.Graph, t float64, workers int) (*Result, error) {
	return GreedyGraphParallelOpts(g, t, ParallelOptions{Workers: workers})
}

// GreedyGraphParallelOpts is GreedyGraphParallel with explicit batching
// and supply controls; see ParallelOptions.
func GreedyGraphParallelOpts(g *graph.Graph, t float64, opts ParallelOptions) (*Result, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	n := g.N()
	stats := opts.Stats
	if stats == nil {
		stats = &ParallelStats{}
	}
	*stats = ParallelStats{}
	env := newScanEnv(opts.Ctx, opts.Budget, opts.Inject, func(step string) {
		stats.Degradations = append(stats.Degradations, step)
	})
	src := opts.Source
	if src == nil {
		materialize, bucketPairs := opts.Materialize, opts.BucketPairs
		if env != nil {
			resolveSupplyBudget(opts.Budget, env.record, &materialize, &bucketPairs, g.M())
		}
		if materialize {
			src = NewMaterializedSource(g.SortedEdges())
		} else {
			src = NewGraphEdgeSource(g, bucketPairs)
		}
	}
	res := &Result{N: n, Stretch: t}
	h := graph.New(n)
	sc := &graphScan{
		t:       t,
		workers: opts.Workers,
		h:       h,
		res:     res,
		stats:   stats,
		env:     env,
	}
	hubs := opts.Hubs
	if env != nil {
		resolveHubBudget(opts.Budget, env.record, &hubs, n)
	}
	if hubs > 0 {
		sc.oracle = NewHubOracle(SelectGraphHubs(g, hubs), h, 0)
	}
	return res, sc.run(src, opts.BatchSize)
}

// graphScan bundles the state of one batched greedy graph scan: the
// partial spanner and the result being accumulated. A fresh build starts
// it empty; the incremental engine starts it at the preserved prefix of a
// previous scan and drains only the tail of the candidate stream.
type graphScan struct {
	t       float64
	workers int // <= 0 selects GOMAXPROCS
	h       *graph.Graph
	// oracle, when non-nil, is the hub-label certification fast path,
	// consulted only from the scan's serial sections.
	oracle *HubOracle
	res    *Result
	stats  *ParallelStats
	// env, when non-nil, carries the run's cancellation, budget, and
	// fault-injection state; nil reproduces the pre-robustness engine.
	env *scanEnv
}

// run drains src through the batched-certification scan, appending every
// accept to the scan's result; batchSize <= 0 selects adaptive batching.
// On clean completion the returned error is nil and any candidates a
// cut-resumed source suppressed are folded into EdgesExamined. On
// cancellation, deadline, captured panic, or injected fault the scan
// stops committing immediately: the result holds the exact decided
// prefix of the reference edge sequence (Partial set) and a typed error
// is returned. Every worker is joined before any batch outcome is
// inspected, so no goroutine outlives run on any path, and no decision
// derived from a possibly-truncated search is ever committed (the
// cancellation predicates are monotone, so "not cancelled after the
// join" proves no search in the joined batch was cut short).
func (sc *graphScan) run(src CandidateSource, batchSize int) (err error) {
	t, h, res, stats, env := sc.t, sc.h, sc.res, sc.stats, sc.env
	oracle := sc.oracle
	defer func() {
		if p := recover(); p != nil {
			err = panicErr(p)
		}
		if err != nil {
			res.Partial = true
		}
	}()
	workers := sc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := h.N()
	serial := graph.NewSearcher(n)
	stop := env.stopFn()
	serial.SetStop(stop)
	relaxed0 := 0
	if oracle != nil {
		relaxed0 = oracle.Relaxed()
	}

	// hubCertify answers one certification query from the hub labels; a
	// hit skips the edge without any search, exactly as the reference
	// scan would (the hub bound dominates the spanner distance).
	hubCertify := func(u, v int, limit float64) bool {
		stats.HubQueries++
		if _, ok := oracle.Certify(u, v, limit); ok {
			stats.HubSkips++
			return true
		}
		return false
	}
	accept := func(e graph.Edge) {
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
		if oracle != nil {
			oracle.OnAccept(e)
		}
		stats.Kept++
	}
	finish := func() {
		if bs, ok := src.(*bucketedSource); ok {
			stats.PeakBucketPairs = bs.PeakBucket()
			stats.SupplyPasses = bs.Passes()
			res.EdgesExamined += bs.Skipped()
		}
		if oracle != nil {
			stats.HubRelaxed = oracle.Relaxed() - relaxed0
		}
	}
	// checkBudget walks the in-scan degradation ladder at batch
	// boundaries under a byte budget: floor the batch width (sticky, via
	// the env's width cap), then drop the hub oracle, then record
	// exhaustion once. Every step is output-invariant.
	checkBudget := func(batch int) int {
		if env == nil || env.budget.MaxBytes <= 0 {
			return batch
		}
		est := searcherPoolBytes(workers, n) + int64(batch)*edgeBytes
		if bs, ok := src.(*bucketedSource); ok {
			est += int64(bs.PeakBucket()) * edgeBytes
		}
		if oracle != nil {
			est += hubBytes(len(oracle.Hubs()), n)
		}
		switch {
		case est <= env.budget.MaxBytes:
		case batch > minBatch:
			batch = minBatch
			env.budget.MaxBatchWidth = minBatch
			env.record(fmt.Sprintf("batch width floored to %d under byte budget", minBatch))
		case oracle != nil:
			env.record(fmt.Sprintf("hub oracle (%d hubs) dropped under byte budget", len(oracle.Hubs())))
			oracle = nil
		case !env.exhausted:
			env.exhausted = true
			env.record("byte budget exhausted; no degradation steps remain")
		}
		return batch
	}

	if workers == 1 {
		// Serial fast path: no snapshot pass, every edge tested once
		// against the live spanner, exactly like GreedyGraph but with the
		// bidirectional primitive; the supply is still streamed.
		// Cancellation is checked at batch boundaries and after each
		// search, before the decision it feeds is committed, so the
		// result is always an exact decided prefix.
		chunk := env.clampBatch(batchSize)
		if chunk <= 0 {
			chunk = env.clampBatch(maxBatch)
		}
		for batchNo := 0; ; batchNo++ {
			if cerr := env.cancelled(); cerr != nil {
				return cerr
			}
			env.onBatch(batchNo, nil)
			edges := src.NextBatch(chunk)
			if len(edges) == 0 {
				break
			}
			for _, e := range edges {
				env.onCertify(e)
				if oracle != nil && hubCertify(e.U, e.V, t*e.W) {
					res.EdgesExamined++
					continue
				}
				_, within := serial.BidirDistanceWithin(h, e.U, e.V, t*e.W)
				if env.active() {
					if cerr := env.cancelled(); cerr != nil {
						return cerr
					}
				}
				if within {
					stats.SerialSkips++
					res.EdgesExamined++
					continue
				}
				accept(e)
				res.EdgesExamined++
			}
		}
		stats.FinalBatchSize = serialBatchStat(batchSize, res.EdgesExamined)
		finish()
		return nil
	}

	pool := make([]*graph.Searcher, workers)
	for i := range pool {
		pool[i] = graph.NewSearcher(n)
		pool[i].SetStop(stop)
	}
	// errs holds one slot per worker: a captured panic or a cancellation
	// bail-out. Slots are written by their owning worker only and read
	// after the join, so they need no locking.
	errs := make([]error, workers)
	var certified, hubbed []bool

	batch := env.clampBatch(batchSize)
	adaptive := batchSize <= 0
	if adaptive {
		batch = env.clampBatch(initialBatch(workers))
	}

	for batchNo := 0; ; batchNo++ {
		if cerr := env.cancelled(); cerr != nil {
			return cerr
		}
		env.onBatch(batchNo, nil)
		edges := src.NextBatch(batch)
		if len(edges) == 0 {
			break
		}
		stats.Batches++
		if len(edges) > len(certified) {
			certified = make([]bool, len(edges))
			hubbed = make([]bool, len(edges))
		}

		// Serial pre-pass: certify what the hub labels already cover, so
		// only the remaining edges pay a search in phase 1. (hubbed marks
		// are only read under oracle != nil, so a mid-scan budget drop of
		// the oracle cannot leak a previous batch's marks.)
		if oracle != nil {
			for i, e := range edges {
				hubbed[i] = hubCertify(e.U, e.V, t*e.W)
			}
		}

		// Phase 1: certify skips in parallel against the frozen h. The
		// workers only read h (and the pre-pass's hubbed marks) and write
		// disjoint certified[i] and errs[w] slots, so the only
		// synchronization needed is the join. A worker converts its own
		// panic into a typed error and bails out early on cancellation;
		// either way it reaches wg.Done, so the pool always drains.
		var wg sync.WaitGroup
		span := len(edges)
		chunk := (span + workers - 1) / workers
		for w := 0; w < workers && w*chunk < span; w++ {
			start, end := w*chunk, (w+1)*chunk
			if end > span {
				end = span
			}
			wg.Add(1)
			go func(w int, search *graph.Searcher, start, end int) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						errs[w] = panicErr(p)
					}
				}()
				for i := start; i < end; i++ {
					if oracle != nil && hubbed[i] {
						continue
					}
					if env.active() {
						if cerr := env.cancelled(); cerr != nil {
							errs[w] = cerr
							return
						}
					}
					e := edges[i]
					env.onCertify(e)
					//spannerlint:ignore ctxcommit the post-join cancelled() re-check discards every phase-1 certificate on truncation (monotone predicate)
					_, within := search.BidirDistanceWithin(h, e.U, e.V, t*e.W)
					certified[i] = within
				}
			}(w, pool[w], start, end)
		}
		wg.Wait()
		if werr := firstWorkerErr(errs); werr != nil {
			return werr
		}
		// Abandon the whole batch on cancellation: nothing was committed
		// yet, and phase-1 certificates may rest on truncated searches.
		if cerr := env.cancelled(); cerr != nil {
			return cerr
		}

		// Phase 2: replay the uncertified survivors serially in greedy
		// order against the live spanner. A survivor may still be skipped
		// here when an edge accepted earlier in this same batch created a
		// path for it — exactly as the sequential scan would decide. Each
		// candidate is folded into EdgesExamined as its decision commits,
		// so an abort mid-batch leaves the exact decided count.
		survivors := 0
		for i, e := range edges {
			if oracle != nil && hubbed[i] {
				res.EdgesExamined++
				continue // counted as a HubSkip in the pre-pass
			}
			if certified[i] {
				stats.CertifiedSkips++
				res.EdgesExamined++
				continue
			}
			survivors++
			env.onCertify(e)
			_, within := serial.BidirDistanceWithin(h, e.U, e.V, t*e.W)
			if env.active() {
				if cerr := env.cancelled(); cerr != nil {
					return cerr
				}
			}
			if within {
				stats.SerialSkips++
				res.EdgesExamined++
				continue
			}
			accept(e)
			res.EdgesExamined++
		}

		// Adapt only on full-width rounds: a batch truncated at a bucket
		// boundary says nothing about snapshot staleness, the signal the
		// policy tracks.
		if adaptive && span == batch {
			batch = env.clampBatch(adaptBatch(batch, survivors, span))
		}
		batch = checkBudget(batch)
	}
	stats.FinalBatchSize = batch
	finish()
	return nil
}
