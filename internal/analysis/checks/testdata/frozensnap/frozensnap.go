// Package fixture seeds frozensnap violations and exemptions.
package fixture

// boundStore mimics the engine's bound store: foldRow mutates, countRows
// reads. The name matters — frozensnap keys its frozen-type set on the
// engine's type names.
type boundStore struct {
	rows []int
}

func (b *boundStore) foldRow(i int) { b.rows[i]++ }

func (b *boundStore) countRows() int { return len(b.rows) }

// workers spawns certification-style worker closures exercising every
// rule: owner-indexed writes pass, captured writes and mutating method
// calls on frozen state fail.
func workers(n int) int {
	out := make([]int, n)
	var shared int
	bound := &boundStore{rows: make([]int, n)}
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			out[w] = w                 // owner-indexed: allowed
			shared = w                 // want "writes captured variable shared"
			bound.rows = nil           // want "writes field rows of captured bound"
			bound.foldRow(w)           // want "calls bound.foldRow on captured boundStore state"
			if bound.countRows() > 0 { // read-only method: allowed
				out[w]++
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < n; w++ {
		<-done
	}
	return shared
}

// nonOwnerIndex writes through an index the worker does not own.
func nonOwnerIndex(n int) []int {
	out := make([]int, n)
	cursor := 0
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			out[cursor] = w // want "non-owner index"
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < n; w++ {
		<-done
	}
	return out
}

// annotatedFold documents an owner-partitioned fold, the sanctioned
// exemption shape.
func annotatedFold(n int) {
	bound := &boundStore{rows: make([]int, n)}
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			//spannerlint:ignore frozensnap fixture rows are owner-partitioned, one row per worker
			bound.foldRow(w)
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < n; w++ {
		<-done
	}
}

// localState shows worker-local mutation is unrestricted.
func localState(n int) {
	done := make(chan struct{}, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			local := make([]int, 4)
			local[0] = w
			acc := 0
			acc += w
			_ = acc
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < n; w++ {
		<-done
	}
}
