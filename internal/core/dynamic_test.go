package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metric"
)

// pickMetric restricts a metric to an arbitrary ordered subset of its
// points, delegating distances so they stay bitwise identical.
type pickMetric struct {
	m   metric.Metric
	idx []int
}

func (p pickMetric) N() int                { return len(p.idx) }
func (p pickMetric) Dist(i, j int) float64 { return p.m.Dist(p.idx[i], p.idx[j]) }

// restrictMetric returns the metric over m's points idx (in that order),
// preserving the concrete type for Euclidean metrics so the from-scratch
// reference and the replay both exercise the grid-bucketed supply.
func restrictMetric(m metric.Metric, idx []int) metric.Metric {
	if eu, ok := m.(*metric.Euclidean); ok {
		pts := make([][]float64, len(idx))
		for i, j := range idx {
			pts[i] = eu.Point(j)
		}
		return metric.MustEuclidean(pts)
	}
	return pickMetric{m: m, idx: append([]int(nil), idx...)}
}

// deleteAt removes the given dense positions from alive, mirroring the
// spanner's survivor renumbering.
func deleteAt(alive []int, dense []int) []int {
	drop := make(map[int]bool, len(dense))
	for _, d := range dense {
		drop[d] = true
	}
	out := alive[:0]
	for i, v := range alive {
		if !drop[i] {
			out = append(out, v)
		}
	}
	return out
}

// TestDeleteMatchesFromScratch is the tentpole equivalence property for
// deletions: shrinking a maintained spanner by point deletions must
// reproduce, bit for bit, a from-scratch greedy build on the survivors —
// across metric families, worker counts, hub counts, and batch shapes.
func TestDeleteMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for kind, m := range hubTestMetrics(t, rng, 36) {
		for oi, opts := range []MetricParallelOptions{
			{Workers: 1},
			{Workers: 4, Hubs: 4},
			{Workers: 3, BatchSize: 9, BucketPairs: 41, Hubs: 4, GuardRows: true},
		} {
			inc, err := NewIncrementalMetric(m, 1.7, opts)
			if err != nil {
				t.Fatal(err)
			}
			alive := make([]int, m.N())
			for i := range alive {
				alive[i] = i
			}
			delRng := rand.New(rand.NewSource(int64(31*oi + len(kind))))
			for step := 0; len(alive) > 2; step++ {
				k := 1 + delRng.Intn(3)
				if k > len(alive)-2 {
					k = len(alive) - 2
				}
				dense := delRng.Perm(len(alive))[:k]
				if err := inc.Delete(dense...); err != nil {
					t.Fatalf("%s/opts=%d step %d: Delete: %v", kind, oi, step, err)
				}
				alive = deleteAt(alive, dense)
				if step%3 != 0 && len(alive) > 12 {
					continue // only cross-check every few batches at larger sizes
				}
				want, err := GreedyMetricFastSerial(restrictMetric(m, alive), 1.7)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, fmt.Sprintf("%s/opts=%d/n=%d", kind, oi, len(alive)), want, mustResult(t, inc))
			}
		}
	}
}

// TestDynamicMixedMatchesFromScratch interleaves insertions, deletions,
// and queries under each batching policy; at every quiesce point the
// maintained result must equal a from-scratch build on the survivors.
func TestDynamicMixedMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for kind, m := range hubTestMetrics(t, rng, 40) {
		for _, tc := range []struct {
			name   string
			policy IncrementalPolicy
		}{
			{"eager", IncrementalPolicy{}},
			{"coalesce", IncrementalPolicy{CoalesceUntilQuery: true}},
			{"minbatch", IncrementalPolicy{CoalesceUntilQuery: true, MinBatch: 5}},
		} {
			alive := make([]int, 20)
			for i := range alive {
				alive[i] = i
			}
			pool := 20
			inc, err := NewIncrementalMetric(restrictMetric(m, alive), 1.6, MetricParallelOptions{Workers: 3, Hubs: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := inc.SetPolicy(tc.policy); err != nil {
				t.Fatal(err)
			}
			opRng := rand.New(rand.NewSource(int64(len(kind) + len(tc.name))))
			check := func(step int) {
				want, err := GreedyMetricFastSerial(restrictMetric(m, alive), 1.6)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, fmt.Sprintf("%s/%s/step=%d", kind, tc.name, step), want, mustResult(t, inc))
			}
			for step := 0; step < 14; step++ {
				switch op := opRng.Intn(3); {
				case op == 0 && pool < m.N(): // insert 1-3 points
					k := 1 + opRng.Intn(3)
					if pool+k > m.N() {
						k = m.N() - pool
					}
					for j := 0; j < k; j++ {
						alive = append(alive, pool+j)
					}
					pool += k
					if err := inc.Insert(restrictMetric(m, alive)); err != nil {
						t.Fatalf("%s/%s step %d: Insert: %v", kind, tc.name, step, err)
					}
				case op == 1 && len(alive) > 6: // delete 1-2 points
					dense := opRng.Perm(len(alive))[:1+opRng.Intn(2)]
					if err := inc.Delete(dense...); err != nil {
						t.Fatalf("%s/%s step %d: Delete: %v", kind, tc.name, step, err)
					}
					alive = deleteAt(alive, dense)
				default: // query (flushes any coalesced batch)
					check(step)
				}
			}
			check(99)
		}
	}
}

// TestDeleteEdgesMatchesFromScratch is the graph-mode deletion
// equivalence: removing edge batches must reproduce a from-scratch build
// on the surviving graph across the test families.
func TestDeleteEdgesMatchesFromScratch(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, workers := range []int{1, 3} {
			inc, err := NewIncrementalGraph(g, 1.6, ParallelOptions{Workers: workers, Hubs: 4})
			if err != nil {
				t.Fatal(err)
			}
			edges := g.EdgesCopy()
			delRng := rand.New(rand.NewSource(int64(len(name) + workers)))
			// Bounded sweep: large families would take hundreds of small
			// batches to drain, so delete up to 24 batches (the small
			// families still drain to the floor).
			for step := 0; len(edges) > 4 && step < 24; step++ {
				k := 1 + delRng.Intn(3)
				if k > len(edges)-4 {
					k = len(edges) - 4
				}
				batch := make([]graph.Edge, 0, k)
				for _, at := range delRng.Perm(len(edges))[:k] {
					batch = append(batch, edges[at])
				}
				if err := inc.DeleteEdges(batch...); err != nil {
					t.Fatalf("%s/w=%d step %d: DeleteEdges: %v", name, workers, step, err)
				}
				drop := make(map[graph.Edge]bool, k)
				for _, e := range batch {
					drop[e] = true
				}
				kept := edges[:0]
				for _, e := range edges {
					if !drop[e] {
						kept = append(kept, e)
					}
				}
				edges = kept
				if step%6 != 2 && len(edges) > 20 {
					continue
				}
				cur := graph.New(g.N())
				for _, e := range edges {
					cur.MustAddEdge(e.U, e.V, e.W)
				}
				want, err := GreedyGraphParallel(cur, 1.6, 1)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, fmt.Sprintf("%s/w=%d/m=%d", name, workers, len(edges)), want, mustResult(t, inc))
			}
		}
	}
}

// TestDeleteRejectedEdgeIsFree pins the cut story: deleting an edge the
// greedy scan rejected (or a point no accepted edge touches) preserves
// the entire decided scan, so the maintained edge set is unchanged.
func TestDeleteRejectedEdgeIsFree(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 2, 2.1) // rejected at t=2: d(0,2)=2 <= 2*2.1
	inc, err := NewIncrementalGraph(g, 2, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := mustResult(t, inc)
	if len(before.Edges) != 3 {
		t.Fatalf("setup: spanner has %d edges, want 3", len(before.Edges))
	}
	if err := inc.DeleteEdges(graph.Edge{U: 0, V: 2, W: 2.1}); err != nil {
		t.Fatal(err)
	}
	after := mustResult(t, inc)
	if after.EdgesExamined != 3 {
		t.Fatalf("examined %d candidates after deleting a rejected edge, want 3", after.EdgesExamined)
	}
	for i := range before.Edges {
		if before.Edges[i] != after.Edges[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, before.Edges[i], after.Edges[i])
		}
	}
}

// TestDeleteEverythingAndRegrow drains the spanner to zero points and
// grows it back; both directions must match from-scratch builds.
func TestDeleteEverythingAndRegrow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	m := metric.MustEuclidean(pts)
	inc, err := NewIncrementalMetric(m, 1.5, MetricParallelOptions{Workers: 2, Hubs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 4, 2} { // 10 -> 6 -> 2 -> 0
		dense := make([]int, k)
		for i := range dense {
			dense[i] = i
		}
		if err := inc.Delete(dense...); err != nil {
			t.Fatal(err)
		}
	}
	res := mustResult(t, inc)
	if res.N != 0 || len(res.Edges) != 0 || res.EdgesExamined != 0 {
		t.Fatalf("drained spanner: N=%d edges=%d examined=%d, want all zero", res.N, len(res.Edges), res.EdgesExamined)
	}
	if err := inc.Insert(m); err != nil {
		t.Fatal(err)
	}
	want, err := GreedyMetricFastSerial(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "regrow", want, mustResult(t, inc))
}

// TestDeleteThenReinsertSamePoint deletes a point and re-inserts the same
// coordinates; the re-insertion is a fresh element (new internal id) and
// the result must match a from-scratch build on the final point set.
func TestDeleteThenReinsertSamePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, 14)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 8, rng.Float64() * 8}
	}
	m := metric.MustEuclidean(pts)
	inc, err := NewIncrementalMetric(m, 1.6, MetricParallelOptions{Workers: 2, Hubs: 3})
	if err != nil {
		t.Fatal(err)
	}
	victim := 6
	if err := inc.Delete(victim); err != nil {
		t.Fatal(err)
	}
	order := make([]int, 0, len(pts))
	for i := range pts {
		if i != victim {
			order = append(order, i)
		}
	}
	order = append(order, victim) // same coordinates, now the last point
	if err := inc.Insert(restrictMetric(m, order)); err != nil {
		t.Fatal(err)
	}
	want, err := GreedyMetricFastSerial(restrictMetric(m, order), 1.6)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "reinsert", want, mustResult(t, inc))
}

// TestDeleteHubVertex deletes hub vertices — including enough of the
// point set that dead hubs become unreplaceable — and requires exact
// equivalence throughout: hub replacement and the degraded no-candidate
// case must never change certification outcomes.
func TestDeleteHubVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([][]float64, 24)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 12, rng.Float64() * 12}
	}
	m := metric.MustEuclidean(pts)
	inc, err := NewIncrementalMetric(m, 1.5, MetricParallelOptions{Workers: 3, Hubs: 4})
	if err != nil {
		t.Fatal(err)
	}
	hubs := SelectMetricHubs(m, 4) // stable == dense before the first delete
	alive := make([]int, len(pts))
	for i := range alive {
		alive[i] = i
	}
	// Delete one hub, then batches shrinking the set to 3 < Hubs points.
	steps := [][]int{{hubs[0]}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, {0, 1, 2}}
	for si, dense := range steps {
		if err := inc.Delete(dense...); err != nil {
			t.Fatalf("step %d: Delete: %v", si, err)
		}
		alive = deleteAt(alive, dense)
		want, err := GreedyMetricFastSerial(restrictMetric(m, alive), 1.5)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("hubdel/step=%d/n=%d", si, len(alive)), want, mustResult(t, inc))
	}
}

// TestDeleteInfiniteWeights exercises deletion around +Inf-weight
// candidate pairs (disconnected-alike points).
func TestDeleteInfiniteWeights(t *testing.T) {
	full := infMetric{n: 12} // pair (0, 11) has weight +Inf
	inc, err := NewIncrementalMetric(full, 2, MetricParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(5); err != nil { // keeps the +Inf pair alive
		t.Fatal(err)
	}
	alive := []int{0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11}
	want, err := GreedyMetricFastSerial(pickMetric{m: full, idx: alive}, 2)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "inf/keep", want, mustResult(t, inc))
	if got := mustResult(t, inc).EdgesExamined; got != 11*10/2 {
		t.Fatalf("examined %d pairs, want %d (the +Inf pair included)", got, 11*10/2)
	}
	if err := inc.Delete(10); err != nil { // dense 10 = original 11: drops the +Inf pair
		t.Fatal(err)
	}
	alive = alive[:10]
	want, err = GreedyMetricFastSerial(pickMetric{m: full, idx: alive}, 2)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "inf/drop", want, mustResult(t, inc))
}

// TestDeleteValidation pins the eager-validation contract: a rejected
// Delete/DeleteEdges changes no state.
func TestDeleteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 8)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m := metric.MustEuclidean(pts)
	inc, err := NewIncrementalMetric(m, 1.5, MetricParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := mustResult(t, inc)
	for name, call := range map[string]func() error{
		"out-of-range": func() error { return inc.Delete(8) },
		"negative":     func() error { return inc.Delete(-1) },
		"duplicate":    func() error { return inc.Delete(2, 3, 2) },
		"wrong-mode":   func() error { return inc.DeleteEdges(graph.Edge{U: 0, V: 1, W: 1}) },
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
		if name != "wrong-mode" && !errors.Is(err, graph.ErrInvalidInput) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidInput", name, err)
		}
	}
	if inc.Pending() != 0 {
		t.Fatalf("rejected deletes left %d pending ops", inc.Pending())
	}
	equalResults(t, "unchanged", before, mustResult(t, inc))

	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	ginc, err := NewIncrementalGraph(g, 2, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gbefore := mustResult(t, ginc)
	for name, batch := range map[string][]graph.Edge{
		"absent":      {{U: 0, V: 3, W: 1}},
		"wrong-w":     {{U: 0, V: 1, W: 2}},
		"over-copies": {{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}},
	} {
		if err := ginc.DeleteEdges(batch...); !errors.Is(err, graph.ErrInvalidInput) {
			t.Fatalf("%s: error %v does not wrap ErrInvalidInput", name, err)
		}
	}
	if err := ginc.Delete(0); err == nil {
		t.Fatal("Delete on graph mode: no error")
	}
	equalResults(t, "graph-unchanged", gbefore, mustResult(t, ginc))
	if ginc.Pending() != 0 {
		t.Fatalf("rejected deletes left %d pending ops", ginc.Pending())
	}
}

// TestDeleteDuringCoalesceWithPendingInserts deletes points (including a
// just-inserted, not-yet-replayed one) while inserts are coalesced; the
// single deferred replay must match from-scratch on the net survivors.
func TestDeleteDuringCoalesceWithPendingInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 6, rng.Float64() * 6}
	}
	m := metric.MustEuclidean(pts)
	alive := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	inc, err := NewIncrementalMetric(restrictMetric(m, alive), 1.6, MetricParallelOptions{Workers: 2, Hubs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
		t.Fatal(err)
	}
	alive = append(alive, 12, 13, 14)
	if err := inc.Insert(restrictMetric(m, alive)); err != nil {
		t.Fatal(err)
	}
	// Dense 13 is pending-inserted point 13; dense 2 is an original point.
	if err := inc.Delete(13, 2); err != nil {
		t.Fatal(err)
	}
	alive = deleteAt(alive, []int{13, 2})
	if got := inc.Pending(); got != 5 {
		t.Fatalf("Pending() = %d, want 5 (3 inserted + 2 deleted)", got)
	}
	want, err := GreedyMetricFastSerial(restrictMetric(m, alive), 1.6)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "coalesced", want, mustResult(t, inc))
	if inc.Pending() != 0 {
		t.Fatalf("Pending() = %d after flush", inc.Pending())
	}
}

// TestDeleteResultIsDenseRenumbering pins the caller-facing numbering:
// after deletions, vertex i of the Result is the i-th survivor in
// maintained order, and edge endpoints are within [0, N).
func TestDeleteResultIsDenseRenumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := make([][]float64, 16)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 4, rng.Float64() * 4}
	}
	m := metric.MustEuclidean(pts)
	inc, err := NewIncrementalMetric(m, 1.4, MetricParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(0, 7, 15); err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, inc)
	if res.N != 13 {
		t.Fatalf("N = %d, want 13", res.N)
	}
	for _, e := range res.Edges {
		if e.U < 0 || e.U >= 13 || e.V < 0 || e.V >= 13 {
			t.Fatalf("edge %v endpoints outside dense range [0, 13)", e)
		}
	}
	// The maintained distances must be the survivors': spot-check that
	// the result's weights exist among survivor pair distances.
	if math.IsNaN(res.Weight) || res.Weight <= 0 {
		t.Fatalf("weight %v not positive", res.Weight)
	}
}
