// Command spannerd serves a durable greedy spanner over HTTP/JSON: a
// crash-tolerant, overload-safe distance-oracle daemon.
//
// Usage:
//
//	spannerd -dir state/ -addr :8080              # open existing state
//	spannerd -dir state/ -n 1000 -t 1.5 -seed 7   # seed an empty dir with
//	                                              # n random points first
//
// The daemon opens (or, with -n on an empty directory, creates) a
// persist.Durable in -dir, takes its exclusive lock, and serves:
//
//	GET  /healthz                    liveness
//	GET  /v1/distance?u=..&v=..      spanner distance between two vertices
//	GET  /v1/path?u=..&v=..          a spanner path (optional &limit=..)
//	GET  /v1/stats                   digest, opseq, generation, counters
//	POST /v1/mutate                  {"op":"insert-points","points":[[..]]}
//	                                 {"op":"delete-points","ids":[..]}
//	POST /v1/checkpoint              rotate the durable generation
//
// Reads are admission-controlled: past -inflight concurrent queries and
// a -queue deep wait line, requests are shed with a typed 503 and a
// Retry-After header rather than queued without bound. Every read
// carries a -timeout deadline that propagates into the engine's
// cooperative stop predicate.
//
// SIGINT/SIGTERM drain: the daemon stops admitting, finishes or cancels
// in-flight requests within -drain, checkpoints, releases the directory
// lock, and exits 0. Acknowledged mutations form an exact durable
// prefix — restarting on the same -dir recovers the digest the daemon
// was serving at its last acknowledgment.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// A second signal kills the process the usual way instead of
		// waiting out the drain.
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout, nil)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spannerd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it blocks until ctx is cancelled
// (clean drain, returns nil) or serving fails. ready, if non-nil, is
// called once with the bound listen address.
func run(ctx context.Context, args []string, out io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("spannerd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", "127.0.0.1:7421", "listen address")
		dir      = fs.String("dir", "", "durable state directory (required)")
		n        = fs.Int("n", 0, "seed an empty -dir with n random points")
		dim      = fs.Int("dim", 2, "dimension of seeded points")
		t        = fs.Float64("t", 1.5, "stretch factor for a seeded build")
		seed     = fs.Int64("seed", 1, "random seed for seeded points")
		workers  = fs.Int("workers", 0, "engine scan workers (0 = auto)")
		inflight = fs.Int("inflight", 0, "max concurrent reads (0 = default)")
		queue    = fs.Int("queue", 0, "read wait-queue depth (0 = default)")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-read deadline")
		drain    = fs.Duration("drain", 5*time.Second, "drain grace for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}

	o := persist.Options{Metric: core.MetricParallelOptions{Workers: *workers}}
	d, err := persist.Open(*dir, o)
	if errors.Is(err, persist.ErrNoState) && *n > 0 {
		d, err = seedDurable(*dir, *n, *dim, *t, *seed, o)
	}
	if err != nil {
		return err
	}

	s, err := server.New(server.Config{
		Durable:        d,
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		DrainGrace:     *drain,
	})
	if err != nil {
		d.Close()
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// The durable holds the directory lock; a failed bind must not
		// leave it held.
		s.Drain(context.Background())
		return err
	}
	st := s.Stats()
	fmt.Fprintf(out, "spannerd: serving %s on %s (digest %016x, opseq %d, gen %d)\n",
		*dir, ln.Addr(), st.Digest, st.OpSeq, st.Gen)
	if ready != nil {
		ready(ln.Addr().String())
	}

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.Drain(context.Background())
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Drain first: stop admitting (typed 503s for stragglers), settle
	// in-flight work to an exact acknowledged prefix, checkpoint, and
	// release the lock. Then close the listener and idle connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain+10*time.Second)
	defer cancel()
	derr := s.Drain(drainCtx)
	serr := hs.Shutdown(drainCtx)
	<-serveErr // Serve has returned http.ErrServerClosed
	if err := errors.Join(derr, serr); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st = s.Stats()
	fmt.Fprintf(out, "spannerd: drained cleanly (digest %016x, opseq %d, gen %d)\n",
		st.Digest, st.OpSeq, st.Gen)
	return nil
}

// seedDurable creates fresh durable state in dir from n uniform random
// dim-dimensional points.
func seedDurable(dir string, n, dim int, t float64, seed int64, o persist.Options) (*persist.Durable, error) {
	if n < 2 || dim < 1 {
		return nil, fmt.Errorf("seeding needs -n >= 2 and -dim >= 1, got n=%d dim=%d", n, dim)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		pts[i] = row
	}
	eu, err := metric.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	inc, err := core.NewIncrementalMetric(eu, t, o.Metric)
	if err != nil {
		return nil, err
	}
	return persist.Create(dir, inc, o)
}
