package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestMapdetFixtures(t *testing.T) {
	analysistest.Run(t, checks.Mapdet, analysistest.Fixture("mapdet"))
}
