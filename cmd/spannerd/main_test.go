package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
)

// daemon runs the spannerd body in a goroutine and returns its bound
// address, a cancel that triggers the drain path, and a wait for the
// run error. Output is captured race-free behind a mutex.
type daemon struct {
	addr   string
	cancel context.CancelFunc
	done   chan error
	out    *lockedBuffer
}

type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *lockedBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

func (lb *lockedBuffer) String() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.String()
}

func startDaemon(t *testing.T, args []string) *daemon {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	d := &daemon{cancel: cancel, done: make(chan error, 1), out: &lockedBuffer{}}
	ready := make(chan string, 1)
	go func() {
		d.done <- run(ctx, args, d.out, func(addr string) { ready <- addr })
	}()
	select {
	case d.addr = <-ready:
	case err := <-d.done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, d.out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	t.Cleanup(cancel)
	return d
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.cancel()
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
}

func (d *daemon) getJSON(t *testing.T, path string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return body, resp.StatusCode
}

// TestDaemonSeedServeDrainRestart is the full daemon lifecycle: seed an
// empty directory, serve reads and a mutation, drain on signal (context
// cancel), then restart on the same directory and verify the served
// digest survived.
func TestDaemonSeedServeDrainRestart(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-dir", dir, "-n", "40", "-seed", "7", "-workers", "1"})

	if _, status := d.getJSON(t, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	body, status := d.getJSON(t, "/v1/distance?u=0&v=1")
	if status != http.StatusOK || body["reachable"] != true {
		t.Fatalf("distance: status %d body %v", status, body)
	}

	mut, _ := json.Marshal(map[string]any{"op": "insert-points", "points": [][]float64{{500, 500}, {501, 500}}})
	resp, err := http.Post("http://"+d.addr+"/v1/mutate", "application/json", bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d", resp.StatusCode)
	}
	stats, _ := d.getJSON(t, "/v1/stats")
	digest, opseq := stats["digest"], stats["opseq"]
	if opseq.(float64) != 1 {
		t.Fatalf("opseq %v after one mutation, want 1", opseq)
	}

	d.stop(t)
	if out := d.out.String(); !strings.Contains(out, "drained cleanly") {
		t.Fatalf("missing drain line in output:\n%s", out)
	}

	// Restart on the same directory: no -n, state must be recovered.
	d2 := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-dir", dir, "-workers", "1"})
	stats2, status := d2.getJSON(t, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats after restart: %d", status)
	}
	if stats2["digest"] != digest {
		t.Fatalf("restart digest %v, served digest %v", stats2["digest"], digest)
	}
	d2.stop(t)
}

// TestDaemonLockExcludesSecond verifies the single-writer lock: a second
// daemon on the same directory must fail fast with the typed lock error.
func TestDaemonLockExcludesSecond(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-dir", dir, "-n", "20", "-workers", "1"})
	defer d.stop(t)

	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-dir", dir}, &lockedBuffer{}, nil)
	if !errors.Is(err, persist.ErrLocked) {
		t.Fatalf("second daemon: %v, want persist.ErrLocked", err)
	}
}

// TestDaemonFlagErrors covers the argument contract.
func TestDaemonFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"missing dir":   {"-addr", "127.0.0.1:0"},
		"empty no seed": {"-addr", "127.0.0.1:0", "-dir", t.TempDir()},
		"bad seed n":    {"-addr", "127.0.0.1:0", "-dir", t.TempDir(), "-n", "1"},
		"bad addr":      {"-addr", "definitely:not:an:addr", "-dir", t.TempDir(), "-n", "10"},
	} {
		if err := run(context.Background(), args, &lockedBuffer{}, nil); err == nil {
			t.Fatalf("%s: expected an error", name)
		}
	}
}

// TestDaemonDrainUnderLoad cancels the daemon while readers are mid
// flight: every request must still get an HTTP response (success or a
// typed draining/cancelled body), and the daemon must exit cleanly.
func TestDaemonDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-dir", dir, "-n", "30", "-workers", "1", "-drain", "2s"})

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("http://%s/v1/distance?u=%d&v=%d", d.addr, i%30, (i*7)%30))
			if err != nil {
				// The listener may already be gone mid-drain; a transport
				// error is acceptable, a hang is not.
				return
			}
			resp.Body.Close()
		}(i)
	}
	d.stop(t)
	wg.Wait()
}
