package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestDetpureFixtures(t *testing.T) {
	analysistest.Run(t, checks.Detpure, analysistest.Fixture("detpure"))
}
