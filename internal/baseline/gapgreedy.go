package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
)

// GapGreedy builds a t-spanner of a finite metric using the gap-greedy
// approach of Arya and Smid (the closest competitor to the greedy spanner
// in the [FG05] experiments): pairs are examined in non-decreasing distance
// order and pair (p, q) is skipped iff some already chosen edge (r, s)
// "covers" it — d(p, r) <= w*d(r, s) and d(q, s) <= w*d(r, s) for the gap
// parameter w.
//
// Correctness: if (r, s) covers (p, q) then routing p ~> r, edge (r, s),
// s ~> q and inducting over the (strictly smaller) end pairs yields
// stretch t = 1/(1-4w); GapGreedy therefore sets w = (1-1/t)/4, which
// requires t > 1 (w in (0, 1/4)). The cover test replaces the greedy
// algorithm's shortest-path queries with O(|E|) distance comparisons per
// pair — cheaper bookkeeping, more edges kept.
func GapGreedy(m metric.Metric, t float64) (*graph.Graph, error) {
	if t <= 1 {
		return nil, fmt.Errorf("baseline: gap-greedy needs t > 1, got %v", t)
	}
	w := (1 - 1/t) / 4
	n := m.N()
	g := graph.New(n)
	if n <= 1 {
		return g, nil
	}
	pairs := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, graph.Edge{U: i, V: j, W: m.Dist(i, j)})
		}
	}
	graph.SortEdges(pairs)
	var chosen []graph.Edge
	for _, e := range pairs {
		covered := false
		for _, f := range chosen {
			slack := w * f.W
			if (m.Dist(e.U, f.U) <= slack && m.Dist(e.V, f.V) <= slack) ||
				(m.Dist(e.U, f.V) <= slack && m.Dist(e.V, f.U) <= slack) {
				covered = true
				break
			}
		}
		if !covered {
			g.MustAddEdge(e.U, e.V, e.W)
			chosen = append(chosen, e)
		}
	}
	return g, nil
}
