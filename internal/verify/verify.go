// Package verify provides independent checkers for spanner outputs: stretch
// verification (exact over all edges or pairs, and sampled for large
// instances), lightness, degree, and MST containment. These are written
// against the definitions in Section 2 of the paper and deliberately avoid
// sharing code paths with the constructions they audit.
package verify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metric"
)

// StretchReport summarizes a stretch audit.
type StretchReport struct {
	// MaxStretch is the largest observed ratio delta_H(u,v) / d(u,v).
	MaxStretch float64
	// WorstU, WorstV attain MaxStretch.
	WorstU, WorstV int
	// Pairs is the number of pairs checked.
	Pairs int
}

// Spanner checks that h is a t-spanner of g by verifying, for every edge
// (u, v) of g, that delta_H(u, v) <= t * w(u, v) (+eps for float slack).
// Per Section 2 this edge-restricted test implies the property for all
// vertex pairs. It returns the audit report and an error describing the
// first violation, if any.
func Spanner(h, g *graph.Graph, t, eps float64) (StretchReport, error) {
	if h.N() != g.N() {
		return StretchReport{}, fmt.Errorf("verify: vertex sets differ (%d vs %d)", h.N(), g.N())
	}
	rep := StretchReport{MaxStretch: 0}
	// Group g's edges by endpoint u to reuse one Dijkstra per source.
	bySource := make(map[int][]graph.Edge)
	for _, e := range g.Edges() {
		bySource[e.U] = append(bySource[e.U], e)
	}
	for u, es := range bySource {
		sp := h.Dijkstra(u)
		for _, e := range es {
			rep.Pairs++
			d := sp.Dist[e.V]
			if d > t*e.W+eps {
				return rep, fmt.Errorf("verify: stretch violated at (%d, %d): delta_H = %v > %v = t*w", e.U, e.V, d, t*e.W)
			}
			if s := d / e.W; s > rep.MaxStretch {
				rep.MaxStretch, rep.WorstU, rep.WorstV = s, e.U, e.V
			}
		}
	}
	return rep, nil
}

// MetricSpanner checks that the edge set given by h is a t-spanner of the
// metric m: for every pair of points (u, v), delta_H(u, v) <= t * d(u, v).
// Exhaustive over all pairs; O(n * Dijkstra + n^2).
func MetricSpanner(h *graph.Graph, m metric.Metric, t, eps float64) (StretchReport, error) {
	n := m.N()
	if h.N() != n {
		return StretchReport{}, fmt.Errorf("verify: vertex sets differ (%d vs %d)", h.N(), n)
	}
	rep := StretchReport{}
	for u := 0; u < n; u++ {
		sp := h.Dijkstra(u)
		for v := u + 1; v < n; v++ {
			rep.Pairs++
			d, want := sp.Dist[v], m.Dist(u, v)
			if d > t*want+eps {
				return rep, fmt.Errorf("verify: stretch violated at (%d, %d): delta_H = %v > %v", u, v, d, t*want)
			}
			if want > 0 {
				if s := d / want; s > rep.MaxStretch {
					rep.MaxStretch, rep.WorstU, rep.WorstV = s, u, v
				}
			}
		}
	}
	return rep, nil
}

// SampledMetricSpanner estimates the stretch of h against m on `samples`
// random pairs. Cheap audit for instances too large for MetricSpanner.
func SampledMetricSpanner(h *graph.Graph, m metric.Metric, t, eps float64, samples int, rng *rand.Rand) (StretchReport, error) {
	n := m.N()
	rep := StretchReport{}
	if n < 2 {
		return rep, nil
	}
	for s := 0; s < samples; s++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		rep.Pairs++
		d := h.DijkstraTo(u, v)
		want := m.Dist(u, v)
		if d > t*want+eps {
			return rep, fmt.Errorf("verify: sampled stretch violated at (%d, %d): %v > %v", u, v, d, t*want)
		}
		if want > 0 {
			if st := d / want; st > rep.MaxStretch {
				rep.MaxStretch, rep.WorstU, rep.WorstV = st, u, v
			}
		}
	}
	return rep, nil
}

// Lightness returns weight(h) / weight(MST(g)), the paper's Psi(H).
func Lightness(h, g *graph.Graph) (float64, error) {
	l, ok := graph.Lightness(h, g)
	if !ok {
		return 0, fmt.Errorf("verify: MST weight of base graph is zero")
	}
	return l, nil
}

// MetricLightness returns weight(h) / weight(MST(M)) where the MST is taken
// over the complete distance graph of the metric.
func MetricLightness(h *graph.Graph, m metric.Metric) (float64, error) {
	mst := metric.CompleteGraph(m).MSTWeight()
	if mst <= 0 {
		return 0, fmt.Errorf("verify: metric MST weight is zero")
	}
	return h.Weight() / mst, nil
}

// ContainsMSTEdges verifies that h contains every edge of the deterministic
// Kruskal MST of g (Observation 2 of the paper for greedy outputs).
func ContainsMSTEdges(h, g *graph.Graph) error {
	for _, e := range g.MSTKruskal() {
		found := false
		h.Neighbors(e.U, func(to int, w float64) bool {
			if to == e.V && w == e.W {
				found = true
				return false
			}
			return true
		})
		if !found {
			return fmt.Errorf("verify: MST edge (%d, %d, %v) not in subgraph", e.U, e.V, e.W)
		}
	}
	return nil
}

// SameMSTWeight verifies Observation 6: the metric M_G induced by g and g
// itself have MSTs of the same weight (up to eps).
func SameMSTWeight(g *graph.Graph, eps float64) error {
	m, err := metric.FromGraph(g)
	if err != nil {
		return err
	}
	wg := g.MSTWeight()
	wm := metric.CompleteGraph(m).MSTWeight()
	if math.Abs(wg-wm) > eps {
		return fmt.Errorf("verify: MST weights differ: graph %v vs induced metric %v", wg, wm)
	}
	return nil
}
