package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// stubServer mimics the serving daemon's wire contract: 200 bodies for
// reads and mutations, typed shed 503s on demand, and a broken endpoint
// for failure classification.
func stubServer(shedEvery int) (*httptest.Server, *atomic.Int64) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	answer := func(w http.ResponseWriter, body map[string]any, status int) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(body)
	}
	read := func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if shedEvery > 0 && n%int64(shedEvery) == 0 {
			answer(w, map[string]any{"code": "shed"}, http.StatusServiceUnavailable)
			return
		}
		answer(w, map[string]any{"distance": 1.0, "reachable": true}, http.StatusOK)
	}
	mux.HandleFunc("/v1/distance", read)
	mux.HandleFunc("/v1/path", read)
	mux.HandleFunc("/v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		answer(w, map[string]any{"version": 2}, http.StatusOK)
	})
	mux.HandleFunc("/v1/broken", func(w http.ResponseWriter, r *http.Request) {
		answer(w, map[string]any{"code": "internal"}, http.StatusInternalServerError)
	})
	return httptest.NewServer(mux), &hits
}

// TestRunClassifiesResponses checks the full tally: every request is
// classified exactly once, sheds are separated from failures, mutations
// are counted, and the latency percentiles are ordered.
func TestRunClassifiesResponses(t *testing.T) {
	ts, hits := stubServer(5)
	defer ts.Close()

	res, err := Run(context.Background(), ts.URL, 50, Scenario{
		Name: "mixed", Clients: 4, Requests: 30, PathEvery: 3, MutateEvery: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 120 || res.OK+res.Shed+res.Failures != 120 {
		t.Fatalf("tally mismatch: %+v", res)
	}
	if res.Failures != 0 {
		t.Fatalf("stub produced %d failures", res.Failures)
	}
	if res.Shed == 0 {
		t.Fatal("shed responses not counted")
	}
	if res.Mutations != 3 {
		t.Fatalf("mutations %d, want 3 (client 0, every 10th of 30)", res.Mutations)
	}
	if hits.Load() != 120 {
		t.Fatalf("server saw %d hits", hits.Load())
	}
	if res.QPS <= 0 || res.P50MS > res.P99MS || res.P99MS > res.MaxMS {
		t.Fatalf("degenerate stats: %+v", res)
	}
}

// TestRunCountsFailures points the workload at an endpoint answering
// typed 500s: every response must land in Failures, not OK or Shed.
func TestRunCountsFailures(t *testing.T) {
	ts, _ := stubServer(0)
	defer ts.Close()
	// Rewire distance to the broken endpoint by using its path directly.
	res, err := Run(context.Background(), ts.URL+"/v1/broken?x=", 10, Scenario{
		Name: "broken", Clients: 2, Requests: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 10 || res.OK != 0 || res.Shed != 0 {
		t.Fatalf("failure classification: %+v", res)
	}
}

// TestScenarioValidation rejects degenerate configurations.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(context.Background(), "http://x", 10, Scenario{Clients: 0, Requests: 1}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := Run(context.Background(), "http://x", 1, Scenario{Clients: 1, Requests: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

// TestPercentile pins the estimator on a known distribution.
func TestPercentile(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100
	}
	for _, c := range []struct{ p, want float64 }{{50, 51}, {99, 100}, {100, 100}, {0, 1}} {
		if got := percentile(samples, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile %v", got)
	}
}
