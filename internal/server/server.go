// Package server implements spannerd's serving core: a crash-tolerant,
// overload-safe HTTP/JSON daemon answering distance, path, and stats
// queries against an immutable RCU-style snapshot of a durable greedy
// spanner.
//
// Reads never touch the engine. Every query runs against the snapshot
// published by the most recent mutation — an immutable (*core.Result,
// *graph.Graph) pair behind an atomic pointer — so readers proceed
// wait-free while mutations flow through the persist.Durable WAL path
// and publish a fresh snapshot with a single pointer swap. Snapshot
// publication is the only cross-goroutine handoff in the package.
//
// The server is hardened end to end: per-request deadlines propagate
// into the engine's cooperative-cancellation context, admission control
// sheds load with typed 503 responses once a bounded queue fills,
// handler panics are contained per request, transient mutation failures
// are retried with exponential backoff until the engine state converges
// with the write-ahead log, and Drain stops admission, finishes or
// cancels in-flight work, checkpoints, and releases the directory lock
// so acknowledged mutations form an exact durable prefix.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
)

// Config configures a Server. The zero value of every field except
// Durable is usable; see the field comments for defaults.
type Config struct {
	// Durable is the spanner to serve. The Server owns it from New on:
	// mutating it elsewhere bypasses snapshot publication and the WAL
	// ordering guarantee. Required.
	Durable *persist.Durable
	// MaxInflight bounds concurrently admitted read queries (default 64).
	MaxInflight int
	// QueueDepth bounds reads waiting for an admission slot before the
	// server sheds with a typed 503 (default 2*MaxInflight).
	QueueDepth int
	// RequestTimeout is the per-read deadline propagated into the
	// engine's stop predicate (default 2s).
	RequestTimeout time.Duration
	// MutateTimeout is the per-mutation deadline propagated into the
	// engine context (default 30s).
	MutateTimeout time.Duration
	// DrainGrace is how long Drain waits for in-flight requests before
	// cancelling them (default 5s).
	DrainGrace time.Duration
	// RetryBase seeds the exponential backoff between convergence
	// retries after a transient mutation failure (default 5ms).
	RetryBase time.Duration
	// RetryMax bounds convergence attempts before the mutation path is
	// wedged (default 8).
	RetryMax int
	// Hooks carries test-only instrumentation.
	Hooks Hooks
}

// Hooks exposes the server's internal windows to the chaos and bench
// suites.
type Hooks struct {
	// BeforeSwap runs under the writer slot immediately before a new
	// snapshot version is published.
	BeforeSwap func(version uint64)
	// OnConverge observes each convergence retry with its error.
	OnConverge func(attempt int, err error)
	// OnAdmit runs on the read path right after a request wins its
	// admission slot; the load benchmark uses it to simulate a slower
	// backend so the shedding contract is exercised deterministically.
	OnAdmit func()
}

// snapshot is one immutable published state: result, materialized
// spanner graph, identity metadata copied under the writer slot (so
// stats never race the WAL counters), and a pool of query searchers
// sized for the snapshot's vertex count.
type snapshot struct {
	res     *core.Result
	g       *graph.Graph
	digest  uint64
	version uint64
	gen     uint64
	opSeq   uint64

	searchers sync.Pool
}

func (s *snapshot) searcher() *graph.Searcher {
	return s.searchers.Get().(*graph.Searcher)
}

// Counters are the server's monotonically increasing event counts,
// readable at any time via Stats.
type Counters struct {
	Served    atomic.Uint64 // responses written with a 2xx status
	Shed      atomic.Uint64 // reads rejected queue-full
	Rejected  atomic.Uint64 // requests rejected while draining
	Cancelled atomic.Uint64 // requests ended by cancellation or deadline
	Invalid   atomic.Uint64 // malformed requests
	Panics    atomic.Uint64 // handler panics contained
	Mutations atomic.Uint64 // mutations acknowledged
	Converges atomic.Uint64 // convergence retries that ran
}

// Server serves a durable spanner over HTTP. Create with New, expose
// via Handler, stop with Drain.
type Server struct {
	cfg  Config
	d    *persist.Durable
	snap atomic.Pointer[snapshot]

	sem     chan struct{} // read-admission slots
	waiters atomic.Int64  // reads queued for a slot
	writer  chan struct{} // mutation slot (capacity 1)

	rootCtx    context.Context // cancelled when Drain gives up on in-flight work
	rootCancel context.CancelFunc

	draining atomic.Bool
	drained  chan struct{} // closed when Drain has finished
	drainErr error         // valid after drained is closed
	inflight sync.WaitGroup

	wedgeReason atomic.Pointer[string] // non-nil once the mutation path is wedged

	counters Counters
	mux      *http.ServeMux
}

// New builds a Server around d and publishes the initial snapshot
// (flushing any pending coalesced updates through the engine).
func New(cfg Config) (*Server, error) {
	if cfg.Durable == nil {
		return nil, fmt.Errorf("server: Config.Durable is required: %w", graph.ErrInvalidInput)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInflight
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.MutateTimeout <= 0 {
		cfg.MutateTimeout = 30 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 5 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 8
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		d:          cfg.Durable,
		sem:        make(chan struct{}, cfg.MaxInflight),
		writer:     make(chan struct{}, 1),
		rootCtx:    ctx,
		rootCancel: cancel,
		drained:    make(chan struct{}),
	}
	if err := s.publish(0); err != nil {
		cancel()
		return nil, err
	}
	s.mux = s.routes()
	return s, nil
}

// publish materializes the engine's current result as snapshot version
// v+1 and swaps it in. Callers after New must hold the writer slot.
func (s *Server) publish(prevVersion uint64) error {
	res, err := s.d.Result()
	if err != nil {
		return err
	}
	version := prevVersion + 1
	if hook := s.cfg.Hooks.BeforeSwap; hook != nil {
		hook(version)
	}
	ns := &snapshot{
		res:     res,
		g:       res.Graph(),
		digest:  core.ResultDigest(res),
		version: version,
		gen:     s.d.Gen(),
		opSeq:   s.d.OpSeq(),
	}
	n := res.N
	ns.searchers.New = func() any { return graph.NewSearcher(n) }
	s.snap.Store(ns)
	return nil
}

// Handler returns the HTTP handler serving the spannerd API.
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot metadata for callers outside the HTTP path (cmd, tests).
type Stats struct {
	Version  uint64
	N        int
	Edges    int
	Weight   float64
	Digest   uint64
	Gen      uint64
	OpSeq    uint64
	Draining bool
	Wedged   string // empty when the mutation path is healthy
}

// Stats reports the published snapshot's identity and health flags.
func (s *Server) Stats() Stats {
	snap := s.snap.Load()
	st := Stats{
		Version:  snap.version,
		N:        snap.res.N,
		Edges:    len(snap.res.Edges),
		Weight:   snap.res.Weight,
		Digest:   snap.digest,
		Gen:      snap.gen,
		OpSeq:    snap.opSeq,
		Draining: s.draining.Load(),
	}
	if r := s.wedgeReason.Load(); r != nil {
		st.Wedged = *r
	}
	return st
}

// CounterValues returns a point-in-time copy of the event counters.
func (s *Server) CounterValues() map[string]uint64 {
	return map[string]uint64{
		"served":    s.counters.Served.Load(),
		"shed":      s.counters.Shed.Load(),
		"rejected":  s.counters.Rejected.Load(),
		"cancelled": s.counters.Cancelled.Load(),
		"invalid":   s.counters.Invalid.Load(),
		"panics":    s.counters.Panics.Load(),
		"mutations": s.counters.Mutations.Load(),
		"converges": s.counters.Converges.Load(),
	}
}

// wedge marks the mutation path permanently failed (reads keep serving
// the last published snapshot).
func (s *Server) wedge(err error) {
	msg := err.Error()
	s.wedgeReason.CompareAndSwap(nil, &msg)
}

func (s *Server) wedgedErr() error {
	if r := s.wedgeReason.Load(); r != nil {
		return errors.New(*r)
	}
	return nil
}

// Drain performs the graceful shutdown sequence: stop admitting (new
// requests get typed 503 draining responses), wait up to DrainGrace for
// in-flight requests, cancel stragglers (they answer with typed
// cancellation responses — never a dropped connection), then checkpoint
// and close the durable so acknowledged mutations are exactly the WAL
// prefix on disk. ctx bounds the whole sequence; cancelling it skips
// straight to cancelling in-flight work. Concurrent and repeated calls
// are safe: every caller returns the first Drain's outcome.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		select {
		case <-s.drained:
			return s.drainErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(s.drained)

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
		s.rootCancel()
		<-done
	case <-ctx.Done():
		s.rootCancel()
		<-done
	}
	s.rootCancel()

	// Serialize with any mutation that was admitted before the flag
	// flipped: once we hold the writer slot, the WAL holds every
	// acknowledged op and nothing more will be appended.
	s.writer <- struct{}{}
	defer func() { <-s.writer }()

	var errs []error
	if s.wedgedErr() == nil {
		if err := s.d.Checkpoint(); err != nil && !errors.Is(err, persist.ErrSimulatedCrash) {
			errs = append(errs, fmt.Errorf("server: drain checkpoint: %w", err))
		}
	}
	if err := s.d.Close(); err != nil {
		errs = append(errs, fmt.Errorf("server: drain close: %w", err))
	}
	s.drainErr = errors.Join(errs...)
	return s.drainErr
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitersGauge reports the instantaneous read-admission queue length
// (test/bench instrumentation).
func (s *Server) WaitersGauge() int64 { return s.waiters.Load() }
