package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randPts(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestRect(t *testing.T) {
	r := NewRect([]float64{1, 2})
	r.Extend([]float64{3, 0})
	if r.Lo[0] != 1 || r.Lo[1] != 0 || r.Hi[0] != 3 || r.Hi[1] != 2 {
		t.Fatalf("rect = %+v", r)
	}
	dim, l := r.LongestSide()
	if dim != 0 || l != 2 {
		t.Fatalf("LongestSide = (%d, %v), want (0, 2)", dim, l)
	}
	if d := r.Diameter(); math.Abs(d-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("Diameter = %v", d)
	}
	c := r.Center()
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("Center = %v", c)
	}
}

func TestDist(t *testing.T) {
	if d := Dist([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
}

func TestBuildSplitTreeValidation(t *testing.T) {
	if _, err := BuildSplitTree(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := BuildSplitTree([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	if _, err := BuildSplitTree([][]float64{{1, 2}, {1, 2}}); err == nil {
		t.Fatal("duplicate points accepted")
	}
}

func TestSplitTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 50, 2)
	tree, err := BuildSplitTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	// A binary tree over n leaves has 2n-1 nodes.
	if tree.Nodes() != 2*50-1 {
		t.Fatalf("nodes = %d, want 99", tree.Nodes())
	}
	// Every leaf holds one point; collect and check coverage.
	seen := make(map[int]bool)
	var walk func(n *SplitNode)
	walk = func(n *SplitNode) {
		if n.IsLeaf() {
			if len(n.Idx) != 1 {
				t.Fatalf("leaf holds %d points", len(n.Idx))
			}
			seen[n.Idx[0]] = true
			return
		}
		if len(n.Left.Idx)+len(n.Right.Idx) != len(n.Idx) {
			t.Fatal("children do not partition parent")
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
	if len(seen) != 50 {
		t.Fatalf("leaves cover %d points, want 50", len(seen))
	}
}

func TestWSPDCoversAllPairsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPts(rng, 40, 2)
	tree, err := BuildSplitTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0.5, 1, 2} {
		pairs := tree.WSPD(s)
		count := make(map[[2]int]int)
		for _, pr := range pairs {
			for _, a := range pr.A.Idx {
				for _, b := range pr.B.Idx {
					key := [2]int{a, b}
					if a > b {
						key = [2]int{b, a}
					}
					count[key]++
				}
			}
		}
		want := 40 * 39 / 2
		if len(count) != want {
			t.Fatalf("s=%v: %d distinct pairs covered, want %d", s, len(count), want)
		}
		for k, c := range count {
			if c != 1 {
				t.Fatalf("s=%v: pair %v covered %d times", s, k, c)
			}
		}
	}
}

func TestWSPDSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 30, 2)
	tree, err := BuildSplitTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	s := 2.0
	for _, pr := range tree.WSPD(s) {
		r := math.Max(pr.A.Box.Diameter(), pr.B.Box.Diameter())
		for _, a := range pr.A.Idx {
			for _, b := range pr.B.Idx {
				if d := Dist(pts[a], pts[b]); d < s*r-1e-9 {
					t.Fatalf("pair not %v-separated: d=%v, r=%v", s, d, r)
				}
			}
		}
	}
}

func TestWSPDHigherDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 25, 4)
	tree, err := BuildSplitTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	pairs := tree.WSPD(1.5)
	covered := 0
	for _, pr := range pairs {
		covered += len(pr.A.Idx) * len(pr.B.Idx)
	}
	if covered != 25*24/2 {
		t.Fatalf("covered %d ordered pairs, want %d", covered, 25*24/2)
	}
}

func TestSplitTreeSinglePoint(t *testing.T) {
	tree, err := BuildSplitTree([][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Fatal("single point tree should be a leaf")
	}
	if pairs := tree.WSPD(2); len(pairs) != 0 {
		t.Fatalf("WSPD of single point = %d pairs, want 0", len(pairs))
	}
}
