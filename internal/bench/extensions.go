package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/verify"
)

// E11FaultTolerance measures the cost of vertex-fault tolerance in the
// greedy framework (the paper's [Sol14] direction): edges and lightness of
// the f-fault-tolerant greedy spanner for f = 0, 1, 2. Theory predicts an
// O(f) (doubling metrics: O(f^2) edges / O(f^2 log n)-ish weight) blow-up;
// the shape to check is a mild polynomial growth in f, with every output
// surviving all fault sets.
func E11FaultTolerance(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E11 (extension, [Sol14] direction): fault-tolerant greedy spanners",
		Header: []string{"n", "t", "f", "edges", "lightness", "min degree", "FT verified"},
		Caption: "f-fault-tolerant greedy: every vertex needs degree > f, and edge count grows\n" +
			"polynomially in f. 'FT verified' exhaustively checks all fault sets of size <= f.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{12}, []int{16, 24})
	for _, n := range ns {
		m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
		for _, t := range []float64{1.8} {
			for f := 0; f <= 2; f++ {
				res, err := core.FaultTolerantGreedy(m, t, f)
				if err != nil {
					return nil, err
				}
				h := res.Graph()
				light, err := verify.MetricLightness(h, m)
				if err != nil {
					return nil, err
				}
				minDeg := n
				for v := 0; v < n; v++ {
					if d := h.Degree(v); d < minDeg {
						minDeg = d
					}
				}
				status := "yes"
				if err := core.VerifyFaultTolerance(h, m, t, f, 1e-9); err != nil {
					status = "NO: " + err.Error()
				}
				tab.AddRow(itoa(n), f2(t), itoa(f), itoa(res.Size()), f2(light), itoa(minDeg), status)
			}
		}
	}
	return tab, nil
}

// E12GraphFamilies runs the greedy spanner across structured graph families
// (hypercube, circulant, random regular, grid) — all closed under edge
// removal, so Theorem 4 applies to each. The table reports size/lightness
// and re-checks Lemma 3 everywhere.
func E12GraphFamilies(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E12 (Theorem 4 breadth): greedy across edge-removal-closed families",
		Header: []string{"family", "n", "m", "t", "spanner edges", "lightness", "Lemma 3 ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	dim := 6
	reg := 40
	if scale == Small {
		dim = 4
		reg = 20
	}
	type instance struct {
		name string
		g    *graphOrErr
	}
	circ, errCirc := gen.Circulant(8*dim, []int{1, 3, 5})
	rr, errRR := gen.RandomRegular(rng, reg, 4)
	instances := []instance{
		{"hypercube", &graphOrErr{gen.Hypercube(dim), nil}},
		{"circulant", &graphOrErr{circ, errCirc}},
		{"random-regular", &graphOrErr{rr, errRR}},
		{"grid", &graphOrErr{gen.Grid(dim*2, dim*2), nil}},
	}
	for _, inst := range instances {
		if inst.g.err != nil {
			return nil, fmt.Errorf("bench: %s: %w", inst.name, inst.g.err)
		}
		// Perturb weights so the greedy output is unique and Lemma 3 holds
		// with strict inequalities.
		g := gen.WeightedPerturbation(rng, inst.g.g, 0.05)
		for _, t := range []float64{2, 3} {
			res, err := core.GreedyGraph(g, t)
			if err != nil {
				return nil, err
			}
			light, err := verify.Lightness(res.Graph(), g)
			if err != nil {
				return nil, err
			}
			ok := "yes"
			if v := core.VerifySelfSpanner(res.Graph(), t); len(v) != 0 {
				ok = fmt.Sprintf("NO (%d)", len(v))
			}
			tab.AddRow(inst.name, itoa(g.N()), itoa(g.M()), f2(t), itoa(res.Size()), f2(light), ok)
		}
	}
	return tab, nil
}

type graphOrErr struct {
	g   *graph.Graph
	err error
}
