package spanner

import (
	"math/rand"
	"testing"
)

// TestPublicAPIRoundTrip exercises the facade end to end: build a graph,
// construct greedy and baseline spanners, and verify them.
func TestPublicAPIRoundTrip(t *testing.T) {
	g := NewGraph(5)
	edges := [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 2, 1.8}}
	for _, e := range edges {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Greedy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() == 0 || res.Size() > g.M() {
		t.Fatalf("spanner size %d out of range", res.Size())
	}
	if _, err := VerifySpanner(res.Graph(), g, 2); err != nil {
		t.Fatal(err)
	}
	if v := VerifySelfSpanner(res.Graph(), 2); len(v) != 0 {
		t.Fatalf("self-spanner violations: %v", v)
	}
	if _, err := Lightness(res.Graph(), g); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMetric(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := GreedyMetricFast(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != fast.Size() {
		t.Fatalf("naive and fast greedy disagree: %d vs %d", res.Size(), fast.Size())
	}
	if _, err := VerifyMetricSpanner(res.Graph(), m, 1.5); err != nil {
		t.Fatal(err)
	}
	if _, err := MetricLightness(res.Graph(), m); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIApproxGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApproxGreedy(m, ApproxOptions{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyMetricSpanner(res.Spanner, m, 1.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m, err := NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	if g, err := ThetaGraph(pts, 12); err != nil || g.M() == 0 {
		t.Fatalf("ThetaGraph: %v", err)
	}
	if g, err := YaoGraph(pts, 12); err != nil || g.M() == 0 {
		t.Fatalf("YaoGraph: %v", err)
	}
	if g, err := WSPDSpanner(pts, 0.5); err != nil || g.M() == 0 {
		t.Fatalf("WSPDSpanner: %v", err)
	}
	cg := NewGraph(m.N())
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			cg.MustAddEdge(i, j, m.Dist(i, j))
		}
	}
	sp, err := BaswanaSen(rng, cg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySpanner(sp, cg, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMetricFromGraphAndMatrix(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	m, err := MetricFromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 2) != 3 {
		t.Fatalf("Dist(0,2) = %v, want 3", m.Dist(0, 2))
	}
	mm, err := NewMetricFromMatrix([][]float64{{0, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Dist(1, 0) != 5 {
		t.Fatalf("matrix Dist = %v", mm.Dist(1, 0))
	}
}
