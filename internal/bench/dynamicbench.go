package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The dynamic benchmark quantifies the fully dynamic maintained spanner:
// insert-only, delete-only, and mixed query/insert/delete workloads
// against the rebuild-per-op policy, whose per-operation cost is one full
// from-scratch greedy build at n. Deletions resume the greedy scan at the
// earliest accepted edge touching a deleted point, restoring checkpointed
// bound rows and hub arrays instead of recomputing them, so the amortized
// per-delete cost is a small fraction of a rebuild even though a random
// deletion usually cuts early in the scan. Every workload's final spanner
// is checked edge-for-edge against the from-scratch build on the
// survivors.

// DynamicBenchCase is the report for one instance.
type DynamicBenchCase struct {
	Kind    string  `json:"kind"`
	N       int     `json:"n"`
	Stretch float64 `json:"stretch"`
	// SpannerEdges is the from-scratch spanner size at n.
	SpannerEdges int `json:"spanner_edges"`
	// Rebuild* time one full from-scratch build at n — the per-operation
	// cost of the rebuild-per-op policy.
	RebuildMS        []float64 `json:"rebuild_ms"`
	RebuildMedianMS  float64   `json:"rebuild_median_ms"`
	RebuildSpreadPct float64   `json:"rebuild_spread_pct"`
	// Insert-only: Inserted points arrive in InsertBatch-sized batches.
	Inserted        int       `json:"inserted"`
	InsertBatch     int       `json:"insert_batch"`
	InsertTotalMS   []float64 `json:"insert_total_ms"`
	InsertMedianMS  float64   `json:"insert_median_ms"`
	InsertPerOpMS   float64   `json:"insert_per_op_ms"`
	InsertOpSpeedup float64   `json:"insert_op_speedup"`
	// Delete-only: Deleted points leave in DeleteBatch-sized batches.
	Deleted         int       `json:"deleted"`
	DeleteBatch     int       `json:"delete_batch"`
	DeleteTotalMS   []float64 `json:"delete_total_ms"`
	DeleteMedianMS  float64   `json:"delete_median_ms"`
	DeletePerOpMS   float64   `json:"delete_per_op_ms"`
	DeleteOpSpeedup float64   `json:"delete_op_speedup"`
	// Mixed: MixedOps operations, ~80% queries / 10% insert batches /
	// 10% delete batches, under CoalesceUntilQuery.
	MixedOps       int       `json:"mixed_ops"`
	MixedInsertOps int       `json:"mixed_insert_ops"`
	MixedDeleteOps int       `json:"mixed_delete_ops"`
	MixedOpBatch   int       `json:"mixed_op_batch"`
	MixedTotalMS   []float64 `json:"mixed_total_ms"`
	MixedMedianMS  float64   `json:"mixed_median_ms"`
	MixedPerOpMS   float64   `json:"mixed_per_op_ms"`
	MixedOpSpeedup float64   `json:"mixed_op_speedup"`
	// Identical records edge-for-edge equality of every workload's final
	// maintained spanner with the from-scratch build on its survivors,
	// every rep.
	Identical bool `json:"identical"`
}

// DynamicBenchReport is the top-level BENCH_dynamic.json document.
type DynamicBenchReport struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Date       string             `json:"date"`
	Reps       int                `json:"reps"`
	Workers    int                `json:"workers"`
	Cases      []DynamicBenchCase `json:"cases"`
}

// dynTrace is one deterministic mixed workload: op kinds with exact
// 80/10/10 proportions, shuffled by the seed.
type dynTraceOp int

const (
	dynQuery dynTraceOp = iota
	dynInsert
	dynDelete
)

func dynTrace(rng *rand.Rand, queries, inserts, deletes int) []dynTraceOp {
	ops := make([]dynTraceOp, 0, queries+inserts+deletes)
	for i := 0; i < queries; i++ {
		ops = append(ops, dynQuery)
	}
	for i := 0; i < inserts; i++ {
		ops = append(ops, dynInsert)
	}
	for i := 0; i < deletes; i++ {
		ops = append(ops, dynDelete)
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// DynamicBench times the fully dynamic maintained spanner against the
// rebuild-per-op policy. workers selects the engine worker count (<= 0
// uses 1). Small scale runs the n=500 instance; Full adds the n=4000
// acceptance instance.
func DynamicBench(ctx context.Context, scale Scale, seed int64, reps, workers int) (*Table, *DynamicBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	if workers <= 0 {
		workers = 1
	}
	tab := &Table{
		Title:  "DYNAMIC-BENCH: fully dynamic maintained spanner vs rebuild-per-op",
		Header: []string{"kind", "n", "workload", "ops", "per-op ms", "spread %", "speedup", "identical"},
		Caption: "Rebuild = one from-scratch greedy build at n, the per-operation cost of the\n" +
			"rebuild-per-op policy. insert-only / delete-only amortize batched updates over the\n" +
			"updated points; mixed is an 80/10/10 query/insert/delete trace under\n" +
			"IncrementalPolicy{CoalesceUntilQuery}, amortized over all operations. Every final\n" +
			"spanner is checked edge-for-edge against the from-scratch build on its survivors.",
	}
	report := &DynamicBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
		Workers:    workers,
	}
	type instance struct {
		n, updated, batch, mixBatch int
	}
	instances := []instance{{500, 32, 8, 4}}
	if scale == Full {
		instances = append(instances, instance{4000, 64, 16, 8})
	}
	rng := rand.New(rand.NewSource(seed))
	for _, inst := range instances {
		const stretch = 1.5
		// The point pool holds n plus the spare points the mixed trace's
		// insert ops draw from.
		const mixedInsertOps, mixedDeleteOps, mixedQueryOps = 4, 4, 32
		spare := mixedInsertOps * inst.mixBatch
		pts := gen.UniformPoints(rng, inst.n+spare, 2)
		full := metric.MustEuclidean(pts[:inst.n])
		c := DynamicBenchCase{
			Kind: "euclidean", N: inst.n, Stretch: stretch,
			Inserted: inst.updated, InsertBatch: inst.batch,
			Deleted: inst.updated, DeleteBatch: inst.batch,
			MixedOps:       mixedInsertOps + mixedDeleteOps + mixedQueryOps,
			MixedInsertOps: mixedInsertOps, MixedDeleteOps: mixedDeleteOps,
			MixedOpBatch: inst.mixBatch,
			Identical:    true,
		}
		opts := core.MetricParallelOptions{Workers: workers, Ctx: ctx}

		// Rebuild-per-op baseline: one full build at n.
		var ref *core.Result
		for r := 0; r < reps; r++ {
			start := time.Now()
			res, err := core.GreedyMetricFastParallelOpts(full, stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			c.RebuildMS = append(c.RebuildMS, time.Since(start).Seconds()*1000)
			ref = res
		}
		c.SpannerEdges = ref.Size()
		c.RebuildMedianMS = median(c.RebuildMS)
		c.RebuildSpreadPct = spreadPct(c.RebuildMS)

		// Insert-only: build n-updated up front (untimed), insert back to
		// n in batches, amortize over the inserted points.
		n0 := inst.n - inst.updated
		subsets := make([]metric.Metric, 0, inst.updated/inst.batch+1)
		for k := n0 + inst.batch; k < inst.n; k += inst.batch {
			subsets = append(subsets, metric.MustEuclidean(pts[:k]))
		}
		subsets = append(subsets, full)
		for r := 0; r < reps; r++ {
			inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			start := time.Now()
			for _, union := range subsets {
				if err := inc.Insert(union); err != nil {
					return nil, nil, err
				}
			}
			c.InsertTotalMS = append(c.InsertTotalMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && sameOutput(ref, mustIncResult(inc))
		}
		c.InsertMedianMS = median(c.InsertTotalMS)
		c.InsertPerOpMS = c.InsertMedianMS / float64(inst.updated)
		if c.InsertPerOpMS > 0 {
			c.InsertOpSpeedup = c.RebuildMedianMS / c.InsertPerOpMS
		}

		// Delete-only: build n up front (untimed), delete `updated` random
		// points in batches, amortize over the deleted points. The victim
		// schedule is fixed across reps and policies.
		delRng := rand.New(rand.NewSource(seed + int64(inst.n)))
		victims := make([][]int, 0, inst.updated/inst.batch)
		for done := 0; done < inst.updated; done += inst.batch {
			liveN := inst.n - done
			batch := delRng.Perm(liveN)[:inst.batch]
			victims = append(victims, batch)
		}
		survivors := survivorPoints(pts[:inst.n], victims)
		delRef, err := core.GreedyMetricFastParallelOpts(metric.MustEuclidean(survivors), stretch, opts)
		if err != nil {
			return nil, nil, err
		}
		for r := 0; r < reps; r++ {
			inc, err := core.NewIncrementalMetric(full, stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			start := time.Now()
			for _, batch := range victims {
				if err := inc.Delete(batch...); err != nil {
					return nil, nil, err
				}
			}
			c.DeleteTotalMS = append(c.DeleteTotalMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && sameOutput(delRef, mustIncResult(inc))
		}
		c.DeleteMedianMS = median(c.DeleteTotalMS)
		c.DeletePerOpMS = c.DeleteMedianMS / float64(inst.updated)
		if c.DeletePerOpMS > 0 {
			c.DeleteOpSpeedup = c.RebuildMedianMS / c.DeletePerOpMS
		}

		// Mixed 80/10/10: one deterministic trace, replayed each rep under
		// CoalesceUntilQuery, amortized over all operations.
		traceRng := rand.New(rand.NewSource(seed + 7))
		ops := dynTrace(traceRng, mixedQueryOps, mixedInsertOps, mixedDeleteOps)
		type mixedStep struct {
			op      dynTraceOp
			union   metric.Metric // dynInsert: the grown point set
			victims []int         // dynDelete: dense positions
		}
		// Precompute the trace's unions and victim sets (identical every
		// rep) by simulating the alive set once.
		alive := make([]int, inst.n)
		for i := range alive {
			alive[i] = i
		}
		pool := inst.n
		steps := make([]mixedStep, 0, len(ops))
		for _, op := range ops {
			switch op {
			case dynInsert:
				for j := 0; j < inst.mixBatch; j++ {
					alive = append(alive, pool+j)
				}
				pool += inst.mixBatch
				steps = append(steps, mixedStep{op: op, union: pickEuclidean(pts, alive)})
			case dynDelete:
				dense := traceRng.Perm(len(alive))[:inst.mixBatch]
				steps = append(steps, mixedStep{op: op, victims: dense})
				alive = removeDense(alive, dense)
			default:
				steps = append(steps, mixedStep{op: op})
			}
		}
		mixRef, err := core.GreedyMetricFastParallelOpts(pickEuclidean(pts, alive), stretch, opts)
		if err != nil {
			return nil, nil, err
		}
		for r := 0; r < reps; r++ {
			inc, err := core.NewIncrementalMetric(full, stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			if err := inc.SetPolicy(core.IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
				return nil, nil, err
			}
			start := time.Now()
			for _, st := range steps {
				switch st.op {
				case dynInsert:
					if err := inc.Insert(st.union); err != nil {
						return nil, nil, err
					}
				case dynDelete:
					if err := inc.Delete(st.victims...); err != nil {
						return nil, nil, err
					}
				default:
					if _, err := inc.Result(); err != nil {
						return nil, nil, err
					}
				}
			}
			c.MixedTotalMS = append(c.MixedTotalMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && sameOutput(mixRef, mustIncResult(inc))
		}
		c.MixedMedianMS = median(c.MixedTotalMS)
		c.MixedPerOpMS = c.MixedMedianMS / float64(c.MixedOps)
		if c.MixedPerOpMS > 0 {
			c.MixedOpSpeedup = c.RebuildMedianMS / c.MixedPerOpMS
		}

		tab.AddRow(c.Kind, itoa(inst.n), "rebuild", "1",
			f2(c.RebuildMedianMS), f2(c.RebuildSpreadPct), "1.00", "ref")
		tab.AddRow(c.Kind, itoa(inst.n), "insert-only", itoa(inst.updated),
			f2(c.InsertPerOpMS), f2(spreadPct(c.InsertTotalMS)), f2(c.InsertOpSpeedup), yesNo(c.Identical))
		tab.AddRow(c.Kind, itoa(inst.n), "delete-only", itoa(inst.updated),
			f2(c.DeletePerOpMS), f2(spreadPct(c.DeleteTotalMS)), f2(c.DeleteOpSpeedup), yesNo(c.Identical))
		tab.AddRow(c.Kind, itoa(inst.n), "mixed-80/10/10", itoa(c.MixedOps),
			f2(c.MixedPerOpMS), f2(spreadPct(c.MixedTotalMS)), f2(c.MixedOpSpeedup), yesNo(c.Identical))
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// survivorPoints applies the victim batches (dense positions per batch)
// to the point list and returns the survivors in maintained order.
func survivorPoints(pts [][]float64, victims [][]int) [][]float64 {
	alive := make([]int, len(pts))
	for i := range alive {
		alive[i] = i
	}
	for _, batch := range victims {
		alive = removeDense(alive, batch)
	}
	out := make([][]float64, len(alive))
	for i, j := range alive {
		out[i] = pts[j]
	}
	return out
}

// removeDense removes the given dense positions from alive.
func removeDense(alive []int, dense []int) []int {
	drop := make(map[int]bool, len(dense))
	for _, d := range dense {
		drop[d] = true
	}
	out := make([]int, 0, len(alive)-len(dense))
	for i, v := range alive {
		if !drop[i] {
			out = append(out, v)
		}
	}
	return out
}

// pickEuclidean builds the Euclidean metric over pts[alive...] in order.
func pickEuclidean(pts [][]float64, alive []int) metric.Metric {
	sub := make([][]float64, len(alive))
	for i, j := range alive {
		sub[i] = pts[j]
	}
	return metric.MustEuclidean(sub)
}

// WriteJSON writes the report to path, pretty-printed, atomically.
func (r *DynamicBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
