// Package fixture seeds ctxcommit violations and exemptions.
package fixture

import "context"

// searcher mimics graph.Searcher's bounded-query surface.
type searcher struct{}

func (searcher) BidirDistanceWithin(u, v int, limit float64) (float64, bool) {
	return float64(u + v), limit > 0
}

// wrapsSearch is search-like: it calls a bounded query and returns a
// non-error value, so its call sites are held to the same rule.
func wrapsSearch(s searcher) bool {
	_, ok := s.BidirDistanceWithin(0, 1, 2)
	return ok
}

// badDirect commits a bounded-search result with no check in between.
func badDirect(ctx context.Context, s searcher, out []bool) {
	_ = ctx
	_, within := s.BidirDistanceWithin(1, 2, 3) // want "bounded-search result committed without a cancellation check"
	out[0] = within
}

// badViaHelper hides the search behind one helper level.
func badViaHelper(ctx context.Context, s searcher, out []bool) {
	_ = ctx
	ok := wrapsSearch(s) // want "bounded-search result committed without a cancellation check"
	out[0] = ok
}

// goodChecked consults ctx.Err between the search and the commit.
func goodChecked(ctx context.Context, s searcher, out []bool) error {
	_, within := s.BidirDistanceWithin(1, 2, 3)
	if err := ctx.Err(); err != nil {
		return err
	}
	out[0] = within
	return nil
}

// goodAnnotated documents why the commit is safe without an inline check.
func goodAnnotated(ctx context.Context, s searcher, out []bool) {
	_ = ctx
	//spannerlint:ignore ctxcommit fixture models a post-join re-check that discards these results on truncation
	_, within := s.BidirDistanceWithin(1, 2, 3)
	out[0] = within
}

// noCarrier never mentions a cancellation carrier, so it has nothing to
// check against and is exempt by construction.
func noCarrier(s searcher, out []bool) {
	_, within := s.BidirDistanceWithin(1, 2, 3)
	out[0] = within
}

// GreedyFixture is an engine entry point with no context anywhere.
func GreedyFixture(n int) (int, error) { // want "does not thread a context"
	return n, nil
}

// GreedyFixtureCtx threads a context parameter.
func GreedyFixtureCtx(ctx context.Context, n int) (int, error) {
	_ = ctx
	return n, nil
}

// fixtureOptions carries a context the way engine options structs do.
type fixtureOptions struct {
	Ctx context.Context
}

// GreedyFixtureOpts threads a context through an options struct.
func GreedyFixtureOpts(n int, o fixtureOptions) (int, error) {
	_ = o
	return n, nil
}

// GreedyFixtureDelegate is a thin wrapper over a checked entry point.
func GreedyFixtureDelegate(n int) (int, error) {
	return GreedyFixtureCtx(context.Background(), n)
}

// FaultTolerantFixtureSerial is a deliberate, annotated serial reference.
func FaultTolerantFixtureSerial(n int) (int, error) { //spannerlint:ignore ctxcommit serial reference fixture is uncancellable by design
	return n, nil
}
