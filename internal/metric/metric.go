package metric

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Metric is a finite metric space over points 0..N()-1. Implementations must
// be symmetric, non-negative, zero exactly on the diagonal, and satisfy the
// triangle inequality; Check verifies these properties exhaustively.
type Metric interface {
	// N reports the number of points.
	N() int
	// Dist returns the distance between points i and j.
	Dist(i, j int) float64
}

// Euclidean is a Metric over points in R^d under the L2 norm.
type Euclidean struct {
	pts [][]float64
	dim int
}

// NewEuclidean builds a Euclidean metric from the given points, which must
// all share the same dimension d >= 1.
func NewEuclidean(pts [][]float64) (*Euclidean, error) {
	if len(pts) == 0 {
		return &Euclidean{}, nil
	}
	d := len(pts[0])
	if d == 0 {
		return nil, fmt.Errorf("metric: zero-dimensional points: %w", graph.ErrInvalidInput)
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("metric: point %d has dim %d, want %d: %w", i, len(p), d, graph.ErrInvalidInput)
		}
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("metric: point %d has non-finite coordinate: %w", i, graph.ErrInvalidInput)
			}
		}
	}
	return &Euclidean{pts: pts, dim: d}, nil
}

// MustEuclidean is NewEuclidean for statically valid inputs; panics on error.
func MustEuclidean(pts [][]float64) *Euclidean {
	m, err := NewEuclidean(pts)
	if err != nil {
		panic(err)
	}
	return m
}

// N reports the number of points.
func (m *Euclidean) N() int { return len(m.pts) }

// Dim reports the ambient dimension (0 for an empty metric).
func (m *Euclidean) Dim() int { return m.dim }

// Point returns the coordinates of point i (shared storage; do not modify).
func (m *Euclidean) Point(i int) []float64 { return m.pts[i] }

// Dist returns the Euclidean distance between points i and j.
func (m *Euclidean) Dist(i, j int) float64 {
	var s float64
	pi, pj := m.pts[i], m.pts[j]
	for k := range pi {
		d := pi[k] - pj[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// Matrix is a Metric backed by an explicit symmetric distance matrix.
type Matrix struct {
	d [][]float64
}

// NewMatrix wraps the given distance matrix. It validates squareness,
// symmetry, zero diagonal, and positivity off the diagonal, but not the
// triangle inequality (use Check for that; it is O(n^3)).
func NewMatrix(d [][]float64) (*Matrix, error) {
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("metric: row %d has length %d, want %d: %w", i, len(d[i]), n, graph.ErrInvalidInput)
		}
		if d[i][i] != 0 {
			return nil, fmt.Errorf("metric: nonzero diagonal at %d: %w", i, graph.ErrInvalidInput)
		}
		for j := range d[i] {
			if math.IsNaN(d[i][j]) || math.IsInf(d[i][j], 0) {
				return nil, fmt.Errorf("metric: non-finite distance (%d, %d): %w", i, j, graph.ErrInvalidInput)
			}
			if i != j && d[i][j] <= 0 {
				return nil, fmt.Errorf("metric: non-positive distance %v at (%d, %d): %w", d[i][j], i, j, graph.ErrInvalidInput)
			}
			if d[i][j] != d[j][i] {
				return nil, fmt.Errorf("metric: asymmetric at (%d, %d): %w", i, j, graph.ErrInvalidInput)
			}
		}
	}
	return &Matrix{d: d}, nil
}

// N reports the number of points.
func (m *Matrix) N() int { return len(m.d) }

// Dist returns the stored distance between i and j.
func (m *Matrix) Dist(i, j int) float64 { return m.d[i][j] }

// FlatMatrix is a Metric backed by a flat row-major distance array. Unlike
// Matrix it admits +Inf off the diagonal — the "disconnected" sentinel the
// greedy engines already handle as a last-bucket candidate — so it can
// represent the restriction of any engine-visible metric, including ones a
// snapshot must round-trip bit-exactly. NaN and negative entries are still
// rejected.
type FlatMatrix struct {
	n int
	d []float64
}

// NewFlatMatrix wraps the row-major n x n distance array d (not copied).
// It validates length, symmetry, zero diagonal, and non-negativity, and
// rejects NaN; +Inf entries are allowed.
func NewFlatMatrix(n int, d []float64) (*FlatMatrix, error) {
	if n < 0 || len(d) != n*n {
		return nil, fmt.Errorf("metric: flat matrix has %d entries, want %d x %d: %w", len(d), n, n, graph.ErrInvalidInput)
	}
	for i := 0; i < n; i++ {
		if d[i*n+i] != 0 {
			return nil, fmt.Errorf("metric: nonzero diagonal at %d: %w", i, graph.ErrInvalidInput)
		}
		for j := i + 1; j < n; j++ {
			w := d[i*n+j]
			if math.IsNaN(w) || w < 0 {
				return nil, fmt.Errorf("metric: invalid distance %v at (%d, %d): %w", w, i, j, graph.ErrInvalidInput)
			}
			if w != d[j*n+i] {
				return nil, fmt.Errorf("metric: asymmetric at (%d, %d): %w", i, j, graph.ErrInvalidInput)
			}
		}
	}
	return &FlatMatrix{n: n, d: d}, nil
}

// N reports the number of points.
func (m *FlatMatrix) N() int { return m.n }

// Dist returns the stored distance between i and j.
func (m *FlatMatrix) Dist(i, j int) float64 { return m.d[i*m.n+j] }

// Flat returns the backing row-major array (shared storage; do not modify).
func (m *FlatMatrix) Flat() []float64 { return m.d }

// FromGraph returns the shortest-path metric M_G induced by a connected
// graph g (Section 2 of the paper). It materializes the full n x n distance
// matrix via APSP. Returns graph.ErrDisconnected if g is not connected.
func FromGraph(g *graph.Graph) (*Matrix, error) {
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	return &Matrix{d: g.APSP()}, nil
}

// FromSpanner returns the metric induced by a spanner given as an edge list
// over n vertices. This is the M_H of Section 4: the metric of the greedy
// spanner itself, on which existential optimality is argued.
func FromSpanner(n int, edges []graph.Edge) (*Matrix, error) {
	h := graph.New(n)
	for _, e := range edges {
		if err := h.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, err
		}
	}
	return FromGraph(h)
}

// CompleteGraph materializes the metric as a complete weighted graph
// (V, V choose 2, w) with w(u, v) = Dist(u, v), the form in which the greedy
// algorithm consumes metric spaces. O(n^2) edges.
func CompleteGraph(m Metric) *graph.Graph {
	n := m.N()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, m.Dist(i, j))
		}
	}
	return g
}

// Check exhaustively verifies the metric axioms: symmetry, non-negativity,
// identity of indiscernibles (distinct points at distance > 0), and the
// triangle inequality, up to tolerance eps. O(n^3); for tests.
func Check(m Metric, eps float64) error {
	n := m.N()
	for i := 0; i < n; i++ {
		if d := m.Dist(i, i); d != 0 {
			return fmt.Errorf("metric: Dist(%d, %d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < n; j++ {
			dij, dji := m.Dist(i, j), m.Dist(j, i)
			if math.Abs(dij-dji) > eps {
				return fmt.Errorf("metric: asymmetric Dist(%d, %d) = %v vs %v", i, j, dij, dji)
			}
			if dij <= 0 {
				return fmt.Errorf("metric: Dist(%d, %d) = %v, want > 0", i, j, dij)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if m.Dist(i, j) > m.Dist(i, k)+m.Dist(k, j)+eps {
					return fmt.Errorf("metric: triangle inequality violated at (%d, %d, %d)", i, j, k)
				}
			}
		}
	}
	return nil
}

// Diameter returns the maximum pairwise distance (0 for n <= 1).
func Diameter(m Metric) float64 {
	n := m.N()
	var best float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := m.Dist(i, j); d > best {
				best = d
			}
		}
	}
	return best
}

// MinDistance returns the minimum pairwise distance (Inf for n <= 1).
func MinDistance(m Metric) float64 {
	n := m.N()
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := m.Dist(i, j); d < best {
				best = d
			}
		}
	}
	return best
}

// AspectRatio returns Diameter / MinDistance, the spread of the metric.
func AspectRatio(m Metric) float64 {
	md := MinDistance(m)
	if math.IsInf(md, 1) || md == 0 {
		return 0
	}
	return Diameter(m) / md
}
