package chaos_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/server"
)

// The serving-layer chaos property: a fault injected inside a live
// request, mutation, or snapshot-swap window must yield a typed error
// response or a bit-identical acknowledged result — never a process
// crash, a leaked goroutine, or a served state diverging from the
// fault-free run. A kill at any persistence IO point under live HTTP
// traffic must wedge mutations with typed responses while reads keep
// serving the last snapshot, and restart-recovery must land digest-
// identical to an exact acknowledged prefix of the mutation script.

// srvPts is the Euclidean universe for the serving chaos workload.
func srvPts() [][]float64 {
	rng := rand.New(rand.NewSource(99))
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 50, rng.Float64() * 50}
	}
	return pts
}

// srvMutation is one scripted HTTP mutation; exactly one field is set.
type srvMutation struct {
	insert [][]float64
	del    []int
}

// srvScript is the fixed mutation script every serving chaos round runs.
// Each step appends exactly one WAL record.
func srvScript() []srvMutation {
	pts := srvPts()
	return []srvMutation{
		{insert: pts[16:20]},
		{del: []int{3, 11}},
		{insert: pts[20:23]},
		{del: []int{0}},
		{insert: pts[23:25]},
	}
}

// srvPrefixDigests computes the reference digest after every script
// prefix with a plain twin engine chain: digests[i] is the state after
// the first i mutations (each applied through the same dense-id
// contract the server uses).
func srvPrefixDigests(t *testing.T, mopts core.MetricParallelOptions) []uint64 {
	t.Helper()
	script := srvScript()
	digests := make([]uint64, 0, len(script)+1)
	for i := 0; i <= len(script); i++ {
		inc := newSrvEngine(t, mopts)
		cur := append([][]float64(nil), srvPts()[:16]...)
		for _, m := range script[:i] {
			var err error
			if m.insert != nil {
				cur = append(cur, m.insert...)
				eu, eerr := metric.NewEuclidean(cur)
				if eerr != nil {
					t.Fatal(eerr)
				}
				err = inc.Insert(eu)
			} else {
				gone := make(map[int]bool)
				for _, p := range m.del {
					gone[p] = true
				}
				kept := cur[:0:0]
				for j, row := range cur {
					if !gone[j] {
						kept = append(kept, row)
					}
				}
				cur = kept
				err = inc.Delete(m.del...)
			}
			if err != nil {
				t.Fatalf("twin prefix %d: %v", i, err)
			}
		}
		res, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, core.ResultDigest(res))
	}
	return digests
}

func newSrvEngine(t *testing.T, mopts core.MetricParallelOptions) *core.IncrementalSpanner {
	t.Helper()
	eu, err := metric.NewEuclidean(srvPts()[:16])
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.NewIncrementalMetric(eu, 1.6, mopts)
	if err != nil {
		t.Fatal(err)
	}
	return inc
}

// newSrvServer builds a served durable spanner on the initial universe
// in dir, with opts controlling injection hooks and crash hooks.
func newSrvServer(t *testing.T, dir string, o persist.Options, scfg func(*server.Config)) (*server.Server, *httptest.Server, error) {
	t.Helper()
	inc, err := core.NewIncrementalMetric(mustSrvEuclid(t, srvPts()[:16]), 1.6, o.Metric)
	if err != nil {
		t.Fatal(err)
	}
	d, err := persist.Create(dir, inc, o)
	if err != nil {
		return nil, nil, err
	}
	cfg := server.Config{
		Durable:        d,
		RequestTimeout: 10 * time.Second,
		MutateTimeout:  20 * time.Second,
		DrainGrace:     2 * time.Second,
		RetryBase:      time.Millisecond,
	}
	if scfg != nil {
		scfg(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, nil
}

func mustSrvEuclid(t *testing.T, pts [][]float64) *metric.Euclidean {
	t.Helper()
	eu, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	return eu
}

// postMutation sends one script step with the given request context and
// returns the decoded body, status, and transport error. A transport
// error from a chaos-cancelled request context is an accepted outcome.
func postMutation(ctx context.Context, url string, m srvMutation) (map[string]any, int, error) {
	req := map[string]any{}
	if m.insert != nil {
		req["op"], req["points"] = "insert-points", m.insert
	} else {
		req["op"], req["ids"] = "delete-points", m.del
	}
	data, _ := json.Marshal(req)
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/mutate", bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

func getSrvJSON(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return body, resp.StatusCode
}

// gatedHooks wraps injection hooks behind an arm switch, so a schedule
// targets only the live serving windows: the initial engine build runs
// fault-free, and the gate opens once the server is up.
func gatedHooks(hooks core.InjectionHooks) (core.InjectionHooks, *atomic.Bool) {
	var armed atomic.Bool
	return core.InjectionHooks{
		OnCertify: func(e graph.Edge) {
			if armed.Load() {
				hooks.OnCertify(e)
			}
		},
		OnBatch: func(batch int, c core.Corrupter) {
			if armed.Load() {
				hooks.OnBatch(batch, c)
			}
		},
		OnRebase: func(keep int, c core.Corrupter) {
			if armed.Load() {
				hooks.OnRebase(keep, c)
			}
		},
	}, &armed
}

// TestServeChaosFaultSchedules drives every fault class through live
// mutation windows: the injector's hooks are armed inside the durable
// engine the server owns (gated open only after the server is serving),
// and its cancel context rides the mutation requests. Every mutation is
// WAL-logged before its fault window, so the server's convergence
// retries must repair every transient fault: the final served digest
// must be bit-identical to the fault-free reference, reads during the
// faults must keep answering, and no goroutine may leak.
func TestServeChaosFaultSchedules(t *testing.T) {
	mopts := core.MetricParallelOptions{Workers: 2, Hubs: 4, GuardRows: true}
	digests := srvPrefixDigests(t, mopts)
	want := digests[len(digests)-1]
	script := srvScript()

	// Calibration round: count the certifications the live mutation
	// windows pass, so random triggers land inside real windows.
	calib := chaos.New(chaos.Schedule{})
	_, calibHooks := calib.Arm(context.Background())
	runServedRound(t, servedRound{
		mopts: mopts,
		hooks: calibHooks,
		check: func(body map[string]any, status int, err error, step int) {
			if err != nil || status != http.StatusOK {
				t.Fatalf("calibration step %d: status %d err %v body %v", step, status, err, body)
			}
		},
	}, want)
	maxCertify := calib.Certifications()
	if maxCertify < int64(len(script)) {
		t.Fatalf("calibration saw only %d live certifications", maxCertify)
	}

	rng := rand.New(rand.NewSource(17))
	schedules := 0
	for _, fault := range []chaos.Fault{chaos.FaultPanic, chaos.FaultCancel, chaos.FaultStall, chaos.FaultCorrupt} {
		for round := 0; round < 5; round++ {
			sched := chaos.RandomSchedule(rng, fault, 25, maxCertify, 2*time.Millisecond)
			if round%2 == 1 {
				sched.AtRebase = true
			}
			t.Run(fmt.Sprintf("%s/round%d", fault, round), func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				in := chaos.New(sched)
				armedCtx, hooks := in.Arm(context.Background())
				defer in.Release()
				runServedRound(t, servedRound{
					mopts: mopts,
					hooks: hooks,
					ctxFor: func(step int) context.Context {
						// Once the injected cancel has fired, its context
						// stays dead; later steps ride a fresh one, like
						// fresh clients after one cancelled request.
						if in.Fired() {
							return context.Background()
						}
						return armedCtx
					},
					check: func(body map[string]any, status int, err error, step int) {
						// Accepted outcomes: acknowledged 200 (possibly
						// after convergence retries), or a transport
						// error because the injector cancelled the
						// context this mutation was riding.
						if err == nil && status != http.StatusOK {
							t.Fatalf("step %d: status %d body %v", step, status, body)
						}
						if err != nil && !errors.Is(err, context.Canceled) {
							t.Fatalf("step %d: transport error %v", step, err)
						}
					},
				}, want)
				settleServeGoroutines(t, baseline)
			})
			schedules++
		}
	}
	if schedules < 20 {
		t.Fatalf("only %d fault schedules ran", schedules)
	}
}

// servedRound configures one scripted run against a fresh served
// instance.
type servedRound struct {
	mopts  core.MetricParallelOptions
	hooks  core.InjectionHooks
	scfg   func(*server.Config)
	ctxFor func(step int) context.Context
	check  func(body map[string]any, status int, err error, step int)
}

// runServedRound runs the full mutation script against a fresh served
// instance, asserts the final served digest equals want, drains, and
// asserts restart recovery lands on the same digest.
func runServedRound(t *testing.T, r servedRound, want uint64) {
	t.Helper()
	dir := t.TempDir()
	o := persist.Options{Metric: r.mopts}
	gate, armed := gatedHooks(r.hooks)
	o.Metric.Inject = gate
	s, ts, err := newSrvServer(t, dir, o, r.scfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	armed.Store(true)
	for i, m := range srvScript() {
		ctx := context.Background()
		if r.ctxFor != nil {
			ctx = r.ctxFor(i)
		}
		body, status, err := postMutation(ctx, ts.URL, m)
		r.check(body, status, err, i)
		// Reads keep serving through every fault window.
		if rb, rs := getSrvJSON(t, ts.URL+fmt.Sprintf("/v1/distance?u=%d&v=%d", i, i+5)); rs != http.StatusOK {
			t.Fatalf("read during step %d: status %d body %v", i, rs, rb)
		}
	}
	if got := s.Stats().Digest; got != want {
		t.Fatalf("served digest %x after script, fault-free reference %x", got, want)
	}
	armed.Store(false)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	// Restart-recovery digest equivalence: reopening the directory must
	// land on the exact served state.
	d, err := persist.Open(dir, persist.Options{Metric: r.mopts})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := core.ResultDigest(res); got != want {
		t.Fatalf("recovered digest %x, want %x", got, want)
	}
}

// settleServeGoroutines waits for the goroutine count to return to
// baseline after a chaos round.
func settleServeGoroutines(t *testing.T, baseline int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<18)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
		http.DefaultClient.CloseIdleConnections()
	}
}

// TestServeChaosSwapWindowPanic injects a panic into the snapshot-swap
// window itself (between WAL durability and publication): the ack must
// be a typed panic response, reads must keep serving the pre-swap
// snapshot, and the next successful mutation must publish a state that
// includes the orphaned-but-durable op — converging back to the
// reference digest.
func TestServeChaosSwapWindowPanic(t *testing.T) {
	mopts := core.MetricParallelOptions{Workers: 1, Hubs: 4}
	digests := srvPrefixDigests(t, mopts)
	want := digests[len(digests)-1]
	armed := true
	scfg := func(cfg *server.Config) {
		cfg.Hooks.BeforeSwap = func(version uint64) {
			if armed && version == 2 {
				armed = false
				panic("chaos: injected swap-window panic")
			}
		}
	}
	dir := t.TempDir()
	s, ts, err := newSrvServer(t, dir, persist.Options{Metric: mopts}, scfg)
	if err != nil {
		t.Fatal(err)
	}
	preSwap := s.Stats().Version
	for i, m := range srvScript() {
		body, status, perr := postMutation(context.Background(), ts.URL, m)
		if perr != nil {
			t.Fatalf("step %d: %v", i, perr)
		}
		if i == 0 {
			if status != http.StatusInternalServerError || body["code"] != "panic" {
				t.Fatalf("swap-window step: status %d code %v, want 500/panic", status, body["code"])
			}
			// The pre-swap snapshot is still served.
			if v := s.Stats().Version; v != preSwap {
				t.Fatalf("version %d after contained swap panic, want %d", v, preSwap)
			}
			if _, rs := getSrvJSON(t, ts.URL+"/v1/distance?u=1&v=2"); rs != http.StatusOK {
				t.Fatalf("read after swap panic: status %d", rs)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("step %d: status %d body %v", i, status, body)
		}
	}
	if got := s.Stats().Digest; got != want {
		t.Fatalf("final digest %x, reference %x", got, want)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeKillSchedules enumerates persistence crash points under live
// HTTP traffic. For every crash point: acknowledged mutations a and the
// recovered state must satisfy exact-prefix semantics — recovery lands
// on digests[a] (the last synced record was the last ack) or
// digests[a+1] (the record synced but the process died before the ack),
// never anything else; after the kill the server's mutation path must
// answer typed wedged responses while reads keep serving.
func TestServeKillSchedules(t *testing.T) {
	mopts := core.MetricParallelOptions{Workers: 1, Hubs: 4}
	digests := srvPrefixDigests(t, mopts)
	script := srvScript()

	// Counting pass: size the enumeration over the whole served script.
	points := 0
	countDir := t.TempDir()
	o := persist.Options{Metric: mopts, Hooks: persist.Hooks{Crash: chaos.CountCrashPoints(&points)}}
	s, ts, err := newSrvServer(t, countDir, o, nil)
	if err != nil {
		t.Fatalf("counting server: %v", err)
	}
	for i, m := range script {
		if body, status, err := postMutation(context.Background(), ts.URL, m); err != nil || status != http.StatusOK {
			t.Fatalf("counting step %d: status %d err %v body %v", i, status, err, body)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if points < 10 {
		t.Fatalf("counting pass saw only %d crash points", points)
	}

	ran := 0
	for k := 0; k < points; k++ {
		k := k
		t.Run(fmt.Sprintf("kill%d", k), func(t *testing.T) {
			dir := t.TempDir()
			o := persist.Options{Metric: mopts, Hooks: persist.Hooks{Crash: chaos.Kill{At: k}.Hook()}}
			s, ts, err := newSrvServer(t, dir, o, nil)
			if err != nil {
				// The kill landed inside Create: recovery sees either no
				// state at all or the pristine initial generation.
				if !errors.Is(err, persist.ErrSimulatedCrash) {
					t.Fatalf("create: %v", err)
				}
				d, oerr := persist.Open(dir, persist.Options{Metric: mopts})
				if errors.Is(oerr, persist.ErrNoState) {
					return
				}
				if oerr != nil {
					t.Fatalf("recovery open: %v", oerr)
				}
				defer d.Close()
				res, rerr := d.Result()
				if rerr != nil {
					t.Fatal(rerr)
				}
				if got := core.ResultDigest(res); got != digests[0] {
					t.Fatalf("post-create-crash digest %x, want %x", got, digests[0])
				}
				return
			}

			acked := 0
			killed := false
			for i, m := range script {
				body, status, err := postMutation(context.Background(), ts.URL, m)
				if err != nil {
					t.Fatalf("step %d transport: %v", i, err)
				}
				switch {
				case status == http.StatusOK:
					if killed {
						t.Fatalf("step %d acked after the kill", i)
					}
					acked++
				case body["code"] == "wedged":
					killed = true
				default:
					t.Fatalf("step %d: status %d body %v", i, status, body)
				}
				// Reads must keep serving the last published snapshot
				// even after the durable died.
				if _, rs := getSrvJSON(t, ts.URL+"/v1/distance?u=2&v=9"); rs != http.StatusOK {
					t.Fatalf("read after step %d: status %d", i, rs)
				}
			}
			if !killed && acked != len(script) {
				t.Fatalf("no kill and only %d acks", acked)
			}
			if err := s.Drain(context.Background()); err != nil {
				t.Fatalf("drain: %v", err)
			}

			d, err := persist.Open(dir, persist.Options{Metric: mopts})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer d.Close()
			res, err := d.Result()
			if err != nil {
				t.Fatal(err)
			}
			got := core.ResultDigest(res)
			// Drain checkpoints a healthy durable, so an un-killed run
			// recovers the full script; a killed run recovers the acked
			// prefix, plus at most the one op whose record became
			// durable without its ack.
			if got != digests[acked] && !(acked+1 < len(digests) && got == digests[acked+1]) {
				t.Fatalf("recovered digest %x with %d acks; want %x or next prefix", got, acked, digests[acked])
			}
			ran++
		})
	}
	t.Logf("kill schedules: %d crash points enumerated", points)
}
