package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
)

// testMetrics builds the cross-family metric instance set the equivalence
// tests sweep: Euclidean point sets (uniform, clustered, multi-scale),
// explicit distance matrices, and graph-induced shortest-path metrics.
func testMetrics(tb testing.TB) map[string]metric.Metric {
	tb.Helper()
	rng := rand.New(rand.NewSource(19))
	out := map[string]metric.Metric{
		"euclidean-uniform-2d": metric.MustEuclidean(gen.UniformPoints(rng, 60, 2)),
		"euclidean-uniform-5d": metric.MustEuclidean(gen.UniformPoints(rng, 40, 5)),
		"euclidean-clustered":  metric.MustEuclidean(gen.ClusteredPoints(rng, 50, 2, 5, 0.02)),
		"euclidean-circle":     metric.MustEuclidean(gen.CirclePoints(48)),
		"euclidean-expline":    metric.MustEuclidean(gen.ExponentialLine(24)),
	}
	ring, err := gen.UnboundedDegreeMetric(3, 8, 0.1)
	if err != nil {
		tb.Fatal(err)
	}
	out["matrix-ring-gadget"] = ring
	g := gen.ErdosRenyi(rng, 45, 0.15, 0.5, 10)
	induced, err := metric.FromGraph(g)
	if err != nil {
		tb.Fatal(err)
	}
	out["matrix-graph-induced"] = induced
	return out
}

// TestGreedyMetricFastParallelEquivalence asserts the batched metric engine
// is bit-identical to the serial cached-bound reference across metric
// families, stretches, worker counts, and batch widths — and that both
// agree with the naive greedy over the metric's complete graph, a third,
// fully independent code path.
func TestGreedyMetricFastParallelEquivalence(t *testing.T) {
	workerCounts := []int{1, 2, 3, 4, 8, runtime.GOMAXPROCS(0)}
	stretches := []float64{1, 1.2, 1.5, 2, 3}
	for name, m := range testMetrics(t) {
		for _, stretch := range stretches {
			want, err := GreedyMetricFastSerial(m, stretch)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := GreedyGraph(metric.CompleteGraph(m), stretch)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, fmt.Sprintf("%s/t=%v/naive", name, stretch), want, naive)
			for _, workers := range workerCounts {
				got, err := GreedyMetricFastParallel(m, stretch, workers)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/t=%v/w=%d", name, stretch, workers)
				equalResults(t, label, want, got)
			}
			// Pathological batch widths must not change decisions.
			for _, batch := range []int{1, 7, 100000} {
				got, err := GreedyMetricFastParallelOpts(m, stretch, MetricParallelOptions{Workers: 4, BatchSize: batch})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/t=%v/batch=%d", name, stretch, batch)
				equalResults(t, label, want, got)
			}
		}
	}
}

// TestGreedyMetricFastParallelDeterminism runs the engine repeatedly on one
// instance and demands identical output every time (the row-refresh pool
// must not leak scheduling nondeterminism into decisions).
func TestGreedyMetricFastParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 90, 2))
	first, err := GreedyMetricFastParallel(m, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := GreedyMetricFastParallel(m, 1.5, 4)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "rerun", first, again)
	}
}

// TestGreedyMetricRoutingIdentity checks the public entry points:
// GreedyMetric and GreedyMetricFast both route through the batched engine
// and must still match the serial reference exactly.
func TestGreedyMetricRoutingIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 70, 2))
	for _, stretch := range []float64{1.2, 1.5, 2} {
		want, err := GreedyMetricFastSerial(m, stretch)
		if err != nil {
			t.Fatal(err)
		}
		viaMetric, err := GreedyMetric(m, stretch)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("GreedyMetric/t=%v", stretch), want, viaMetric)
		viaFast, err := GreedyMetricFast(m, stretch)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("GreedyMetricFast/t=%v", stretch), want, viaFast)
	}
}

// TestGreedyMetricFastParallelStats sanity-checks the engine counters:
// every examined pair is accounted for exactly once and the refresh
// counters are plausible.
func TestGreedyMetricFastParallelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 80, 2))
	for _, workers := range []int{1, 4} {
		var stats MetricParallelStats
		res, err := GreedyMetricFastParallelOpts(m, 1.5, MetricParallelOptions{Workers: workers, Stats: &stats})
		if err != nil {
			t.Fatal(err)
		}
		total := stats.CachedSkips + stats.CertifiedSkips + stats.SerialSkips + stats.Kept
		if total != res.EdgesExamined {
			t.Fatalf("w=%d: stats don't cover scan: cached %d + certified %d + serial %d + kept %d = %d, examined %d",
				workers, stats.CachedSkips, stats.CertifiedSkips, stats.SerialSkips, stats.Kept, total, res.EdgesExamined)
		}
		if stats.Kept != len(res.Edges) {
			t.Fatalf("w=%d: Kept = %d, want %d", workers, stats.Kept, len(res.Edges))
		}
		if stats.FinalBatchSize == 0 {
			t.Fatalf("w=%d: implausible stats: %+v", workers, stats)
		}
		if workers > 1 && (stats.Batches == 0 || stats.ParallelRefreshes == 0) {
			t.Fatalf("w=%d: parallel engine did no batched work: %+v", workers, stats)
		}
	}
}

// TestGreedyMetricFastParallelEdgeCases covers empty and trivial inputs and
// stretch validation.
func TestGreedyMetricFastParallelEdgeCases(t *testing.T) {
	for _, workers := range []int{1, 4} {
		empty := metric.MustEuclidean(nil)
		res, err := GreedyMetricFastParallel(empty, 2, workers)
		if err != nil || res.Size() != 0 {
			t.Fatalf("empty metric: res=%+v err=%v", res, err)
		}
		single := metric.MustEuclidean([][]float64{{0, 0}})
		res, err = GreedyMetricFastParallel(single, 2, workers)
		if err != nil || res.Size() != 0 || res.N != 1 {
			t.Fatalf("single point: res=%+v err=%v", res, err)
		}
		two := metric.MustEuclidean([][]float64{{0, 0}, {1, 0}})
		res, err = GreedyMetricFastParallel(two, 2, workers)
		if err != nil || res.Size() != 1 {
			t.Fatalf("two points: res=%+v err=%v", res, err)
		}
	}
	m := metric.MustEuclidean([][]float64{{0}, {1}, {2}})
	if _, err := GreedyMetricFastParallel(m, 0.5, 2); err == nil {
		t.Fatal("stretch < 1 accepted")
	}
	if _, err := GreedyMetricFastParallel(m, math.NaN(), 2); err == nil {
		t.Fatal("NaN stretch accepted")
	}
}
