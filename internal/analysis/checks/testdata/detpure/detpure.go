// Package fixture seeds detpure violations and exemptions.
package fixture

import (
	_ "math/rand" // want "engine package imports \"math/rand\""
	"time"
)

// badClock reads the wall clock in a decision path.
func badClock() int64 {
	return time.Now().Unix() // want "time.Now in an engine decision path"
}

// badElapsed measures elapsed time through time.Since.
func badElapsed(start time.Time) bool {
	return time.Since(start) > time.Second // want "time.Since in an engine decision path"
}

// badAccum sums floats in map-iteration order.
func badAccum(m map[int]float64) float64 {
	var sum float64
	//spannerlint:nondeterministic-ok fixture silences mapdet here so detpure's own finding is isolated
	for _, v := range m {
		sum += v // want "float accumulation in map-iteration order"
	}
	return sum
}

// goodIntAccum accumulates integers, which commute exactly.
func goodIntAccum(m map[int]int) int {
	n := 0
	//spannerlint:nondeterministic-ok fixture integer addition is associative, order cannot matter
	for _, v := range m {
		n += v
	}
	return n
}

// goodAnnotatedDeadline is the sanctioned wall-clock exemption shape.
func goodAnnotatedDeadline(deadline time.Time) bool {
	//spannerlint:ignore detpure fixture deadline check decides only whether to keep working
	return time.Now().After(deadline)
}
