package graph

import (
	"math"
	"sort"
)

// Stats summarizes the structural quality measures of a (spanner) graph
// that the paper's experiments report: size, weight, degree distribution,
// and weighted diameter.
type Stats struct {
	N, M       int
	Weight     float64
	MaxDegree  int
	AvgDegree  float64
	Diameter   float64 // weighted; Inf if disconnected
	HopRadius  int     // unweighted eccentricity of vertex 0 (hop count)
	Components int
}

// ComputeStats gathers Stats for g. O(n * Dijkstra) for the diameter, so
// intended for analysis, not inner loops.
func (g *Graph) ComputeStats() Stats {
	s := Stats{N: g.N(), M: g.M(), Weight: g.Weight(), MaxDegree: g.MaxDegree()}
	if g.N() > 0 {
		s.AvgDegree = 2 * float64(g.M()) / float64(g.N())
	}
	s.Components = len(g.Components())
	s.Diameter = g.WeightedDiameter()
	s.HopRadius = g.hopEccentricity(0)
	return s
}

// WeightedDiameter returns the maximum finite shortest-path distance over
// all vertex pairs, or Inf if g is disconnected (n >= 2).
func (g *Graph) WeightedDiameter() float64 {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if !g.Connected() {
		return Inf
	}
	best := 0.0
	search := NewSearcher(n)
	dist := make([]float64, n)
	for v := 0; v < n; v++ {
		search.Distances(g, v, dist)
		for _, d := range dist {
			if d > best {
				best = d
			}
		}
	}
	return best
}

// hopEccentricity returns the maximum BFS depth from src over reachable
// vertices.
func (g *Graph) hopEccentricity(src int) int {
	if g.N() == 0 {
		return 0
	}
	depth := make([]int32, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	best := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, h := range g.adj[v] {
			if depth[h.to] == -1 {
				depth[h.to] = depth[v] + 1
				if int(depth[h.to]) > best {
					best = int(depth[h.to])
				}
				queue = append(queue, h.to)
			}
		}
	}
	return best
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// WeightQuantiles returns the q-quantiles of the edge-weight distribution
// (q >= 1 values: the i-th entry is the (i+1)/(q+1) quantile). Returns nil
// for an edgeless graph.
func (g *Graph) WeightQuantiles(q int) []float64 {
	if g.M() == 0 || q < 1 {
		return nil
	}
	ws := make([]float64, g.M())
	for i, e := range g.edges {
		ws[i] = e.W
	}
	sort.Float64s(ws)
	out := make([]float64, q)
	for i := 1; i <= q; i++ {
		idx := int(math.Round(float64(i) / float64(q+1) * float64(len(ws)-1)))
		out[i-1] = ws[idx]
	}
	return out
}
