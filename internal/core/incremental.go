package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/metric"
)

// IncrementalSpanner is a maintained greedy t-spanner: after the initial
// build it accepts point insertions (metric mode) or edge insertions
// (graph mode), and after every insertion batch its Result is bit-identical
// to a from-scratch greedy build on the union — same edge sequence, weight,
// and examined-candidate count.
//
// # How an insertion replays
//
// The greedy scan consumes candidates in a fixed order (non-decreasing
// weight, ties by endpoint ids), so inserting elements splices their
// candidate pairs into that stream at known positions. Everything strictly
// before the first spliced position is untouched: the union scan sees the
// exact candidate prefix the previous scan saw, makes the same
// deterministic decisions, and therefore accepts the exact prefix of the
// maintained edge sequence. The engine keeps that prefix verbatim and
// replays only the stream's tail — pulled from the cut-resumed streamed
// supply, which skips whole weight buckets below the cut by count alone —
// through the same batched-certification scan that built the spanner.
//
// # Why cached bound rows survive (metric mode)
//
// The sparse bound store tags every row with the accepted-edge prefix its
// bounds were proven on. A row proven on a prefix the replay preserves is
// proven on a subgraph of every partial spanner the replay will ever hold,
// and spanner distances only shrink as edges are added — so its entries
// remain true upper bounds and certify skips exactly as a freshly computed
// row would (the same frozen-snapshot invariant the batched engines rest
// on). Only rows last refreshed against spanner edges past the cut are
// dropped and rebuilt on demand. Inserted points pad surviving rows with
// +Inf entries, the "unknown" the cache starts from.
//
// An IncrementalSpanner is not safe for concurrent use.
type IncrementalSpanner struct {
	t float64

	// Metric mode.
	m     metric.Metric
	mopts MetricParallelOptions
	bound *boundStore

	// Graph mode. The spanner owns g (a private clone grown by
	// InsertEdges).
	g     *graph.Graph
	gopts ParallelOptions

	// counts is the candidate set's maintained weight histogram: built
	// once at construction, then each inserted candidate is tallied as it
	// is discovered (the same loop that finds the cut). Seeding the
	// replay's source with it removes the counting pass — an insertion
	// never enumerates the full candidate set, only the O(k*n) new pairs
	// and the disturbed tail.
	counts pairCounts

	res *Result
}

// errSupplyOption rejects supply overrides: a maintained spanner must own
// its candidate supply, because insertions resume the stream mid-scan.
var errSupplyOption = fmt.Errorf("core: incremental spanner owns its candidate supply; Source and Materialize are not supported")

// NewIncrementalMetric builds the greedy t-spanner of m and returns the
// maintained spanner ready for point insertions via Insert. Workers,
// BatchSize, BucketPairs, and Stats of opts apply to the initial build and
// to every insertion replay; Source and Materialize are rejected.
func NewIncrementalMetric(m metric.Metric, t float64, opts MetricParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, fmt.Errorf("core: stretch %v out of range [1, inf)", t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, m: m, mopts: opts}
	n := m.N()
	s.res = &Result{N: n, Stretch: t}
	s.bound = newBoundStore(n)
	// Reserve per-row growth headroom up front: insertions then extend
	// rows in place instead of reallocating the whole row set.
	s.bound.slack = boundRowSlack(n)
	// One histogram pass here replaces the source's own counting pass for
	// the initial build AND every future insertion's.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.counts.add(m.Dist(i, j))
		}
	}
	if n > 1 {
		sc := &metricScan{
			t:       t,
			workers: opts.Workers,
			h:       graph.New(n),
			bound:   s.bound,
			res:     s.res,
			stats:   s.scanStats(),
		}
		sc.run(newMetricSourceSeeded(m, opts.BucketPairs, s.counts), opts.BatchSize)
	}
	return s, nil
}

// NewIncrementalGraph builds the greedy t-spanner of g and returns the
// maintained spanner ready for edge insertions via InsertEdges. The graph
// is cloned, so later mutations of g do not affect the maintained state.
// Workers, BatchSize, BucketPairs, and Stats of opts apply to the initial
// build and to every insertion replay; Source and Materialize are
// rejected.
func NewIncrementalGraph(g *graph.Graph, t float64, opts ParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, fmt.Errorf("core: stretch %v out of range [1, inf)", t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, g: g.Clone(), gopts: opts}
	s.res = &Result{N: g.N(), Stretch: t}
	for _, e := range s.g.Edges() {
		s.counts.add(e.W)
	}
	sc := &graphScan{
		t:       t,
		workers: opts.Workers,
		h:       graph.New(g.N()),
		res:     s.res,
		stats:   s.graphScanStats(),
	}
	sc.run(newGraphEdgeSourceSeeded(s.g, opts.BucketPairs, s.counts), opts.BatchSize)
	return s, nil
}

// scanStats returns the stats sink for a metric-mode scan — the caller's
// Stats, zeroed so each build or insertion reports its own counters — or a
// scratch struct so the engine always has one to fill.
func (s *IncrementalSpanner) scanStats() *MetricParallelStats {
	st := s.mopts.Stats
	if st == nil {
		st = &MetricParallelStats{}
	}
	*st = MetricParallelStats{}
	return st
}

func (s *IncrementalSpanner) graphScanStats() *ParallelStats {
	st := s.gopts.Stats
	if st == nil {
		st = &ParallelStats{}
	}
	*st = ParallelStats{}
	return st
}

// Result returns the maintained spanner. The returned value is a snapshot:
// later insertions build a fresh Result rather than mutating it, so it
// stays valid (and must not be modified) after further Insert calls.
func (s *IncrementalSpanner) Result() *Result { return s.res }

// Insert grows a metric-mode spanner with the points union appends to the
// current metric. union must extend the current metric: its first N()
// points are the current points with identical pairwise distances, and any
// points beyond them are the insertions. After Insert returns, the
// maintained result is bit-identical to a from-scratch greedy build on
// union.
//
// Cost scales with the tail of the greedy scan the insertions disturb: the
// candidate stream is resumed at the first scan position any new pair
// occupies (everything below it is preserved, never enumerated), and bound
// rows untouched since that position certify their skips from cache.
func (s *IncrementalSpanner) Insert(union metric.Metric) error {
	if s.m == nil {
		return fmt.Errorf("core: Insert on a graph-mode incremental spanner (use InsertEdges)")
	}
	nOld, n := s.m.N(), union.N()
	if n < nOld {
		return fmt.Errorf("core: union has %d points, fewer than the current %d", n, nOld)
	}
	if n == nOld {
		s.m = union
		return nil
	}
	// One pass over the O(k*n) new pairs finds the cut — the earliest
	// scan position any candidate pair touching an inserted point
	// occupies (candidates strictly before it are exactly the previous
	// scan's prefix) — and folds the new pairs into the maintained
	// histogram that seeds the replay's source.
	cut := graph.Edge{W: math.Inf(1), U: n, V: n}
	for z := nOld; z < n; z++ {
		for i := 0; i < z; i++ {
			e := graph.Edge{U: i, V: z, W: union.Dist(i, z)}
			s.counts.add(e.W)
			if graph.EdgeLess(e, cut) {
				cut = e
			}
		}
	}
	keep := s.prefixLen(cut)
	res := s.restart(keep, n)
	s.bound.rebase(keep, n)
	sc := &metricScan{
		t:       s.t,
		workers: s.mopts.Workers,
		h:       res.Graph(),
		bound:   s.bound,
		res:     res,
		stats:   s.scanStats(),
	}
	sc.run(newMetricSourceAfter(union, s.mopts.BucketPairs, cut, s.counts), s.mopts.BatchSize)
	s.m = union
	s.res = res
	return nil
}

// InsertEdges grows a graph-mode spanner with the given edges (validated
// like Graph.AddEdge; on a validation error no state changes). After it
// returns, the maintained result is bit-identical to a from-scratch greedy
// build on the grown graph. Cost scales with the tail of the greedy scan
// the insertions disturb, exactly as in Insert.
func (s *IncrementalSpanner) InsertEdges(edges ...graph.Edge) error {
	if s.g == nil {
		return fmt.Errorf("core: InsertEdges on a metric-mode incremental spanner (use Insert)")
	}
	n := s.g.N()
	for _, e := range edges {
		if err := graph.CheckEdge(n, e.U, e.V, e.W); err != nil {
			return err
		}
	}
	if len(edges) == 0 {
		return nil
	}
	cut := edges[0].Canonical()
	for _, e := range edges[1:] {
		if e = e.Canonical(); graph.EdgeLess(e, cut) {
			cut = e
		}
	}
	for _, e := range edges {
		s.g.MustAddEdge(e.U, e.V, e.W)
		s.counts.add(e.W)
	}
	keep := s.prefixLen(cut)
	res := s.restart(keep, n)
	sc := &graphScan{
		t:       s.t,
		workers: s.gopts.Workers,
		h:       res.Graph(),
		res:     res,
		stats:   s.graphScanStats(),
	}
	sc.run(newGraphEdgeSourceAfter(s.g, s.gopts.BucketPairs, cut, s.counts), s.gopts.BatchSize)
	s.res = res
	return nil
}

// prefixLen reports how many of the maintained accepted edges precede cut
// in scan order — the prefix the union scan reproduces verbatim. The
// accepted sequence is in scan order, so this is a binary search.
func (s *IncrementalSpanner) prefixLen(cut graph.Edge) int {
	return sort.Search(len(s.res.Edges), func(i int) bool {
		return !graph.EdgeLess(s.res.Edges[i], cut)
	})
}

// restart builds the replay's starting Result over n vertices: the first
// keep accepted edges, re-accumulated in order so the weight sum repeats
// the exact float64 additions a from-scratch scan performs.
func (s *IncrementalSpanner) restart(keep, n int) *Result {
	res := &Result{N: n, Stretch: s.t}
	res.Edges = append(make([]graph.Edge, 0, keep), s.res.Edges[:keep]...)
	for _, e := range res.Edges {
		res.Weight += e.W
	}
	return res
}
