package bench

import (
	"context"
	"encoding/json"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The hub benchmark quantifies the hub-label certification fast path: the
// same engines are timed with hubs disabled (the PR 4 configuration —
// every certification past the cache pays an exact search) and with hubs
// enabled, on the graph and metric acceptance instances plus the
// incremental insertion workload. Outputs are compared edge-for-edge
// (counters included) before any speedup is claimed; the report records
// hub hit rates, exact searches avoided, exact-search work volume, hub
// maintenance cost, and MemStats peak/total allocation, following the
// repeated-run discipline of the other engine benchmarks.

// HubBenchRun is the timing record for one hub configuration of a case.
type HubBenchRun struct {
	// Hubs is the oracle's hub count (0 = disabled, the baseline).
	Hubs     int       `json:"hubs"`
	MS       []float64 `json:"ms"`
	MedianMS float64   `json:"median_ms"`
	// SpreadPct is (max-min)/median over the samples, in percent.
	SpreadPct float64 `json:"spread_pct"`
	// Speedup is the hubs=0 median over this run's median.
	Speedup float64 `json:"speedup"`
	// ExactSearches counts the exact Dijkstra certifications the run
	// performed: bidirectional searches on the graph path, bound-row
	// refreshes on the metric path.
	ExactSearches int `json:"exact_searches"`
	// ExactTouched is the total vertex volume those searches explored
	// (metric path only; bounded refreshes shrink it even where the
	// search count stays flat).
	ExactTouched int `json:"exact_touched,omitempty"`
	// HubQueries / HubSkips count certification queries that reached the
	// oracle and the skips it certified without any search; HubHitRate is
	// their ratio.
	HubQueries int     `json:"hub_queries,omitempty"`
	HubSkips   int     `json:"hub_skips,omitempty"`
	HubHitRate float64 `json:"hub_hit_rate,omitempty"`
	// HubCertifiedFraction is HubSkips over all certified skips — the
	// share of the certification load the oracle carries.
	HubCertifiedFraction float64 `json:"hub_certified_fraction,omitempty"`
	// HubRelaxed is the oracle's maintenance cost in re-relaxed entries.
	HubRelaxed int `json:"hub_relaxed,omitempty"`
	// PeakAllocBytes / TotalAllocBytes are from a dedicated non-timed
	// pass (see measureAlloc).
	PeakAllocBytes  uint64 `json:"peak_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Identical records edge-for-edge equality (counters included) with
	// the hubs=0 baseline, every rep.
	Identical bool `json:"identical"`
}

// HubBenchCase is the report for one instance.
type HubBenchCase struct {
	// Kind is "graph", "metric", or "incremental".
	Kind         string        `json:"kind"`
	N            int           `json:"n"`
	M            int           `json:"m,omitempty"`
	Stretch      float64       `json:"stretch"`
	SpannerEdges int           `json:"spanner_edges"`
	Runs         []HubBenchRun `json:"runs"`
	// SearchReduction is the baseline's ExactSearches over the hub run's,
	// and TouchedReduction the same for ExactTouched.
	SearchReduction  float64 `json:"search_reduction,omitempty"`
	TouchedReduction float64 `json:"touched_reduction,omitempty"`
}

// HubBenchReport is the top-level BENCH_hub.json document.
type HubBenchReport struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Date       string         `json:"date"`
	Reps       int            `json:"reps"`
	Workers    int            `json:"workers"`
	Cases      []HubBenchCase `json:"cases"`
}

// HubBench times the engines with hubs off vs on. workers selects the
// engine worker count (<= 0 uses 1, the acceptance configuration). hubs
// selects the enabled run's hub count (<= 0 picks core.DefaultHubs per
// instance). Small scale runs n=500 instances; Full runs the n=4000
// acceptance instances plus the incremental insertion workload.
func HubBench(ctx context.Context, scale Scale, seed int64, reps, workers, hubs int) (*Table, *HubBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	if workers <= 0 {
		workers = 1
	}
	tab := &Table{
		Title: "HUB-BENCH: hub-label certification fast path vs exact-search certification",
		Header: []string{"kind", "n", "hubs", "median ms", "spread %", "speedup",
			"exact searches", "hub hit %", "hub share %", "peak MB", "identical"},
		Caption: "hubs=0 is the PR 4 configuration (every certification past the cache pays an exact\n" +
			"search). With hubs, maintained landmark arrays certify skips in O(k); on the metric path\n" +
			"the remaining row refreshes are bounded to the query ball. Outputs are compared\n" +
			"edge-for-edge, counters included; peak MB from a dedicated non-timed pass.",
	}
	report := &HubBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
		Workers:    workers,
	}

	nMetric, nGraph, insertN, insertK := 500, 500, 500, 32
	graphP := 0.2
	if scale == Full {
		nMetric, nGraph, insertN, insertK = 4000, 4000, 4000, 64
		graphP = 0.05
	}
	rng := rand.New(rand.NewSource(seed))

	// Graph case: the acceptance ER instance at stretch 3.
	g := gen.ErdosRenyi(rng, nGraph, graphP, 0.5, 10)
	{
		k := hubs
		if k <= 0 {
			k = core.DefaultHubs(nGraph)
		}
		c := HubBenchCase{Kind: "graph", N: nGraph, M: g.M(), Stretch: 3}
		var base *core.Result
		for _, kk := range []int{0, k} {
			run := HubBenchRun{Hubs: kk, Identical: true}
			var stats core.ParallelStats
			opts := core.ParallelOptions{Workers: workers, Hubs: kk, Stats: &stats, Ctx: ctx}
			var last *core.Result
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.GreedyGraphParallelOpts(g, c.Stretch, opts)
				if err != nil {
					return nil, nil, err
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				last = res
				if base != nil {
					run.Identical = run.Identical && sameOutput(base, res) && base.EdgesExamined == res.EdgesExamined
				}
			}
			if base == nil {
				base = last
			}
			run.ExactSearches = stats.CertifiedSkips + stats.SerialSkips + stats.Kept
			fillHubRun(&run, stats.HubQueries, stats.HubSkips, stats.HubRelaxed,
				stats.CertifiedSkips+stats.SerialSkips+stats.HubSkips)
			peak, total, err := measureAlloc(func() error {
				_, err := core.GreedyGraphParallelOpts(g, c.Stretch, opts)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, total
			c.Runs = append(c.Runs, run)
		}
		c.SpannerEdges = base.Size()
		finishHubCase(&c, tab)
		report.Cases = append(report.Cases, c)
	}

	// Metric case: the acceptance Euclidean instance at stretch 1.5.
	pts := gen.UniformPoints(rng, insertN, 2)
	m := metric.MustEuclidean(gen.UniformPoints(rng, nMetric, 2))
	{
		k := hubs
		if k <= 0 {
			k = core.DefaultHubs(nMetric)
		}
		c := HubBenchCase{Kind: "metric", N: nMetric, Stretch: 1.5}
		var base *core.Result
		for _, kk := range []int{0, k} {
			run := HubBenchRun{Hubs: kk, Identical: true}
			var stats core.MetricParallelStats
			opts := core.MetricParallelOptions{Workers: workers, Hubs: kk, Stats: &stats, Ctx: ctx}
			var last *core.Result
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.GreedyMetricFastParallelOpts(m, c.Stretch, opts)
				if err != nil {
					return nil, nil, err
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				last = res
				if base != nil {
					run.Identical = run.Identical && sameOutput(base, res) && base.EdgesExamined == res.EdgesExamined
				}
			}
			if base == nil {
				base = last
			}
			run.ExactSearches = stats.ParallelRefreshes + stats.SerialRefreshes
			run.ExactTouched = stats.RefreshTouched
			fillHubRun(&run, stats.HubQueries, stats.HubSkips, stats.HubRelaxed,
				stats.CachedSkips+stats.CertifiedSkips+stats.SerialSkips+stats.HubSkips)
			peak, total, err := measureAlloc(func() error {
				_, err := core.GreedyMetricFastParallelOpts(m, c.Stretch, opts)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, total
			c.Runs = append(c.Runs, run)
		}
		c.SpannerEdges = base.Size()
		finishHubCase(&c, tab)
		report.Cases = append(report.Cases, c)
	}

	// Incremental case: the PR 4 insertion workload (batched point
	// insertions replayed through the maintained spanner), hubs off vs on.
	{
		k := hubs
		if k <= 0 {
			k = core.DefaultHubs(insertN)
		}
		n0 := insertN - insertK
		batch := insertK / 4
		var subsets []metric.Metric
		for nn := n0 + batch; nn < insertN; nn += batch {
			subsets = append(subsets, metric.MustEuclidean(pts[:nn]))
		}
		subsets = append(subsets, metric.MustEuclidean(pts))
		c := HubBenchCase{Kind: "incremental", N: insertN, Stretch: 1.5}
		var base *core.Result
		for _, kk := range []int{0, k} {
			run := HubBenchRun{Hubs: kk, Identical: true}
			var stats core.MetricParallelStats
			opts := core.MetricParallelOptions{Workers: workers, Hubs: kk, Stats: &stats, Ctx: ctx}
			var last *core.Result
			exact, touched, hq, hs, hr, certified := 0, 0, 0, 0, 0, 0
			for r := 0; r < reps; r++ {
				inc, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), c.Stretch, opts)
				if err != nil {
					return nil, nil, err
				}
				exact, touched, hq, hs, hr, certified = 0, 0, 0, 0, 0, 0
				tally := func() {
					exact += stats.ParallelRefreshes + stats.SerialRefreshes
					touched += stats.RefreshTouched
					hq += stats.HubQueries
					hs += stats.HubSkips
					hr += stats.HubRelaxed
					certified += stats.CachedSkips + stats.CertifiedSkips + stats.SerialSkips + stats.HubSkips
				}
				tally() // the initial build's share
				start := time.Now()
				for _, union := range subsets {
					if err := inc.Insert(union); err != nil {
						return nil, nil, err
					}
					tally()
				}
				run.MS = append(run.MS, time.Since(start).Seconds()*1000)
				last = mustIncResult(inc)
				if base != nil {
					run.Identical = run.Identical && sameOutput(base, last) && base.EdgesExamined == last.EdgesExamined
				}
			}
			if base == nil {
				base = last
			}
			run.ExactSearches = exact
			run.ExactTouched = touched
			fillHubRun(&run, hq, hs, hr, certified)
			probe, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n0]), c.Stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			peak, total, err := measureAlloc(func() error {
				for _, union := range subsets {
					if err := probe.Insert(union); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, nil, err
			}
			run.PeakAllocBytes, run.TotalAllocBytes = peak, total
			c.Runs = append(c.Runs, run)
		}
		c.SpannerEdges = base.Size()
		finishHubCase(&c, tab)
		report.Cases = append(report.Cases, c)
	}
	return tab, report, nil
}

// fillHubRun derives the hub-rate fields of one run from the raw
// counters; certified is the run's total certified-skip count (the
// denominator of the oracle's load share).
func fillHubRun(run *HubBenchRun, queries, skips, relaxed, certified int) {
	run.MedianMS = median(run.MS)
	run.SpreadPct = spreadPct(run.MS)
	run.HubQueries, run.HubSkips, run.HubRelaxed = queries, skips, relaxed
	if queries > 0 {
		run.HubHitRate = float64(skips) / float64(queries)
	}
	if certified > 0 {
		run.HubCertifiedFraction = float64(skips) / float64(certified)
	}
}

// finishHubCase computes the case's cross-run ratios and emits its table
// rows; Runs[0] is the hubs=0 baseline.
func finishHubCase(c *HubBenchCase, tab *Table) {
	base := &c.Runs[0]
	base.Speedup = 1
	for i := range c.Runs {
		run := &c.Runs[i]
		if run.MedianMS > 0 {
			run.Speedup = base.MedianMS / run.MedianMS
		}
		if i > 0 {
			if run.ExactSearches > 0 {
				c.SearchReduction = float64(base.ExactSearches) / float64(run.ExactSearches)
			}
			if run.ExactTouched > 0 {
				c.TouchedReduction = float64(base.ExactTouched) / float64(run.ExactTouched)
			}
		}
		tab.AddRow(c.Kind, itoa(c.N), itoa(run.Hubs),
			f2(run.MedianMS), f2(run.SpreadPct), f2(run.Speedup),
			itoa(run.ExactSearches), f2(100*run.HubHitRate), f2(100*run.HubCertifiedFraction),
			mb(run.PeakAllocBytes), yesNo(run.Identical))
	}
}

// WriteJSON writes the report to path, pretty-printed, atomically
// (temp file + rename), so an interrupted run never damages a previous
// report at the same path.
func (r *HubBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
