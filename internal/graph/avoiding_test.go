package graph

import (
	"math/rand"
	"testing"
)

// TestDistanceWithinAvoidingMatchesWithoutEdge cross-checks the in-place
// edge-avoiding search against the materializing WithoutEdge reference on
// random graphs: for every edge, the avoided distance must equal the
// distance in the copy with one occurrence removed.
func TestDistanceWithinAvoidingMatchesWithoutEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(20)
		g := New(n)
		m := 3 * n
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 0.5+rng.Float64())
		}
		search := NewSearcher(n)
		for _, e := range g.Edges() {
			rest, err := g.WithoutEdge(e)
			if err != nil {
				t.Fatal(err)
			}
			limit := 10.0
			wantD, wantOK := rest.DistanceWithin(e.U, e.V, limit)
			gotD, gotOK := search.DistanceWithinAvoiding(g, e.U, e.V, limit, e)
			if wantOK != gotOK || wantD != gotD {
				t.Fatalf("trial %d edge %+v: avoided (%v, %v), WithoutEdge reference (%v, %v)",
					trial, e, gotD, gotOK, wantD, wantOK)
			}
		}
	}
}

// TestDistanceWithinAvoidingParallelCopies pins the one-occurrence
// semantics: with two identical parallel edges, avoiding one must leave
// the other usable.
func TestDistanceWithinAvoidingParallelCopies(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 1) // parallel copy
	g.MustAddEdge(0, 2, 1.5)
	g.MustAddEdge(2, 1, 1.5)
	search := NewSearcher(3)
	if d, ok := search.DistanceWithinAvoiding(g, 0, 1, 10, Edge{U: 0, V: 1, W: 1}); !ok || d != 1 {
		t.Fatalf("parallel copy should remain: got (%v, %v), want (1, true)", d, ok)
	}
	single := New(3)
	single.MustAddEdge(0, 1, 1)
	single.MustAddEdge(0, 2, 1.5)
	single.MustAddEdge(2, 1, 1.5)
	if d, ok := search.DistanceWithinAvoiding(single, 0, 1, 10, Edge{U: 0, V: 1, W: 1}); !ok || d != 3 {
		t.Fatalf("detour expected: got (%v, %v), want (3, true)", d, ok)
	}
}
