package bench

import (
	"context"
	"os"
	"testing"
)

// TestServeBenchGuard is the regression gate for the serving layer's
// acceptance property: across the read-only, read+mutate, and overload
// scenarios every response must be a 200 or a typed shed — zero
// shed-free failures — the overload scenario must actually shed (the
// admission queue is sized to guarantee it), and the mixed scenario
// must acknowledge every mutation it issued. Gated behind SERVE_GUARD=1
// because it stands up live HTTP servers; CI runs it as a dedicated
// step.
func TestServeBenchGuard(t *testing.T) {
	if os.Getenv("SERVE_GUARD") != "1" {
		t.Skip("set SERVE_GUARD=1 to run the serving-layer guard")
	}
	_, report, err := ServeBench(context.Background(), Small, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cases) != 3 {
		t.Fatalf("servebench produced %d cases, want 3", len(report.Cases))
	}
	for _, c := range report.Cases {
		t.Logf("%s: %d clients, %d requests, ok %d, shed %d, fail %d, %.0f qps, p50 %.2f ms, p99 %.2f ms",
			c.Scenario, c.Clients, c.Requests, c.OK, c.Shed, c.Failures, c.QPS, c.P50MS, c.P99MS)
		if c.Failures != 0 {
			t.Errorf("%s: %d shed-free request failures", c.Scenario, c.Failures)
		}
		if c.OK+c.Shed != c.Requests {
			t.Errorf("%s: %d classified of %d attempted", c.Scenario, c.OK+c.Shed, c.Requests)
		}
		if c.QPS <= 0 || c.P50MS > c.P99MS {
			t.Errorf("%s: degenerate stats qps %.1f p50 %.2f p99 %.2f", c.Scenario, c.QPS, c.P50MS, c.P99MS)
		}
		switch c.Scenario {
		case "read+mutate":
			if c.Mutations == 0 {
				t.Errorf("mixed scenario acknowledged no mutations")
			}
		case "overload":
			if c.Shed == 0 {
				t.Errorf("overload scenario shed nothing against a 2-slot/2-queue server")
			}
		}
	}
}
