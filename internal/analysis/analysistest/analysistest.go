// Package analysistest runs one spannerlint analyzer over a fixture
// package and checks its diagnostics against `// want "regex"` comments
// in the fixture sources — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented over the
// repo's dependency-free framework. A want comment expects a diagnostic
// on its own line whose message matches the quoted regular expression;
// the test fails on any unmatched expectation and on any unexpected
// diagnostic, so fixtures pin both the positives and the negatives
// (annotated-exempt code must stay silent).
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRE = regexp.MustCompile(`want ("(?:[^"\\]|\\.)*")`)

// expectation is one // want comment: a file/line and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at pattern (a package path relative to
// the module root, e.g. ./internal/analysis/checks/testdata/mapdet),
// runs the analyzer with its scope forced open, and diffs diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, a *framework.Analyzer, pattern string) {
	t.Helper()
	root := moduleRoot(t)
	pkgs, err := framework.Load(root, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", pattern)
	}
	for _, unit := range pkgs {
		expects := collectWants(t, unit)
		diags := framework.RunOne(unit, a)
		for _, d := range diags {
			if !claim(expects, d) {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
			}
		}
	}
}

// moduleRoot walks up from this source file to the repo root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// collectWants parses every want comment in the fixture package.
func collectWants(t *testing.T, unit *framework.LoadedPackage) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWants(t, unit, c)...)
			}
		}
	}
	return out
}

func parseWants(t *testing.T, unit *framework.LoadedPackage, c *ast.Comment) []*expectation {
	t.Helper()
	pos := unit.Fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
		quoted := m[1]
		raw, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s:%d: malformed want literal %s: %v", pos.Filename, pos.Line, quoted, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s:%d: malformed want regexp %q: %v", pos.Filename, pos.Line, raw, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	return out
}

// claim marks the first unmatched expectation covering the diagnostic.
func claim(expects []*expectation, d framework.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// Fixture formats the canonical fixture pattern for an analyzer name.
func Fixture(name string) string {
	return fmt.Sprintf("./internal/analysis/checks/testdata/%s", name)
}
