package persist

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
)

// Options configures a Durable spanner.
type Options struct {
	// Metric / Graph are the engine options used when the state is
	// imported at Open; they must describe the same determinism-neutral
	// knobs (workers, hubs, guards) the writer used or wants now — the
	// result contract makes all of them output-invariant.
	Metric core.MetricParallelOptions
	Graph  core.ParallelOptions
	// NoSync skips every fsync. Only for benchmarks measuring encode
	// cost; it voids the crash-recovery guarantee.
	NoSync bool
	// Hooks injects deterministic crashes at IO points (tests only).
	Hooks Hooks
}

// Hooks carries test-only fault injection. Crash is consulted at every
// IO point with a deterministic sequence number (counting from 0 per
// Durable) and a point label; returning true materializes that point's
// worst-case surviving disk state and kills the Durable with
// ErrSimulatedCrash.
type Hooks struct {
	Crash func(seq int, label string) bool
}

// Durable wraps an IncrementalSpanner with a write-ahead log and
// checkpointed snapshots in a directory. Every mutation is logged and
// fsynced before it is applied, so Open after a crash at any point
// recovers a state bit-identical (result digest, counters included) to
// some clean prefix of the applied operations — exactly the ops whose log
// records became durable.
//
// Durable owns the canonical point mirror: in metric mode the engine's
// live metric is always rebuilt from the mirror (coordinates for
// Euclidean states, a recorded distance triangle otherwise), never the
// caller's union object, so live application and recovery replay feed the
// engine bit-identical distances by construction.
type Durable struct {
	dir string
	o   Options
	inc *core.IncrementalSpanner

	gen        uint64
	opSeq      uint64
	snapDigest uint64
	wal        *os.File
	walOff     int64

	graphMode  bool
	metricKind core.MetricKind
	dim        int
	graphN     int
	liveN      int
	pts        [][]float64 // Euclidean mirror: one owned row per live point
	tri        [][]float64 // matrix mirror: row i holds dists to 0..i-1

	crashSeq int
	dead     error
	closed   bool
}

func snapName(gen uint64) string { return "snap-" + strconv.FormatUint(gen, 10) }
func walName(gen uint64) string  { return "wal-" + strconv.FormatUint(gen, 10) }

// fire consults the crash hook at one IO point. If the hook fires, wreck
// (may be nil) materializes the point's worst-case surviving disk state,
// the Durable dies, and ErrSimulatedCrash is returned.
func (d *Durable) fire(label string, wreck func()) error {
	if d.o.Hooks.Crash == nil {
		return nil
	}
	seq := d.crashSeq
	d.crashSeq++
	if !d.o.Hooks.Crash(seq, label) {
		return nil
	}
	if wreck != nil {
		wreck()
	}
	d.dead = ErrSimulatedCrash
	// A real crash leaves a stale pidfile that the next Open would break
	// (the recorded pid is dead). The simulated crash stays in-process, so
	// model that outcome directly: drop the lock so recovery in the same
	// process does not mistake its own corpse for a live holder.
	releaseLock(d.dir)
	return ErrSimulatedCrash
}

func (d *Durable) guard() error {
	if d.dead != nil {
		return d.dead
	}
	if d.closed {
		return fmt.Errorf("persist: Durable is closed")
	}
	return nil
}

// writeAtomic is WriteFileAtomic with the four crash windows of an atomic
// replace exposed to the hook: a torn temp file, a zero-length temp file,
// a rename journaled away by the crash (the new path never appears), and
// a rename that became durable. The first three leave only debris Open
// ignores; the fourth is the committed outcome.
func (d *Durable) writeAtomic(path string, data []byte, label string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	defer os.Remove(name)
	if err := d.fire(label+":temp-write", func() {
		tmp.Write(data[:len(data)/2])
		tmp.Sync()
		tmp.Close()
	}); err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := d.fire(label+":temp-sync", func() {
		tmp.Truncate(0)
		tmp.Close()
	}); err != nil {
		return err
	}
	if !d.o.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := d.fire(label+":rename-lost", nil); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		return err
	}
	if !d.o.NoSync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return d.fire(label+":rename-kept", nil)
}

// Create initializes dir as a durable home for inc, which becomes owned
// by the returned Durable: snapshot generation 1 is written from inc's
// current (flushed) state and an empty bound WAL is created. dir must
// exist and hold no prior generation. The directory is held under an
// exclusive lock file until Close; a dir already held by a live process
// returns ErrLocked.
func Create(dir string, inc *core.IncrementalSpanner, o Options) (*Durable, error) {
	if err := acquireLock(dir); err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			releaseLock(dir)
		}
	}()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "snap-") || strings.HasPrefix(e.Name(), "wal-") {
			return nil, fmt.Errorf("persist: Create in non-empty state directory %s (found %s): %w", dir, e.Name(), graph.ErrInvalidInput)
		}
	}
	st, err := inc.ExportState()
	if err != nil {
		return nil, err
	}
	d := &Durable{dir: dir, o: o, inc: inc, gen: 1}
	d.adoptState(st)
	snap := EncodeSnapshot(st, 0)
	d.snapDigest = SnapshotDigest(snap)
	if err := d.writeAtomic(filepath.Join(dir, snapName(1)), snap, "snap"); err != nil {
		return nil, err
	}
	if err := d.writeAtomic(filepath.Join(dir, walName(1)), encodeWalHeader(1, d.snapDigest), "wal"); err != nil {
		return nil, err
	}
	if err := d.openWal(); err != nil {
		return nil, err
	}
	ok = true
	return d, nil
}

// adoptState seeds the Durable's mirror and mode from an exported state.
func (d *Durable) adoptState(st *core.SpannerState) {
	d.graphMode = st.GraphMode
	d.metricKind = st.MetricKind
	d.dim = st.Dim
	d.graphN = st.GraphN
	d.liveN = len(st.Live)
	if d.graphMode {
		return
	}
	switch st.MetricKind {
	case core.MetricEuclidean:
		d.pts = make([][]float64, d.liveN)
		for i := range d.pts {
			d.pts[i] = append([]float64(nil), st.Coords[i*d.dim:(i+1)*d.dim]...)
		}
	default:
		d.tri = make([][]float64, d.liveN)
		for i := range d.tri {
			row := make([]float64, i)
			for j := range row {
				row[j] = st.Matrix[i*d.liveN+j]
			}
			d.tri[i] = row
		}
	}
}

// openWal opens the current generation's log for appending and records
// its durable length.
func (d *Durable) openWal() error {
	f, err := os.OpenFile(filepath.Join(d.dir, walName(d.gen)), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	if d.wal != nil {
		d.wal.Close()
	}
	d.wal = f
	d.walOff = info.Size()
	return nil
}

// Open recovers a Durable from dir: the newest digest-valid snapshot is
// imported and its bound WAL replayed record by record, truncating the
// log at the first torn or digest-failing record. A directory with no
// snapshot returns ErrNoState; a snapshot none of whose generations
// verify, a WAL bound to the wrong snapshot, or a digest-valid but
// structurally invalid record return errors wrapping core.ErrCorruptState;
// foreign format versions return ErrUnsupportedVersion. Like Create,
// Open holds dir under an exclusive lock file until Close; a dir held by
// a live process returns ErrLocked, while a stale lock left by a crashed
// holder is broken and recovery proceeds.
func Open(dir string, o Options) (*Durable, error) {
	if err := acquireLock(dir); err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			releaseLock(dir)
		}
	}()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name)) // debris from a torn atomic write
			continue
		}
		if g, err := strconv.ParseUint(strings.TrimPrefix(name, "snap-"), 10, 64); err == nil && strings.HasPrefix(name, "snap-") {
			gens = append(gens, g)
		}
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("persist: open %s: %w", dir, ErrNoState)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })

	d := &Durable{dir: dir, o: o}
	var st *core.SpannerState
	var snapBytes []byte
	var snapErr error
	for _, g := range gens {
		data, rerr := os.ReadFile(filepath.Join(dir, snapName(g)))
		if rerr != nil {
			snapErr = rerr
			continue
		}
		s, opSeq, derr := DecodeSnapshot(data)
		if derr != nil {
			if errors.Is(derr, ErrUnsupportedVersion) {
				return nil, derr
			}
			// A digest-failing newer snapshot is exactly what a crash
			// mid-checkpoint leaves if rename granularity is weird; fall
			// back to the older generation rather than half-trusting it.
			snapErr = derr
			continue
		}
		st, snapBytes, d.gen, d.opSeq = s, data, g, opSeq
		break
	}
	if st == nil {
		return nil, snapErr
	}
	inc, err := core.ImportIncremental(st, o.Metric, o.Graph)
	if err != nil {
		return nil, err // digest-valid but structurally bad: real corruption, no fallback
	}
	d.inc = inc
	d.adoptState(st)
	d.snapDigest = SnapshotDigest(snapBytes)

	walPath := filepath.Join(dir, walName(d.gen))
	walData, rerr := os.ReadFile(walPath)
	switch {
	case errors.Is(rerr, os.ErrNotExist):
		// Crash window: snapshot renamed, WAL creation lost. Recreate it.
		if err := d.writeAtomic(walPath, encodeWalHeader(d.gen, d.snapDigest), "wal"); err != nil {
			return nil, err
		}
	case rerr != nil:
		return nil, rerr
	default:
		gen, bound, records, validLen, werr := scanWal(walData)
		if werr != nil {
			return nil, werr
		}
		if gen != d.gen || bound != d.snapDigest {
			return nil, corruptf("wal %s bound to generation %d snapshot %016x, state is generation %d snapshot %016x",
				walName(d.gen), gen, bound, d.gen, d.snapDigest)
		}
		for i, payload := range records {
			if err := d.fire("replay:op", nil); err != nil {
				return nil, err
			}
			op, derr := decodeWalPayload(payload, d.dim)
			if derr != nil {
				return nil, derr
			}
			//spannerlint:ignore fsyncrename replay applies records already durable in the WAL; log-before-apply was satisfied by the original append
			if err := d.applyOp(op); err != nil {
				return nil, corruptf("wal record %d replay failed: %v", i, err)
			}
			d.opSeq++
		}
		if validLen < int64(len(walData)) {
			if err := d.fire("replay:truncate", nil); err != nil {
				return nil, err
			}
			if err := os.Truncate(walPath, validLen); err != nil {
				return nil, err
			}
			if !d.o.NoSync {
				if f, serr := os.Open(walPath); serr == nil {
					f.Sync()
					f.Close()
				}
			}
		}
	}
	for _, g := range gens {
		if g == d.gen {
			continue
		}
		if err := d.gcGen(g); err != nil {
			return nil, err
		}
	}
	if err := d.openWal(); err != nil {
		return nil, err
	}
	ok = true
	return d, nil
}

// gcGen removes a superseded generation's files (best-effort removals,
// each behind its own crash point: a half-collected generation is just
// debris the next Open collects again).
func (d *Durable) gcGen(g uint64) error {
	if err := d.fire("gc:snap", nil); err != nil {
		return err
	}
	os.Remove(filepath.Join(d.dir, snapName(g)))
	if err := d.fire("gc:wal", nil); err != nil {
		return err
	}
	os.Remove(filepath.Join(d.dir, walName(g)))
	return nil
}

// appendRecord makes one op durable: encode, append, fsync — only then
// does the caller apply it. The three crash windows are a torn
// half-record (digest cannot verify: recovery drops it), a complete but
// unsynced record (worst case the bytes are lost: recovery sees the
// shorter log), and a synced record the process died before applying
// (recovery replays it — the log is allowed to be ahead of the state,
// never behind).
func (d *Durable) appendRecord(op walOp) error {
	rec := encodeWalRecord(op)
	if err := d.fire("wal:write", func() {
		d.wal.Write(rec[:len(rec)/2])
		d.wal.Sync()
	}); err != nil {
		return err
	}
	if _, err := d.wal.Write(rec); err != nil {
		return err
	}
	if err := d.fire("wal:sync", func() {
		d.wal.Truncate(d.walOff)
		d.wal.Sync()
	}); err != nil {
		return err
	}
	if !d.o.NoSync {
		if err := d.wal.Sync(); err != nil {
			return err
		}
	}
	if err := d.fire("wal:synced", nil); err != nil {
		return err
	}
	d.walOff += int64(len(rec))
	d.opSeq++
	return nil
}

// applyOp applies one validated op to the mirror and the engine. Both the
// live path (after appendRecord) and recovery replay funnel through here,
// which is what makes the two bit-identical: the engine always sees
// mirror-derived metrics.
func (d *Durable) applyOp(op walOp) error {
	switch op.kind {
	case walInsertPoints:
		if d.graphMode || d.metricKind != core.MetricEuclidean {
			return fmt.Errorf("insert-points op on a non-Euclidean state")
		}
		if len(op.coords) != op.k*d.dim {
			return fmt.Errorf("insert-points op carries %d coords for %d points of dim %d", len(op.coords), op.k, d.dim)
		}
		for _, c := range op.coords {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("insert-points op carries non-finite coordinate")
			}
		}
		for z := 0; z < op.k; z++ {
			d.pts = append(d.pts, append([]float64(nil), op.coords[z*d.dim:(z+1)*d.dim]...))
		}
		d.liveN += op.k
		union, err := metric.NewEuclidean(append([][]float64(nil), d.pts...))
		if err != nil {
			return err
		}
		return d.inc.Insert(union)
	case walInsertMatrix:
		if d.graphMode || d.metricKind == core.MetricEuclidean {
			return fmt.Errorf("insert-matrix op on a non-matrix state")
		}
		if op.base != d.liveN {
			return fmt.Errorf("insert-matrix op base %d, state has %d live points", op.base, d.liveN)
		}
		for z, row := range op.rows {
			if len(row) != d.liveN+z {
				return fmt.Errorf("insert-matrix op row %d has %d entries, want %d", z, len(row), d.liveN+z)
			}
			for _, w := range row {
				if math.IsNaN(w) || w < 0 {
					return fmt.Errorf("insert-matrix op carries invalid distance %v", w)
				}
			}
		}
		for _, row := range op.rows {
			d.tri = append(d.tri, append([]float64(nil), row...))
		}
		d.liveN += op.k
		union, err := d.mirrorMatrix()
		if err != nil {
			return err
		}
		return d.inc.Insert(union)
	case walDelete:
		if d.graphMode {
			return fmt.Errorf("delete-points op on a graph-mode state")
		}
		seen := make(map[int]bool, len(op.dense))
		for _, p := range op.dense {
			if p < 0 || p >= d.liveN || seen[p] {
				return fmt.Errorf("delete op position %d invalid for %d live points", p, d.liveN)
			}
			seen[p] = true
		}
		d.compactMirror(seen)
		d.liveN -= len(op.dense)
		return d.inc.Delete(op.dense...)
	case walInsertEdges:
		if !d.graphMode {
			return fmt.Errorf("insert-edges op on a metric-mode state")
		}
		for _, e := range op.edges {
			if err := graph.CheckEdge(d.graphN, e.U, e.V, e.W); err != nil {
				return err
			}
		}
		return d.inc.InsertEdges(op.edges...)
	case walDeleteEdges:
		if !d.graphMode {
			return fmt.Errorf("delete-edges op on a metric-mode state")
		}
		if err := d.inc.ValidateDeleteEdges(op.edges...); err != nil {
			return err
		}
		return d.inc.DeleteEdges(op.edges...)
	case walFlush:
		return d.inc.Flush()
	case walPolicy:
		return d.inc.SetPolicy(op.policy)
	default:
		return fmt.Errorf("unknown op kind %d", op.kind)
	}
}

// mirrorMatrix materializes the distance triangle as the engine's full
// square metric. +Inf distances are legal (unreachable pairs).
func (d *Durable) mirrorMatrix() (metric.Metric, error) {
	n := d.liveN
	flat := make([]float64, n*n)
	for i, row := range d.tri {
		for j, w := range row {
			flat[i*n+j] = w
			flat[j*n+i] = w
		}
	}
	return metric.NewFlatMatrix(n, flat)
}

// compactMirror removes the marked dense positions from whichever mirror
// is live, preserving the survivors' order (matching dynMetric's kill).
func (d *Durable) compactMirror(gone map[int]bool) {
	if d.metricKind == core.MetricEuclidean {
		kept := d.pts[:0]
		for i, p := range d.pts {
			if !gone[i] {
				kept = append(kept, p)
			}
		}
		d.pts = kept
		return
	}
	keep := make([]int, 0, d.liveN-len(gone))
	for i := 0; i < d.liveN; i++ {
		if !gone[i] {
			keep = append(keep, i)
		}
	}
	tri := make([][]float64, len(keep))
	for a, ia := range keep {
		row := make([]float64, a)
		for b := 0; b < a; b++ {
			row[b] = d.tri[ia][keep[b]]
		}
		tri[a] = row
	}
	d.tri = tri
}

// Insert logs and applies a metric-mode insertion. union follows the
// IncrementalSpanner.Insert contract; in Euclidean mode it must be a
// *metric.Euclidean of the maintained dimension (the new points'
// coordinates are what the log records). The engine is always fed a
// mirror-derived metric, never union itself.
func (d *Durable) Insert(union metric.Metric) error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.graphMode {
		return fmt.Errorf("persist: Insert on a graph-mode durable spanner (use InsertEdges): %w", graph.ErrInvalidInput)
	}
	n := union.N()
	k := n - d.liveN
	if k < 0 {
		return fmt.Errorf("persist: union has %d points, fewer than the current %d: %w", n, d.liveN, graph.ErrInvalidInput)
	}
	if k == 0 {
		return nil
	}
	var op walOp
	if d.metricKind == core.MetricEuclidean {
		eu, ok := union.(*metric.Euclidean)
		if !ok {
			return fmt.Errorf("persist: Euclidean-state Insert needs a *metric.Euclidean union, got %T: %w", union, graph.ErrInvalidInput)
		}
		if eu.Dim() != d.dim {
			return fmt.Errorf("persist: union dimension %d, state dimension %d: %w", eu.Dim(), d.dim, graph.ErrInvalidInput)
		}
		op = walOp{kind: walInsertPoints, k: k, coords: make([]float64, 0, k*d.dim)}
		for i := d.liveN; i < n; i++ {
			op.coords = append(op.coords, eu.Point(i)...)
		}
	} else {
		op = walOp{kind: walInsertMatrix, k: k, base: d.liveN, rows: make([][]float64, k)}
		for z := 0; z < k; z++ {
			row := make([]float64, d.liveN+z)
			for i := range row {
				w := union.Dist(i, d.liveN+z)
				if math.IsNaN(w) || w < 0 {
					return fmt.Errorf("persist: union distance (%d, %d) = %v: %w", i, d.liveN+z, w, graph.ErrInvalidInput)
				}
				row[i] = w
			}
			op.rows[z] = row
		}
	}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// AppendPoints logs and applies the insertion of new Euclidean points
// given directly by coordinates — the serving layer's mutation shape,
// where clients ship rows rather than a union metric. Every row is
// validated (dimension, finiteness) before anything is logged, so a
// rejected call leaves the log untouched and OpSeq unchanged.
func (d *Durable) AppendPoints(pts [][]float64) error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.graphMode {
		return fmt.Errorf("persist: AppendPoints on a graph-mode durable spanner (use InsertEdges): %w", graph.ErrInvalidInput)
	}
	if d.metricKind != core.MetricEuclidean {
		return fmt.Errorf("persist: AppendPoints on a matrix-mode durable spanner (use Insert with a union metric): %w", graph.ErrInvalidInput)
	}
	if len(pts) == 0 {
		return nil
	}
	op := walOp{kind: walInsertPoints, k: len(pts), coords: make([]float64, 0, len(pts)*d.dim)}
	for i, p := range pts {
		if len(p) != d.dim {
			return fmt.Errorf("persist: AppendPoints row %d has dimension %d, state dimension %d: %w", i, len(p), d.dim, graph.ErrInvalidInput)
		}
		for _, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("persist: AppendPoints row %d carries non-finite coordinate: %w", i, graph.ErrInvalidInput)
			}
		}
		op.coords = append(op.coords, p...)
	}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// Delete logs and applies a metric-mode deletion of the given dense
// positions (the IncrementalSpanner.Delete contract).
func (d *Durable) Delete(points ...int) error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.graphMode {
		return fmt.Errorf("persist: Delete on a graph-mode durable spanner (use DeleteEdges): %w", graph.ErrInvalidInput)
	}
	if len(points) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(points))
	for _, p := range points {
		if p < 0 || p >= d.liveN {
			return fmt.Errorf("persist: Delete point %d out of range [0, %d): %w", p, d.liveN, graph.ErrInvalidInput)
		}
		if seen[p] {
			return fmt.Errorf("persist: Delete point %d listed twice: %w", p, graph.ErrInvalidInput)
		}
		seen[p] = true
	}
	op := walOp{kind: walDelete, dense: append([]int(nil), points...)}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// InsertEdges logs and applies a graph-mode edge insertion.
func (d *Durable) InsertEdges(edges ...graph.Edge) error {
	if err := d.guard(); err != nil {
		return err
	}
	if !d.graphMode {
		return fmt.Errorf("persist: InsertEdges on a metric-mode durable spanner (use Insert): %w", graph.ErrInvalidInput)
	}
	if len(edges) == 0 {
		return nil
	}
	for _, e := range edges {
		if err := graph.CheckEdge(d.graphN, e.U, e.V, e.W); err != nil {
			return err
		}
	}
	op := walOp{kind: walInsertEdges, edges: append([]graph.Edge(nil), edges...)}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// DeleteEdges logs and applies a graph-mode edge deletion.
func (d *Durable) DeleteEdges(edges ...graph.Edge) error {
	if err := d.guard(); err != nil {
		return err
	}
	if !d.graphMode {
		return fmt.Errorf("persist: DeleteEdges on a metric-mode durable spanner (use Delete): %w", graph.ErrInvalidInput)
	}
	if len(edges) == 0 {
		return nil
	}
	if err := d.inc.ValidateDeleteEdges(edges...); err != nil {
		return err
	}
	op := walOp{kind: walDeleteEdges, edges: append([]graph.Edge(nil), edges...)}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// SetPolicy logs and applies a batching-policy change.
func (d *Durable) SetPolicy(p core.IncrementalPolicy) error {
	if err := d.guard(); err != nil {
		return err
	}
	if p.MinBatch < 0 {
		return fmt.Errorf("persist: negative MinBatch %d: %w", p.MinBatch, graph.ErrInvalidInput)
	}
	op := walOp{kind: walPolicy, policy: p}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// Flush logs and applies an explicit flush of pending coalesced updates.
// With nothing pending it is a no-op and logs nothing.
func (d *Durable) Flush() error {
	if err := d.guard(); err != nil {
		return err
	}
	if d.inc.Pending() == 0 {
		return nil
	}
	op := walOp{kind: walFlush}
	if err := d.appendRecord(op); err != nil {
		return err
	}
	return d.applyOp(op)
}

// Result returns the maintained spanner (flushing pending updates under a
// coalescing policy, exactly like IncrementalSpanner.Result — a flush
// triggered by a query needs no log record: flush timing is
// output-invariant, and recovery reaches the same state by replaying the
// logged mutations and flushing at its own first query).
func (d *Durable) Result() (*core.Result, error) {
	if err := d.guard(); err != nil {
		return nil, err
	}
	return d.inc.Result()
}

// Checkpoint writes a new snapshot generation and rotates the WAL: the
// snapshot is written atomically, a fresh WAL bound to its digest is
// created, and only then is the previous generation collected. At every
// instant at least one complete generation is on disk.
func (d *Durable) Checkpoint() error {
	if err := d.guard(); err != nil {
		return err
	}
	st, err := d.inc.ExportState()
	if err != nil {
		return err
	}
	snap := EncodeSnapshot(st, d.opSeq)
	newGen := d.gen + 1
	if err := d.writeAtomic(filepath.Join(d.dir, snapName(newGen)), snap, "snap"); err != nil {
		return err
	}
	digest := SnapshotDigest(snap)
	if err := d.writeAtomic(filepath.Join(d.dir, walName(newGen)), encodeWalHeader(newGen, digest), "wal"); err != nil {
		return err
	}
	oldGen := d.gen
	d.gen, d.snapDigest = newGen, digest
	if err := d.openWal(); err != nil {
		return err
	}
	return d.gcGen(oldGen)
}

// Close releases the WAL handle and the directory lock. The directory
// remains openable (by this process or any other).
func (d *Durable) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	releaseLock(d.dir)
	if d.wal != nil {
		return d.wal.Close()
	}
	return nil
}

// Spanner exposes the wrapped engine for queries. Mutating it directly
// bypasses the log and voids the recovery guarantee.
func (d *Durable) Spanner() *core.IncrementalSpanner { return d.inc }

// Gen returns the current snapshot generation number.
func (d *Durable) Gen() uint64 { return d.gen }

// OpSeq returns the number of operations logged since the state was
// created (across all generations).
func (d *Durable) OpSeq() uint64 { return d.opSeq }

// CrashPoints returns how many IO points have consulted the crash hook
// so far; the chaos suite uses a counting pass to enumerate the schedule.
func (d *Durable) CrashPoints() int { return d.crashSeq }
