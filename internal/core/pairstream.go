package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/metric"
)

// CandidateSource supplies candidate edges to the greedy engines in the
// exact greedy scan order: non-decreasing weight, ties broken by (U, V).
// NextBatch returns the next at most maxW candidates and nil once the
// supply is exhausted; the returned slice is only valid until the next
// call. A source may return fewer than maxW candidates while more remain
// (the bucketed sources stop at bucket boundaries), so callers must treat
// only an empty result as end of supply.
//
// The streaming sources exist so the engines' resident set scales with the
// largest weight bucket instead of with the full candidate set: the
// classic pipeline materializes all n(n-1)/2 interpoint pairs and sorts
// them globally before the first greedy decision, while a CandidateSource
// produces and sorts one bounded bucket at a time.
type CandidateSource interface {
	NextBatch(maxW int) []graph.Edge
}

// MaterializedSource adapts an explicit, already-sorted candidate slice to
// the CandidateSource interface. It is the bridge to the classic
// materialize-then-sort pipeline: the engines use it when
// (Metric)ParallelOptions.Materialize is set, and benchmarks use it to
// measure the memory gap against the streamed supplies.
type MaterializedSource struct {
	edges []graph.Edge
	pos   int
}

// NewMaterializedSource wraps sorted, which must already be in greedy scan
// order (graph.SortEdges order). The slice is not copied.
func NewMaterializedSource(sorted []graph.Edge) *MaterializedSource {
	return &MaterializedSource{edges: sorted}
}

// NextBatch returns the next at most maxW candidates.
func (s *MaterializedSource) NextBatch(maxW int) []graph.Edge {
	if maxW < 1 {
		maxW = 1
	}
	if s.pos >= len(s.edges) {
		return nil
	}
	hi := s.pos + maxW
	if hi > len(s.edges) {
		hi = len(s.edges)
	}
	out := s.edges[s.pos:hi]
	s.pos = hi
	return out
}

// pairEnumerator produces the raw (unsorted) candidate pairs of one weight
// range. Pairs must call fn exactly once for every unordered candidate
// pair (u, v) with u < v and weight in the range (see weightInRange), in
// any order. Enumeration must be deterministic in w: repeated calls see
// identical weights, so a pair is assigned to exactly one range of a
// partition.
type pairEnumerator interface {
	Pairs(lo, hi float64, fn func(u, v int, w float64))
}

// Enumerators share graph.WeightInRange as the range predicate, so
// infinite weights (a custom metric's "disconnected" sentinel) flow
// through the counting pass and the dedicated final bucket exactly once
// instead of being dropped — the serial reference examines them too. NaN
// weights are outside every range; the greedy scan order is undefined for
// them on any path.

// metricEnumerator enumerates all n(n-1)/2 pairs of a metric by brute
// force, filtering on the weight range. O(n^2) distance evaluations per
// call and zero retained memory.
type metricEnumerator struct {
	m metric.Metric
}

func (e metricEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	n := e.m.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w := e.m.Dist(i, j); graph.WeightInRange(w, lo, hi) {
				fn(i, j, w)
			}
		}
	}
}

// graphEdgeEnumerator enumerates a graph's own edge list, the candidate
// set of the graph engines. One O(m) scan per call, no copy of the list.
type graphEdgeEnumerator struct {
	g *graph.Graph
}

func (e graphEdgeEnumerator) Pairs(lo, hi float64, fn func(u, v int, w float64)) {
	e.g.EdgesInRange(lo, hi, func(ed graph.Edge) {
		fn(ed.U, ed.V, ed.W)
	})
}

// DefaultBucketPairs is the default cap on the number of candidate pairs a
// bucketed source holds materialized at once; see BucketPairs on
// ParallelOptions and MetricParallelOptions. Buckets larger than the cap
// are subdivided into narrower weight ranges before materialization, so
// peak supply memory is O(cap) edges at the price of one extra counting
// pass per subdivision.
const DefaultBucketPairs = 1 << 19

// maxSubranges bounds how many sub-ranges one oversized bucket is split
// into per pass; deeper recursion handles the rest.
const maxSubranges = 64

// interval is one pending weight range [lo, hi) of a bucketed source with
// its known candidate count. noSplit marks ranges that subdivision cannot
// shrink (all candidates share one weight), which are materialized whole.
type interval struct {
	lo, hi  float64
	count   int
	noSplit bool
}

// bucketedSource is the streaming candidate supply: candidates are
// partitioned into geometric weight buckets [2^(e-1), 2^e) by one counting
// pass, and only the active bucket is ever materialized and sorted —
// O(B log B) per bucket instead of one global O(N log N) sort, with peak
// memory O(max bucket) instead of O(N) for N candidates. Buckets larger
// than cap are subdivided into narrower equal-width ranges (an extra
// counting pass each) until they fit, so the cap really is the peak.
type bucketedSource struct {
	enum   pairEnumerator
	cap    int
	queue  []interval
	bucket []graph.Edge
	pos    int
	opened bool
	// cut, when non-nil, suppresses every candidate that precedes it in
	// scan order: whole weight buckets strictly below cut.W are dropped by
	// count alone — never enumerated, materialized, or sorted — and the
	// one bucket straddling the cut is filtered after its sort. Dropped
	// candidates are tallied in skipped so callers can keep exact
	// examined-pair accounting. This is how the incremental engine resumes
	// a greedy scan at the first position an inserted candidate occupies.
	cut *graph.Edge
	// skipped counts candidates suppressed by cut.
	skipped int
	// seed, when non-nil, replaces open's counting pass: the caller
	// already knows the candidate set's weight histogram (the incremental
	// engine maintains it across insertions), so the source never has to
	// enumerate the full candidate set just to bucket it.
	seed *pairCounts
	// alloc is the bucket buffer's target capacity, fixed at open time to
	// min(cap, largest bucket count) so one backing array serves every
	// bucket without repeated regrowth garbage.
	alloc int
	// peak tracks the largest materialized bucket, for benchmarks.
	peak int
	// prefetchIv/prefetchOK mark that the bucket buffer already holds the
	// pairs of interval prefetchIv, collected for free during a split's
	// counting pass (the pass visits every pair of the parent anyway, and
	// the buffer's previous bucket is exhausted by the time refill
	// splits); refill then serves that child without re-enumerating it.
	// Collection is abandoned the moment the child exceeds cap, so the
	// buffer never outgrows its usual bound.
	prefetchIv   interval
	prefetchOK   bool
	prefetchHits int
	// passes counts pairEnumerator.Pairs calls (counting, subdivision,
	// and collection), the supply's dominant repeated cost on brute-force
	// enumerators; benchmarks record it to track pass-merging wins.
	passes int
}

// newBucketedSource wraps enum with bucket-size cap bucketPairs. With
// bucketPairs <= 0 the cap is chosen at open time as
// max(DefaultBucketPairs, total/32): large instances trade a slightly
// larger peak bucket for far fewer subdivision passes.
func newBucketedSource(enum pairEnumerator, bucketPairs int) *bucketedSource {
	if bucketPairs < 0 {
		bucketPairs = 0
	}
	return &bucketedSource{enum: enum, cap: bucketPairs}
}

// metricEnumeratorFor picks the pair enumerator for m: the grid-bucketed
// enumerator of internal/geom for Euclidean metrics, brute force
// otherwise.
func metricEnumeratorFor(m metric.Metric) pairEnumerator {
	if pe, ok := m.(pairEnumerator); ok {
		// A metric that enumerates its own pairs (the incremental engine's
		// tombstone-aware view) supplies them directly: it filters deleted
		// pairs at collection, so the supply never sees a dead candidate.
		return pe
	}
	if eu, ok := m.(*metric.Euclidean); ok && eu.N() > 0 {
		pts := make([][]float64, eu.N())
		for i := range pts {
			pts[i] = eu.Point(i)
		}
		// Weights come from m.Dist, the same call the materialized
		// pipeline makes, so streamed weights are bit-identical; the grid
		// only decides which pairs to test.
		return geom.NewGridEnumerator(pts, m.Dist)
	}
	return metricEnumerator{m: m}
}

// NewMetricSource returns the streaming candidate supply over all
// n(n-1)/2 interpoint pairs of m in greedy scan order. Euclidean metrics
// get the grid-bucketed enumerator of internal/geom, which produces a
// weight bucket by scanning only grid cells within the bucket's distance —
// farther pairs are never touched; all other metrics get the brute-force
// enumerator (one O(n^2) distance pass per bucket, still O(bucket)
// memory). bucketPairs <= 0 selects DefaultBucketPairs.
func NewMetricSource(m metric.Metric, bucketPairs int) CandidateSource {
	return newBucketedSource(metricEnumeratorFor(m), bucketPairs)
}

// newMetricSourceSeeded is NewMetricSource with the counting pass replaced
// by a caller-maintained weight histogram; see bucketedSource.seed.
func newMetricSourceSeeded(m metric.Metric, bucketPairs int, counts pairCounts) *bucketedSource {
	s := newBucketedSource(metricEnumeratorFor(m), bucketPairs)
	s.seed = &counts
	return s
}

// newMetricSourceAfter is newMetricSourceSeeded with the scan resumed at
// cut: candidates strictly before cut in scan order are counted into
// Skipped instead of emitted, and whole weight buckets below the cut are
// skipped by count alone without ever enumerating their pairs.
func newMetricSourceAfter(m metric.Metric, bucketPairs int, cut graph.Edge, counts pairCounts) *bucketedSource {
	s := newMetricSourceSeeded(m, bucketPairs, counts)
	s.cut = &cut
	return s
}

// NewGraphEdgeSource returns the streaming supply over g's edge list in
// greedy scan order. It replaces the sorted O(m) copy of SortedEdges with
// per-bucket collection: one O(m) counting pass, then for each weight
// bucket an O(m) filter pass plus an O(B log B) sort of just that bucket.
// bucketPairs <= 0 selects DefaultBucketPairs.
func NewGraphEdgeSource(g *graph.Graph, bucketPairs int) CandidateSource {
	return newBucketedSource(graphEdgeEnumerator{g: g}, bucketPairs)
}

// newGraphEdgeSourceSeeded is NewGraphEdgeSource with a caller-maintained
// weight histogram; see newMetricSourceSeeded.
func newGraphEdgeSourceSeeded(g *graph.Graph, bucketPairs int, counts pairCounts) *bucketedSource {
	s := newBucketedSource(graphEdgeEnumerator{g: g}, bucketPairs)
	s.seed = &counts
	return s
}

// newGraphEdgeSourceAfter is NewGraphEdgeSource resumed at cut; see
// newMetricSourceAfter.
func newGraphEdgeSourceAfter(g *graph.Graph, bucketPairs int, cut graph.Edge, counts pairCounts) *bucketedSource {
	s := newGraphEdgeSourceSeeded(g, bucketPairs, counts)
	s.cut = &cut
	return s
}

// expOffset aligns Frexp exponents into the pairCounts histogram: the
// lowest subnormal exponent from Frexp is -1074.
const expOffset = 1075

// pairCounts is the weight histogram of a candidate set — per-binary-
// exponent counts plus dedicated zero and +Inf tallies, exactly the
// product of the bucketed source's counting pass. The incremental engine
// maintains one across insertions (each new candidate is added once) and
// seeds its sources with it, so a resumed scan never enumerates the full
// candidate set just to bucket it.
type pairCounts struct {
	exp   [expOffset + 1025]int
	zeros int
	infs  int
}

// add tallies one candidate weight; it must mirror exactly what open's
// counting pass does with the weight.
func (c *pairCounts) add(w float64) {
	switch {
	case w == 0:
		c.zeros++
	case math.IsInf(w, 1):
		c.infs++
	default:
		_, e := math.Frexp(w)
		c.exp[e+expOffset]++
	}
}

// remove un-tallies one candidate weight; the exact inverse of add. The
// incremental engine calls it when a deletion retires a candidate pair, so
// the maintained histogram stays the histogram of the surviving set and a
// resumed scan's bucket layout matches what a fresh counting pass over the
// survivors would build.
func (c *pairCounts) remove(w float64) {
	switch {
	case w == 0:
		c.zeros--
	case math.IsInf(w, 1):
		c.infs--
	default:
		_, e := math.Frexp(w)
		c.exp[e+expOffset]--
	}
}

// total reports the number of tallied candidates.
func (c *pairCounts) total() int {
	n := c.zeros + c.infs
	for _, k := range c.exp {
		n += k
	}
	return n
}

// open partitions the candidate weights into geometric buckets keyed by
// binary exponent: bucket e holds weights in [2^(e-1), 2^e). The
// histogram comes from the seed when the caller maintains one, otherwise
// from a single counting pass over the enumerator. Exponent extraction is
// exactly monotone in the weight, so bucket order is scan order; zero
// weights (degenerate inputs) get a dedicated first bucket.
func (s *bucketedSource) open() {
	s.opened = true
	counts := s.seed
	if counts == nil {
		counts = &pairCounts{}
		s.passes++
		s.enum.Pairs(0, math.Inf(1), func(u, v int, w float64) {
			counts.add(w)
		})
	}
	first := math.Inf(1)
	total := counts.total()
	if s.cap == 0 {
		s.cap = DefaultBucketPairs
		if auto := total / 32; auto > s.cap {
			s.cap = auto
		}
	}
	for e := range counts.exp {
		if counts.exp[e] == 0 {
			continue
		}
		lo := math.Ldexp(1, e-expOffset-1)
		hi := math.Ldexp(1, e-expOffset)
		if lo < first {
			first = lo
		}
		s.queue = append(s.queue, interval{lo: lo, hi: hi, count: counts.exp[e]})
	}
	if counts.zeros > 0 {
		// Cap below +Inf so the zero bucket can never swallow the
		// infinite-weight bucket when no finite weights exist.
		if math.IsInf(first, 1) {
			first = math.MaxFloat64
		}
		s.queue = append([]interval{{lo: 0, hi: first, count: counts.zeros, noSplit: true}}, s.queue...)
	}
	if counts.infs > 0 {
		// Infinite weights scan last, after every finite bucket.
		s.queue = append(s.queue, interval{lo: math.Inf(1), hi: math.Inf(1), count: counts.infs, noSplit: true})
	}
	if s.cut != nil {
		// Drop every interval wholly before the cut by its count alone:
		// finite-hi intervals hold weights strictly below hi, so hi <=
		// cut.W puts all of them strictly before the cut in scan order.
		// The infinite-weight interval (lo = +Inf) can tie cut.W and is
		// always kept for the post-sort filter in refill.
		kept := s.queue[:0]
		for _, iv := range s.queue {
			if !math.IsInf(iv.lo, 1) && iv.hi <= s.cut.W {
				s.skipped += iv.count
				continue
			}
			kept = append(kept, iv)
		}
		s.queue = kept
	}
	// Merge runs of adjacent small buckets into one collection pass: the
	// geometric buckets partition the weight axis in scan order, so a
	// merged range [lo_a, hi_b) enumerates, sorts, and emits exactly the
	// concatenation the individual buckets would — one pass instead of
	// several — and the cap keeps the peak bucket bound intact. The
	// dedicated infinite-weight bucket stays unmerged (refill's
	// finite-only filter depends on its identity).
	merged := s.queue[:0]
	for _, iv := range s.queue {
		if n := len(merged); n > 0 {
			prev := &merged[n-1]
			if !math.IsInf(iv.lo, 1) && prev.count+iv.count <= s.cap {
				prev.hi = iv.hi
				prev.count += iv.count
				prev.noSplit = false
				continue
			}
		}
		merged = append(merged, iv)
	}
	s.queue = merged
	for _, iv := range s.queue {
		if iv.count > s.alloc {
			s.alloc = iv.count
		}
	}
	if s.alloc > s.cap {
		s.alloc = s.cap // oversized buckets are subdivided before collection
	}
}

// refill materializes the next non-empty bucket into s.bucket, subdividing
// oversized weight ranges first. Reports false when the supply is done.
func (s *bucketedSource) refill() bool {
	for len(s.queue) > 0 {
		iv := s.queue[0]
		s.queue = s.queue[1:]
		if iv.count == 0 {
			continue
		}
		if s.cut != nil && !math.IsInf(iv.lo, 1) && iv.hi <= s.cut.W {
			// A subdivision child that fell wholly below the cut: skip it
			// by count, like the whole buckets dropped at open time.
			if s.prefetchOK && iv.lo == s.prefetchIv.lo && iv.hi == s.prefetchIv.hi {
				s.prefetchOK = false
			}
			s.skipped += iv.count
			continue
		}
		if iv.count > s.cap && !iv.noSplit {
			if sub := s.split(iv); sub != nil {
				s.queue = append(sub, s.queue...)
				continue
			}
			// Unsplittable (weights too close); fall through and
			// materialize whole.
		}
		if s.prefetchOK && iv.lo == s.prefetchIv.lo && iv.hi == s.prefetchIv.hi {
			// The split's counting pass already left this child's pairs in
			// the bucket buffer; skip the enumeration pass.
			s.prefetchOK = false
			s.prefetchHits++
		} else {
			if cap(s.bucket) < iv.count {
				// Allocate at the open-time target so later (larger) buckets
				// reuse the same backing array instead of leaving a trail of
				// garbage; only unsplittable tie spikes can exceed it.
				want := s.alloc
				if iv.count > want {
					want = iv.count
				}
				s.bucket = make([]graph.Edge, 0, want)
			}
			s.bucket = s.bucket[:0]
			// The top finite bucket's hi overflows Ldexp to +Inf (weights in
			// [2^1023, MaxFloat64]), and WeightInRange admits w == +Inf at an
			// infinite hi — but infinite weights belong exclusively to the
			// dedicated last interval (lo == +Inf), where the counting pass
			// tallied them. Filter them out of finite-lo collections so no
			// candidate is ever emitted twice.
			finiteOnly := !math.IsInf(iv.lo, 1) && math.IsInf(iv.hi, 1)
			s.passes++
			s.enum.Pairs(iv.lo, iv.hi, func(u, v int, w float64) {
				if finiteOnly && math.IsInf(w, 1) {
					return
				}
				s.bucket = append(s.bucket, graph.Edge{U: u, V: v, W: w})
			})
		}
		if len(s.bucket) == 0 {
			continue
		}
		graph.SortEdges(s.bucket)
		s.pos = 0
		if len(s.bucket) > s.peak {
			s.peak = len(s.bucket)
		}
		if s.cut != nil {
			// The bucket straddling the cut: drop the sorted prefix that
			// precedes the cut. Buckets partition the weight axis in scan
			// order, so once one candidate at or past the cut is emitted,
			// every later bucket is past it too and the filter retires.
			drop := 0
			for drop < len(s.bucket) && graph.EdgeLess(s.bucket[drop], *s.cut) {
				drop++
			}
			s.skipped += drop
			s.pos = drop
			if drop == len(s.bucket) {
				continue // whole bucket before the cut; pos stays exhausted
			}
			s.cut = nil
		}
		return true
	}
	return false
}

// split subdivides iv into up to maxSubranges equal-width sub-ranges with
// one counting pass, returning them in weight order. It returns nil when
// the width cannot be subdivided further — boundaries collapse or the
// range is already within relative rounding width of a single weight
// (a tie spike, which no weight partition can split below the cap). A
// child that absorbs the whole parent is re-split on its narrower range
// when popped, so skewed distributions still converge to the cap; the
// width guard bounds that recursion to a few dozen counting passes.
func (s *bucketedSource) split(iv interval) []interval {
	if iv.hi-iv.lo <= iv.lo*1e-12 {
		return nil
	}
	k := (iv.count + s.cap - 1) / s.cap
	if k > maxSubranges {
		k = maxSubranges
	}
	bounds := make([]float64, k+1)
	bounds[0], bounds[k] = iv.lo, iv.hi
	for j := 1; j < k; j++ {
		bounds[j] = iv.lo + (iv.hi-iv.lo)*float64(j)/float64(k)
	}
	for j := 1; j <= k; j++ {
		if !(bounds[j] > bounds[j-1]) {
			return nil
		}
	}
	counts := make([]int, k)
	// Collect the first sub-range's pairs while counting: the pass visits
	// every pair of the parent anyway, and the first child is the next
	// range refill materializes, so a complete collection (abandoned the
	// moment the child exceeds cap, keeping the memory bound) saves that
	// child's whole enumeration pass. The bucket buffer is free for this —
	// refill only splits once the previous bucket is exhausted.
	collecting := true
	s.prefetchOK = false
	if cap(s.bucket) < s.alloc {
		s.bucket = make([]graph.Edge, 0, s.alloc)
	}
	s.bucket = s.bucket[:0]
	s.passes++
	s.enum.Pairs(iv.lo, iv.hi, func(u, v int, w float64) {
		// Locate the sub-range with lo <= w < hi; ranges partition
		// [iv.lo, iv.hi) so linear probing from the top is exact.
		j := k - 1
		for j > 0 && w < bounds[j] {
			j--
		}
		counts[j]++
		if j == 0 && collecting {
			if counts[0] > s.cap {
				collecting = false
				s.bucket = s.bucket[:0]
			} else {
				s.bucket = append(s.bucket, graph.Edge{U: u, V: v, W: w})
			}
		}
	})
	sub := make([]interval, 0, k)
	for j := 0; j < k; j++ {
		if counts[j] == 0 {
			continue
		}
		sub = append(sub, interval{lo: bounds[j], hi: bounds[j+1], count: counts[j]})
	}
	if collecting && counts[0] > 0 {
		s.prefetchIv = interval{lo: bounds[0], hi: bounds[1], count: counts[0]}
		s.prefetchOK = true
	}
	return sub
}

// NextBatch returns the next at most maxW candidates in greedy scan order.
func (s *bucketedSource) NextBatch(maxW int) []graph.Edge {
	if maxW < 1 {
		maxW = 1
	}
	if !s.opened {
		s.open()
	}
	for s.pos >= len(s.bucket) {
		if !s.refill() {
			return nil
		}
	}
	hi := s.pos + maxW
	if hi > len(s.bucket) {
		hi = len(s.bucket)
	}
	out := s.bucket[s.pos:hi]
	s.pos = hi
	return out
}

// PeakBucket reports the largest number of candidates the source has held
// materialized at once — the supply's actual memory high-water mark in
// edges.
func (s *bucketedSource) PeakBucket() int { return s.peak }

// Skipped reports how many candidates the cut suppressed. It is complete
// once the source has been drained; the engines fold it into
// EdgesExamined so a resumed scan accounts for exactly the candidates a
// full scan examines.
func (s *bucketedSource) Skipped() int { return s.skipped }

// Passes reports how many enumeration passes (counting, subdivision, and
// collection) the source has issued — the repeated-pass cost the merged
// buckets and the subdivision prefetch eliminate; benchmarks record it.
func (s *bucketedSource) Passes() int { return s.passes }
