package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/metric"
)

// IncrementalSpanner is a maintained greedy t-spanner: after the initial
// build it accepts point insertions (metric mode) or edge insertions
// (graph mode), and after every insertion batch its Result is bit-identical
// to a from-scratch greedy build on the union — same edge sequence, weight,
// and examined-candidate count.
//
// # How an insertion replays
//
// The greedy scan consumes candidates in a fixed order (non-decreasing
// weight, ties by endpoint ids), so inserting elements splices their
// candidate pairs into that stream at known positions. Everything strictly
// before the first spliced position is untouched: the union scan sees the
// exact candidate prefix the previous scan saw, makes the same
// deterministic decisions, and therefore accepts the exact prefix of the
// maintained edge sequence. The engine keeps that prefix verbatim and
// replays only the stream's tail — pulled from the cut-resumed streamed
// supply, which skips whole weight buckets below the cut by count alone —
// through the same batched-certification scan that built the spanner.
//
// # Why cached bound rows survive (metric mode)
//
// The sparse bound store tags every row with the accepted-edge prefix its
// bounds were proven on. A row proven on a prefix the replay preserves is
// proven on a subgraph of every partial spanner the replay will ever hold,
// and spanner distances only shrink as edges are added — so its entries
// remain true upper bounds and certify skips exactly as a freshly computed
// row would (the same frozen-snapshot invariant the batched engines rest
// on). Only rows last refreshed against spanner edges past the cut are
// dropped and rebuilt on demand. Inserted points pad surviving rows with
// +Inf entries, the "unknown" the cache starts from.
//
// # Batching and deferral
//
// By default every insertion batch replays immediately, keeping Result
// always current. SetPolicy installs a coalescing policy instead:
// insertions are validated and tallied eagerly (the cut and the weight
// histogram are maintained per call) but the replay is deferred until a
// query (Result) arrives or the pending insertions reach a minimum batch
// width — so interleaved insert/query workloads amortize one replay over
// a whole run of insertions, paying the disturbed-tail cost once instead
// of per call. The flushed result is bit-identical to replaying each
// batch eagerly, because both equal the from-scratch build on the union.
//
// An IncrementalSpanner is not safe for concurrent use.
type IncrementalSpanner struct {
	t float64

	// Metric mode.
	m     metric.Metric
	mopts MetricParallelOptions
	bound *boundStore

	// Graph mode. The spanner owns g (a private clone grown by
	// InsertEdges).
	g     *graph.Graph
	gopts ParallelOptions

	// counts is the candidate set's maintained weight histogram: built
	// once at construction, then each inserted candidate is tallied as it
	// is discovered (the same loop that finds the cut). Seeding the
	// replay's source with it removes the counting pass — an insertion
	// never enumerates the full candidate set, only the O(k*n) new pairs
	// and the disturbed tail.
	counts pairCounts

	// oracle is the maintained hub-label fast path (nil when the engine
	// options disable hubs); it is rebased across insertions exactly as
	// the bound rows are.
	oracle *HubOracle

	policy IncrementalPolicy
	// Deferred-replay state: the latest pending union (metric mode), the
	// earliest scan position any pending candidate occupies, and the
	// number of pending inserted elements. pendingCut == nil means no
	// replay is owed.
	pendingM        metric.Metric
	pendingCut      *graph.Edge
	pendingInserted int

	res *Result
}

// IncrementalPolicy controls when an IncrementalSpanner replays pending
// insertions; the zero value replays on every Insert/InsertEdges call.
type IncrementalPolicy struct {
	// CoalesceUntilQuery defers the replay until Result or Flush is
	// called, however many insertion calls arrive in between.
	CoalesceUntilQuery bool
	// MinBatch defers the replay until at least MinBatch elements
	// (points or edges) are pending; a query still flushes earlier. It
	// acts as a flush trigger even when CoalesceUntilQuery is set.
	MinBatch int
}

// coalescing reports whether the policy defers replays at all.
func (p IncrementalPolicy) coalescing() bool {
	return p.CoalesceUntilQuery || p.MinBatch > 1
}

// SetPolicy installs the batching policy for subsequent insertions. Any
// already-pending insertions are flushed first if the new policy would
// have replayed them (it is eager, or its MinBatch trigger is already
// met); a non-nil error is that flush's error, with the pre-flush state
// preserved (see Flush).
func (s *IncrementalSpanner) SetPolicy(p IncrementalPolicy) error {
	s.policy = p
	if !p.coalescing() || (p.MinBatch > 0 && s.pendingInserted >= p.MinBatch) {
		return s.Flush()
	}
	return nil
}

// SetContext installs the context every subsequent replay (and flush) runs
// under; nil removes it. A cancelled replay aborts with ErrCancelled and
// preserves the pre-flush state, so the same pending insertions can be
// flushed again under a fresh context.
func (s *IncrementalSpanner) SetContext(ctx context.Context) {
	s.mopts.Ctx = ctx
	s.gopts.Ctx = ctx
}

// Pending reports how many inserted elements await replay under a
// coalescing policy.
func (s *IncrementalSpanner) Pending() int { return s.pendingInserted }

// errSupplyOption rejects supply overrides: a maintained spanner must own
// its candidate supply, because insertions resume the stream mid-scan.
var errSupplyOption = fmt.Errorf("core: incremental spanner owns its candidate supply; Source and Materialize are not supported")

// NewIncrementalMetric builds the greedy t-spanner of m and returns the
// maintained spanner ready for point insertions via Insert. Workers,
// BatchSize, BucketPairs, and Stats of opts apply to the initial build and
// to every insertion replay; Source and Materialize are rejected.
func NewIncrementalMetric(m metric.Metric, t float64, opts MetricParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, m: m, mopts: opts}
	n := m.N()
	s.res = &Result{N: n, Stretch: t}
	s.bound = newBoundStore(n)
	if opts.GuardRows {
		s.bound.setGuard()
	}
	// Reserve per-row growth headroom up front: insertions then extend
	// rows in place instead of reallocating the whole row set.
	s.bound.slack = boundRowSlack(n)
	// One histogram pass here replaces the source's own counting pass for
	// the initial build AND every future insertion's.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.counts.add(m.Dist(i, j))
		}
	}
	h := graph.New(n)
	st := s.scanStats()
	hubs := opts.Hubs
	resolveHubBudget(opts.Budget, st.degradationSink(), &hubs, n)
	if hubs > 0 && n > 0 {
		// Hubs are selected once, on the initial points, and their
		// arrays carry the same growth slack as the bound rows. The
		// oracle exists even when the initial set is too small to scan,
		// so insertions that grow the spanner still get the fast path.
		s.oracle = NewHubOracle(SelectMetricHubs(m, hubs), h, boundRowSlack(n))
	}
	if n > 1 {
		sc := &metricScan{
			t:       t,
			workers: opts.Workers,
			h:       h,
			bound:   s.bound,
			oracle:  s.oracle,
			res:     s.res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newMetricSourceSeeded(m, opts.BucketPairs, s.counts), opts.BatchSize); err != nil {
			return nil, fmt.Errorf("core: incremental initial build aborted: %w", err)
		}
	}
	return s, nil
}

// NewIncrementalGraph builds the greedy t-spanner of g and returns the
// maintained spanner ready for edge insertions via InsertEdges. The graph
// is cloned, so later mutations of g do not affect the maintained state.
// Workers, BatchSize, BucketPairs, and Stats of opts apply to the initial
// build and to every insertion replay; Source and Materialize are
// rejected.
func NewIncrementalGraph(g *graph.Graph, t float64, opts ParallelOptions) (*IncrementalSpanner, error) {
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	if opts.Source != nil || opts.Materialize {
		return nil, errSupplyOption
	}
	s := &IncrementalSpanner{t: t, g: g.Clone(), gopts: opts}
	s.res = &Result{N: g.N(), Stretch: t}
	for _, e := range s.g.Edges() {
		s.counts.add(e.W)
	}
	h := graph.New(g.N())
	st := s.graphScanStats()
	hubs := opts.Hubs
	resolveHubBudget(opts.Budget, st.degradationSink(), &hubs, g.N())
	if hubs > 0 {
		s.oracle = NewHubOracle(SelectGraphHubs(s.g, hubs), h, 0)
	}
	sc := &graphScan{
		t:       t,
		workers: opts.Workers,
		h:       h,
		oracle:  s.oracle,
		res:     s.res,
		stats:   st,
		env:     s.scanEnvFor(st.degradationSink()),
	}
	if err := sc.run(newGraphEdgeSourceSeeded(s.g, opts.BucketPairs, s.counts), opts.BatchSize); err != nil {
		return nil, fmt.Errorf("core: incremental initial build aborted: %w", err)
	}
	return s, nil
}

// scanStats returns the stats sink for a metric-mode scan — the caller's
// Stats, zeroed so each build or insertion reports its own counters — or a
// scratch struct so the engine always has one to fill.
func (s *IncrementalSpanner) scanStats() *MetricParallelStats {
	st := s.mopts.Stats
	if st == nil {
		st = &MetricParallelStats{}
	}
	*st = MetricParallelStats{}
	return st
}

func (s *IncrementalSpanner) graphScanStats() *ParallelStats {
	st := s.gopts.Stats
	if st == nil {
		st = &ParallelStats{}
	}
	*st = ParallelStats{}
	return st
}

// Result returns the maintained spanner, flushing any insertions a
// coalescing policy deferred. The returned value is a snapshot: later
// insertions build a fresh Result rather than mutating it, so it stays
// valid (and must not be modified) after further Insert calls. On a flush
// error the maintained pre-flush result is returned alongside it.
func (s *IncrementalSpanner) Result() (*Result, error) {
	if err := s.Flush(); err != nil {
		return s.res, err
	}
	return s.res, nil
}

// Flush replays any pending insertions now. It is a no-op when nothing is
// pending (in particular under the default replay-every-batch policy).
//
// Flush is atomic: either the replay completes and the maintained result
// advances to the union spanner, or — on cancellation, deadline, captured
// panic, or a corrupted guarded row — the maintained result, metric, and
// pending tally are exactly what they were before the call, and a typed
// error is returned. The same pending insertions can then be flushed again
// (for example under a fresh context via SetContext); cached rows and hub
// state the aborted replay rebased remain proven on the preserved prefix,
// so a retry is sound and loses no cache warmth.
func (s *IncrementalSpanner) Flush() error {
	if s.pendingCut == nil {
		return nil
	}
	cut := *s.pendingCut
	var n int
	if s.m != nil {
		n = s.pendingM.N()
	} else {
		n = s.g.N()
	}
	keep := s.prefixLen(cut)
	res := s.restart(keep, n)
	h := res.Graph()
	if s.oracle != nil {
		slack := 0
		if s.m != nil {
			slack = boundRowSlack(n)
		}
		s.oracle.Rebase(keep, n, s.res.Edges, h, slack)
	}
	if s.m != nil {
		s.bound.rebase(keep, n)
		st := s.scanStats()
		sc := &metricScan{
			t:       s.t,
			workers: s.mopts.Workers,
			h:       h,
			bound:   s.bound,
			oracle:  s.oracle,
			res:     res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newMetricSourceAfter(s.pendingM, s.mopts.BucketPairs, cut, s.counts), s.mopts.BatchSize); err != nil {
			return fmt.Errorf("core: flush of %d pending insertions aborted; pre-flush state preserved: %w", s.pendingInserted, err)
		}
		s.m, s.pendingM = s.pendingM, nil
	} else {
		st := s.graphScanStats()
		sc := &graphScan{
			t:       s.t,
			workers: s.gopts.Workers,
			h:       h,
			oracle:  s.oracle,
			res:     res,
			stats:   st,
			env:     s.scanEnvFor(st.degradationSink()),
		}
		if err := sc.run(newGraphEdgeSourceAfter(s.g, s.gopts.BucketPairs, cut, s.counts), s.gopts.BatchSize); err != nil {
			return fmt.Errorf("core: flush of %d pending insertions aborted; pre-flush state preserved: %w", s.pendingInserted, err)
		}
	}
	s.res = res
	s.pendingCut = nil
	s.pendingInserted = 0
	return nil
}

// scanEnvFor builds the run environment for one replay from the mode's
// options (both modes share the incremental spanner's context).
func (s *IncrementalSpanner) scanEnvFor(record func(string)) *scanEnv {
	if s.m != nil {
		return newScanEnv(s.mopts.Ctx, s.mopts.Budget, s.mopts.Inject, record)
	}
	return newScanEnv(s.gopts.Ctx, s.gopts.Budget, s.gopts.Inject, record)
}

// noteInserted folds one insertion batch's earliest scan position and
// element count into the pending state and replays unless the policy
// defers it. A replay error leaves the insertion pending (see Flush).
func (s *IncrementalSpanner) noteInserted(cut graph.Edge, inserted int) error {
	if s.pendingCut == nil || graph.EdgeLess(cut, *s.pendingCut) {
		c := cut
		s.pendingCut = &c
	}
	s.pendingInserted += inserted
	if !s.policy.coalescing() || (s.policy.MinBatch > 0 && s.pendingInserted >= s.policy.MinBatch) {
		return s.Flush()
	}
	return nil
}

// Insert grows a metric-mode spanner with the points union appends to the
// current metric. union must extend the current metric: its first N()
// points are the current points with identical pairwise distances, and any
// points beyond them are the insertions. After the insertion is replayed —
// immediately by default, at the next Result/Flush or MinBatch trigger
// under a coalescing policy — the maintained result is bit-identical to a
// from-scratch greedy build on union.
//
// Cost scales with the tail of the greedy scan the insertions disturb: the
// candidate stream is resumed at the first scan position any new pair
// occupies (everything below it is preserved, never enumerated), and bound
// rows untouched since that position certify their skips from cache.
//
// A non-nil error from a cancelled or faulted replay does NOT reject the
// insertion: the points are recorded as pending and the pre-flush spanner
// is preserved; Flush replays them once the fault clears.
func (s *IncrementalSpanner) Insert(union metric.Metric) error {
	if s.m == nil {
		return fmt.Errorf("core: Insert on a graph-mode incremental spanner (use InsertEdges)")
	}
	frontier := s.m
	if s.pendingM != nil {
		frontier = s.pendingM
	}
	nOld, n := frontier.N(), union.N()
	if n < nOld {
		return fmt.Errorf("core: union has %d points, fewer than the current %d", n, nOld)
	}
	if n == nOld {
		if s.pendingM != nil {
			s.pendingM = union
		} else {
			s.m = union
		}
		return nil
	}
	// One pass over the O(k*n) new pairs finds the cut — the earliest
	// scan position any candidate pair touching an inserted point
	// occupies (candidates strictly before it are exactly the previous
	// scan's prefix) — and folds the new pairs into the maintained
	// histogram that seeds the replay's source.
	cut := graph.Edge{W: math.Inf(1), U: n, V: n}
	for z := nOld; z < n; z++ {
		for i := 0; i < z; i++ {
			e := graph.Edge{U: i, V: z, W: union.Dist(i, z)}
			s.counts.add(e.W)
			if graph.EdgeLess(e, cut) {
				cut = e
			}
		}
	}
	s.pendingM = union
	return s.noteInserted(cut, n-nOld)
}

// InsertEdges grows a graph-mode spanner with the given edges (validated
// like Graph.AddEdge; on a validation error no state changes). After the
// insertion is replayed (immediately by default; see IncrementalPolicy),
// the maintained result is bit-identical to a from-scratch greedy build
// on the grown graph. Cost scales with the tail of the greedy scan the
// insertions disturb, exactly as in Insert.
func (s *IncrementalSpanner) InsertEdges(edges ...graph.Edge) error {
	if s.g == nil {
		return fmt.Errorf("core: InsertEdges on a metric-mode incremental spanner (use Insert)")
	}
	n := s.g.N()
	for _, e := range edges {
		if err := graph.CheckEdge(n, e.U, e.V, e.W); err != nil {
			return err
		}
	}
	if len(edges) == 0 {
		return nil
	}
	cut := edges[0].Canonical()
	for _, e := range edges[1:] {
		if e = e.Canonical(); graph.EdgeLess(e, cut) {
			cut = e
		}
	}
	for _, e := range edges {
		s.g.MustAddEdge(e.U, e.V, e.W)
		s.counts.add(e.W)
	}
	return s.noteInserted(cut, len(edges))
}

// prefixLen reports how many of the maintained accepted edges precede cut
// in scan order — the prefix the union scan reproduces verbatim. The
// accepted sequence is in scan order, so this is a binary search.
func (s *IncrementalSpanner) prefixLen(cut graph.Edge) int {
	return sort.Search(len(s.res.Edges), func(i int) bool {
		return !graph.EdgeLess(s.res.Edges[i], cut)
	})
}

// restart builds the replay's starting Result over n vertices: the first
// keep accepted edges, re-accumulated in order so the weight sum repeats
// the exact float64 additions a from-scratch scan performs.
func (s *IncrementalSpanner) restart(keep, n int) *Result {
	res := &Result{N: n, Stretch: s.t}
	res.Edges = append(make([]graph.Edge, 0, keep), s.res.Edges[:keep]...)
	for _, e := range res.Edges {
		res.Weight += e.W
	}
	return res
}
