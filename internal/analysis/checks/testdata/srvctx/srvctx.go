// Package fixture seeds srvctx violations and conforming handlers.
package fixture

import (
	"context"
	"net/http"
)

// searcher mimics graph.Searcher's served query surface.
type searcher struct{ stop func() bool }

func (s *searcher) SetStop(f func() bool) { s.stop = f }
func (s *searcher) BidirDistanceWithin(u, v int, limit float64) (float64, bool) {
	return float64(u + v), limit > 0
}
func (s *searcher) PathWithin(u, v int, limit float64) ([]int, float64, bool) {
	return []int{u, v}, limit, true
}

// Durable mimics persist.Durable's mutating surface; the analyzer keys
// on the type name.
type Durable struct{}

func (d *Durable) AppendPoints(pts [][]float64) error { return nil }
func (d *Durable) Delete(ids ...int) error            { return nil }
func (d *Durable) Checkpoint() error                  { return nil }

// engine mimics the incremental spanner's context plumbing.
type engine struct{ ctx context.Context }

func (e *engine) SetContext(ctx context.Context) { e.ctx = ctx }

type server struct {
	d   *Durable
	inc *engine
}

// applyInsert is mutate-like: it wraps a durable mutator, so handler
// call sites are held to the SetContext rule.
func (s *server) applyInsert(pts [][]float64) error { return s.d.AppendPoints(pts) }

func respond(w http.ResponseWriter, v any) { _ = v }

// goodRead installs a stop predicate and re-checks the context before
// serving the result.
func (s *server) goodRead(w http.ResponseWriter, r *http.Request, sr *searcher) {
	ctx := r.Context()
	sr.SetStop(func() bool { return ctx.Err() != nil })
	d, ok := sr.BidirDistanceWithin(0, 1, 2)
	sr.SetStop(nil)
	if err := ctx.Err(); err != nil {
		respond(w, err)
		return
	}
	respond(w, d)
	respond(w, ok)
}

// badReadNoStop queries with no stop predicate installed.
func (s *server) badReadNoStop(w http.ResponseWriter, r *http.Request, sr *searcher) {
	ctx := r.Context()
	d, _ := sr.BidirDistanceWithin(0, 1, 2) // want "without a preceding SetStop"
	if err := ctx.Err(); err != nil {
		respond(w, err)
		return
	}
	respond(w, d)
}

// badReadClearedStop queries after the stop predicate was explicitly
// cleared.
func (s *server) badReadClearedStop(w http.ResponseWriter, r *http.Request, sr *searcher) {
	ctx := r.Context()
	sr.SetStop(func() bool { return ctx.Err() != nil })
	sr.SetStop(nil)
	path, _, _ := sr.PathWithin(0, 1, 2) // want "without a preceding SetStop"
	if err := ctx.Err(); err != nil {
		respond(w, err)
		return
	}
	respond(w, path)
}

// badReadNoRecheck serves the result without consulting ctx.Err.
func (s *server) badReadNoRecheck(w http.ResponseWriter, r *http.Request, sr *searcher) {
	ctx := r.Context()
	sr.SetStop(func() bool { return ctx.Err() != nil })
	d, ok := sr.BidirDistanceWithin(0, 1, 2) // want "without re-checking the request context"
	sr.SetStop(nil)
	respond(w, d)
	respond(w, ok)
}

// goodMutate threads the request context into the engine before the
// durable mutation, directly and through the helper.
func (s *server) goodMutate(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	s.inc.SetContext(ctx)
	err := s.applyInsert(nil)
	s.inc.SetContext(context.Background())
	respond(w, err)
}

// badMutateNoContext issues a durable mutation with no SetContext at all.
func (s *server) badMutateNoContext(w http.ResponseWriter, r *http.Request) {
	err := s.d.Delete(1) // want "without SetContext"
	respond(w, err)
}

// badMutateBackground pins the engine to the background context first,
// which detaches the mutation from the request deadline.
func (s *server) badMutateBackground(w http.ResponseWriter, r *http.Request) {
	s.inc.SetContext(context.Background())
	err := s.applyInsert(nil) // want "without SetContext"
	respond(w, err)
}

// badMutateCheckpoint forgets the context on the checkpoint path.
func (s *server) badMutateCheckpoint(w http.ResponseWriter, r *http.Request) {
	err := s.d.Checkpoint() // want "without SetContext"
	respond(w, err)
}

// notAHandler is free to mutate without SetContext: convergence and
// drain paths run post-durability repairs under their own policy.
func (s *server) notAHandler() error {
	return s.d.Checkpoint()
}

// goodAnnotated documents a deliberate exemption.
func (s *server) goodAnnotated(w http.ResponseWriter, r *http.Request) {
	//spannerlint:ignore srvctx fixture models a startup-only mutation that must not die with a client
	err := s.d.Delete(2)
	respond(w, err)
}
