package metric

import (
	"math"
	"math/rand"
	"testing"
)

func TestLPKnownValues(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}}
	l1, err := NewLP(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := l1.Dist(0, 1); d != 7 {
		t.Fatalf("L1 = %v, want 7", d)
	}
	l2, err := NewLP(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := l2.Dist(0, 1); d != 5 {
		t.Fatalf("L2 = %v, want 5", d)
	}
	linf, err := NewLP(pts, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if d := linf.Dist(0, 1); d != 4 {
		t.Fatalf("Linf = %v, want 4", d)
	}
	l3, err := NewLP(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(27+64, 1.0/3)
	if d := l3.Dist(0, 1); math.Abs(d-want) > 1e-12 {
		t.Fatalf("L3 = %v, want %v", d, want)
	}
	if l3.P() != 3 || l3.N() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestLPValidation(t *testing.T) {
	if _, err := NewLP([][]float64{{1}}, 0.5); err == nil {
		t.Fatal("p < 1 accepted")
	}
	if _, err := NewLP([][]float64{{1, 2}, {3}}, 2); err == nil {
		t.Fatal("ragged points accepted")
	}
	if _, err := NewLP([][]float64{{}}, 2); err == nil {
		t.Fatal("zero-dim accepted")
	}
}

func TestLPSatisfiesAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := unitSquarePoints(rng, 25)
	for _, p := range []float64{1, 1.5, 2, 3, math.Inf(1)} {
		m, err := NewLP(pts, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(m, 1e-9); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
	}
}

func TestSnowflakeAxiomsAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := MustEuclidean(unitSquarePoints(rng, 25))
	for _, alpha := range []float64{0.3, 0.5, 1.0} {
		sf, err := NewSnowflake(base, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(sf, 1e-9); err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
	}
	if _, err := NewSnowflake(base, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := NewSnowflake(base, 1.5); err == nil {
		t.Fatal("alpha>1 accepted")
	}
	// alpha=1 is the identity.
	sf, _ := NewSnowflake(base, 1)
	if sf.Dist(0, 1) != base.Dist(0, 1) {
		t.Fatal("alpha=1 snowflake changed distances")
	}
}

func TestSnowflakeReducesDoublingDimension(t *testing.T) {
	// Points on a line: snowflaking with alpha=0.5 cannot increase the
	// estimated doubling dimension beyond a small constant of the original.
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	base := MustEuclidean(pts)
	sf, err := NewSnowflake(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ddBase := DoublingDimension(base)
	ddSf := DoublingDimension(sf)
	if ddSf > ddBase+1.5 {
		t.Fatalf("snowflake ddim %v much larger than base %v", ddSf, ddBase)
	}
}

func TestScaled(t *testing.T) {
	base := MustEuclidean([][]float64{{0, 0}, {1, 0}})
	sc, err := NewScaled(base, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if sc.N() != 2 || sc.Dist(0, 1) != 2.5 {
		t.Fatalf("scaled dist = %v", sc.Dist(0, 1))
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewScaled(base, bad); err == nil {
			t.Fatalf("factor %v accepted", bad)
		}
	}
}
