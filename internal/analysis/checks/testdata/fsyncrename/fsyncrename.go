// Package fixture seeds fsyncrename violations and exemptions.
package fixture

import "os"

// syncDir is the directory-durability helper the analyzer recognizes by
// name, mirroring internal/persist.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// goodReplace follows the full discipline: temp Sync, rename, dir sync.
func goodReplace(tmp *os.File, from, to string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := os.Rename(from, to); err != nil {
		return err
	}
	return syncDir(".")
}

// badNoSync renames bytes that were never synced.
func badNoSync(from, to string) error {
	if err := os.Rename(from, to); err != nil { // want "os.Rename without a preceding Sync on the temp file"
		return err
	}
	return syncDir(".")
}

// badNoDirSync never makes the rename itself durable.
func badNoDirSync(tmp *os.File, from, to string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	return os.Rename(from, to) // want "os.Rename without a following directory sync"
}

// wal mimics the durable layer's append/apply pair.
type wal struct{}

func (wal) appendRecord(op int) error { return nil }

func (wal) applyOp(op int) error { return nil }

// goodLogged appends (and fsyncs) before applying.
func goodLogged(w wal, op int) error {
	if err := w.appendRecord(op); err != nil {
		return err
	}
	return w.applyOp(op)
}

// badUnlogged mutates state that was never logged.
func badUnlogged(w wal, op int) error {
	return w.applyOp(op) // want "applyOp without a preceding appendRecord"
}

// annotatedReplay is the sanctioned exemption: records already durable.
func annotatedReplay(w wal, op int) error {
	//spannerlint:ignore fsyncrename fixture replay applies records already durable in the log
	return w.applyOp(op)
}
