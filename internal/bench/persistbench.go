package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/persist"
)

// The persist benchmark quantifies the durability layer: the cost of
// taking a snapshot (export + encode + atomic write), the cost of warm
// starting from one (read + decode + import) versus rebuilding the
// spanner from scratch, the per-operation write-ahead-log overhead, and
// the cost of a recovery that replays a WAL tail. The headline number is
// the warm-start speedup — a snapshot load skips the whole greedy scan,
// so it must beat the rebuild by a wide margin (the guard test pins 20x
// at n=4000).

// PersistBenchCase is the report for one instance.
type PersistBenchCase struct {
	N       int     `json:"n"`
	Stretch float64 `json:"stretch"`
	// SpannerEdges is the spanner size; SnapshotBytes the encoded size.
	SpannerEdges  int `json:"spanner_edges"`
	SnapshotBytes int `json:"snapshot_bytes"`
	// Build* times a from-scratch greedy build at n — the cost a warm
	// start avoids.
	BuildMS        []float64 `json:"build_ms"`
	BuildMedianMS  float64   `json:"build_median_ms"`
	BuildSpreadPct float64   `json:"build_spread_pct"`
	// Save = ExportState + EncodeSnapshot + atomic write + fsync.
	SaveMS       []float64 `json:"save_ms"`
	SaveMedianMS float64   `json:"save_median_ms"`
	// Load = read + DecodeSnapshot + ImportIncremental + first Result.
	LoadMS       []float64 `json:"load_ms"`
	LoadMedianMS float64   `json:"load_median_ms"`
	// WarmStartSpeedup = BuildMedianMS / LoadMedianMS.
	WarmStartSpeedup float64 `json:"warm_start_speedup"`
	// WalOps appended ops; WalAppendUS the amortized fsynced append cost.
	WalOps      int     `json:"wal_ops"`
	WalAppendUS float64 `json:"wal_append_us"`
	// RecoverMS is a full Open: snapshot import plus WalOps replayed.
	RecoverMS       []float64 `json:"recover_ms"`
	RecoverMedianMS float64   `json:"recover_median_ms"`
	// Identical records that every loaded and recovered spanner matched
	// the original result digest.
	Identical bool `json:"identical"`
}

// PersistBenchReport is the top-level BENCH_persist.json document.
type PersistBenchReport struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Date       string             `json:"date"`
	Reps       int                `json:"reps"`
	Workers    int                `json:"workers"`
	Cases      []PersistBenchCase `json:"cases"`
}

// WriteJSON writes the report to path, pretty-printed, atomically.
func (r *PersistBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// PersistBench times the durability layer. Small runs the n=500
// instance; Full adds the n=4000 acceptance instance the warm-start
// guard pins.
func PersistBench(ctx context.Context, scale Scale, seed int64, reps, workers int) (*Table, *PersistBenchReport, error) {
	if reps < 3 {
		reps = 3
	}
	if workers <= 0 {
		workers = 1
	}
	tab := &Table{
		Title:  "PERSIST-BENCH: snapshot + WAL durability layer",
		Header: []string{"n", "snapshot KB", "build ms", "save ms", "load ms", "warm-start", "wal append us", "recover ms", "identical"},
		Caption: "Save = export + encode + atomic write + fsync; load = read + decode + import +\n" +
			"first query; warm-start = build/load. The WAL column is the amortized cost of one\n" +
			"logged, fsynced operation; recover is a full Open replaying that WAL tail onto the\n" +
			"snapshot. Identical checks every loaded state against the original result digest.",
	}
	report := &PersistBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Reps:       reps,
		Workers:    workers,
	}
	sizes := []int{500}
	if scale == Full {
		sizes = append(sizes, 4000)
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range sizes {
		const stretch = 1.5
		const walOps = 8
		pts := gen.UniformPoints(rng, n+walOps, 2)
		opts := core.MetricParallelOptions{Workers: workers, Ctx: ctx}
		c := PersistBenchCase{N: n, Stretch: stretch, WalOps: walOps, Identical: true}

		// From-scratch build: the cost a warm start avoids.
		var inc *core.IncrementalSpanner
		for r := 0; r < reps; r++ {
			start := time.Now()
			s, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n]), stretch, opts)
			if err != nil {
				return nil, nil, err
			}
			res, err := s.Result()
			if err != nil {
				return nil, nil, err
			}
			c.BuildMS = append(c.BuildMS, time.Since(start).Seconds()*1000)
			c.SpannerEdges = res.Size()
			inc = s
		}
		c.BuildMedianMS = median(c.BuildMS)
		c.BuildSpreadPct = spreadPct(c.BuildMS)
		ref, err := inc.Result()
		if err != nil {
			return nil, nil, err
		}
		wantDigest := core.ResultDigest(ref)

		dir, err := os.MkdirTemp("", "persistbench-")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		snapPath := filepath.Join(dir, "snap")

		// Save: export + encode + atomic write.
		var snap []byte
		for r := 0; r < reps; r++ {
			start := time.Now()
			st, err := inc.ExportState()
			if err != nil {
				return nil, nil, err
			}
			snap = persist.EncodeSnapshot(st, 0)
			if err := persist.WriteFileAtomic(snapPath, snap, 0o644); err != nil {
				return nil, nil, err
			}
			c.SaveMS = append(c.SaveMS, time.Since(start).Seconds()*1000)
		}
		c.SnapshotBytes = len(snap)
		c.SaveMedianMS = median(c.SaveMS)

		// Load: the warm start.
		for r := 0; r < reps; r++ {
			start := time.Now()
			data, err := os.ReadFile(snapPath)
			if err != nil {
				return nil, nil, err
			}
			st, _, err := persist.DecodeSnapshot(data)
			if err != nil {
				return nil, nil, err
			}
			loaded, err := core.ImportIncremental(st, opts, core.ParallelOptions{})
			if err != nil {
				return nil, nil, err
			}
			res, err := loaded.Result()
			if err != nil {
				return nil, nil, err
			}
			c.LoadMS = append(c.LoadMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && core.ResultDigest(res) == wantDigest
		}
		c.LoadMedianMS = median(c.LoadMS)
		if c.LoadMedianMS > 0 {
			c.WarmStartSpeedup = c.BuildMedianMS / c.LoadMedianMS
		}

		// WAL: a durable spanner absorbing walOps single-point inserts,
		// then a recovery that replays them all.
		walDir := filepath.Join(dir, "wal")
		if err := os.Mkdir(walDir, 0o755); err != nil {
			return nil, nil, err
		}
		base, err := core.NewIncrementalMetric(metric.MustEuclidean(pts[:n]), stretch, opts)
		if err != nil {
			return nil, nil, err
		}
		dopts := persist.Options{Metric: opts}
		d, err := persist.Create(walDir, base, dopts)
		if err != nil {
			return nil, nil, err
		}
		appendStart := time.Now()
		for k := 1; k <= walOps; k++ {
			if err := d.Insert(metric.MustEuclidean(pts[:n+k])); err != nil {
				return nil, nil, err
			}
		}
		// The measured window includes the engine's incremental replay;
		// the log overhead itself is the fsynced append inside it.
		c.WalAppendUS = time.Since(appendStart).Seconds() * 1e6 / walOps
		wantRecovered := uint64(0)
		if res, err := d.Result(); err == nil {
			wantRecovered = core.ResultDigest(res)
		} else {
			return nil, nil, err
		}
		if err := d.Close(); err != nil {
			return nil, nil, err
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			rec, err := persist.Open(walDir, dopts)
			if err != nil {
				return nil, nil, err
			}
			res, err := rec.Result()
			if err != nil {
				return nil, nil, err
			}
			c.RecoverMS = append(c.RecoverMS, time.Since(start).Seconds()*1000)
			c.Identical = c.Identical && core.ResultDigest(res) == wantRecovered
			rec.Close()
		}
		c.RecoverMedianMS = median(c.RecoverMS)

		report.Cases = append(report.Cases, c)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", c.N),
			fmt.Sprintf("%.1f", float64(c.SnapshotBytes)/1024),
			fmt.Sprintf("%.2f", c.BuildMedianMS),
			fmt.Sprintf("%.2f", c.SaveMedianMS),
			fmt.Sprintf("%.2f", c.LoadMedianMS),
			fmt.Sprintf("%.1fx", c.WarmStartSpeedup),
			fmt.Sprintf("%.0f", c.WalAppendUS),
			fmt.Sprintf("%.2f", c.RecoverMedianMS),
			fmt.Sprintf("%v", c.Identical),
		})
	}
	return tab, report, nil
}
