// Package chaos is the fault-injection harness for the spanner engines.
//
// It turns the engines' InjectionHooks surface into reproducible fault
// schedules: a Schedule names one fault class (worker panic, stalled
// certification, context cancellation at a randomized scan position, or a
// bit flip in a cached bound row) and the deterministic trigger point it
// fires at; an Injector arms the schedule and exposes the hooks plus the
// context the engine should run under.
//
// The property suite in chaos_test.go drives randomized schedules against
// all four engines and asserts the robustness invariant the engines
// document:
//
//	any injected fault yields either output bit-identical to the serial
//	reference (the fault fired past the scan's end, or was absorbed) or a
//	clean typed error with the exact decided prefix — never silent
//	divergence, never a leaked goroutine.
//
// Schedules are deterministic: the same seed produces the same trigger
// positions, so a failing schedule replays exactly under `go test -run`.
package chaos
