package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestGapGreedyIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tt := range []float64{1.5, 2, 3} {
		pts := gen.UniformPoints(rng, 50, 2)
		m := metric.MustEuclidean(pts)
		g, err := GapGreedy(m, tt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.MetricSpanner(g, m, tt, 1e-9); err != nil {
			t.Fatalf("t=%v: %v", tt, err)
		}
		if !g.Connected() {
			t.Fatalf("t=%v: gap-greedy output disconnected", tt)
		}
	}
}

func TestGapGreedyValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 1}})
	for _, bad := range []float64{1, 0.5, 0} {
		if _, err := GapGreedy(m, bad); err == nil {
			t.Errorf("t=%v accepted", bad)
		}
	}
	empty := metric.MustEuclidean(nil)
	g, err := GapGreedy(empty, 2)
	if err != nil || g.M() != 0 {
		t.Fatalf("empty metric: %v", err)
	}
}

func TestGapGreedyWorksOnNonEuclideanMetric(t *testing.T) {
	// Gap-greedy only needs distances, so it must run on an arbitrary
	// (graph-induced) metric.
	rng := rand.New(rand.NewSource(12))
	base := gen.ErdosRenyi(rng, 30, 0.3, 0.5, 5)
	m, err := metric.FromGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GapGreedy(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(g, m, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestGapGreedyKeepsMoreThanGreedy(t *testing.T) {
	// The [FG05] shape: gap-greedy is competitive but never beats greedy on
	// size (greedy is existentially optimal; gap-greedy's cover test is a
	// strictly weaker skip condition in practice).
	rng := rand.New(rand.NewSource(13))
	pts := gen.UniformPoints(rng, 60, 2)
	m := metric.MustEuclidean(pts)
	const tt = 2.0
	gap, err := GapGreedy(m, tt)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := core.GreedyMetricFast(m, tt)
	if err != nil {
		t.Fatal(err)
	}
	if gap.M() < greedy.Size() {
		t.Fatalf("gap-greedy (%d edges) beat greedy (%d edges)", gap.M(), greedy.Size())
	}
}

func TestGapGreedySnowflakeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	base := metric.MustEuclidean(gen.UniformPoints(rng, 40, 2))
	sf, err := metric.NewSnowflake(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GapGreedy(sf, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(g, sf, 1.8, 1e-9); err != nil {
		t.Fatal(err)
	}
}
