package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression, supporting near-constant-time Find and Union. Used by
// Kruskal's MST and by the cluster-graph coarsening in the
// approximate-greedy algorithm.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns n singleton sets {0}, {1}, ..., {n-1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	root := int32(x)
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := uf.parent[x]
		uf.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := int32(uf.Find(x)), int32(uf.Find(y))
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Sets reports the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }
