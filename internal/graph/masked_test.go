package graph

import (
	"math/rand"
	"testing"
)

// maskCopy materializes the vertex-failure reference: a copy of g with all
// edges incident to the dead vertices removed. The in-place masked search
// must agree with DistanceWithin on this copy for every query.
func maskCopy(g *Graph, dead []int) *Graph {
	isDead := make(map[int]bool, len(dead))
	for _, v := range dead {
		isDead[v] = true
	}
	out := New(g.N())
	for _, e := range g.Edges() {
		if !isDead[e.U] && !isDead[e.V] {
			out.MustAddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

// TestDistanceWithinMaskedMatchesMaskedCopy cross-checks the in-place
// vertex-avoiding search against the materializing masked-copy reference
// on random graphs: for random fault sets of size 0, 1, and 2 and random
// endpoint pairs (including dead endpoints), the masked distance must
// equal the distance in the reduced copy.
func TestDistanceWithinMaskedMatchesMaskedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		n := 15 + rng.Intn(15)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 0.5+rng.Float64())
		}
		search := NewSearcher(n)
		for q := 0; q < 60; q++ {
			var dead []int
			switch q % 3 {
			case 1:
				dead = []int{rng.Intn(n)}
			case 2:
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					b = (b + 1) % n
				}
				dead = []int{a, b}
			}
			ref := maskCopy(g, dead)
			src, dst := rng.Intn(n), rng.Intn(n)
			limit := rng.Float64() * 8
			wantD, wantOK := ref.DistanceWithin(src, dst, limit)
			gotD, gotOK := search.DistanceWithinMasked(g, src, dst, limit, dead)
			if wantOK != gotOK || wantD != gotD {
				t.Fatalf("trial %d dead %v (%d->%d, limit %v): masked (%v, %v), copy reference (%v, %v)",
					trial, dead, src, dst, limit, gotD, gotOK, wantD, wantOK)
			}
		}
	}
}

// TestBoundedDistancesMaskedMatchesMaskedCopy checks the single-source
// variant against a full Dijkstra on the masked copy, including the
// convention that beyond-limit vertices report Inf.
func TestBoundedDistancesMaskedMatchesMaskedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 25
	g := New(n)
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.MustAddEdge(u, v, 0.5+rng.Float64())
	}
	search := NewSearcher(n)
	row := make([]float64, n)
	for _, dead := range [][]int{nil, {3}, {3, 17}, {0}} {
		ref := maskCopy(g, dead)
		for src := 0; src < n; src++ {
			const limit = 2.5
			sp := ref.Dijkstra(src)
			search.BoundedDistancesMasked(g, src, limit, dead, row)
			for v := 0; v < n; v++ {
				want := sp.Dist[v]
				if want > limit {
					want = Inf
				}
				if row[v] != want {
					t.Fatalf("dead %v src %d: dist[%d] = %v, want %v", dead, src, v, row[v], want)
				}
			}
		}
	}
}

// TestDistanceWithinMaskedDeadEndpoints pins the endpoint convention: a
// dead endpoint is isolated (distance Inf to everything else) but still
// at distance 0 from itself, matching the materialized copy.
func TestDistanceWithinMaskedDeadEndpoints(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	search := NewSearcher(3)
	if d, ok := search.DistanceWithinMasked(g, 0, 2, 10, []int{0}); ok {
		t.Fatalf("dead src reachable: (%v, %v)", d, ok)
	}
	if d, ok := search.DistanceWithinMasked(g, 0, 2, 10, []int{2}); ok {
		t.Fatalf("dead dst reachable: (%v, %v)", d, ok)
	}
	if d, ok := search.DistanceWithinMasked(g, 1, 1, 10, []int{1}); !ok || d != 0 {
		t.Fatalf("dead self-distance: (%v, %v), want (0, true)", d, ok)
	}
	// The mask must be fully cleared between calls: the same searcher with
	// no faults sees the intact graph again.
	if d, ok := search.DistanceWithinMasked(g, 0, 2, 10, nil); !ok || d != 2 {
		t.Fatalf("mask leaked into next query: (%v, %v), want (2, true)", d, ok)
	}
}
