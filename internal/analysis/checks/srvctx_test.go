package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestSrvctxFixtures(t *testing.T) {
	analysistest.Run(t, checks.Srvctx, analysistest.Fixture("srvctx"))
}
