package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in the plain text edge-list format, one
// "u v w" line per edge, preceded by a "# n <vertices>" header so that
// isolated vertices survive a round trip.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are comments, except a leading "# n <count>" header which fixes
// the vertex count; without a header the count is max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type rawEdge struct {
		u, v int
		w    float64
	}
	var (
		edges  []rawEdge
		n      = -1
		maxID  = -1
		lineNo = 0
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var cnt int
			if _, err := fmt.Sscanf(line, "# n %d", &cnt); err == nil && n < 0 {
				n = cnt
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v w', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, rawEdge{u, v, w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: vertex id %d exceeds declared count %d", maxID, n)
	}
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteDOT writes g in Graphviz DOT format with edge weights as labels,
// for quick visualization of small instances (e.g., the Figure 1 gadget).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(bw, "  %d;\n", v); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "  %d -- %d [label=\"%.3g\"];\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
