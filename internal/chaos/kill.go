package chaos

// Kill is a deterministic crash schedule for the persistence layer: the
// hook it produces fires at exactly the At-th IO point (counting from 0
// per Durable), letting a test enumerate every crash window of a workload
// one run at a time. Unlike the Schedule faults in this package — which
// corrupt a live engine and expect it to survive — a fired Kill models
// the process dying: the persist layer materializes that point's
// worst-case surviving disk state and refuses all further work, and the
// test's next move is recovery from disk.
type Kill struct{ At int }

// Hook adapts the schedule to persist.Hooks.Crash.
func (k Kill) Hook() func(seq int, label string) bool {
	return func(seq int, _ string) bool { return seq == k.At }
}

// CountCrashPoints returns a non-firing crash hook that tallies into n,
// for the counting pass that sizes a Kill enumeration.
func CountCrashPoints(n *int) func(seq int, label string) bool {
	return func(int, string) bool {
		*n++
		return false
	}
}
