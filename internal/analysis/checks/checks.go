// Package checks holds the spannerlint analyzers: one
// framework.Analyzer per machine-checked soundness invariant of the
// spanner engines. The invariants themselves are stated in
// internal/core/doc.go and internal/persist/doc.go; each analyzer's Doc
// names the one it enforces. Registry order is reporting order.
package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// All returns the full spannerlint suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		Mapdet,
		Ctxcommit,
		Srvctx,
		Frozensnap,
		Fsyncrename,
		Detpure,
		Errtyped,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *framework.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier an lvalue or receiver expression is rooted at; nil when the
// base is not a plain identifier (a call result, a composite literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pkgCall reports whether call invokes pkgPath.name through a plain
// package selector (e.g. os.Rename, time.Now), resolved through the type
// info rather than the source text, so aliased imports still match.
func pkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// calledMethodName returns the method name of a call through a selector
// ("" for plain function calls).
func calledMethodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// calledIdent returns the object of a call through a plain identifier
// (package-level function or closure variable), or nil.
func calledIdent(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// namedTypeName returns the (pointer-stripped) named type's name, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// eachStmtList visits every statement list of f's body — block bodies and
// switch/select clause bodies — so analyzers can reason about statement
// order within one list.
func eachStmtList(body *ast.BlockStmt, visit func(stmts []ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

// usesObject reports whether any identifier under n resolves to one of
// the given objects.
func usesObject(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// eachFunc visits every function body in the file: declarations and
// literals, with the enclosing *ast.FuncDecl when there is one (nil for
// literals outside any declaration, e.g. package-level var initializers).
func eachFunc(f *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd, fd.Body)
		}
	}
}

// containsCallNamed reports whether n's subtree calls a method or
// function whose bare name is in names.
func containsCallNamed(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if names[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if names[fun.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// positionOf is a tiny helper for diagnostics on nodes.
func positionOf(n ast.Node) token.Pos { return n.Pos() }

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }
