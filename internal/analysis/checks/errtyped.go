package checks

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis/framework"
)

// Errtyped keeps the error surface of the engines and the persistence
// layer typed. Callers dispatch on the package sentinels (ErrCancelled,
// ErrCorruptState, ErrInvalidInput, ErrUnsupportedVersion, ErrNoState,
// ErrEnginePanic) with errors.Is; an exported function that returns a
// bare errors.New or a fmt.Errorf without %w mints an error no caller
// can classify — retry logic then cannot tell a cancelled run from a
// corrupt store.
//
// The analyzer inspects exported functions and methods whose last result
// is error and whose name marks them as part of the engine/persist
// operation surface, and flags return statements whose error operand is
// errors.New(...) or fmt.Errorf("... no %w ..."). Propagating an
// existing error, returning nil, or returning through a helper
// (errInvalidStretch, corrupt) all pass: the helper is where the
// sentinel gets attached, and the helper's own returns are covered at
// its definition if it is exported.
var Errtyped = &framework.Analyzer{
	Name:  "errtyped",
	Doc:   "exported engine/persist operations must return typed sentinel errors or wraps of them",
	Scope: []string{"internal/core", "internal/persist", "repro"},
	Run:   runErrtyped,
}

// operationPrefixes marks exported names that form the operation surface
// in internal/core; in internal/persist and the root package every
// exported function with an error result is an operation.
var operationPrefixes = []string{
	"Greedy", "FaultTolerant", "Insert", "Delete", "Flush",
	"Import", "Export", "Validate", "Save", "Load", "Open",
	"Create", "Set", "Result",
}

func runErrtyped(pass *framework.Pass) error {
	coreScoped := strings.HasSuffix(pass.Unit.Path, "internal/core")
	for _, f := range pass.Unit.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !ast.IsExported(fd.Name.Name) {
				continue
			}
			if !lastResultIsError(pass, fd.Type) {
				continue
			}
			if coreScoped && !pass.ForceScope && !hasOperationPrefix(fd.Name.Name) {
				continue
			}
			checkReturns(pass, fd)
		}
	}
	return nil
}

func hasOperationPrefix(name string) bool {
	for _, p := range operationPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func lastResultIsError(pass *framework.Pass, ftype *ast.FuncType) bool {
	if ftype.Results == nil || len(ftype.Results.List) == 0 {
		return false
	}
	last := ftype.Results.List[len(ftype.Results.List)-1]
	tv, ok := pass.Unit.Info.Types[last.Type]
	return ok && isErrorType(tv.Type)
}

// checkReturns flags untyped error constructions in every return of fd's
// body, nested closures included — closure errors typically propagate
// out of the exported operation.
func checkReturns(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.Unit.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		// The error operand is the last result; single-call returns
		// (return doThing()) are propagation and pass.
		last := ret.Results[len(ret.Results)-1]
		call, ok := last.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case pkgCall(info, call, "errors", "New"):
			pass.Reportf(call.Pos(), "untyped errors.New escapes an exported operation: wrap a package sentinel (fmt.Errorf with %%w) so callers can dispatch with errors.Is")
		case pkgCall(info, call, "fmt", "Errorf"):
			if format, ok := formatLiteral(call); ok && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w escapes an exported operation: wrap a package sentinel so callers can dispatch with errors.Is")
			}
		}
		return true
	})
}

// formatLiteral extracts fmt.Errorf's format string when it is a literal
// (possibly a + concatenation of literals); non-literal formats are not
// judged.
func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	return stringLit(call.Args[0])
}

func stringLit(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			return e.Value, true
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			l, lok := stringLit(e.X)
			r, rok := stringLit(e.Y)
			if lok && rok {
				return l + r, true
			}
		}
	}
	return "", false
}
