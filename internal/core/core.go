package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/metric"
)

// Result describes a constructed spanner over the vertex set of its input.
type Result struct {
	// N is the number of vertices of the input.
	N int
	// Stretch is the stretch parameter t the spanner was built for.
	Stretch float64
	// Edges are the spanner edges in the order the greedy algorithm
	// accepted them (non-decreasing weight).
	Edges []graph.Edge
	// Weight is the total edge weight of the spanner.
	Weight float64
	// EdgesExamined counts candidate edges considered (m for graphs,
	// n(n-1)/2 for metrics). On a Partial result it counts only the
	// candidates actually decided before the abort.
	EdgesExamined int
	// Partial marks a build aborted by cancellation, deadline, or a
	// captured fault. The Edges of a partial result are an exact prefix
	// of the edge sequence the completed build would have produced —
	// every decision made before the abort is final — but the result is
	// not a t-spanner of the whole input.
	Partial bool
}

// Graph materializes the spanner as a graph over the input's vertex set.
func (r *Result) Graph() *graph.Graph {
	g := graph.New(r.N)
	for _, e := range r.Edges {
		g.MustAddEdge(e.U, e.V, e.W)
	}
	return g
}

// Size reports the number of spanner edges.
func (r *Result) Size() int { return len(r.Edges) }

// MaxDegree reports the maximum vertex degree of the spanner, computed
// directly from the edge list in O(|E|) without materializing the graph.
func (r *Result) MaxDegree() int {
	deg := make([]int, r.N)
	best := 0
	for _, e := range r.Edges {
		deg[e.U]++
		deg[e.V]++
		if deg[e.U] > best {
			best = deg[e.U]
		}
		if deg[e.V] > best {
			best = deg[e.V]
		}
	}
	return best
}

// Lightness returns weight(spanner) / mstWeight for a caller-supplied MST
// weight of the input, and false when mstWeight is zero.
func (r *Result) Lightness(mstWeight float64) (float64, bool) {
	if mstWeight <= 0 {
		return 0, false
	}
	return r.Weight / mstWeight, true
}

// validStretch reports whether t is a usable stretch parameter.
func validStretch(t float64) bool {
	return t >= 1 && !math.IsInf(t, 0) && !math.IsNaN(t)
}

// errInvalidStretch is the shared rejection every constructor returns for
// an unusable stretch parameter; it wraps graph.ErrInvalidInput so callers
// can catch it with one errors.Is check.
func errInvalidStretch(t float64) error {
	return fmt.Errorf("core: stretch %v out of range [1, inf): %w", t, graph.ErrInvalidInput)
}

// GreedyGraph runs Algorithm 1 of the paper on a weighted graph with stretch
// parameter t >= 1: edges are scanned in non-decreasing weight order (ties
// broken by endpoint ids, deterministically) and edge (u, v) is added iff
// delta_H(u, v) > t * w(u, v) in the partial spanner H.
//
// Complexity: O(m log m) for the sort plus one bounded Dijkstra per edge; in
// the worst case O(m * (m_H + n) log n), the naive bound quoted in
// Corollary 4 of the paper.
func GreedyGraph(g *graph.Graph, t float64) (*Result, error) { //spannerlint:ignore ctxcommit serial reference: uncancellable by design, the parallel engine must match it bit for bit
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	h := graph.New(g.N())
	res := &Result{N: g.N(), Stretch: t}
	search := graph.NewSearcher(g.N())
	for _, e := range g.SortedEdges() {
		res.EdgesExamined++
		limit := t * e.W
		if _, within := search.DistanceWithin(h, e.U, e.V, limit); within {
			continue
		}
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
	}
	return res, nil
}

// GreedyMetric runs the greedy algorithm on a finite metric space by
// examining all n(n-1)/2 interpoint distances in non-decreasing order, the
// "path-greedy" of the geometric spanner literature. It is routed through
// the batched cached-bound engine (GreedyMetricFastParallel), whose output
// is identical to the naive sequential scan: every pair receives the exact
// greedy accept/reject decision.
func GreedyMetric(m metric.Metric, t float64) (*Result, error) {
	return GreedyMetricFastParallel(m, t, 0)
}

// GreedyMetricFast is the cached-distance variant of the metric greedy
// algorithm in the spirit of Bose et al. [BCF+10]: it maintains upper
// bounds on current spanner distances (sparse rows, allocated on first
// refresh) and refreshes a row with a full Dijkstra only when the cached
// bound fails to certify a skip. It is routed through
// GreedyMetricFastParallel, which streams candidates from the bucketed
// supply and refreshes rows concurrently over all cores; the output is
// bit-identical to the serial reference (GreedyMetricFastSerial) and to
// GreedyMetric.
func GreedyMetricFast(m metric.Metric, t float64) (*Result, error) {
	return GreedyMetricFastParallel(m, t, 0)
}

// GreedyMetricFastSerial is the single-threaded cached-bound reference
// implementation of the metric greedy algorithm. The batched-parallel
// engine (GreedyMetricFastParallel) must reproduce its output bit for bit;
// it is retained for the equivalence tests and as the sequential baseline
// of the greedymetricbench experiment. On doubling metrics it performs a
// small number of Dijkstra runs per accepted edge, giving near-quadratic
// behaviour in practice, versus the cubic-ish naive bound.
func GreedyMetricFastSerial(m metric.Metric, t float64) (*Result, error) { //spannerlint:ignore ctxcommit serial reference: uncancellable by design, the parallel engine must match it bit for bit
	if !validStretch(t) {
		return nil, errInvalidStretch(t)
	}
	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res, nil
	}
	pairs := sortedPairs(m)

	h := graph.New(n)
	// bound[u][v] is a proven upper bound on delta_H(u, v); +Inf when
	// unknown. Bounds only improve as H grows, but adding an edge can make a
	// cached bound stale-high, never stale-low, so skips certified by the
	// cache remain valid while additions must be re-verified by a fresh
	// Dijkstra.
	bound := newBoundMatrix(n)
	refresh := func(u int) {
		sp := h.Dijkstra(u)
		for v := 0; v < n; v++ {
			if sp.Dist[v] < bound[u][v] {
				bound[u][v] = sp.Dist[v]
				bound[v][u] = sp.Dist[v]
			}
		}
	}
	for _, e := range pairs {
		res.EdgesExamined++
		limit := t * e.W
		if bound[e.U][e.V] <= limit {
			continue // certified skip: cached bound is a true upper bound
		}
		refresh(e.U)
		if bound[e.U][e.V] <= limit {
			continue
		}
		h.MustAddEdge(e.U, e.V, e.W)
		bound[e.U][e.V] = e.W
		bound[e.V][e.U] = e.W
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
	}
	return res, nil
}

// SelfSpannerViolation describes an edge of a greedy spanner that could be
// replaced by a path, contradicting Lemma 3.
type SelfSpannerViolation struct {
	Edge graph.Edge
	// AltDist is the distance between the edge's endpoints in H minus the
	// edge, which is <= Stretch * Edge.W.
	AltDist float64
}

// VerifySelfSpanner checks Lemma 3 of the paper on a spanner H with stretch
// t: the only t-spanner of the greedy t-spanner is itself. Concretely, for
// every edge e = (u, v) of H it verifies delta_{H-e}(u, v) > t * w(e); if
// that holds for all edges, no proper subgraph of H can be a t-spanner of H,
// so H is its own unique t-spanner. It returns all violations (empty for a
// genuine greedy output).
func VerifySelfSpanner(h *graph.Graph, t float64) []SelfSpannerViolation {
	var out []SelfSpannerViolation
	// One reusable searcher answers every query on h minus one edge
	// without ever materializing the reduced graph, so the sweep performs
	// O(m) allocations total instead of copying the graph per edge.
	search := graph.NewSearcher(h.N())
	for _, e := range h.Edges() {
		if d, ok := search.DistanceWithinAvoiding(h, e.U, e.V, t*e.W, e); ok {
			out = append(out, SelfSpannerViolation{Edge: e, AltDist: d})
		}
	}
	return out
}

// ContainsMST checks Observation 2 of the paper: the greedy t-spanner (for
// any t >= 1) contains all edges of some MST of g. Because the greedy scan
// order equals Kruskal's scan order, the spanner must contain exactly the
// deterministic Kruskal MST of g; this function verifies that containment
// and returns a descriptive error on failure.
func ContainsMST(spanner *Result, g *graph.Graph) error {
	// One edge-set pass over the spanner makes every MST-edge probe O(1),
	// so the whole check is O(m) instead of an O(deg) Neighbors scan per
	// MST edge on a materialized graph.
	have := make(map[graph.Edge]bool, len(spanner.Edges))
	for _, e := range spanner.Edges {
		have[e.Canonical()] = true
	}
	for _, e := range g.MSTKruskal() {
		if !have[e.Canonical()] {
			return fmt.Errorf("core: MST edge (%d, %d, %v) missing from spanner", e.U, e.V, e.W)
		}
	}
	return nil
}

func hasEdgeWithWeight(g *graph.Graph, e graph.Edge) bool {
	found := false
	g.Neighbors(e.U, func(to int, w float64) bool {
		if to == e.V && w == e.W {
			found = true
			return false
		}
		return true
	})
	return found
}

// SizeInjection realizes the injection f: H -> H' of Lemma 8. Given the
// greedy t-spanner H of a metric (t < 2) and any t-spanner H' of the metric
// M_H induced by H, it constructs the lemma's injective map from E(H) into
// E(H'), certifying |H| <= |H'|:
//
//   - for e in both H and H', f(e) = e (an edge covers itself);
//   - for e in H only, f(e) is an edge e' on Q_e (a shortest H'-path between
//     e's endpoints) whose own shortest H-path P_{e'} passes through e.
//
// Lemma 8 guarantees such an e' exists and that any such choice is
// injective; this function additionally verifies injectivity and returns an
// error if either guarantee fails — which would mean H is not a greedy
// t-spanner or H' is not a t-spanner of M_H.
func SizeInjection(h, hPrime *graph.Graph, t float64) (map[graph.Edge]graph.Edge, error) {
	if t >= 2 {
		return nil, fmt.Errorf("core: Lemma 8 requires stretch t < 2, got %v", t)
	}
	// covers[e'] is the set of H-edges on the shortest H-path P_{e'}
	// between e's endpoints.
	covers := make(map[graph.Edge]map[graph.Edge]bool, hPrime.M())
	for _, ep := range hPrime.Edges() {
		ep = ep.Canonical()
		sp := h.Dijkstra(ep.U)
		path := sp.PathTo(ep.V)
		if path == nil {
			return nil, fmt.Errorf("core: H' edge (%d, %d) endpoints disconnected in H", ep.U, ep.V)
		}
		set := make(map[graph.Edge]bool, len(path))
		for i := 0; i+1 < len(path); i++ {
			w, _ := h.EdgeWeight(path[i], path[i+1])
			set[graph.Edge{U: path[i], V: path[i+1], W: w}.Canonical()] = true
		}
		covers[ep] = set
	}
	inj := make(map[graph.Edge]graph.Edge, h.M())
	used := make(map[graph.Edge]bool, h.M())
	for _, e := range h.Edges() {
		e = e.Canonical()
		if hasEdgeWithWeight(hPrime, e) {
			// e in H ∩ H': maps to itself.
			if used[e] {
				return nil, fmt.Errorf("core: injection collision on shared edge (%d, %d)", e.U, e.V)
			}
			used[e] = true
			inj[e] = e
			continue
		}
		// e in H \ H': walk Q_e, the shortest H'-path between e's
		// endpoints, and pick any edge on it that covers e.
		sp := hPrime.Dijkstra(e.U)
		qPath := sp.PathTo(e.V)
		if qPath == nil {
			return nil, fmt.Errorf("core: H edge (%d, %d) endpoints disconnected in H'", e.U, e.V)
		}
		var chosen *graph.Edge
		for i := 0; i+1 < len(qPath); i++ {
			w, _ := hPrime.EdgeWeight(qPath[i], qPath[i+1])
			ep := graph.Edge{U: qPath[i], V: qPath[i+1], W: w}.Canonical()
			if covers[ep][e] {
				chosen = &ep
				break
			}
		}
		if chosen == nil {
			return nil, fmt.Errorf("core: no edge of Q_e covers spanner edge (%d, %d, %v)", e.U, e.V, e.W)
		}
		if used[*chosen] {
			return nil, fmt.Errorf("core: injection collision at H' edge (%d, %d)", chosen.U, chosen.V)
		}
		used[*chosen] = true
		inj[e] = *chosen
	}
	return inj, nil
}
