package graph

// SecondShortestPath returns the weight of the second-shortest simple path
// between u and v: the lightest path that differs from a fixed shortest path
// in at least one edge. If u and v are connected by only one path (or not
// connected), it returns Inf. When multiple shortest paths exist the second
// shortest has the same weight as the shortest, matching the convention in
// Lemma 11 of the paper.
//
// The implementation is the k=2 case of Yen's algorithm: compute one
// shortest path P, then for each edge e on P recompute the u-v distance in
// g - e and take the minimum. O(|P| * Dijkstra).
func (g *Graph) SecondShortestPath(u, v int) float64 {
	sp := g.Dijkstra(u)
	if sp.Dist[v] == Inf {
		return Inf
	}
	path := sp.PathTo(v)
	best := Inf
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		w, ok := g.EdgeWeight(a, b)
		if !ok {
			continue
		}
		rest, err := g.WithoutEdge(Edge{U: a, V: b, W: w})
		if err != nil {
			continue
		}
		if d := rest.DijkstraTo(u, v); d < best {
			best = d
		}
	}
	return best
}
