package pq

// PairingHeap is a pairing heap over items 0..n-1 with float64 keys. It
// offers amortized O(1) Push and DecreaseKey and amortized O(log n) Pop,
// which makes it competitive with the indexed binary heap on dense Dijkstra
// workloads. Construct with NewPairingHeap.
type PairingHeap struct {
	// node storage indexed by item id; node i is live iff in[i] is true.
	key    []float64
	child  []int32 // leftmost child or -1
	sib    []int32 // next sibling or -1
	parent []int32 // parent (or previous sibling for non-first children) — doubly linked via prev
	prev   []int32 // previous sibling, or parent if first child; -1 for root
	in     []bool
	root   int32
	n      int
}

// NewPairingHeap returns an empty pairing heap over the universe [0, n).
func NewPairingHeap(n int) *PairingHeap {
	h := &PairingHeap{
		key:   make([]float64, n),
		child: make([]int32, n),
		sib:   make([]int32, n),
		prev:  make([]int32, n),
		in:    make([]bool, n),
		root:  -1,
	}
	for i := 0; i < n; i++ {
		h.child[i], h.sib[i], h.prev[i] = -1, -1, -1
	}
	return h
}

// Len reports the number of items currently in the heap.
func (h *PairingHeap) Len() int { return h.n }

// Contains reports whether item v is currently in the heap.
func (h *PairingHeap) Contains(v int) bool { return h.in[v] }

// Key returns the current priority of item v; valid only while Contains(v).
func (h *PairingHeap) Key(v int) float64 { return h.key[v] }

// Push inserts item v with priority k, or lowers its key if already present
// with a larger key.
func (h *PairingHeap) Push(v int, k float64) {
	if h.in[v] {
		if k < h.key[v] {
			h.DecreaseKey(v, k)
		}
		return
	}
	h.key[v] = k
	h.child[v], h.sib[v], h.prev[v] = -1, -1, -1
	h.in[v] = true
	h.n++
	h.root = h.meld(h.root, int32(v))
}

// DecreaseKey lowers the priority of item v to k; no-op if absent or larger.
func (h *PairingHeap) DecreaseKey(v int, k float64) {
	if !h.in[v] || k >= h.key[v] {
		return
	}
	h.key[v] = k
	iv := int32(v)
	if iv == h.root {
		return
	}
	h.cut(iv)
	h.root = h.meld(h.root, iv)
}

// Pop removes and returns the minimum item and its key. The heap must be
// non-empty; calling Pop on an empty heap panics (programming error).
func (h *PairingHeap) Pop() (v int, k float64) {
	r := h.root
	v, k = int(r), h.key[r]
	h.in[r] = false
	h.n--
	h.root = h.mergePairs(h.child[r])
	if h.root >= 0 {
		h.prev[h.root] = -1
		h.sib[h.root] = -1
	}
	h.child[r] = -1
	return v, k
}

// cut detaches node v from its parent's child list.
func (h *PairingHeap) cut(v int32) {
	p := h.prev[v]
	s := h.sib[v]
	if p >= 0 {
		if h.child[p] == v {
			h.child[p] = s
		} else {
			h.sib[p] = s
		}
	}
	if s >= 0 {
		h.prev[s] = p
	}
	h.prev[v], h.sib[v] = -1, -1
}

// meld links two root nodes, returning the smaller-keyed one.
func (h *PairingHeap) meld(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if h.key[b] < h.key[a] {
		a, b = b, a
	}
	// Make b the first child of a.
	h.sib[b] = h.child[a]
	if h.child[a] >= 0 {
		h.prev[h.child[a]] = b
	}
	h.child[a] = b
	h.prev[b] = a
	h.sib[a] = -1
	return a
}

// mergePairs performs the standard two-pass pairing of a child list.
func (h *PairingHeap) mergePairs(first int32) int32 {
	if first < 0 {
		return -1
	}
	// First pass: meld adjacent pairs left to right.
	var stack []int32
	for cur := first; cur >= 0; {
		a := cur
		b := h.sib[a]
		var next int32 = -1
		if b >= 0 {
			next = h.sib[b]
			h.sib[a], h.prev[a] = -1, -1
			h.sib[b], h.prev[b] = -1, -1
			stack = append(stack, h.meld(a, b))
		} else {
			h.sib[a], h.prev[a] = -1, -1
			stack = append(stack, a)
		}
		cur = next
	}
	// Second pass: meld right to left.
	res := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		res = h.meld(res, stack[i])
	}
	return res
}
