package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/metric"
)

func robustPoints(t testing.TB, rng *rand.Rand, n int) metric.Metric {
	t.Helper()
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	m, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func robustGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 0.5+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.5+rng.Float64())
		}
	}
	return g
}

func requirePrefix(t *testing.T, ref, res *Result) {
	t.Helper()
	if !res.Partial {
		t.Fatalf("aborted run not marked Partial")
	}
	if len(res.Edges) > len(ref.Edges) {
		t.Fatalf("prefix longer than reference: %d > %d", len(res.Edges), len(ref.Edges))
	}
	var w float64
	for i, e := range res.Edges {
		if e != ref.Edges[i] {
			t.Fatalf("prefix diverges at edge %d: %v vs %v", i, e, ref.Edges[i])
		}
		w += e.W
	}
	if res.Weight != w {
		t.Fatalf("partial weight %v != prefix re-accumulation %v", res.Weight, w)
	}
}

func drainGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<18)
			n := runtime.Stack(buf, true)
			t.Fatalf("worker pool did not drain: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelBeforeStartAbortsAllEngines: a context cancelled before the
// build starts aborts every engine at its first check point with the typed
// error and an empty Partial result (the empty sequence is trivially the
// decided prefix), and the incremental constructor rejects the build.
func TestCancelBeforeStartAbortsAllEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := robustGraph(rng, 24, 60)
	m := robustPoints(t, rng, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{Ctx: ctx})
	if !errors.Is(err, ErrCancelled) || !res.Partial || res.Size() != 0 {
		t.Fatalf("graph: err=%v partial=%v size=%d", err, res.Partial, res.Size())
	}
	res, err = GreedyMetricFastParallelOpts(m, 2, MetricParallelOptions{Ctx: ctx})
	if !errors.Is(err, ErrCancelled) || !res.Partial || res.Size() != 0 {
		t.Fatalf("metric: err=%v partial=%v size=%d", err, res.Partial, res.Size())
	}
	res, err = FaultTolerantGreedyOpts(m, 2, 1, FaultTolerantOptions{Ctx: ctx})
	if !errors.Is(err, ErrCancelled) || !res.Partial || res.Size() != 0 {
		t.Fatalf("faulttolerant: err=%v partial=%v size=%d", err, res.Partial, res.Size())
	}
	if _, err := NewIncrementalMetric(m, 2, MetricParallelOptions{Ctx: ctx}); !errors.Is(err, ErrCancelled) {
		t.Fatalf("incremental constructor: %v", err)
	}
}

// TestCancelMidScanReturnsExactPrefix cancels from inside a certification
// at a fixed position and checks the decided prefix against the clean
// reference, for both batched engines and a serial (workers=1) scan.
func TestCancelMidScanReturnsExactPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := robustGraph(rng, 40, 120)
	m := robustPoints(t, rng, 30)
	gref, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	mref, err := GreedyMetricFast(m, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{1, 7, 40, 200} {
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			var n atomic.Int64
			hooks := InjectionHooks{OnCertify: func(graph.Edge) {
				if n.Add(1) == at {
					cancel()
				}
			}}
			res, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{Workers: workers, Ctx: ctx, Inject: hooks})
			if err != nil {
				if !errors.Is(err, ErrCancelled) {
					t.Fatalf("graph at=%d: %v", at, err)
				}
				requirePrefix(t, gref, res)
			}
			cancel()

			ctx, cancel = context.WithCancel(context.Background())
			n.Store(0)
			hooks = InjectionHooks{OnCertify: func(graph.Edge) {
				if n.Add(1) == at {
					cancel()
				}
			}}
			res, err = GreedyMetricFastParallelOpts(m, 1.8, MetricParallelOptions{Workers: workers, Ctx: ctx, Inject: hooks})
			if err != nil {
				if !errors.Is(err, ErrCancelled) {
					t.Fatalf("metric at=%d: %v", at, err)
				}
				requirePrefix(t, mref, res)
			}
			cancel()
		}
	}
}

// TestBudgetDeadlineAborts: an already-passed budget deadline aborts like
// a cancelled context, without any context at all.
func TestBudgetDeadlineAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := robustGraph(rng, 24, 60)
	b := Budget{Deadline: time.Now().Add(-time.Second)}
	res, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{Budget: b})
	if !errors.Is(err, ErrCancelled) || !res.Partial {
		t.Fatalf("err=%v partial=%v", err, res.Partial)
	}
}

// TestBudgetDegradationLadder: a tight byte budget walks the ladder —
// recorded step by step in the stats — and the output stays bit-identical
// to the unbudgeted build, because every knob the ladder turns is
// output-invariant.
func TestBudgetDegradationLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := robustPoints(t, rng, 40)
	ref, err := GreedyMetricFast(m, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	var stats MetricParallelStats
	res, err := GreedyMetricFastParallelOpts(m, 1.8, MetricParallelOptions{
		Workers: 4,
		Hubs:    DefaultHubs(40),
		Budget:  Budget{MaxBytes: 16 << 10},
		Stats:   &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Degradations) == 0 {
		t.Fatalf("16KiB budget on 40 points recorded no degradation steps")
	}
	assertSameResult(t, ref, res)

	g := robustGraph(rng, 40, 120)
	gref, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var gstats ParallelStats
	gres, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{
		Workers: 4,
		Hubs:    DefaultHubs(40),
		Budget:  Budget{MaxBytes: 16 << 10},
		Stats:   &gstats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gstats.Degradations) == 0 {
		t.Fatalf("graph: 16KiB budget recorded no degradation steps")
	}
	assertSameResult(t, gref, gres)
}

// TestBudgetMaxBatchWidth: the batch-width cap is honored and output is
// unchanged (batch width never affects decisions, only scheduling).
func TestBudgetMaxBatchWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := robustGraph(rng, 40, 120)
	ref, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var stats ParallelStats
	res, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{
		Workers: 4,
		Budget:  Budget{MaxBatchWidth: 7},
		Stats:   &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalBatchSize > 7 {
		t.Fatalf("final batch %d exceeds the width cap 7", stats.FinalBatchSize)
	}
	assertSameResult(t, ref, res)
}

// TestPanicBecomesTypedError: a panic raised inside a certification — in
// a worker goroutine (workers=4) and in a serial section (workers=1) —
// comes back as ErrEnginePanic with the decided prefix, the process does
// not crash, and the worker pool drains. Hubs are enabled so the panic
// paths include hub certification and accept-time hub re-relaxation.
func TestPanicBecomesTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := robustGraph(rng, 40, 120)
	m := robustPoints(t, rng, 30)
	gref, err := GreedyGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	mref, err := GreedyMetricFast(m, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		var n atomic.Int64
		hooks := InjectionHooks{OnCertify: func(graph.Edge) {
			if n.Add(1) == 25 {
				panic("robust_test: injected panic")
			}
		}}
		res, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{Workers: workers, Hubs: 4, Ctx: context.Background(), Inject: hooks})
		if !errors.Is(err, ErrEnginePanic) {
			t.Fatalf("graph workers=%d: %v", workers, err)
		}
		requirePrefix(t, gref, res)
		drainGoroutines(t, baseline)

		n.Store(0)
		res, err = GreedyMetricFastParallelOpts(m, 1.8, MetricParallelOptions{Workers: workers, Hubs: 4, Inject: hooks})
		if !errors.Is(err, ErrEnginePanic) {
			t.Fatalf("metric workers=%d: %v", workers, err)
		}
		requirePrefix(t, mref, res)
		drainGoroutines(t, baseline)
	}
}

// TestGuardRowsChecksum exercises the boundStore guard directly: a bit
// flip that bypasses the store is caught by verifyRow, foldRow, and set,
// and is NOT laundered by rebase (the corrupted row is dropped instead of
// migrated with a fresh digest).
func TestGuardRowsChecksum(t *testing.T) {
	b := newBoundStore(6)
	b.setGuard()
	dist := []float64{0, 1, 2, 3, 4, 5}
	if err := b.foldRow(0, dist, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.verifyRow(0); err != nil {
		t.Fatal(err)
	}
	if !(rowCorrupter{b}).FlipRowBit(0, 3, 2) {
		t.Fatal("FlipRowBit missed a materialized row")
	}
	if err := b.verifyRow(0); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("verifyRow after flip: %v", err)
	}
	if err := b.verifyPair(3, 0); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("verifyPair after flip: %v", err)
	}
	if err := b.foldRow(0, dist, 2); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("foldRow must verify before folding: %v", err)
	}
	if err := b.set(0, 2, 0.5, 2); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("set must verify before writing: %v", err)
	}
	// rebase drops the corrupted row rather than re-digesting it.
	b.rebase(1, 6)
	if b.rows[0] != nil {
		t.Fatalf("rebase migrated a corrupted row")
	}
	// An untouched healthy row survives rebase with a valid digest.
	if err := b.foldRow(1, dist, 1); err != nil {
		t.Fatal(err)
	}
	b.rebase(1, 8)
	if err := b.verifyRow(1); err != nil {
		t.Fatalf("healthy row fails after rebase: %v", err)
	}
}

// TestCancelledFlushPreservesPendingState is the incremental engine's
// atomicity regression: a flush aborted by cancellation leaves the
// maintained result, metric, and pending tally untouched, and the same
// insertions flush successfully under a fresh context, bit-identical to
// the from-scratch union build.
func TestCancelledFlushPreservesPendingState(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := make([][]float64, 26)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	base, err := metric.NewEuclidean(pts[:22])
	if err != nil {
		t.Fatal(err)
	}
	union, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	refBase, err := GreedyMetricFast(base, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	refUnion, err := GreedyMetricFast(union, 1.8)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := NewIncrementalMetric(base, 1.8, MetricParallelOptions{Workers: 2, Hubs: 3, GuardRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Insert(union); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inc.SetContext(ctx)
	if err := inc.Flush(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled flush: %v", err)
	}
	if inc.Pending() != 4 {
		t.Fatalf("pending = %d after aborted flush, want 4", inc.Pending())
	}
	res, err := inc.Result()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Result under cancelled context: %v", err)
	}
	assertSameResult(t, refBase, res)

	inc.SetContext(context.Background())
	if err := inc.Flush(); err != nil {
		t.Fatalf("retried flush: %v", err)
	}
	if inc.Pending() != 0 {
		t.Fatalf("pending = %d after successful flush", inc.Pending())
	}
	got, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refUnion, got)
}

// TestCancelDrainsWorkerPools: cancellation mid-scan on each engine
// leaves no goroutine behind — the pools join before run returns on every
// abort path.
func TestCancelDrainsWorkerPools(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := robustGraph(rng, 40, 120)
	m := robustPoints(t, rng, 30)
	for _, at := range []int64{3, 30} {
		baseline := runtime.NumGoroutine()
		run := func(build func(ctx context.Context, hooks InjectionHooks) error) {
			t.Helper()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var n atomic.Int64
			hooks := InjectionHooks{OnCertify: func(graph.Edge) {
				if n.Add(1) == at {
					cancel()
				}
			}}
			if err := build(ctx, hooks); err != nil && !errors.Is(err, ErrCancelled) {
				t.Fatalf("unexpected error: %v", err)
			}
			drainGoroutines(t, baseline)
		}
		run(func(ctx context.Context, hooks InjectionHooks) error {
			_, err := GreedyGraphParallelOpts(g, 2, ParallelOptions{Workers: 4, Hubs: 4, Ctx: ctx, Inject: hooks})
			return err
		})
		run(func(ctx context.Context, hooks InjectionHooks) error {
			_, err := GreedyMetricFastParallelOpts(m, 1.8, MetricParallelOptions{Workers: 4, Hubs: 4, Ctx: ctx, Inject: hooks})
			return err
		})
		run(func(ctx context.Context, hooks InjectionHooks) error {
			_, err := FaultTolerantGreedyOpts(m, 2, 1, FaultTolerantOptions{Hubs: 4, Ctx: ctx, Inject: hooks})
			return err
		})
		run(func(ctx context.Context, hooks InjectionHooks) error {
			inc, err := NewIncrementalMetric(m, 1.8, MetricParallelOptions{Workers: 4, Hubs: 4, Ctx: ctx, Inject: hooks})
			if err != nil {
				return err
			}
			_, err = inc.Result()
			return err
		})
	}
}

// TestFlushRetryConverges is the mixed-batch convergence regression: a
// coalesced insert+delete batch whose flush aborts repeatedly — first
// before any replay work, then mid-replay after bound rows and hub state
// advanced past the keep prefix — still converges. Every aborted attempt
// preserves the pending tally and the pre-flush result bit-for-bit, and
// the first successful retry produces the from-scratch build on the net
// survivors, no matter how many failed attempts preceded it.
func TestFlushRetryConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	base, err := metric.NewEuclidean(pts[:24])
	if err != nil {
		t.Fatal(err)
	}
	union, err := metric.NewEuclidean(pts)
	if err != nil {
		t.Fatal(err)
	}
	refBase, err := GreedyMetricFast(base, 1.7)
	if err != nil {
		t.Fatal(err)
	}
	// Net survivors: insert points 24..29, delete points 2, 9, and the
	// pending insertion 25.
	var alive []int
	for i := range pts {
		if i != 2 && i != 9 && i != 25 {
			alive = append(alive, i)
		}
	}
	refFinal, err := GreedyMetricFast(restrictMetric(union, alive), 1.7)
	if err != nil {
		t.Fatal(err)
	}

	var certs, fireAt atomic.Int64
	var cancelCur atomic.Value
	hooks := InjectionHooks{OnCertify: func(graph.Edge) {
		if at := fireAt.Load(); at > 0 && certs.Add(1) == at {
			cancelCur.Load().(context.CancelFunc)()
		}
	}}
	inc, err := NewIncrementalMetric(base, 1.7, MetricParallelOptions{
		Workers: 3, Hubs: 3, GuardRows: true, Inject: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Insert(union); err != nil {
		t.Fatal(err)
	}
	if err := inc.Delete(2, 9, 25); err != nil {
		t.Fatal(err)
	}
	if inc.Pending() != 9 {
		t.Fatalf("pending = %d, want 9 (6 inserted + 3 deleted)", inc.Pending())
	}

	abort := func(name string, arm int64) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cancelCur.Store(cancel)
		certs.Store(0)
		if arm > 0 {
			fireAt.Store(arm)
		} else {
			cancel() // abort before any replay work starts
		}
		inc.SetContext(ctx)
		if err := inc.Flush(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("%s: flush error %v, want ErrCancelled", name, err)
		}
		fireAt.Store(0)
		if inc.Pending() != 9 {
			t.Fatalf("%s: pending = %d after aborted flush, want 9", name, inc.Pending())
		}
		res, rerr := inc.Result()
		if !errors.Is(rerr, ErrCancelled) {
			t.Fatalf("%s: Result error %v, want ErrCancelled", name, rerr)
		}
		assertSameResult(t, refBase, res)
	}
	abort("pre-cancelled", 0)
	abort("mid-replay", 3)
	abort("mid-replay-late", 11)

	inc.SetContext(context.Background())
	if err := inc.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if inc.Pending() != 0 {
		t.Fatalf("pending = %d after successful flush", inc.Pending())
	}
	got, err := inc.Result()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refFinal, got)
	// Flushing again with nothing pending stays a no-op.
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refFinal, mustResult(t, inc))
}
