// Oracle: approximate distance queries over a greedy spanner — the
// distance-oracle motivation from the paper's introduction ([TZ01a, RTZ05]
// citations). A greedy (1+eps)-spanner stores O(n) edges instead of the
// full O(n^2) distance matrix, and answering a query with bidirectional
// Dijkstra on the sparse spanner returns a distance within factor 1+eps —
// this example measures the space saving and the observed query error.
//
//	go run ./examples/oracle
package main

import (
	"fmt"
	"math/rand"
	"os"

	spanner "repro"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oracle:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n   = 400
		eps = 0.25
	)
	rng := rand.New(rand.NewSource(17))
	pts := gen.UniformPoints(rng, n, 2)
	m, err := spanner.NewEuclidean(pts)
	if err != nil {
		return err
	}

	res, err := spanner.GreedyMetricFast(m, 1+eps)
	if err != nil {
		return err
	}
	h := res.Graph()
	full := n * (n - 1) / 2
	fmt.Printf("oracle storage: %d spanner edges instead of %d distances (%.1f%%)\n",
		res.Size(), full, 100*float64(res.Size())/float64(full))

	// Answer random queries with bidirectional Dijkstra on the spanner and
	// compare against the true metric distance.
	const queries = 2000
	worst, sum := 1.0, 0.0
	for q := 0; q < queries; q++ {
		u, v := rng.Intn(n), rng.Intn(n)
		for u == v {
			v = rng.Intn(n)
		}
		est := h.BidirectionalDistance(u, v)
		exact := m.Dist(u, v)
		ratio := est / exact
		if ratio < 1-1e-9 {
			return fmt.Errorf("oracle underestimated: %v < %v", est, exact)
		}
		if ratio > worst {
			worst = ratio
		}
		sum += ratio
	}
	fmt.Printf("queries: %d  mean stretch %.4f  worst stretch %.4f  (guarantee %.2f)\n",
		queries, sum/queries, worst, 1+eps)
	if worst > 1+eps+1e-9 {
		return fmt.Errorf("stretch guarantee violated: %v > %v", worst, 1+eps)
	}
	fmt.Println("all query answers within the (1+eps) guarantee ✓")
	return nil
}
