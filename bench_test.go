package spanner

// This file hosts one testing.B benchmark per experiment in DESIGN.md's
// per-experiment index (E1–E10), each regenerating the corresponding
// figure/claim of the paper at reduced scale, plus micro-benchmarks for the
// core constructions. Run the full-scale experiment tables with:
//
//	go run ./cmd/spannerbench -scale full
import (
	"math/rand"
	"testing"

	"repro/internal/approx"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
)

func BenchmarkE1Figure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E1Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2GeneralGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E2GeneralGraphs(bench.Small, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3SelfSpanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E3SelfSpanner(bench.Small, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4DoublingLightness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E4DoublingLightness(bench.Small, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ApproxGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5ApproxGreedy(bench.Small, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E6Comparison(bench.Small, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7MSTContainment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7MSTContainment(bench.Small, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8LogStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8LogStretch(bench.Small, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9UnboundedDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9UnboundedDegree(bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Lemma11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Lemma11(bench.Small, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the core constructions ---

func benchGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.ErdosRenyi(rng, n, 0.2, 0.5, 10)
}

func BenchmarkGreedyGraphN200(b *testing.B) {
	g := benchGraph(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyGraph(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMetric(n int, seed int64) Metric {
	rng := rand.New(rand.NewSource(seed))
	return metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
}

func BenchmarkGreedyMetricNaiveN128(b *testing.B) {
	m := benchMetric(128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetric(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricFastN128(b *testing.B) {
	m := benchMetric(128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFast(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyMetricFastN512(b *testing.B) {
	m := benchMetric(512, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyMetricFast(m, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxGreedyN512(b *testing.B) {
	m := benchMetric(512, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Greedy(m, approx.Options{Eps: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraN1000(b *testing.B) {
	g := benchGraph(1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(i % g.N())
	}
}

func BenchmarkMSTKruskalN1000(b *testing.B) {
	g := benchGraph(1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.MSTKruskal()
	}
}

// --- Ablation benchmarks (design-choice probes from DESIGN.md) ---

func BenchmarkA1Deputies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A1Deputies(bench.Small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA2BucketWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A2BucketWidth(bench.Small, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA3Certification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A3Certification(bench.Small, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E11FaultTolerance(bench.Small, 11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12GraphFamilies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E12GraphFamilies(bench.Small, 12); err != nil {
			b.Fatal(err)
		}
	}
}
