// Broadcast: the distributed-systems motivation from Section 1.1 of the
// paper. Light, sparse spanners make broadcast cheap: total communication
// cost tracks the spanner's weight, delivery latency tracks its stretch,
// and per-processor load tracks its degree. This example compares
// broadcasting over the full network, over the MST, and over greedy
// spanners at several stretch values.
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"math/rand"
	"os"

	spanner "repro"
	"repro/internal/gen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "broadcast:", err)
		os.Exit(1)
	}
}

func run() error {
	// A random geometric network: 150 sensor nodes in the unit square,
	// links between nodes within radio range, link cost = distance.
	rng := rand.New(rand.NewSource(11))
	g, _ := gen.RandomGeometric(rng, 150, 0.18)
	fmt.Printf("network: %d nodes, %d links, total link cost %.2f\n\n", g.N(), g.M(), g.Weight())

	fmt.Printf("%-22s %7s %10s %10s %8s %9s\n",
		"broadcast structure", "links", "cost", "lightness", "maxdeg", "latency")
	report := func(name string, h *spanner.Graph) error {
		light, err := spanner.Lightness(h, g)
		if err != nil {
			return err
		}
		// Latency: worst-case delivery distance from node 0 over the
		// structure, relative to the network's own shortest paths.
		spH := h.Dijkstra(0)
		spG := g.Dijkstra(0)
		worst := 1.0
		for v := 1; v < g.N(); v++ {
			if spG.Dist[v] > 0 {
				if r := spH.Dist[v] / spG.Dist[v]; r > worst {
					worst = r
				}
			}
		}
		fmt.Printf("%-22s %7d %10.2f %10.2f %8d %8.2fx\n",
			name, h.M(), h.Weight(), light, h.MaxDegree(), worst)
		return nil
	}

	if err := report("full network", g); err != nil {
		return err
	}
	mst := g.Subgraph(g.MSTKruskal())
	if err := report("MST", mst); err != nil {
		return err
	}
	for _, t := range []float64{1.5, 2, 3, 5} {
		res, err := spanner.Greedy(g, t)
		if err != nil {
			return err
		}
		if err := report(fmt.Sprintf("greedy %g-spanner", t), res.Graph()); err != nil {
			return err
		}
	}
	fmt.Println("\nThe MST minimizes cost but can stretch delivery badly; the full network")
	fmt.Println("is fast but expensive. Greedy spanners interpolate: near-MST cost with")
	fmt.Println("bounded latency — the trade-off Awerbuch et al. exploit for broadcast.")
	return nil
}
