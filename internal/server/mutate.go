package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
)

// maxMutateBody bounds a mutation request body (coordinates for a few
// hundred thousand points) so a single client cannot balloon memory.
const maxMutateBody = 8 << 20

// edgeJSON is the wire shape of one weighted edge.
type edgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// mutateRequest is the wire shape of POST /v1/mutate. Exactly one of the
// payload fields is consulted, selected by Op.
type mutateRequest struct {
	// Op is one of insert-points, delete-points, insert-edges,
	// delete-edges.
	Op     string      `json:"op"`
	Points [][]float64 `json:"points,omitempty"` // insert-points: coordinate rows
	Ids    []int       `json:"ids,omitempty"`    // delete-points: dense positions
	Edges  []edgeJSON  `json:"edges,omitempty"`  // insert-edges / delete-edges
}

// handleMutate applies one durable mutation: validate, WAL-append, apply
// to the engine, publish a fresh snapshot. Failures after the op is
// logged are converged with retries — the WAL is the source of truth,
// and an acknowledged response always means "durable and served".
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, codeMethod, "use POST")
		return
	}
	var req mutateRequest
	body := http.MaxBytesReader(w, r.Body, maxMutateBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, codeInvalid, "malformed mutation body: "+err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MutateTimeout)
	defer cancel()
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()

	select {
	case s.writer <- struct{}{}:
	case <-ctx.Done():
		s.writeCtxError(w, ctx.Err())
		return
	}
	defer func() { <-s.writer }()

	if err := s.wedgedErr(); err != nil {
		s.writeError(w, http.StatusInternalServerError, codeWedged, "mutation path wedged: "+err.Error())
		return
	}

	before := s.d.OpSeq()
	inc := s.d.Spanner()
	inc.SetContext(ctx)
	err := s.applyMutation(&req)
	inc.SetContext(context.Background())

	if err != nil {
		if s.d.OpSeq() == before {
			// Nothing reached the log: a clean rejection, nothing to
			// repair. A dead durable, though, means even validation
			// cannot be retried — wedge so the state is explicit.
			s.rejectMutation(w, err)
			return
		}
		// The op is durable but the engine lags it: converge or wedge.
		if cerr := s.converge(); cerr != nil {
			s.wedge(cerr)
			s.writeError(w, http.StatusInternalServerError, codeWedged,
				"mutation durable but not converged: "+cerr.Error())
			return
		}
	}

	if perr := s.publishNext(); perr != nil {
		s.wedge(perr)
		s.writeError(w, http.StatusInternalServerError, codeWedged,
			"mutation durable but snapshot publish failed: "+perr.Error())
		return
	}
	s.counters.Mutations.Add(1)
	st := s.Stats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"version": st.Version,
		"opseq":   st.OpSeq,
		"digest":  fmt.Sprintf("%016x", st.Digest),
	})
}

// applyMutation dispatches one decoded request through the durable
// layer, which validates before logging.
func (s *Server) applyMutation(req *mutateRequest) error {
	switch req.Op {
	case "insert-points":
		return s.d.AppendPoints(req.Points)
	case "delete-points":
		return s.d.Delete(req.Ids...)
	case "insert-edges":
		return s.d.InsertEdges(toEdges(req.Edges)...)
	case "delete-edges":
		return s.d.DeleteEdges(toEdges(req.Edges)...)
	default:
		return fmt.Errorf("server: unknown mutation op %q: %w", req.Op, graph.ErrInvalidInput)
	}
}

func toEdges(in []edgeJSON) []graph.Edge {
	out := make([]graph.Edge, len(in))
	for i, e := range in {
		out[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// rejectMutation maps an error from a mutation that logged nothing to
// its typed response.
func (s *Server) rejectMutation(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, graph.ErrInvalidInput):
		s.writeError(w, http.StatusBadRequest, codeInvalid, err.Error())
	case errors.Is(err, core.ErrCancelled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.writeCtxError(w, err)
	case errors.Is(err, persist.ErrSimulatedCrash):
		s.wedge(err)
		s.writeError(w, http.StatusInternalServerError, codeWedged, "durable state crashed: "+err.Error())
	case errors.Is(err, core.ErrEnginePanic):
		s.writeError(w, http.StatusInternalServerError, codePanic, err.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
	}
}

// transientErr reports whether a convergence retry can clear err:
// cancellation vanishes with a fresh context, an injected panic fires
// once, and a guarded-row corruption is dropped and rebuilt by the
// retried rebase.
func transientErr(err error) bool {
	return errors.Is(err, core.ErrCancelled) ||
		errors.Is(err, core.ErrEnginePanic) ||
		errors.Is(err, core.ErrCorruptState)
}

// converge retries the engine-level flush until the maintained state
// catches up with the write-ahead log. It runs under the writer slot
// with a background context on purpose: the op is already durable, so
// abandoning convergence because the requesting client went away would
// leave the engine behind the log. Flush preserves the pre-flush state
// on every failure, so retrying is always sound; flush timing itself is
// output-invariant and needs no log record.
func (s *Server) converge() error {
	inc := s.d.Spanner()
	backoff := s.cfg.RetryBase
	var last error
	for attempt := 1; attempt <= s.cfg.RetryMax; attempt++ {
		err := inc.Flush()
		if hook := s.cfg.Hooks.OnConverge; hook != nil {
			hook(attempt, err)
		}
		if err == nil {
			return nil
		}
		s.counters.Converges.Add(1)
		last = err
		if !transientErr(err) {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	return fmt.Errorf("server: %d convergence retries exhausted: %w", s.cfg.RetryMax, last)
}

// publishNext publishes the engine's current state as the next snapshot
// version. Caller holds the writer slot.
func (s *Server) publishNext() error {
	return s.publish(s.snap.Load().version)
}

// handleCheckpoint rotates the durable generation on demand and
// republishes so stats reflect the new generation immediately.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, codeMethod, "use POST")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MutateTimeout)
	defer cancel()
	stop := context.AfterFunc(s.rootCtx, cancel)
	defer stop()

	select {
	case s.writer <- struct{}{}:
	case <-ctx.Done():
		s.writeCtxError(w, ctx.Err())
		return
	}
	defer func() { <-s.writer }()

	if err := s.wedgedErr(); err != nil {
		s.writeError(w, http.StatusInternalServerError, codeWedged, "mutation path wedged: "+err.Error())
		return
	}
	inc := s.d.Spanner()
	inc.SetContext(ctx)
	err := s.d.Checkpoint()
	inc.SetContext(context.Background())
	if err != nil {
		switch {
		case errors.Is(err, persist.ErrSimulatedCrash):
			s.wedge(err)
			s.writeError(w, http.StatusInternalServerError, codeWedged, "durable state crashed: "+err.Error())
		case errors.Is(err, core.ErrCancelled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Checkpoint's flush preserves the pre-flush state on error,
			// so a cancelled rotation is a clean no-op, not a wedge.
			s.writeCtxError(w, err)
		default:
			s.writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		}
		return
	}
	if err := s.publishNext(); err != nil {
		s.wedge(err)
		s.writeError(w, http.StatusInternalServerError, codeWedged, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"gen": s.Stats().Gen})
}
