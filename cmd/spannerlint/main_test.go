package main

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis/checks"
	"repro/internal/analysis/framework"
)

// TestSpannerlintClean is the end-to-end gate: the full analyzer suite
// over the whole module must produce zero diagnostics. Any new finding —
// a real violation or an annotation that lost its reason — fails CI here
// even before the dedicated lint job runs.
func TestSpannerlintClean(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	pkgs, err := framework.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	diags, err := framework.Run(pkgs, checks.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAnalyzerRegistry pins the suite composition: each analyzer is
// registered exactly once, with a name, a doc, and a scope.
func TestAnalyzerRegistry(t *testing.T) {
	all := checks.All()
	if len(all) != 7 {
		t.Fatalf("registry has %d analyzers, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		if checks.ByName(a.Name) != a {
			t.Errorf("ByName(%s) does not round-trip", a.Name)
		}
	}
	if checks.ByName("nope") != nil {
		t.Error("ByName on unknown name should be nil")
	}
}
