package bench

import (
	"os"
	"path/filepath"
)

// writeFileAtomic writes data to path by staging it in a temp file in the
// same directory and renaming it into place. An interrupted benchmark run
// (SIGINT mid-marshal, a crashed process, a full disk) therefore never
// truncates or corrupts a previous report at path: the rename either
// happens completely or not at all.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
