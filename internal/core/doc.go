// Package core implements the paper's central object: the greedy spanner of
// Althöfer et al. (Algorithm 1 in Filtser–Solomon, "The Greedy Spanner is
// Existentially Optimal", PODC 2016), for both weighted graphs and finite
// metric spaces, together with the verifiers that realize the paper's
// optimality arguments — the Lemma 3 self-spanner property, the Lemma 8
// size-injection argument, and the MST-containment Observation 2.
//
// # The greedy algorithm
//
// The greedy algorithm examines candidate edges in non-decreasing weight
// order (ties broken by endpoint ids, so the scan is deterministic) and
// keeps edge (u, v) iff the current spanner distance delta_H(u, v) exceeds
// t * w(u, v). On graphs the candidates are the input's edges; on metrics
// they are all n(n-1)/2 interpoint distances ("path-greedy").
//
// # The batched-parallel engines and the frozen-snapshot invariant
//
// Both scan loops — GreedyGraphParallel for graphs and
// GreedyMetricFastParallel for metrics — parallelize the same way, and
// both rest on one invariant: spanner distances only shrink as the greedy
// scan adds edges, so any skip certified against a frozen snapshot H0 of
// the growing spanner stays correct for every later spanner H ⊇ H0.
// Concretely, if delta_{H0}(u, v) <= t * w(u, v) then the sequential
// algorithm — which would test (u, v) against some H ⊇ H0 — would also
// skip it, because delta_H <= delta_{H0}. Certification is therefore safe
// to run concurrently against an immutable snapshot, out of greedy order;
// only the pairs the snapshot fails to certify are replayed serially, in
// exact greedy order, against the live spanner. Every accept/reject
// decision thus matches the sequential scan, and the output — edge
// sequence, weight, counters — is deterministic and bit-identical
// regardless of worker count, batch width, or goroutine scheduling.
// (The frozen-snapshot discipline — workers write only owner-indexed
// slots, never captured snapshot state — is machine-checked by the
// frozensnap analyzer; map-order and wall-clock nondeterminism in these
// paths by mapdet and detpure. See README "Static analysis".)
//
// The two engines differ only in the certification primitive:
//
//   - GreedyGraphParallel answers each query with bounded bidirectional
//     Dijkstra on the snapshot (two balls of radius ~t*w/2 instead of one
//     of radius t*w).
//   - GreedyMetricFastParallel maintains the cached distance-bound matrix
//     of GreedyMetricFastSerial (the Bose et al. [BCF+10] trick): cached
//     upper bounds certify most skips with no search at all, and the rows
//     that need recomputing are refreshed concurrently — each row is owned
//     by exactly one worker, so a batch's refreshes need no locking. A
//     refreshed row computed on H0 is again a valid row of upper bounds
//     for every later H, by the same monotonicity.
//
// Both engines scan in adaptive weight batches: the batch width grows
// while snapshots certify almost everything and shrinks when the snapshot
// goes stale too fast (too many pairs fall through to the serial
// re-check).
//
// # The streaming candidate supply and the sparse bound rows
//
// Both batched engines pull their candidates from a CandidateSource
// instead of a materialized slice. The classic pipeline builds every
// candidate up front — all n(n-1)/2 interpoint pairs for metrics, a full
// copy of the edge list for graphs — and sorts it globally, so an
// n-point Euclidean instance pays Θ(n²) memory before the first greedy
// decision. The streamed sources exploit that the greedy scan only ever
// consumes candidates in non-decreasing weight order: one counting pass
// partitions the weights into geometric buckets [2^(e-1), 2^e), and only
// the active bucket is materialized and sorted (buckets above a
// configurable pair cap are first subdivided into narrower weight
// ranges), so supply memory is O(bucket cap) and sorting is O(B log B)
// per bucket instead of one global O(N log N). On Euclidean metrics the
// bucket is produced by the grid enumerator of internal/geom, which
// inspects only grid cells within the bucket's distance — pairs beyond
// the active weight scale are never even evaluated. The streamed order is
// exactly the materialized order (ties included), so engine output is
// bit-identical for any supply.
//
// The metric engine's dense n x n bound matrix is likewise replaced by a
// sparse row store: rows materialize on first refresh (never-refreshed
// vertices cost nothing) and hold bfloat16 upper bounds rounded toward
// +Inf. The lossy cache is sound because a rounded-up upper bound is
// still an upper bound, and it cannot change output because every pair
// the cache fails to certify is decided on an exact float64 Dijkstra
// distance — exactly the serial reference's decision procedure. The
// serial reference (GreedyMetricFastSerial) intentionally keeps the
// materialized pair list and dense float64 matrix as the
// memory-comparison baseline and ground truth.
//
// # The hub-label certification fast path
//
// With the Hubs option both engines consult a HubOracle before paying any
// search: k hub vertices (degree-selected on graphs, ball-growth-sampled
// on metrics) carry maintained distance arrays over the growing spanner,
// and the label bound min_h d(u,h)+d(h,v) certifies a skip in O(k). The
// soundness argument is one line: the label bound is the length of a real
// u–h–v walk in the spanner, so it dominates delta_H(u, v) by the
// triangle inequality — a hub-certified skip is a skip the exact engine
// would also take, and output stays bit-identical for every hub count
// (hubs=0 reproduces the pre-hub engines verbatim). Arrays are maintained
// lazily: an accepted edge only shrinks distances, so each hub repairs by
// re-relaxing just the dirty radius the edge improves
// (graph.Searcher.RelaxNewEdge) instead of re-running Dijkstra, and
// between repairs the arrays are distances on a sub-spanner — still valid
// upper bounds. On the metric path the oracle additionally bounds row
// refreshes to a factor of the query radius (sound: unreached entries
// stay +Inf, a trivial upper bound, and the pair decision reads an exact
// settled distance or a beyond-limit verdict either way) and pre-seeds
// the sparse bound rows with the bounds it certifies, so the cache layer
// and the oracle compound. Across incremental insertions the arrays
// rebase like bound rows: synced to a preserved prefix they survive and
// repair forward; synced past the cut they are refreshed in place.
//
// # Incremental maintenance and the insertion-soundness invariant
//
// IncrementalSpanner maintains a greedy spanner under point insertions
// (metrics) and edge insertions (graphs). An insertion splices new
// candidates into the fixed greedy scan order, so everything strictly
// before the first spliced position is undisturbed: the union scan sees
// the identical candidate prefix, repeats the identical decisions, and
// accepts the identical edge prefix — which the engine keeps verbatim
// and replays only the tail from a cut-resumed candidate source.
//
// Cached bound rows survive insertions by the same monotonicity that
// powers the frozen-snapshot certification: every row is stamped with
// the accepted-edge prefix its bounds were proven on, and a row proven
// on a prefix the replay preserves is proven on a subgraph of every
// partial spanner the replay will hold — adding edges only shrinks
// distances, so its entries can only overestimate, never undercut, and
// each skip they certify is exactly the skip a fresh computation would
// certify. Rows proven on longer (discarded) prefixes are dropped.
// The maintained result after every insertion batch is therefore
// bit-identical to a from-scratch greedy build on the union, counters
// included.
//
// # Deletions and the backward-rebase soundness invariant
//
// Delete (points, metric mode) and DeleteEdges (graph mode) extend the
// maintained spanner to a fully dynamic one. The soundness argument
// mirrors insertion, pointed backward: every greedy decision depends
// only on the accepted edges that precede it, so the earliest accepted
// edge with a deleted endpoint is the first decision a deletion can
// disturb. Everything strictly before that cut is a decision the
// surviving input's scan repeats verbatim — the candidate stream differs
// only in pairs it skips as tombstoned, and skipped candidates never
// influenced a decision — so the engine keeps the accepted prefix,
// rebases the cached state backward onto it, and replays only the tail.
// A deletion that only touches rejected candidates cuts at the sentinel
// past the last candidate: the replay is pure accounting and the edge
// set is untouched.
//
// The backward rebase is what makes this cheap. Bound rows and hub
// arrays are stamped with the accepted-edge prefix they were proven on;
// a forward rebase (insertion) keeps any stamp at or below the cut, but
// a deletion invalidates stamps above it, and recomputing them from
// scratch would cost a full replay. Instead both stores keep periodic
// checkpoints — digest-verified snapshots of row and hub-array state at
// known epochs — and restore the newest checkpoint at or below the cut.
// A restored row is a row the engine actually held at that prefix, so
// the insertion-soundness argument applies unchanged; a checkpoint whose
// digest fails verification is dropped, never laundered into the replay.
// Internally deleted points become tombstones in a stable-id space (ids
// are never renumbered, which would reorder weight ties); the public
// Result densely renumbers survivors in stable order, which preserves
// tie order, the float-summed weight, and the examined-candidate
// counter. The maintained result after every deletion batch is
// therefore bit-identical to a from-scratch greedy build on the
// survivors, counters included.
//
// # Cancellation, budgets, and the fault-containment invariant
//
// Every engine accepts an optional context and Budget (the Ctx and
// Budget option fields). Cancellation is observed at batch boundaries
// and, inside a batch, after each certification search but before its
// decision commits — a truncated search can report "not within reach"
// spuriously, so no decision derived from one is ever recorded (the
// ctxcommit analyzer machine-checks this check-before-commit shape). A
// cancelled or deadline-expired build returns the exact decided prefix
// (Result.Partial set) with ErrCancelled; worker pools are always
// joined before returning. Budget pressure walks a degradation ladder
// (materialized supply → streamed, narrower buckets, smaller batches,
// hub oracle dropped, bound rows dropped) in which every rung is
// output-invariant — each merely disables a fast path whose soundness
// argument never affected decisions — and is recorded in the stats'
// Degradations log. Worker panics are converted to ErrEnginePanic;
// checksum-guarded bound rows (GuardRows) surface bit flips as
// ErrCorruptState, verified before every fold, overwrite, and
// cache-certified skip, and incremental rebases drop rather than
// re-digest damaged rows.
//
// The invariant the internal/chaos property suite enforces across all
// four engines: any injected fault — worker panic, stalled
// certification, cancellation at a randomized scan position, or a
// checksum-bypassing bit flip — yields either output bit-identical to
// the serial reference or a clean typed error with the exact decided
// prefix; never silent divergence, never a leaked goroutine.
//
// # Durable state export
//
// ExportState flushes a maintained spanner's pending batch and captures
// its complete dynamic state — the surviving input, the accepted edge
// sequence in the stable tombstone id space, the pair-count histogram,
// the sparse bound rows with their proof epochs, the hub arrays, and the
// batching policy — as a SpannerState; ImportIncremental reconstructs an
// equivalent IncrementalSpanner from one. The round trip is exact: the
// import re-registers the cached rows under the same proof prefixes the
// export recorded, so the reconstructed spanner certifies, replays, and
// answers Result bit-identically to the original (ResultDigest is the
// 64-bit fingerprint tests compare). internal/persist builds the on-disk
// layer on top of this pair: versioned digest-guarded snapshots of a
// SpannerState plus a write-ahead log of dynamic operations, with
// crash-recovery equivalence enforced by the internal/chaos Kill suite.
//
// # Machine-checked invariants
//
// The invariants above are enforced statically by the spannerlint suite
// (internal/analysis, driver cmd/spannerlint, run by CI and
// scripts/lint.sh): mapdet forbids unordered map iteration in this
// package and internal/graph; ctxcommit enforces the
// check-before-commit rule on bounded searches and context threading on
// engine entry points; frozensnap freezes captured state inside
// certification worker closures; detpure keeps wall-clock reads,
// math/rand, and map-ordered float accumulation out of decision paths;
// errtyped keeps the exported error surface dispatchable with
// errors.Is; and fsyncrename (internal/persist's scope) enforces the
// durability disciplines. Deliberate exemptions carry
// //spannerlint:ignore annotations whose reasons are part of this
// package's soundness documentation.
package core
