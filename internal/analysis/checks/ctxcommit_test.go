package checks_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/checks"
)

func TestCtxcommitFixtures(t *testing.T) {
	analysistest.Run(t, checks.Ctxcommit, analysistest.Fixture("ctxcommit"))
}
