package graph

// RelaxNewEdge folds one newly added edge (u, v, w) of g into dist, a
// single-source distance array over g's vertices, and reports how many
// entries improved. It is the lazy maintenance primitive of the hub-label
// certification path (core.HubOracle): a spanner accepts edges one at a
// time, and each acceptance can only shrink distances, so a maintained
// source array is repaired by re-relaxing exactly the region the new edge
// improves — the "dirty radius" — instead of re-running a full Dijkstra.
//
// Correctness: any path improved by the insertion traverses (u, v), so the
// first improved entry is one of the endpoints — dist[v] drops to
// dist[u]+w, or symmetrically (never both: if dist[u]+w < dist[v] then
// dist[v]+w > dist[u]). Seeding a Dijkstra at the improved endpoint with
// that key and relaxing into dist settles every improved vertex in
// distance order, exactly as a from-scratch run would, and touches nothing
// outside the improved region. If dist holds exact distances on g minus
// the new edge, it holds exact distances on g afterwards; if it holds
// upper bounds (a hub array carried across an incremental rebase), every
// update is witnessed by a real path built from those bounds, so it still
// holds upper bounds — only tighter.
//
// g must already contain the edge. The array is modified in place; the
// call is allocation-free after the Searcher's first use.
func (s *Searcher) RelaxNewEdge(g *Graph, dist []float64, u, v int, w float64) int {
	var seed int
	var key float64
	switch {
	case dist[u]+w < dist[v]:
		seed, key = v, dist[u]+w
	case dist[v]+w < dist[u]:
		seed, key = u, dist[v]+w
	default:
		return 0
	}
	h := s.scratch.heap
	dist[seed] = key
	h.Push(seed, key)
	improved := 1
	for h.Len() > 0 {
		x, dx := h.Pop()
		for _, e := range g.adj[x] {
			y := int(e.to)
			if nd := dx + e.w; nd < dist[y] {
				if !h.Contains(y) {
					improved++
				}
				dist[y] = nd
				h.Push(y, nd)
			}
		}
	}
	h.Reset()
	return improved
}
