package nettree

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestBuildHierarchyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 80, 2))
	tree, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 2 {
		t.Fatalf("depth = %d, want >= 2", tree.Depth())
	}
	if len(tree.Levels[0]) != 1 {
		t.Fatalf("top level has %d points, want 1", len(tree.Levels[0]))
	}
	bottom := tree.Levels[tree.Depth()-1]
	if len(bottom) != m.N() {
		t.Fatalf("bottom level has %d points, want all %d", len(bottom), m.N())
	}
	for li := 1; li < tree.Depth(); li++ {
		if tree.Radius[li] >= tree.Radius[li-1] {
			t.Fatalf("radius not decreasing at level %d", li)
		}
		// Nesting: previous net points appear in the current net.
		cur := make(map[int]bool, len(tree.Levels[li]))
		for _, p := range tree.Levels[li] {
			cur[p] = true
		}
		for _, p := range tree.Levels[li-1] {
			if !cur[p] {
				t.Fatalf("net not nested: level %d point %d missing at level %d", li-1, p, li)
			}
		}
		// Separation: net points pairwise > radius apart.
		net, r := tree.Levels[li], tree.Radius[li]
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				if m.Dist(net[i], net[j]) <= r {
					t.Fatalf("level %d: points %d, %d closer than radius %v", li, net[i], net[j], r)
				}
			}
		}
		// Parents exist and are close.
		for _, p := range net {
			pi, ok := tree.Parent[li][p]
			if !ok {
				t.Fatalf("level %d point %d has no parent", li, p)
			}
			q := tree.Levels[li-1][pi]
			if m.Dist(p, q) > tree.Radius[li-1] {
				t.Fatalf("level %d point %d parent at distance %v > %v", li, p, m.Dist(p, q), tree.Radius[li-1])
			}
		}
	}
}

func TestBuildDegenerate(t *testing.T) {
	if _, err := Build(metric.MustEuclidean(nil)); err == nil {
		t.Fatal("empty metric accepted")
	}
	tree, err := Build(metric.MustEuclidean([][]float64{{3, 3}}))
	if err != nil || tree.Depth() != 1 {
		t.Fatalf("single point: %v, depth %d", err, tree.Depth())
	}
}

func TestBaseSpannerStretch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		m := metric.MustEuclidean(gen.UniformPoints(rng, 60, 2))
		g, _, err := BaseSpanner(m, BaseSpannerOptions{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.MetricSpanner(g, m, 1+eps, 1e-9); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if !g.Connected() {
			t.Fatalf("eps=%v: base spanner disconnected", eps)
		}
	}
}

func TestBaseSpannerLinearSizeScaling(t *testing.T) {
	// Theorem 2 shape: the base spanner has n * eps^{-O(ddim)} edges — the
	// eps constant is large, so the meaningful check is that edges grow
	// roughly linearly in n (a quadratic construction would quadruple).
	rng := rand.New(rand.NewSource(3))
	sizes := []int{100, 200, 400}
	perN := make([]float64, len(sizes))
	for i, n := range sizes {
		m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
		// Pin gamma so the test isolates the construction's size scaling
		// from the self-tuning ladder's (instance-dependent) choice.
		g, _, err := BaseSpanner(m, BaseSpannerOptions{Eps: 0.5, Gamma: 8})
		if err != nil {
			t.Fatal(err)
		}
		perN[i] = float64(g.M()) / float64(n)
	}
	// Edges-per-vertex should not grow by more than ~1.5x per doubling
	// (linear growth keeps it flat; quadratic doubles it each step).
	for i := 1; i < len(perN); i++ {
		if perN[i] > 1.5*perN[i-1] {
			t.Fatalf("edges/n grew %v -> %v on doubling n; not linear", perN[i-1], perN[i])
		}
	}
}

func TestBaseSpannerOnClusteredDoublingMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := metric.MustEuclidean(gen.ClusteredPoints(rng, 70, 2, 5, 0.02))
	g, _, err := BaseSpanner(m, BaseSpannerOptions{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(g, m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestBaseSpannerExponentialSpread(t *testing.T) {
	// Exponential spread exercises the per-scale loop depth.
	m := metric.MustEuclidean(gen.ExponentialLine(12))
	g, tree, err := BaseSpanner(m, BaseSpannerOptions{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() < 10 {
		t.Fatalf("depth = %d, want >= 10 for exponential spread", tree.Depth())
	}
	if _, err := verify.MetricSpanner(g, m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestBaseSpannerValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 1}})
	if _, _, err := BaseSpanner(m, BaseSpannerOptions{Eps: 0}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, _, err := BaseSpanner(m, BaseSpannerOptions{Eps: -0.5}); err == nil {
		t.Fatal("negative eps accepted")
	}
}
