package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Srvctx enforces the serving-layer cancellation contract: an HTTP
// handler must thread its request context into every engine call it
// makes. The server's reads run bounded graph searches against the
// published snapshot, and its mutations drive the durable engine; both
// outlive a disconnected client unless the request context reaches the
// engine's cooperative-cancellation machinery. Concretely:
//
//   - A searcher query (DistanceWithin, BidirDistanceWithin, PathWithin,
//     ...) must be preceded, in the same statement list, by a SetStop
//     call installing a non-nil stop predicate — that predicate is how
//     the request deadline reaches the search loop.
//   - The query's results must not be used before a statement consults
//     ctx.Err(): a search stopped mid-flight returns a truncated answer,
//     and serving it would hand the client a wrong distance instead of a
//     typed cancellation.
//   - In a handler (a function taking *http.Request), a durable mutation
//     (Insert, AppendPoints, Delete, InsertEdges, DeleteEdges,
//     Checkpoint on persist.Durable, directly or through a helper that
//     wraps one) must be preceded, in the same statement list, by a
//     SetContext call whose argument is not context.Background() — that
//     is how the mutation deadline reaches the engine's flush.
//
// Post-durability convergence (Server.converge) deliberately runs under
// a background context — the op is already logged, so abandoning the
// repair with the client would leave the engine behind the WAL — and is
// out of scope here: Flush is not a guarded call.
var Srvctx = &framework.Analyzer{
	Name:  "srvctx",
	Doc:   "server handlers must thread the request context into every engine call: searcher queries need a stop predicate and a ctx.Err re-check, durable mutations need SetContext with the request context",
	Scope: []string{"internal/server"},
	Run:   runSrvctx,
}

// srvQueryMethods are the bounded-search methods served on the read path.
var srvQueryMethods = map[string]bool{
	"DistanceWithin":         true,
	"BidirDistanceWithin":    true,
	"PathWithin":             true,
	"DistanceWithinAvoiding": true,
	"DistanceWithinMasked":   true,
}

// durableMutators are the persist.Durable methods that append to the WAL
// and drive the engine.
var durableMutators = map[string]bool{
	"Insert":       true,
	"AppendPoints": true,
	"Delete":       true,
	"InsertEdges":  true,
	"DeleteEdges":  true,
	"Checkpoint":   true,
}

func runSrvctx(pass *framework.Pass) error {
	info := pass.Unit.Info
	mutateLike := collectMutateLike(pass)
	for _, f := range pass.Unit.Files {
		eachFunc(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			eachStmtList(body, func(stmts []ast.Stmt) {
				checkQueryStops(pass, info, stmts)
			})
			if isHandlerFunc(info, fd) {
				eachStmtList(body, func(stmts []ast.Stmt) {
					checkMutationContexts(pass, info, stmts, mutateLike)
				})
			}
		})
	}
	return nil
}

// collectMutateLike finds package functions and methods whose body calls
// a durable mutator, so hiding the mutation behind one helper level
// (Server.applyMutation) does not evade the handler rule.
func collectMutateLike(pass *framework.Pass) map[types.Object]bool {
	info := pass.Unit.Info
	out := make(map[types.Object]bool)
	for _, f := range pass.Unit.Files {
		eachFunc(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isDurableMutatorCall(info, call) {
					found = true
				}
				return !found
			})
			if found {
				if obj := info.Defs[fd.Name]; obj != nil {
					out[obj] = true
				}
			}
		})
	}
	return out
}

// isDurableMutatorCall recognizes a mutator method call on a value whose
// named type is Durable.
func isDurableMutatorCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !durableMutators[sel.Sel.Name] {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return namedTypeName(tv.Type) == "Durable"
}

// isHandlerFunc reports whether fd takes a *http.Request parameter.
func isHandlerFunc(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		tv, ok := info.Types[p.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// checkQueryStops applies both read-path rules to one statement list.
func checkQueryStops(pass *framework.Pass, info *types.Info, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		call, results := queryAssignment(info, stmt)
		if call == nil {
			continue
		}
		if !stopInstalledBefore(stmts[:i]) {
			pass.Reportf(call.Pos(), "searcher query %s without a preceding SetStop stop predicate: install one derived from the request context so the search is cancellable", exprString(call.Fun))
		}
		for _, later := range stmts[i+1:] {
			if containsCallNamed(later, map[string]bool{"Err": true}) {
				break
			}
			if usesObject(info, later, results) {
				pass.Reportf(call.Pos(), "searcher result served without re-checking the request context: consult ctx.Err() between %s and the response (a truncated search must never answer)", exprString(call.Fun))
				break
			}
		}
	}
}

// queryAssignment recognizes `a, b := sr.Query(...)` for a served query
// method and returns the call plus the result objects.
func queryAssignment(info *types.Info, stmt ast.Stmt) (*ast.CallExpr, map[types.Object]bool) {
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return nil, nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !srvQueryMethods[calledMethodName(call)] {
		return nil, nil
	}
	results := make(map[types.Object]bool)
	for _, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			results[obj] = true
		}
	}
	return call, results
}

// stopInstalledBefore scans backwards for the nearest statement carrying
// a SetStop call and requires its argument to be non-nil; a query with
// no stop predicate in scope (or one explicitly cleared) runs unbounded.
func stopInstalledBefore(before []ast.Stmt) bool {
	for i := len(before) - 1; i >= 0; i-- {
		if call := findCallNamed(before[i], "SetStop"); call != nil {
			return len(call.Args) != 1 || !isNilIdent(call.Args[0])
		}
	}
	return false
}

// checkMutationContexts requires a live SetContext before any durable
// mutation issued from a handler's statement list.
func checkMutationContexts(pass *framework.Pass, info *types.Info, stmts []ast.Stmt, mutateLike map[types.Object]bool) {
	for i, stmt := range stmts {
		call := mutationCall(info, stmt, mutateLike)
		if call == nil {
			continue
		}
		if !liveContextBefore(info, stmts[:i]) {
			pass.Reportf(call.Pos(), "durable mutation %s in a handler without SetContext(ctx): thread the request context into the engine before mutating", exprString(call.Fun))
		}
	}
}

// mutationCall returns the first durable-mutator or mutate-like call in
// stmt, or nil.
func mutationCall(info *types.Info, stmt ast.Stmt, mutateLike map[types.Object]bool) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return out == nil
		}
		if isDurableMutatorCall(info, call) {
			out = call
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if mutateLike[info.Uses[fun]] {
				out = call
			}
		case *ast.SelectorExpr:
			if mutateLike[info.Uses[fun.Sel]] {
				out = call
			}
		}
		return out == nil
	})
	return out
}

// liveContextBefore scans backwards for the nearest SetContext call and
// requires its argument not to be context.Background().
func liveContextBefore(info *types.Info, before []ast.Stmt) bool {
	for i := len(before) - 1; i >= 0; i-- {
		if call := findCallNamed(before[i], "SetContext"); call != nil {
			if len(call.Args) != 1 {
				return false
			}
			if bg, ok := call.Args[0].(*ast.CallExpr); ok && pkgCall(info, bg, "context", "Background") {
				return false
			}
			return true
		}
	}
	return false
}

// findCallNamed returns the first call in stmt whose bare callee name is
// name, or nil.
func findCallNamed(stmt ast.Stmt, name string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return out == nil
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				out = call
			}
		case *ast.Ident:
			if fun.Name == name {
				out = call
			}
		}
		return out == nil
	})
	return out
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
