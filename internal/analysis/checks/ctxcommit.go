package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Ctxcommit enforces the PR 6 cancellation-soundness rule: a truncated
// search must never decide. A bounded search that was cut short by
// cancellation can report "no path within budget" for a pair that is in
// fact within budget; committing a certification decision on that result
// would corrupt the spanner. The engines make this safe by re-checking
// the cancellation predicate between the search call and the first use
// of its result — because the predicate is monotone (once cancelled,
// always cancelled), "not cancelled after the search returned" proves
// the search ran to completion.
//
// Concretely, in any function that participates in cancellation (it
// mentions an env or ctx), an assignment from a bounded-search call
// (Searcher query methods, or local helpers that wrap one and return a
// non-error result) must be followed — before any statement uses the
// result — by a statement containing a cancellation check (a call to
// cancelled, Err, or active). The analyzer also requires every exported
// engine entry point (Greedy*, FaultTolerant*) to thread a context,
// either as a context.Context parameter, through an options struct with
// a context field, or by delegating in a single return statement to an
// entry point that does.
var Ctxcommit = &framework.Analyzer{
	Name:  "ctxcommit",
	Doc:   "require a cancellation check between a bounded search and the decision that consumes it; engine entry points must thread a context",
	Scope: []string{"internal/core"},
	Run:   runCtxcommit,
}

// valueQueryMethods are the Searcher methods whose boolean/float results
// feed certification decisions directly.
var valueQueryMethods = map[string]bool{
	"DistanceWithin":         true,
	"BidirDistanceWithin":    true,
	"PathWithin":             true,
	"DistanceWithinAvoiding": true,
	"DistanceWithinMasked":   true,
}

// allQueryMethods additionally covers the scratch-filling searches; a
// helper calling any of these and returning a non-error value is itself
// search-like.
var allQueryMethods = map[string]bool{
	"DistanceWithin":         true,
	"BidirDistanceWithin":    true,
	"PathWithin":             true,
	"DistanceWithinAvoiding": true,
	"DistanceWithinMasked":   true,
	"Distances":              true,
	"BoundedDistances":       true,
	"BoundedDistancesMasked": true,
}

// cancelCheckNames are the method names whose presence in a statement
// counts as consulting the cancellation predicate.
var cancelCheckNames = map[string]bool{
	"cancelled": true,
	"Err":       true,
	"active":    true,
}

func runCtxcommit(pass *framework.Pass) error {
	info := pass.Unit.Info
	searchLike := collectSearchLike(pass)
	for _, f := range pass.Unit.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEntryPoint(pass, fd)
			// Walk every function body (declaration and nested literals)
			// that participates in cancellation.
			forEachFuncBody(fd, func(body *ast.BlockStmt) {
				if !mentionsCancellation(body) {
					return
				}
				checkSearchCommits(pass, info, body, searchLike)
			})
		}
	}
	return nil
}

// collectSearchLike finds package functions and closures that wrap a
// bounded search: their body calls a Searcher query method and they
// return at least one non-error value. Their call sites are then held to
// the same check-before-commit rule as direct query calls, so hiding a
// search behind one level of helper does not evade the analyzer.
func collectSearchLike(pass *framework.Pass) map[types.Object]bool {
	info := pass.Unit.Info
	out := make(map[types.Object]bool)
	consider := func(obj types.Object, ftype *ast.FuncType, body *ast.BlockStmt) {
		if obj == nil || body == nil || ftype.Results == nil {
			return
		}
		nonError := false
		for _, r := range ftype.Results.List {
			if tv, ok := info.Types[r.Type]; ok && !isErrorType(tv.Type) {
				nonError = true
			}
		}
		if nonError && containsCallNamed(body, allQueryMethods) {
			out[obj] = true
		}
	}
	for _, f := range pass.Unit.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			consider(info.Defs[fd.Name], fd.Type, fd.Body)
			ast.Inspect(fd, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
					return true
				}
				id, ok := asg.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				lit, ok := asg.Rhs[0].(*ast.FuncLit)
				if !ok {
					return true
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				consider(obj, lit.Type, lit.Body)
				return true
			})
		}
	}
	return out
}

// forEachFuncBody visits fd's own body and the body of every function
// literal nested in it, innermost bodies included.
func forEachFuncBody(fd *ast.FuncDecl, visit func(*ast.BlockStmt)) {
	visit(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			visit(lit.Body)
		}
		return true
	})
}

// mentionsCancellation reports whether the body references a cancellation
// carrier — an identifier named env or ctx. Functions with no carrier in
// scope have nothing to check against; the serial reference
// implementations are exempt this way by construction.
func mentionsCancellation(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (id.Name == "env" || id.Name == "ctx") {
			found = true
			return false
		}
		return !found
	})
	return found
}

// checkSearchCommits applies the check-before-commit rule to every
// statement list in body. Only the top statement list of each block is
// walked here (nested blocks come back through eachStmtList), so "next
// statement" is well defined.
func checkSearchCommits(pass *framework.Pass, info *types.Info, body *ast.BlockStmt, searchLike map[types.Object]bool) {
	eachStmtList(body, func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			call, results := searchAssignment(info, stmt, searchLike)
			if call == nil || len(results) == 0 {
				continue
			}
			for _, later := range stmts[i+1:] {
				if containsCallNamed(later, cancelCheckNames) {
					break
				}
				if usesObject(info, later, results) {
					pass.Reportf(call.Pos(), "bounded-search result committed without a cancellation check: consult env.cancelled()/ctx.Err() between %s and the decision (a truncated search must never decide)", exprString(call.Fun))
					break
				}
			}
		}
	})
}

// searchAssignment recognizes `x, y := search(...)` where search is a
// Searcher query method or a search-like helper, returning the call and
// the non-error result objects whose first use must be guarded.
func searchAssignment(info *types.Info, stmt ast.Stmt, searchLike map[types.Object]bool) (*ast.CallExpr, map[types.Object]bool) {
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return nil, nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	isSearch := valueQueryMethods[calledMethodName(call)]
	if !isSearch {
		if obj := calledIdent(info, call); obj != nil && searchLike[obj] {
			isSearch = true
		}
	}
	if !isSearch {
		return nil, nil
	}
	results := make(map[types.Object]bool)
	for _, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || isErrorType(obj.Type()) {
			continue
		}
		results[obj] = true
	}
	return call, results
}

// checkEntryPoint enforces context threading on exported engine entry
// points: Greedy* and FaultTolerant* package functions.
func checkEntryPoint(pass *framework.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if fd.Recv != nil || !ast.IsExported(name) {
		return
	}
	if !hasPrefix(name, "Greedy") && !hasPrefix(name, "FaultTolerant") {
		return
	}
	if threadsContext(pass.Unit.Info, fd.Type) || delegatesInOneReturn(fd.Body) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported engine entry point %s does not thread a context: take a context.Context, an options struct with a context field, or delegate to an entry point that does", name)
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// threadsContext reports whether the signature carries a context —
// directly, or inside a (possibly pointer-to) struct parameter with a
// context.Context field.
func threadsContext(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, p := range ftype.Params.List {
		tv, ok := info.Types[p.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if isContextType(t) {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isContextType(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

// delegatesInOneReturn recognizes thin wrappers whose whole body is one
// return statement: the delegate carries the context (or is itself
// checked), so the wrapper need not re-declare it.
func delegatesInOneReturn(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if _, ok := r.(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}
