package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func unitSquarePoints(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return pts
}

func TestEuclideanBasics(t *testing.T) {
	m := MustEuclidean([][]float64{{0, 0}, {3, 4}, {0, 4}})
	if m.N() != 3 || m.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d", m.N(), m.Dim())
	}
	if d := m.Dist(0, 1); d != 5 {
		t.Fatalf("Dist(0,1) = %v, want 5", d)
	}
	if d := m.Dist(1, 2); d != 3 {
		t.Fatalf("Dist(1,2) = %v, want 3", d)
	}
	if d := m.Dist(2, 2); d != 0 {
		t.Fatalf("Dist(2,2) = %v, want 0", d)
	}
	if got := m.Point(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Point(1) = %v", got)
	}
}

func TestNewEuclideanValidation(t *testing.T) {
	if _, err := NewEuclidean([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("mixed dimensions accepted")
	}
	if _, err := NewEuclidean([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if _, err := NewEuclidean([][]float64{{}}); err == nil {
		t.Fatal("zero-dimensional point accepted")
	}
	m, err := NewEuclidean(nil)
	if err != nil || m.N() != 0 {
		t.Fatalf("empty metric: %v, N=%d", err, m.N())
	}
}

func TestEuclideanSatisfiesAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := MustEuclidean(unitSquarePoints(rng, 30))
	if err := Check(m, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{1}}); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	if _, err := NewMatrix([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("zero off-diagonal accepted")
	}
	if _, err := NewMatrix([][]float64{{0, 1, 2}, {1, 0, 1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	m, err := NewMatrix([][]float64{{0, 2}, {2, 0}})
	if err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if m.N() != 2 || m.Dist(0, 1) != 2 {
		t.Fatal("matrix accessors wrong")
	}
}

func TestFromGraphIsShortestPathMetric(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 3, 10) // shortcut is longer than the path
	m, err := FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if d := m.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) = %v, want 3 (shortest path, not edge)", d)
	}
	if err := Check(m, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraphDisconnected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := FromGraph(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestCompleteGraph(t *testing.T) {
	m := MustEuclidean([][]float64{{0, 0}, {1, 0}, {0, 1}})
	g := CompleteGraph(m)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3, 3", g.N(), g.M())
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || math.Abs(w-math.Sqrt2) > 1e-12 {
		t.Fatalf("EdgeWeight(1,2) = %v", w)
	}
}

func TestDiameterMinDistanceAspect(t *testing.T) {
	m := MustEuclidean([][]float64{{0, 0}, {1, 0}, {4, 0}})
	if d := Diameter(m); d != 4 {
		t.Fatalf("Diameter = %v, want 4", d)
	}
	if d := MinDistance(m); d != 1 {
		t.Fatalf("MinDistance = %v, want 1", d)
	}
	if a := AspectRatio(m); a != 4 {
		t.Fatalf("AspectRatio = %v, want 4", a)
	}
	single := MustEuclidean([][]float64{{0, 0}})
	if Diameter(single) != 0 || AspectRatio(single) != 0 {
		t.Fatal("degenerate metric stats wrong")
	}
}

func TestNetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := MustEuclidean(unitSquarePoints(rng, 100))
	for _, r := range []float64{0.05, 0.1, 0.3, 1.0} {
		net := Net(m, nil, r)
		// Separation: net points pairwise > r apart.
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				if m.Dist(net[i], net[j]) <= r {
					t.Fatalf("r=%v: net points %d, %d at distance %v <= r", r, net[i], net[j], m.Dist(net[i], net[j]))
				}
			}
		}
		// Covering: every point within r of some net point.
		for p := 0; p < m.N(); p++ {
			ok := false
			for _, c := range net {
				if m.Dist(p, c) <= r {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("r=%v: point %d uncovered", r, p)
			}
		}
	}
}

func TestNetAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := MustEuclidean(unitSquarePoints(rng, 60))
	r := 0.2
	net, assign := NetAssignment(m, nil, r)
	for p := 0; p < m.N(); p++ {
		ci, ok := assign[p]
		if !ok {
			t.Fatalf("point %d unassigned", p)
		}
		if d := m.Dist(p, net[ci]); d > r {
			t.Fatalf("point %d assigned to center at distance %v > r=%v", p, d, r)
		}
	}
	// Centers assigned to themselves.
	for ci, c := range net {
		if assign[c] != ci {
			t.Fatalf("center %d assigned to %d", c, assign[c])
		}
	}
}

func TestNetOnSubset(t *testing.T) {
	m := MustEuclidean([][]float64{{0, 0}, {0.1, 0}, {5, 0}, {10, 0}})
	net := Net(m, []int{2, 3}, 1)
	if len(net) != 2 || net[0] != 2 || net[1] != 3 {
		t.Fatalf("subset net = %v, want [2 3]", net)
	}
}

func TestDoublingDimensionLowForLine(t *testing.T) {
	// Points on a line: doubling dimension 1 (estimate should be small).
	pts := make([][]float64, 128)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	m := MustEuclidean(pts)
	dd := DoublingDimension(m)
	if dd <= 0 || dd > 3 {
		t.Fatalf("line doubling dim estimate = %v, want in (0, 3]", dd)
	}
}

func TestDoublingDimensionPlaneVsLine(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	line := make([][]float64, 100)
	for i := range line {
		line[i] = []float64{rng.Float64() * 100}
	}
	plane := unitSquarePoints(rng, 100)
	ddLine := DoublingDimension(MustEuclidean(line))
	ddPlane := DoublingDimension(MustEuclidean(plane))
	if ddPlane <= ddLine {
		t.Fatalf("plane ddim (%v) should exceed line ddim (%v)", ddPlane, ddLine)
	}
}

func TestPackingCountBound(t *testing.T) {
	// On a unit grid, a ball of radius R contains at most O((2R/r)^2) points
	// pairwise > r apart (Lemma 1 shape). Spot-check smallish values.
	var pts [][]float64
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			pts = append(pts, []float64{float64(x), float64(y)})
		}
	}
	m := MustEuclidean(pts)
	center := 55 // (5,5)
	got := PackingCount(m, center, 2.0, 0.9)
	// Points pairwise > 0.9 apart within radius 2: at most ~(2*2/0.9+1)^2 ≈ 29.
	if got < 5 || got > 29 {
		t.Fatalf("PackingCount = %d, want within [5, 29]", got)
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	// A matrix violating the triangle inequality must be caught by Check.
	d := [][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	}
	m, err := NewMatrix(d)
	if err != nil {
		t.Fatalf("NewMatrix: %v", err)
	}
	if err := Check(m, 1e-12); err == nil {
		t.Fatal("Check missed triangle violation")
	}
}

func TestGraphMetricQuickProperty(t *testing.T) {
	// Property: the shortest-path metric of any connected random graph
	// passes the metric axioms.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 0.1+rng.Float64()*5)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 0.1+rng.Float64()*5)
			}
		}
		m, err := FromGraph(g)
		if err != nil {
			return false
		}
		return Check(m, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
