package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/verify"
)

// maskVertices is the materializing reference the production path used to
// call once per fault set: a copy of h with all edges incident to the
// given vertices removed. It is retained here as the ground truth the
// masked in-place search is property-tested against.
func maskVertices(h *graph.Graph, faults []int) *graph.Graph {
	if len(faults) == 0 {
		return h
	}
	dead := make(map[int]bool, len(faults))
	for _, v := range faults {
		dead[v] = true
	}
	out := graph.New(h.N())
	for _, e := range h.Edges() {
		if !dead[e.U] && !dead[e.V] {
			out.MustAddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

// faultTolerantGreedyReference is the pre-streaming implementation —
// materialized sorted pair list, one masked graph copy per fault set —
// kept as the bit-identity reference for the production path.
func faultTolerantGreedyReference(m metric.Metric, t float64, f int) *Result {
	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res
	}
	pairs := sortedPairs(m)
	h := graph.New(n)
	covered := func(e graph.Edge) bool {
		limit := t * e.W
		check := func(faults []int) bool {
			_, within := maskVertices(h, faults).DistanceWithin(e.U, e.V, limit)
			return within
		}
		if !check(nil) {
			return false
		}
		for a := 0; a < n; a++ {
			if a == e.U || a == e.V {
				continue
			}
			if !check([]int{a}) {
				return false
			}
			if f < 2 {
				continue
			}
			for b := a + 1; b < n; b++ {
				if b == e.U || b == e.V {
					continue
				}
				if !check([]int{a, b}) {
					return false
				}
			}
		}
		return true
	}
	for _, e := range pairs {
		res.EdgesExamined++
		if covered(e) {
			continue
		}
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
	}
	return res
}

// TestFaultTolerantGreedyMatchesReference is the bit-identity property:
// the streamed, masked-search production path must reproduce the
// materialize-and-copy reference exactly — same edge sequence, weight,
// and examined count — on random Euclidean instances for f in {1, 2}.
func TestFaultTolerantGreedyMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
		tt := 1.2 + rng.Float64()
		for f := 1; f <= 2; f++ {
			want := faultTolerantGreedyReference(m, tt, f)
			got, err := FaultTolerantGreedy(m, tt, f)
			if err != nil {
				return false
			}
			if want.Weight != got.Weight || want.EdgesExamined != got.EdgesExamined ||
				len(want.Edges) != len(got.Edges) {
				return false
			}
			for i := range want.Edges {
				if want.Edges[i] != got.Edges[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultTolerantNoGraphCopies pins the repair this path received: the
// per-fault-set probe runs on the live spanner through the reusable
// masked search, so a full covered-check over every fault set allocates
// nothing — where the old path built one graph copy (plus adjacency
// slices) per fault set.
func TestFaultTolerantNoGraphCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 14, 2))
	res, err := FaultTolerantGreedy(m, 1.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	search := graph.NewSearcher(h.N())
	e := res.Edges[len(res.Edges)-1]
	var stats FaultTolerantStats
	// Warm-up materializes the searcher's lazily allocated mask buffer.
	ftCovered(search, h, nil, e, 1.6, 2, &stats)
	if allocs := testing.AllocsPerRun(10, func() {
		ftCovered(search, h, nil, e, 1.6, 2, &stats)
	}); allocs != 0 {
		t.Fatalf("ftCovered allocated %.1f objects per full fault-set sweep, want 0", allocs)
	}
	// VerifyFaultTolerance allocates its searcher and row once per call,
	// independent of the fault-set count: growing from f=1 (n+1 sets) to
	// f=2 (n+1+n(n-1)/2 sets) must not add allocations.
	if err := VerifyFaultTolerance(h, m, 1.6, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
	a1 := testing.AllocsPerRun(3, func() {
		if err := VerifyFaultTolerance(h, m, 1.6, 1, 1e-9); err != nil {
			t.Fatal(err)
		}
	})
	a2 := testing.AllocsPerRun(3, func() {
		if err := VerifyFaultTolerance(h, m, 1.6, 2, 1e-9); err != nil {
			t.Fatal(err)
		}
	})
	if a2 > a1+4 {
		t.Fatalf("VerifyFaultTolerance allocations scale with fault sets: f=1 %.1f vs f=2 %.1f", a1, a2)
	}
}

func TestFaultTolerantGreedyValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 1}})
	if _, err := FaultTolerantGreedy(m, 0.5, 1); err == nil {
		t.Fatal("bad stretch accepted")
	}
	if _, err := FaultTolerantGreedy(m, 2, -1); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := FaultTolerantGreedy(m, 2, 3); err == nil {
		t.Fatal("unsupported f accepted")
	}
}

func TestFaultTolerantZeroFaultsEqualsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 20, 2))
	a, err := FaultTolerantGreedy(m, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("f=0 differs from greedy: %d vs %d edges", len(a.Edges), len(b.Edges))
	}
}

func TestFaultTolerantOneFaultSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 16, 2))
	const tt = 1.8
	res, err := FaultTolerantGreedy(m, tt, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	if err := VerifyFaultTolerance(h, m, tt, 1, 1e-9); err != nil {
		t.Fatal(err)
	}
	// The FT spanner is also a plain spanner (F = {} is a fault set).
	if _, err := verify.MetricSpanner(h, m, tt, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTolerantTwoFaultsSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 10, 2))
	const tt = 2.0
	res, err := FaultTolerantGreedy(m, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFaultTolerance(res.Graph(), m, tt, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFaultToleranceCostsEdges(t *testing.T) {
	// More fault tolerance cannot mean fewer edges: every f-FT spanner's
	// requirement set contains the (f-1)-FT requirements.
	rng := rand.New(rand.NewSource(73))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 14, 2))
	const tt = 1.6
	prev := -1
	for f := 0; f <= 2; f++ {
		res, err := FaultTolerantGreedy(m, tt, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() < prev {
			t.Fatalf("f=%d spanner smaller than f=%d one: %d < %d", f, f-1, res.Size(), prev)
		}
		prev = res.Size()
	}
}

func TestFaultTolerantMinDegree(t *testing.T) {
	// In a 1-FT spanner every vertex needs degree >= 2 (a degree-1 vertex
	// is disconnected by its only neighbor's failure)... except in trivial
	// 2-point metrics. Check on a real instance.
	rng := rand.New(rand.NewSource(74))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 12, 2))
	res, err := FaultTolerantGreedy(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) < 2 {
			t.Fatalf("vertex %d has degree %d in a 1-FT spanner", v, h.Degree(v))
		}
	}
}

func TestVerifyFaultToleranceDetectsFragileSpanner(t *testing.T) {
	// A path spanner of collinear points dies with any interior failure.
	pts := [][]float64{{0}, {1}, {2}, {3}}
	m := metric.MustEuclidean(pts)
	res, err := GreedyMetric(m, 1.1) // the path 0-1-2-3
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFaultTolerance(res.Graph(), m, 1.1, 1, 1e-9); err == nil {
		t.Fatal("fragile path passed 1-FT verification")
	}
	if err := VerifyFaultTolerance(res.Graph(), m, 1.1, 5, 1e-9); err == nil {
		t.Fatal("unsupported f accepted by verifier")
	}
}
