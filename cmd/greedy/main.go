// Command greedy reads a weighted graph or a point set from a file and
// writes the greedy t-spanner along with its quality statistics.
//
// Usage:
//
//	greedy -t 3 -graph edges.txt        # graph input: lines "u v w"
//	greedy -t 1.5 -points pts.txt       # point input: lines "x1 x2 ... xd"
//	greedy -t 1.5 -points pts.txt -algo approx   # approximate-greedy
//	greedy -t 3 -graph edges.txt -workers 4      # batched-parallel engine
//	greedy -t 3 -graph edges.txt -workers -1     # sequential reference scan
//	greedy -t 1.5 -points pts.txt -workers 4     # parallel cached-bound metric engine
//	greedy -t 1.5 -points pts.txt -workers -1    # serial cached-bound reference
//	greedy -t 1.5 -points pts.txt -insert 10     # incremental: build on all but the
//	                                             # last 10 inputs, insert those via
//	                                             # the maintained spanner
//	greedy -t 3 -graph edges.txt -insert 25      # same for the last 25 edges
//	greedy -t 1.5 -points pts.txt -delete 10     # dynamic: build on everything, then
//	                                             # remove the last 10 inputs via the
//	                                             # maintained spanner
//	greedy -t 3 -graph edges.txt -delete 25      # same for the last 25 edges
//	greedy -t 1.5 -points pts.txt -hubs -1       # hub-label certification fast path
//	                                             # (auto hub count; -hubs k picks k)
//	greedy -t 1.5 -points pts.txt -save s.snap   # build via the maintained engine and
//	                                             # persist its full state (snapshot)
//	greedy -load s.snap                          # print the spanner stored in a
//	                                             # snapshot (no rebuild, no input file)
//
// Graph files list one edge per line as "u v w" with integer vertex ids
// (vertex count is inferred as max id + 1). Point files list one point per
// line as whitespace-separated coordinates; the Euclidean metric over the
// points is spanned. Lines starting with '#' are skipped.
//
// Output: one spanner edge per line ("u v w"), then a "# stats" trailer
// with size, weight, lightness, max degree, and measured max stretch.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/persist"
	"repro/internal/verify"
)

func main() {
	// SIGINT/SIGTERM cancel the build context: the engines stop at the
	// next check point and return the decided prefix, which run reports
	// to stderr along with any budget-degradation log before exiting
	// nonzero. stop() restores default signal behavior afterwards, so a
	// second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "greedy:", err)
		os.Exit(1)
	}
}

// reportAbort describes a cancelled or faulted build on stderr: the size
// of the clean decided prefix and every degradation step the budget
// ladder took. The typed error still propagates, so the exit code stays
// nonzero and BENCH-style consumers see the failure.
func reportAbort(res *core.Result, degradations []string, err error) error {
	if res == nil || !res.Partial {
		return err
	}
	fmt.Fprintf(os.Stderr, "greedy: build aborted; partial spanner holds %d edges (weight %g) from %d decided candidates\n",
		res.Size(), res.Weight, res.EdgesExamined)
	for _, step := range degradations {
		fmt.Fprintf(os.Stderr, "greedy: degradation: %s\n", step)
	}
	return err
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("greedy", flag.ContinueOnError)
	t := fs.Float64("t", 2, "stretch parameter (>= 1)")
	graphPath := fs.String("graph", "", "path to an edge-list graph file")
	pointsPath := fs.String("points", "", "path to a point-set file")
	algo := fs.String("algo", "greedy", "construction: greedy or approx (points only)")
	workers := fs.Int("workers", 0, "parallel greedy workers (0 = GOMAXPROCS, -1 = sequential reference engine)")
	insert := fs.Int("insert", 0, "build on all but the last k inputs, then add those through the incremental engine")
	del := fs.Int("delete", 0, "build on the full input, then remove the last k inputs through the dynamic engine")
	hubs := fs.Int("hubs", 0, "hub-label certification fast path: k hub vertices (0 = off, -1 = auto); output is identical either way")
	timeout := fs.Duration("timeout", 0, "abort the build after this duration (budget deadline; 0 = none)")
	maxBytes := fs.Int64("maxbytes", 0, "working-set byte budget with graceful degradation (0 = none)")
	savePath := fs.String("save", "", "build through the maintained engine and persist its full state to this snapshot file")
	loadPath := fs.String("load", "", "print the spanner stored in this snapshot file (exclusive with -graph/-points)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget := core.Budget{MaxBytes: *maxBytes}
	if *timeout > 0 {
		budget.Deadline = time.Now().Add(*timeout)
	}
	switch {
	case *loadPath != "" && (*graphPath != "" || *pointsPath != "" || *savePath != "" || *insert > 0 || *del > 0):
		return fmt.Errorf("-load prints a stored snapshot; it cannot be combined with -graph, -points, -save, -insert, or -delete")
	case *loadPath != "" && *workers < 0:
		return fmt.Errorf("-load restores the maintained engine; it has no sequential reference mode (-workers -1)")
	case *loadPath != "":
		return printSnapshot(out, *loadPath, *workers)
	case *savePath != "" && *algo != "greedy":
		return fmt.Errorf("-save applies to the greedy construction only")
	case *savePath != "" && *workers < 0:
		return fmt.Errorf("-save uses the maintained engine; it has no sequential reference mode (-workers -1)")
	case *graphPath != "" && *pointsPath != "":
		return fmt.Errorf("use exactly one of -graph or -points")
	case *pointsPath != "" && *algo == "approx" && *workers != 0:
		return fmt.Errorf("-workers applies to the greedy constructions only")
	case *pointsPath != "" && *algo == "approx" && *hubs != 0:
		return fmt.Errorf("-hubs applies to the greedy constructions only")
	case *hubs != 0 && *workers < 0:
		return fmt.Errorf("-hubs applies to the batched engines; the sequential reference (-workers -1) has no oracle")
	case *insert < 0:
		return fmt.Errorf("-insert must be >= 0, got %d", *insert)
	case *insert > 0 && *workers < 0:
		return fmt.Errorf("-insert uses the incremental engine; it has no sequential reference mode (-workers -1)")
	case *insert > 0 && *algo != "greedy":
		return fmt.Errorf("-insert applies to the greedy construction only")
	case *del < 0:
		return fmt.Errorf("-delete must be >= 0, got %d", *del)
	case *insert > 0 && *del > 0:
		return fmt.Errorf("-insert and -delete cannot be combined; interleave updates through the library API instead")
	case *del > 0 && *workers < 0:
		return fmt.Errorf("-delete uses the dynamic engine; it has no sequential reference mode (-workers -1)")
	case *del > 0 && *algo != "greedy":
		return fmt.Errorf("-delete applies to the greedy construction only")
	case *graphPath != "":
		g, err := readGraph(*graphPath)
		if err != nil {
			return err
		}
		var res *core.Result
		var inc *core.IncrementalSpanner
		var stats core.ParallelStats
		popts := core.ParallelOptions{
			Workers: *workers, Hubs: resolveHubs(*hubs, g.N()),
			Ctx: ctx, Budget: budget, Stats: &stats,
		}
		if *insert > 0 {
			inc, err = incrementalGraph(g, *t, popts, *insert)
		} else if *del > 0 {
			inc, err = decrementalGraph(g, *t, popts, *del)
			if err == nil {
				// The output spans the surviving graph; verify against it.
				edges := g.Edges()
				g = g.Subgraph(edges[:len(edges)-*del])
			}
		} else if *savePath != "" {
			// -save needs the maintained engine's exportable state, so a
			// plain build is routed through it; the output is identical.
			inc, err = core.NewIncrementalGraph(g, *t, popts)
		} else if *workers < 0 {
			// The parallel engine produces the same spanner as the
			// sequential scan; -workers -1 keeps the reference path
			// reachable for cross-checking.
			res, err = core.GreedyGraph(g, *t)
		} else {
			res, err = core.GreedyGraphParallelOpts(g, *t, popts)
		}
		if err == nil && inc != nil {
			res, err = inc.Result()
		}
		if err != nil {
			return reportAbort(res, stats.Degradations, err)
		}
		if *savePath != "" {
			if err := saveSnapshot(inc, *savePath); err != nil {
				return err
			}
		}
		return writeGraphResult(out, res, g, *t)
	case *pointsPath != "":
		pts, err := readPoints(*pointsPath)
		if err != nil {
			return err
		}
		m, err := metric.NewEuclidean(pts)
		if err != nil {
			return err
		}
		switch *algo {
		case "greedy":
			var res *core.Result
			var inc *core.IncrementalSpanner
			var stats core.MetricParallelStats
			mopts := core.MetricParallelOptions{
				Workers: *workers, Hubs: resolveHubs(*hubs, m.N()),
				Ctx: ctx, Budget: budget, Stats: &stats,
			}
			if *insert > 0 {
				inc, err = incrementalPoints(pts, *t, mopts, *insert)
			} else if *del > 0 {
				inc, err = decrementalPoints(pts, *t, mopts, *del)
				if err == nil {
					// The output spans the surviving points; verify
					// against their metric.
					m, err = metric.NewEuclidean(pts[:len(pts)-*del])
				}
			} else if *savePath != "" {
				// -save needs the maintained engine's exportable state, so
				// a plain build is routed through it; output is identical.
				inc, err = core.NewIncrementalMetric(m, *t, mopts)
			} else if *workers < 0 {
				// The parallel metric engine produces the same spanner as
				// the serial cached-bound scan; -workers -1 keeps the
				// reference path reachable for cross-checking.
				res, err = core.GreedyMetricFastSerial(m, *t)
			} else {
				res, err = core.GreedyMetricFastParallelOpts(m, *t, mopts)
			}
			if err == nil && inc != nil {
				res, err = inc.Result()
			}
			if err != nil {
				return reportAbort(res, stats.Degradations, err)
			}
			if *savePath != "" {
				if err := saveSnapshot(inc, *savePath); err != nil {
					return err
				}
			}
			return writeMetricResult(out, res.Graph(), m, *t)
		case "approx":
			if *t <= 1 || *t >= 2 {
				return fmt.Errorf("approx needs 1 < t < 2, got %v", *t)
			}
			res, err := approx.Greedy(m, approx.Options{Eps: *t - 1})
			if err != nil {
				return err
			}
			return writeMetricResult(out, res.Spanner, m, *t)
		default:
			return fmt.Errorf("unknown algo %q", *algo)
		}
	default:
		return fmt.Errorf("one of -graph or -points is required")
	}
}

// resolveHubs maps the -hubs flag to an oracle size: negative selects the
// automatic hub count for the instance.
func resolveHubs(hubs, n int) int {
	if hubs < 0 {
		return core.DefaultHubs(n)
	}
	return hubs
}

// incrementalPoints builds the spanner of all but the last k points and
// inserts those through the maintained incremental spanner — the output is
// identical to a from-scratch build on the full point set.
func incrementalPoints(pts [][]float64, t float64, opts core.MetricParallelOptions, k int) (*core.IncrementalSpanner, error) {
	if k >= len(pts) {
		return nil, fmt.Errorf("-insert %d holds out every one of the %d points", k, len(pts))
	}
	base, err := metric.NewEuclidean(pts[:len(pts)-k])
	if err != nil {
		return nil, err
	}
	inc, err := core.NewIncrementalMetric(base, t, opts)
	if err != nil {
		return nil, err
	}
	union, err := metric.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	if err := inc.Insert(union); err != nil {
		return nil, err
	}
	return inc, nil
}

// decrementalPoints builds the spanner of the full point set and then
// removes the last k points through the maintained dynamic spanner — the
// output is identical to a from-scratch build on the surviving points.
func decrementalPoints(pts [][]float64, t float64, opts core.MetricParallelOptions, k int) (*core.IncrementalSpanner, error) {
	if k >= len(pts) {
		return nil, fmt.Errorf("-delete %d removes every one of the %d points", k, len(pts))
	}
	m, err := metric.NewEuclidean(pts)
	if err != nil {
		return nil, err
	}
	inc, err := core.NewIncrementalMetric(m, t, opts)
	if err != nil {
		return nil, err
	}
	victims := make([]int, k)
	for i := range victims {
		victims[i] = len(pts) - k + i
	}
	if err := inc.Delete(victims...); err != nil {
		return nil, err
	}
	return inc, nil
}

// decrementalGraph builds the spanner of the full graph and then removes
// its last k edges (input order) through the maintained dynamic spanner.
func decrementalGraph(g *graph.Graph, t float64, opts core.ParallelOptions, k int) (*core.IncrementalSpanner, error) {
	edges := g.Edges()
	if k >= len(edges) {
		return nil, fmt.Errorf("-delete %d removes every one of the %d edges", k, len(edges))
	}
	inc, err := core.NewIncrementalGraph(g, t, opts)
	if err != nil {
		return nil, err
	}
	if err := inc.DeleteEdges(edges[len(edges)-k:]...); err != nil {
		return nil, err
	}
	return inc, nil
}

// incrementalGraph builds the spanner of g minus its last k edges (input
// order) and inserts those through the maintained incremental spanner.
func incrementalGraph(g *graph.Graph, t float64, opts core.ParallelOptions, k int) (*core.IncrementalSpanner, error) {
	edges := g.Edges()
	if k >= len(edges) {
		return nil, fmt.Errorf("-insert %d holds out every one of the %d edges", k, len(edges))
	}
	base := g.Subgraph(edges[:len(edges)-k])
	inc, err := core.NewIncrementalGraph(base, t, opts)
	if err != nil {
		return nil, err
	}
	if err := inc.InsertEdges(edges[len(edges)-k:]...); err != nil {
		return nil, err
	}
	return inc, nil
}

// saveSnapshot persists the maintained spanner's full exported state to
// path as a versioned, digest-guarded snapshot (atomic write + fsync).
func saveSnapshot(inc *core.IncrementalSpanner, path string) error {
	st, err := inc.ExportState()
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(path, persist.EncodeSnapshot(st, 0), 0o644)
}

// printSnapshot restores the maintained spanner stored in a snapshot file
// and writes its edges plus a stats trailer. The original input is not in
// the snapshot, so the stretch/lightness audit of the build paths is not
// repeated here; the snapshot's own section digests already guarantee the
// restored state matches what was saved.
func printSnapshot(out *os.File, path string, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, _, err := persist.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	inc, err := core.ImportIncremental(st,
		core.MetricParallelOptions{Workers: workers},
		core.ParallelOptions{Workers: workers})
	if err != nil {
		return err
	}
	res, err := inc.Result()
	if err != nil {
		return err
	}
	for _, e := range res.Edges {
		fmt.Fprintf(out, "%d %d %g\n", e.U, e.V, e.W)
	}
	fmt.Fprintf(out, "# stats: edges=%d weight=%g maxdeg=%d\n",
		res.Size(), res.Weight, res.Graph().MaxDegree())
	return nil
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'u v w', got %q", path, line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		edges = append(edges, edge{u, v, w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.New(maxID + 1)
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func readPoints(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts [][]float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		p := make([]float64, len(fields))
		for i, fstr := range fields {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			p[i] = v
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

func writeGraphResult(out *os.File, res *core.Result, g *graph.Graph, t float64) error {
	h := res.Graph()
	for _, e := range res.Edges {
		fmt.Fprintf(out, "%d %d %g\n", e.U, e.V, e.W)
	}
	rep, err := verify.Spanner(h, g, t, 1e-9)
	if err != nil {
		return fmt.Errorf("output failed verification: %w", err)
	}
	light, err := verify.Lightness(h, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# stats: edges=%d weight=%g lightness=%.4f maxdeg=%d maxstretch=%.4f\n",
		res.Size(), res.Weight, light, h.MaxDegree(), rep.MaxStretch)
	return nil
}

func writeMetricResult(out *os.File, h *graph.Graph, m metric.Metric, t float64) error {
	for _, e := range h.Edges() {
		fmt.Fprintf(out, "%d %d %g\n", e.U, e.V, e.W)
	}
	rep, err := verify.MetricSpanner(h, m, t, 1e-9)
	if err != nil {
		return fmt.Errorf("output failed verification: %w", err)
	}
	light, err := verify.MetricLightness(h, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "# stats: edges=%d weight=%g lightness=%.4f maxdeg=%d maxstretch=%.4f\n",
		h.M(), h.Weight(), light, h.MaxDegree(), rep.MaxStretch)
	return nil
}
