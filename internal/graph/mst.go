package graph

import (
	"repro/internal/pq"
)

// MSTKruskal computes a minimum spanning forest of g using Kruskal's
// algorithm with the deterministic edge order of SortedEdges. For a
// connected graph the result has exactly n-1 edges. Ties are broken the same
// way the greedy spanner breaks them, which realizes Observation 2 of the
// paper: the greedy t-spanner (t >= 1) contains this exact MST.
func (g *Graph) MSTKruskal() []Edge {
	uf := NewUnionFind(g.N())
	var mst []Edge
	for _, e := range g.SortedEdges() {
		if uf.Union(e.U, e.V) {
			mst = append(mst, e)
			if len(mst) == g.N()-1 {
				break
			}
		}
	}
	return mst
}

// MSTPrim computes a minimum spanning forest using Prim's algorithm with an
// indexed heap, O((m + n) log n). For connected graphs it returns n-1 edges
// of the same total weight as MSTKruskal (the tree itself may differ when
// weights tie).
func (g *Graph) MSTPrim() []Edge {
	n := g.N()
	if n == 0 {
		return nil
	}
	inTree := make([]bool, n)
	bestW := make([]float64, n)
	bestE := make([]Edge, n)
	for i := range bestW {
		bestW[i] = Inf
	}
	h := pq.NewIndexedMinHeap(n)
	var mst []Edge
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		// Grow a tree in start's component.
		bestW[start] = 0
		h.Push(start, 0)
		for h.Len() > 0 {
			v, _ := h.Pop()
			if inTree[v] {
				continue
			}
			inTree[v] = true
			if v != start {
				mst = append(mst, bestE[v])
			}
			for _, hf := range g.adj[v] {
				u := int(hf.to)
				if !inTree[u] && hf.w < bestW[u] {
					bestW[u] = hf.w
					bestE[u] = Edge{U: v, V: u, W: hf.w}.Canonical()
					h.Push(u, hf.w)
				}
			}
		}
	}
	return mst
}

// MSTWeight returns the total weight of a minimum spanning forest of g.
func (g *Graph) MSTWeight() float64 {
	var w float64
	for _, e := range g.MSTKruskal() {
		w += e.W
	}
	return w
}

// Lightness returns weight(h) / weight(MST(g)): the normalized weight of a
// subgraph h relative to g's minimum spanning tree, the central quality
// measure of the paper. It returns (0, false) when the MST weight is zero
// (n <= 1 or no edges).
func Lightness(h, g *Graph) (float64, bool) {
	mw := g.MSTWeight()
	if mw == 0 {
		return 0, false
	}
	return h.Weight() / mw, true
}
