package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/approx"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
	"repro/internal/verify"
)

// Scale selects experiment sizes. Small keeps each experiment under a
// second or two (used by unit tests and testing.B inner loops); Full is
// what cmd/spannerbench and EXPERIMENTS.md report.
type Scale int

// Scale values.
const (
	Small Scale = iota + 1
	Full
)

func (s Scale) pick(small, full []int) []int {
	if s == Small {
		return small
	}
	return full
}

// E1Figure1 reproduces Figure 1 of the paper: on the Petersen-graph gadget
// G = H ∪ S, the greedy 3-spanner retains all 15 edges of H while the
// 9-edge star S is itself a valid 3-spanner of G.
func E1Figure1() (*Table, error) {
	tab := &Table{
		Title:  "E1 (Figure 1): greedy is not instance-optimal",
		Header: []string{"construction", "edges", "weight", "H-edges kept", "is 3-spanner"},
		Caption: "Paper: greedy keeps all 15 Petersen edges; the optimal 3-spanner is the 9-edge star.\n" +
			"Existential optimality is untouched: greedy's output equals the greedy spanner of H itself.",
	}
	f1, err := gen.Figure1Gadget(gen.Petersen(), 0, 0.05)
	if err != nil {
		return nil, err
	}
	res, err := core.GreedyGraph(f1.G, 3)
	if err != nil {
		return nil, err
	}
	hEdges := 0
	for _, e := range res.Edges {
		if e.W == 1 {
			hEdges++
		}
	}
	if _, err := verify.Spanner(res.Graph(), f1.G, 3, 1e-9); err != nil {
		return nil, fmt.Errorf("greedy output failed verification: %w", err)
	}
	tab.AddRow("greedy 3-spanner", itoa(res.Size()), f2(res.Weight), itoa(hEdges), "yes")

	// The star: root's unit H-edges plus the weight-(1+eps) star edges.
	star := graph.New(f1.G.N())
	for _, e := range f1.G.Edges() {
		if e.U == f1.Root || e.V == f1.Root {
			star.MustAddEdge(e.U, e.V, e.W)
		}
	}
	starOK := "yes"
	if _, err := verify.Spanner(star, f1.G, 3, 1e-9); err != nil {
		starOK = "no"
	}
	starH := 0
	for _, e := range star.Edges() {
		if e.W == 1 {
			starH++
		}
	}
	tab.AddRow("star S (optimal)", itoa(star.M()), f2(star.Weight()), itoa(starH), starOK)
	return tab, nil
}

// E2GeneralGraphs reproduces the Corollary 4 scaling: greedy
// (2k-1)(1+eps)-spanners on random graphs, reporting edges / n^{1+1/k} and
// lightness / n^{1/k}, which should stay roughly flat as n grows.
func E2GeneralGraphs(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E2 (Corollary 4): greedy size/lightness scaling on general graphs",
		Header: []string{"n", "m", "k", "t", "edges", "edges/n^(1+1/k)", "lightness", "lightness/n^(1/k)", "seq ms", "par ms"},
		Caption: "Corollary 4: greedy (2k-1)(1+eps)-spanner has O(n^{1+1/k}) edges and lightness\n" +
			"O(n^{1/k} eps^{-(3+2/k)}). Normalized columns should stay bounded as n grows.\n" +
			"seq/par ms compare the sequential scan against the batched-parallel engine (same output).",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{50, 100}, []int{100, 200, 400, 800})
	const eps = 0.5
	for _, k := range []int{2, 3, 5} {
		t := float64(2*k-1) * (1 + eps)
		for _, n := range ns {
			g := gen.ErdosRenyi(rng, n, math.Min(1, 8/float64(n)*4), 0.5, 10)
			start := time.Now()
			res, err := core.GreedyGraph(g, t)
			if err != nil {
				return nil, err
			}
			seqMS := time.Since(start).Seconds() * 1000
			start = time.Now()
			par, err := core.GreedyGraphParallel(g, t, 0)
			if err != nil {
				return nil, err
			}
			parMS := time.Since(start).Seconds() * 1000
			if par.Size() != res.Size() || par.Weight != res.Weight {
				return nil, fmt.Errorf("bench: parallel engine diverged on n=%d k=%d", n, k)
			}
			light, err := verify.Lightness(res.Graph(), g)
			if err != nil {
				return nil, err
			}
			normE := float64(res.Size()) / math.Pow(float64(n), 1+1/float64(k))
			normL := light / math.Pow(float64(n), 1/float64(k))
			tab.AddRow(itoa(n), itoa(g.M()), itoa(k), f2(t), itoa(res.Size()), f3(normE), f2(light), f3(normL), f2(seqMS), f2(parMS))
		}
	}
	return tab, nil
}

// E3SelfSpanner audits Lemma 3: on every instance, every edge of the
// greedy output is irreplaceable (no alternative path within t*w in H-e).
func E3SelfSpanner(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E3 (Lemma 3): the greedy spanner is its own unique t-spanner",
		Header: []string{"family", "n", "t", "spanner edges", "removable edges"},
		Caption: "Lemma 3: removing any greedy edge must break the stretch bound;\n" +
			"'removable edges' must be 0 everywhere.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{30}, []int{50, 100, 200})
	for _, n := range ns {
		for _, t := range []float64{1.5, 3, 5} {
			g := gen.ErdosRenyi(rng, n, 0.3, 0.5, 10)
			res, err := core.GreedyGraph(g, t)
			if err != nil {
				return nil, err
			}
			v := core.VerifySelfSpanner(res.Graph(), t)
			tab.AddRow("erdos-renyi", itoa(n), f2(t), itoa(res.Size()), itoa(len(v)))
			if len(v) != 0 {
				return tab, fmt.Errorf("bench: Lemma 3 violated on n=%d t=%v", n, t)
			}
		}
	}
	return tab, nil
}

// E4DoublingLightness reproduces Corollary 10: in doubling metrics the
// greedy (1+eps)-spanner has lightness bounded by a constant independent of
// n (the pre-Gottlieb bound would predict Theta(log n) growth).
func E4DoublingLightness(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E4 (Corollary 10): greedy lightness is constant in doubling metrics",
		Header: []string{"points", "n", "eps", "edges", "edges/n", "lightness", "lightness/log2(n)"},
		Caption: "Corollary 10: lightness is (ddim/eps)^{O(ddim)} — flat in n. The last column\n" +
			"falls as n grows, separating the paper's bound from the old O(log n) one.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{50, 100}, []int{100, 200, 400, 800})
	for _, family := range []string{"uniform2d", "clustered2d"} {
		for _, eps := range []float64{0.5} {
			for _, n := range ns {
				var pts [][]float64
				switch family {
				case "uniform2d":
					pts = gen.UniformPoints(rng, n, 2)
				default:
					pts = gen.ClusteredPoints(rng, n, 2, 8, 0.02)
				}
				m := metric.MustEuclidean(pts)
				res, err := core.GreedyMetricFast(m, 1+eps)
				if err != nil {
					return nil, err
				}
				light, err := verify.MetricLightness(res.Graph(), m)
				if err != nil {
					return nil, err
				}
				tab.AddRow(family, itoa(n), f2(eps), itoa(res.Size()),
					f2(float64(res.Size())/float64(n)), f2(light), f3(light/math.Log2(float64(n))))
			}
		}
	}
	return tab, nil
}

// E5ApproxGreedy reproduces Theorem 6: the approximate-greedy algorithm
// versus the exact greedy on doubling metrics — runtime growth, lightness,
// and degree.
func E5ApproxGreedy(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E5 (Theorem 6): approximate-greedy vs exact greedy in doubling metrics",
		Header: []string{"n", "algo", "ms", "edges", "lightness", "max degree"},
		Caption: "Theorem 6: approximate-greedy runs in near O(n log n) with constant lightness\n" +
			"and degree; exact greedy is near-quadratic. Compare runtime growth rates per doubling.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{64, 128}, []int{128, 256, 512, 1024})
	const eps = 0.5
	for _, n := range ns {
		m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))

		start := time.Now()
		exact, err := core.GreedyMetricFast(m, 1+eps)
		if err != nil {
			return nil, err
		}
		exactMS := time.Since(start).Seconds() * 1000
		lightE, err := verify.MetricLightness(exact.Graph(), m)
		if err != nil {
			return nil, err
		}
		tab.AddRow(itoa(n), "greedy (exact)", f2(exactMS), itoa(exact.Size()), f2(lightE), itoa(exact.MaxDegree()))

		start = time.Now()
		apx, err := approx.Greedy(m, approx.Options{Eps: eps})
		if err != nil {
			return nil, err
		}
		apxMS := time.Since(start).Seconds() * 1000
		lightA, err := verify.MetricLightness(apx.Spanner, m)
		if err != nil {
			return nil, err
		}
		tab.AddRow(itoa(n), "approx-greedy", f2(apxMS), itoa(apx.Spanner.M()), f2(lightA), itoa(apx.Spanner.MaxDegree()))
	}
	return tab, nil
}

// E6Comparison reproduces the [FG05/Far08] comparison the paper cites:
// greedy against Θ-graph, Yao graph, WSPD spanner, and Baswana–Sen on
// uniform planar points — greedy should dominate size and lightness.
func E6Comparison(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E6 ([FG05] comparison): greedy vs popular constructions, 2D uniform points",
		Header: []string{"n", "t", "construction", "ms", "edges", "lightness", "max degree"},
		Caption: "Cited folklore: greedy is ~10x sparser and ~30x lighter than other spanners.\n" +
			"Shapes to check: greedy rows minimize edges and lightness at every (n, t).\n" +
			"greedy (seq) is the cached-bound scan, greedy (par) the batched-parallel engine.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{100}, []int{200, 500})
	for _, n := range ns {
		pts := gen.UniformPoints(rng, n, 2)
		m := metric.MustEuclidean(pts)
		for _, t := range []float64{1.5, 2.0} {
			eps := t - 1
			// addTimed builds via the supplied constructor, timing just the
			// construction; taking the builder as a closure (rather than a
			// shared start-time variable) means a forgotten reset cannot
			// mis-attribute one construction's time to the next.
			addTimed := func(name string, build func() (*graph.Graph, error)) error {
				start := time.Now()
				g, err := build()
				if err != nil {
					return err
				}
				ms := time.Since(start).Seconds() * 1000
				light, lerr := verify.MetricLightness(g, m)
				if lerr != nil {
					return lerr
				}
				tab.AddRow(itoa(n), f2(t), name, f2(ms), itoa(g.M()), f2(light), itoa(g.MaxDegree()))
				return nil
			}
			if err := addTimed("greedy (seq)", func() (*graph.Graph, error) {
				res, err := core.GreedyMetricFast(m, t)
				if err != nil {
					return nil, err
				}
				return res.Graph(), nil
			}); err != nil {
				return nil, err
			}
			if err := addTimed("greedy (par)", func() (*graph.Graph, error) {
				res, err := core.GreedyMetric(m, t)
				if err != nil {
					return nil, err
				}
				return res.Graph(), nil
			}); err != nil {
				return nil, err
			}
			// Θ and Yao cone counts chosen to meet stretch t.
			kTheta := conesForTheta(t)
			if err := addTimed(fmt.Sprintf("theta(k=%d)", kTheta), func() (*graph.Graph, error) {
				return baseline.ThetaGraph(pts, kTheta)
			}); err != nil {
				return nil, err
			}
			kYao := conesForYao(t)
			if err := addTimed(fmt.Sprintf("yao(k=%d)", kYao), func() (*graph.Graph, error) {
				return baseline.YaoGraph(pts, kYao)
			}); err != nil {
				return nil, err
			}
			if err := addTimed("wspd", func() (*graph.Graph, error) {
				return baseline.WSPDSpanner(pts, eps)
			}); err != nil {
				return nil, err
			}
			if err := addTimed("gap-greedy", func() (*graph.Graph, error) {
				return baseline.GapGreedy(m, t)
			}); err != nil {
				return nil, err
			}
			// Baswana–Sen with smallest k whose stretch 2k-1 <= ... use
			// k=2 (stretch 3) as the coarsest comparable baseline.
			if err := addTimed("baswana-sen(k=2)", func() (*graph.Graph, error) {
				return baseline.BaswanaSenMetric(rng, m, 2)
			}); err != nil {
				return nil, err
			}
		}
	}
	return tab, nil
}

// conesForTheta returns the smallest cone count k (capped) such that the
// Θ-graph stretch bound 1/(cos θ - sin θ) with θ = 2π/k is at most t.
func conesForTheta(t float64) int {
	for k := 9; k <= 128; k++ {
		theta := 2 * math.Pi / float64(k)
		if s := 1 / (math.Cos(theta) - math.Sin(theta)); s > 0 && s <= t {
			return k
		}
	}
	return 128
}

// conesForYao returns the smallest k with 1/(1-2 sin(π/k)) <= t.
func conesForYao(t float64) int {
	for k := 7; k <= 128; k++ {
		s := 1 / (1 - 2*math.Sin(math.Pi/float64(k)))
		if s > 0 && s <= t {
			return k
		}
	}
	return 128
}

// E7MSTContainment audits Observations 2 and 6 across instance families.
func E7MSTContainment(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E7 (Observations 2, 6): MST containment and MST-weight equality",
		Header: []string{"family", "n", "t", "MST in spanner", "w(MST(G)) = w(MST(M_G))"},
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{25}, []int{50, 120})
	for _, n := range ns {
		for _, t := range []float64{1.2, 2, 4} {
			g := gen.ErdosRenyi(rng, n, 0.3, 0.5, 10)
			res, err := core.GreedyGraph(g, t)
			if err != nil {
				return nil, err
			}
			in := "yes"
			if err := core.ContainsMST(res, g); err != nil {
				in = "NO: " + err.Error()
			}
			eq := "yes"
			if err := verify.SameMSTWeight(g, 1e-9); err != nil {
				eq = "NO: " + err.Error()
			}
			tab.AddRow("erdos-renyi", itoa(n), f2(t), in, eq)
		}
	}
	return tab, nil
}

// E8LogStretch reproduces Corollary 5: at stretch O(log n / delta) the
// greedy spanner collapses to nearly the MST: ~n-1 edges, lightness ~1+delta.
func E8LogStretch(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E8 (Corollary 5): greedy O(log n / delta)-spanners are almost the MST",
		Header: []string{"n", "delta", "t=log2(n)/delta", "edges", "n-1", "lightness", "1+delta"},
		Caption: "Corollary 5: the greedy O(log n/delta)-spanner has O(n) edges and lightness\n" +
			"at most 1+delta. Lightness column should be at most its target column.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{60}, []int{120, 250, 500})
	for _, n := range ns {
		for _, delta := range []float64{0.25, 0.5, 1} {
			g := gen.ErdosRenyi(rng, n, 0.3, 0.5, 10)
			t := math.Log2(float64(n)) / delta
			res, err := core.GreedyGraph(g, t)
			if err != nil {
				return nil, err
			}
			light, err := verify.Lightness(res.Graph(), g)
			if err != nil {
				return nil, err
			}
			tab.AddRow(itoa(n), f2(delta), f2(t), itoa(res.Size()), itoa(n-1), f3(light), f2(1+delta))
		}
	}
	return tab, nil
}

// E9UnboundedDegree exhibits the [HM06, Smi09] phenomenon motivating
// Section 5: greedy degree grows with n on the multi-scale ring metric
// while the approximate-greedy degree stays bounded.
func E9UnboundedDegree(scale Scale) (*Table, error) {
	tab := &Table{
		Title:  "E9 ([HM06, Smi09]): greedy degree is unbounded in doubling metrics",
		Header: []string{"scales", "per-ring", "n", "greedy max degree", "hub degree", "approx-greedy max degree"},
		Caption: "The hub's greedy degree grows ~ scales*perRing while the approximate-greedy\n" +
			"spanner (Theorem 6) keeps degree bounded.",
	}
	cfgs := [][2]int{{2, 6}, {3, 8}}
	if scale == Full {
		cfgs = [][2]int{{2, 8}, {4, 8}, {6, 8}, {8, 8}}
	}
	const eps = 0.1
	for _, cfg := range cfgs {
		m, err := gen.UnboundedDegreeMetric(cfg[0], cfg[1], eps)
		if err != nil {
			return nil, err
		}
		res, err := core.GreedyMetric(m, 1+eps)
		if err != nil {
			return nil, err
		}
		h := res.Graph()
		apx, err := approx.Greedy(m, approx.Options{Eps: eps})
		if err != nil {
			return nil, err
		}
		tab.AddRow(itoa(cfg[0]), itoa(cfg[1]), itoa(m.N()),
			itoa(h.MaxDegree()), itoa(h.Degree(0)), itoa(apx.Spanner.MaxDegree()))
	}
	return tab, nil
}

// E10Lemma11 audits the Lemma 11 analogue on approximate-greedy outputs:
// kept heavy edges should have second-shortest paths heavier than
// tPrime * w(e).
func E10Lemma11(scale Scale, seed int64) (*Table, error) {
	tab := &Table{
		Title:  "E10 (Lemma 11): second-shortest-path property of kept heavy edges",
		Header: []string{"n", "eps", "t'", "heavy kept", "violations"},
		Caption: "Lemma 11: for e in E\\E0, the 2nd shortest path between e's endpoints exceeds\n" +
			"t'*w(e). Our simulation is conservative, so violations should be 0.",
	}
	rng := rand.New(rand.NewSource(seed))
	ns := scale.pick([]int{50}, []int{100, 200})
	for _, n := range ns {
		for _, eps := range []float64{0.3, 0.5} {
			m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
			res, err := approx.Greedy(m, approx.Options{Eps: eps})
			if err != nil {
				return nil, err
			}
			tPrime := 1.0 // conservative audit floor; see approx docs
			viol, checked := approx.AuditSecondShortestPath(res, tPrime)
			tab.AddRow(itoa(n), f2(eps), f2(tPrime), itoa(checked), itoa(viol))
		}
	}
	return tab, nil
}

// All runs every experiment at the given scale, returning the tables in
// order. Experiments that need randomness derive their seeds from `seed`.
func All(scale Scale, seed int64) ([]*Table, error) {
	type mk func() (*Table, error)
	makers := []mk{
		func() (*Table, error) { return E1Figure1() },
		func() (*Table, error) { return E2GeneralGraphs(scale, seed) },
		func() (*Table, error) { return E3SelfSpanner(scale, seed+1) },
		func() (*Table, error) { return E4DoublingLightness(scale, seed+2) },
		func() (*Table, error) { return E5ApproxGreedy(scale, seed+3) },
		func() (*Table, error) { return E6Comparison(scale, seed+4) },
		func() (*Table, error) { return E7MSTContainment(scale, seed+5) },
		func() (*Table, error) { return E8LogStretch(scale, seed+6) },
		func() (*Table, error) { return E9UnboundedDegree(scale) },
		func() (*Table, error) { return E10Lemma11(scale, seed+7) },
		func() (*Table, error) { return E11FaultTolerance(scale, seed+10) },
		func() (*Table, error) { return E12GraphFamilies(scale, seed+11) },
	}
	var out []*Table
	for _, mker := range makers {
		t, err := mker()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
