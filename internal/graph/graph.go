package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Inf is the distance reported for unreachable vertex pairs.
var Inf = math.Inf(1)

// ErrInvalidInput is the sentinel every input-validation failure wraps:
// out-of-range vertex ids, self-loops, non-positive / non-finite edge
// weights, malformed coordinates or distance matrices, and out-of-range
// stretch parameters all unwrap to it, so callers can catch any rejected
// input with a single errors.Is check instead of matching message text.
var ErrInvalidInput = errors.New("invalid input")

// Edge is an undirected weighted edge. U < V is not required but the
// convention U <= V is maintained by Graph.AddEdge for canonical storage.
type Edge struct {
	U, V int
	W    float64
}

// Canonical returns e with endpoints ordered so that U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// half is one direction of an undirected edge in an adjacency list.
type half struct {
	to int32
	w  float64
}

// Graph is a weighted undirected multigraph with dense integer vertices.
// The zero value is an empty graph with no vertices; construct with New.
type Graph struct {
	adj   [][]half
	edges []Edge
	wsum  float64
}

// New returns an empty graph on n vertices (no edges).
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]half, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.edges = append(c.edges, g.edges...)
	for v, hs := range g.adj {
		c.adj[v] = append([]half(nil), hs...)
	}
	c.wsum = g.wsum
	return c
}

// N reports the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M reports the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Weight reports the total edge weight of the graph.
func (g *Graph) Weight() float64 { return g.wsum }

// Edges returns the graph's edge list. The returned slice is owned by the
// graph and must not be modified by the caller.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgesCopy returns a fresh copy of the edge list safe for mutation.
func (g *Graph) EdgesCopy() []Edge { return append([]Edge(nil), g.edges...) }

// Degree reports the number of edges incident on v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree reports the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > best {
			best = d
		}
	}
	return best
}

// CheckEdge reports whether the undirected edge (u, v, w) is admissible in
// a graph on n vertices: endpoints in range, no self-loop, positive finite
// weight. It is the single definition of edge validity — AddEdge applies
// it, and batch APIs use it to pre-validate before mutating anything.
func CheckEdge(n, u, v int, w float64) error {
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge (%d, %d) out of range [0, %d): %w", u, v, n, ErrInvalidInput)
	case u == v:
		return fmt.Errorf("graph: self-loop at vertex %d: %w", u, ErrInvalidInput)
	case !(w > 0) || math.IsInf(w, 0):
		return fmt.Errorf("graph: edge (%d, %d) has non-positive or non-finite weight %v: %w", u, v, w, ErrInvalidInput)
	}
	return nil
}

// AddEdge inserts the undirected edge (u, v) with weight w. It returns an
// error if the endpoints are out of range, equal (self-loop), or the weight
// is not a positive finite number.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if err := CheckEdge(g.N(), u, v, w); err != nil {
		return err
	}
	g.addEdgeUnchecked(u, v, w)
	return nil
}

// MustAddEdge is AddEdge for statically valid inputs (generators, tests); it
// panics on invalid input, which indicates a programming error.
func (g *Graph) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

func (g *Graph) addEdgeUnchecked(u, v int, w float64) {
	e := Edge{U: u, V: v, W: w}.Canonical()
	g.edges = append(g.edges, e)
	g.adj[u] = append(g.adj[u], half{to: int32(v), w: w})
	g.adj[v] = append(g.adj[v], half{to: int32(u), w: w})
	g.wsum += w
}

// RemoveEdge deletes one occurrence of the undirected edge (u, v) with
// weight w, in place. The first matching occurrence in storage order is
// removed and relative order is preserved everywhere — edge list and both
// adjacency lists — so deletion is deterministic on multigraphs and every
// derived iteration order stays reproducible. It returns an error if no
// such edge exists, in which case the graph is unchanged.
func (g *Graph) RemoveEdge(u, v int, w float64) error {
	e := Edge{U: u, V: v, W: w}.Canonical()
	at := slices.Index(g.edges, e)
	if at < 0 {
		return fmt.Errorf("graph: edge (%d, %d, %v) not present: %w", e.U, e.V, e.W, ErrInvalidInput)
	}
	g.edges = slices.Delete(g.edges, at, at+1)
	g.removeHalf(e.U, e.V, w)
	g.removeHalf(e.V, e.U, w)
	g.wsum -= w
	return nil
}

// removeHalf deletes the first half-edge (from -> to, w) from from's
// adjacency list, preserving order.
func (g *Graph) removeHalf(from, to int, w float64) {
	at := slices.Index(g.adj[from], half{to: int32(to), w: w})
	if at < 0 {
		panic(fmt.Sprintf("graph: adjacency desync removing (%d, %d, %v)", from, to, w))
	}
	g.adj[from] = slices.Delete(g.adj[from], at, at+1)
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	// Scan the shorter adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if int(h.to) == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the minimum weight among edges joining u and v, and
// whether any such edge exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return 0, false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	best, found := Inf, false
	for _, h := range g.adj[u] {
		if int(h.to) == v && h.w < best {
			best, found = h.w, true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Neighbors calls fn for every half-edge (v, to, w) leaving v. Iteration
// stops early if fn returns false.
func (g *Graph) Neighbors(v int, fn func(to int, w float64) bool) {
	for _, h := range g.adj[v] {
		if !fn(int(h.to), h.w) {
			return
		}
	}
}

// Subgraph returns a new graph on the same vertex set containing exactly the
// given edges. The edges need not belong to g; this is a convenience for
// assembling spanners over g's vertex set.
func (g *Graph) Subgraph(edges []Edge) *Graph {
	s := New(g.N())
	for _, e := range edges {
		s.addEdgeUnchecked(e.U, e.V, e.W)
	}
	return s
}

// WithoutEdge returns a copy of g with one occurrence of edge e removed.
// It returns an error if e does not occur in g.
func (g *Graph) WithoutEdge(e Edge) (*Graph, error) {
	e = e.Canonical()
	out := New(g.N())
	removed := false
	for _, f := range g.edges {
		if !removed && f == e {
			removed = true
			continue
		}
		out.addEdgeUnchecked(f.U, f.V, f.W)
	}
	if !removed {
		return nil, fmt.Errorf("graph: edge (%d, %d, %v) not present", e.U, e.V, e.W)
	}
	return out, nil
}

// SortedEdges returns the edges in non-decreasing order of weight, breaking
// ties by (U, V) so that the order is deterministic. The greedy algorithm
// examines edges in exactly this order.
func (g *Graph) SortedEdges() []Edge {
	es := g.EdgesCopy()
	SortEdges(es)
	return es
}

// EdgesInRange calls fn for every edge with weight in [lo, hi), in storage
// order (hi == +Inf matches every edge — AddEdge only admits finite
// positive weights). It is the supplier primitive of the streaming
// candidate engine (core.NewGraphEdgeSource): the bucketed source
// partitions the weight axis and collects one bucket at a time through
// this method, so no sorted copy of the whole edge list is ever
// materialized.
func (g *Graph) EdgesInRange(lo, hi float64, fn func(Edge)) {
	for _, e := range g.edges {
		if lo <= e.W && e.W < hi {
			fn(e)
		}
	}
}

// WeightInRange is the half-open weight-range predicate shared by every
// candidate enumerator of the streaming supply: [lo, hi), except that
// hi == +Inf additionally admits w == +Inf, so infinite weights (a custom
// metric's "disconnected" sentinel) are assigned to the unbounded range
// exactly once instead of never. NaN weights are outside every range.
func WeightInRange(w, lo, hi float64) bool {
	return w >= lo && (w < hi || w == hi && math.IsInf(hi, 1))
}

// EdgeLess reports whether a precedes b in the greedy scan order:
// non-decreasing weight, ties broken by (U, V). It is the single
// definition of that order — SortEdges sorts by it, and the incremental
// engine uses it to locate the first scan position an inserted candidate
// can occupy.
func EdgeLess(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// SortEdges sorts es in non-decreasing order of weight with deterministic
// (U, V) tie-breaking, in place. EdgeLess is a total order up to fully
// identical edges, so the unstable generic sort (no interface boxing, a
// measurably hotter loop than sort.Slice on large candidate buckets)
// yields the same sequence the stable sort would.
func SortEdges(es []Edge) {
	slices.SortFunc(es, func(a, b Edge) int {
		switch {
		case EdgeLess(a, b):
			return -1
		case EdgeLess(b, a):
			return 1
		}
		return 0
	})
}

// ErrDisconnected is returned by algorithms requiring a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// Connected reports whether g is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, int(h.to))
			}
		}
	}
	return count == n
}

// Components returns the vertex sets of the connected components of g.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, h := range g.adj[v] {
				if !seen[h.to] {
					seen[h.to] = true
					stack = append(stack, int(h.to))
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
