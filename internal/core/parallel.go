package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ParallelOptions configures GreedyGraphParallelOpts.
type ParallelOptions struct {
	// Workers is the number of goroutines certifying skips concurrently;
	// 0 selects GOMAXPROCS. With Workers == 1 the engine degenerates to a
	// serial scan that still benefits from the bidirectional query
	// primitive.
	Workers int
	// BatchSize fixes the number of sorted edges examined per
	// certification round. 0 (the default) selects adaptive batching:
	// the width grows while batches certify cleanly and shrinks when too
	// many edges fall through to the serial re-check.
	BatchSize int
	// Source overrides the candidate supply. The default is the streamed
	// weight-bucketed supply of NewGraphEdgeSource; any CandidateSource
	// emitting all of g's edges in greedy scan order yields the identical
	// spanner.
	Source CandidateSource
	// Materialize forces the classic supply (one globally sorted O(m)
	// copy of the edge list, as GreedyGraph scans). Output is identical
	// either way. Ignored when Source is set.
	Materialize bool
	// BucketPairs caps how many candidates the default streamed supply
	// holds materialized at once; <= 0 selects DefaultBucketPairs (scaled
	// up on very large instances). Ignored when Source is set or
	// Materialize is true.
	BucketPairs int
	// Hubs enables the hub-label certification fast path: k hub vertices
	// are selected by the degree heuristic and their exact distance
	// arrays over the growing spanner are maintained incrementally
	// (HubOracle). Each candidate edge is first tested against the O(k)
	// hub upper bound, and only uncertified edges pay a bidirectional
	// search. Hub-certified skips are exact-equivalent, so output stays
	// bit-identical for every k; <= 0 disables the oracle and reproduces
	// the pre-hub engine verbatim.
	Hubs int
	// Stats, when non-nil, is filled with engine counters for ablations
	// and benchmarks.
	Stats *ParallelStats
}

// ParallelStats reports how the batched engine spent its effort.
type ParallelStats struct {
	// Batches is the number of certification rounds.
	Batches int
	// CertifiedSkips counts edges whose skip was certified in parallel
	// against the frozen snapshot.
	CertifiedSkips int
	// SerialSkips counts edges that failed certification but were skipped
	// by the serial re-check (a path appeared within their own batch).
	SerialSkips int
	// Kept counts accepted edges.
	Kept int
	// PeakBucketPairs is the largest candidate bucket the streamed supply
	// held materialized at once (0 for materialized or custom supplies).
	PeakBucketPairs int
	// SupplyPasses counts the streamed supply's enumeration passes
	// (counting, subdivision, collection; 0 for materialized or custom
	// supplies).
	SupplyPasses int
	// FinalBatchSize is the adaptive batch width at the end of the scan.
	FinalBatchSize int
	// HubQueries / HubSkips count certification queries put to the hub
	// oracle and the skips it certified without any search. HubRelaxed is
	// the total number of hub-array entries the dirty-radius maintenance
	// re-relaxed — the oracle's whole upkeep cost, in vertices.
	HubQueries int
	HubSkips   int
	HubRelaxed int
}

// Batch-width bounds for the adaptive policy.
const (
	minBatch = 32
	maxBatch = 8192
)

// initialBatch is the starting width of the adaptive policy, shared by the
// graph and metric engines: wide enough to feed every worker a few queries
// on the first round.
func initialBatch(workers int) int {
	b := minBatch
	if w := 4 * workers; w > b {
		b = w
	}
	return b
}

// adaptBatch is the shared width-update rule: survivors cost extra serial
// work on top of the batch's parallel certification, so the width grows
// while batches certify almost everything — wider batches amortize the
// worker fan-out — and shrinks when the snapshot goes stale too fast to
// certify.
func adaptBatch(batch, survivors, span int) int {
	switch {
	case survivors*4 <= span && batch < maxBatch:
		return batch * 2
	case survivors*2 > span && batch > minBatch:
		return batch / 2
	}
	return batch
}

// serialBatchStat is the FinalBatchSize reported by the workers==1 fast
// paths, which do not batch: the explicitly configured width when one was
// given, otherwise the whole scan.
func serialBatchStat(batchSize, scanLen int) int {
	if batchSize > 0 {
		return batchSize
	}
	return scanLen
}

// GreedyGraphParallel computes the greedy t-spanner of g like GreedyGraph,
// but fans the per-edge distance queries out over `workers` goroutines
// (0 selects GOMAXPROCS). The output — edge sequence, weight, and
// EdgesExamined — is deterministic (independent of workers, batching, and
// scheduling) and identical to GreedyGraph's, with one caveat: the
// bidirectional search sums path weights in a different order than the
// one-sided search, so the two engines could in principle disagree on an
// edge whose alternative-path length ties t*w within a float64 ulp. No
// such tie occurs in any of the repo's test families; the equivalence
// tests assert exact identity.
//
// The engine scans the sorted edge list in batches. Within a batch, every
// edge (u, v) is tested concurrently against the *frozen* spanner snapshot
// H0 taken at the batch boundary: if delta_{H0}(u, v) <= t*w(u, v) the skip
// is certified once and for all, because the sequential algorithm would
// test the edge against a superset of H0 and spanner distances only shrink
// as edges are added. Edges the snapshot cannot certify are re-checked
// serially, in exact greedy order, against the live spanner — so every
// accept/reject decision matches the sequential scan bit for bit. Distance
// queries use bounded bidirectional Dijkstra (Searcher.BidirDistanceWithin),
// which explores two balls of radius ~t*w/2 instead of one of radius t*w.
func GreedyGraphParallel(g *graph.Graph, t float64, workers int) (*Result, error) {
	return GreedyGraphParallelOpts(g, t, ParallelOptions{Workers: workers})
}

// GreedyGraphParallelOpts is GreedyGraphParallel with explicit batching
// and supply controls; see ParallelOptions.
func GreedyGraphParallelOpts(g *graph.Graph, t float64, opts ParallelOptions) (*Result, error) {
	if !validStretch(t) {
		return nil, fmt.Errorf("core: stretch %v out of range [1, inf)", t)
	}
	n := g.N()
	src := opts.Source
	if src == nil {
		if opts.Materialize {
			src = NewMaterializedSource(g.SortedEdges())
		} else {
			src = NewGraphEdgeSource(g, opts.BucketPairs)
		}
	}
	stats := opts.Stats
	if stats == nil {
		stats = &ParallelStats{}
	}
	*stats = ParallelStats{}
	res := &Result{N: n, Stretch: t}
	h := graph.New(n)
	sc := &graphScan{
		t:       t,
		workers: opts.Workers,
		h:       h,
		res:     res,
		stats:   stats,
	}
	if opts.Hubs > 0 {
		sc.oracle = NewHubOracle(SelectGraphHubs(g, opts.Hubs), h, 0)
	}
	sc.run(src, opts.BatchSize)
	return res, nil
}

// graphScan bundles the state of one batched greedy graph scan: the
// partial spanner and the result being accumulated. A fresh build starts
// it empty; the incremental engine starts it at the preserved prefix of a
// previous scan and drains only the tail of the candidate stream.
type graphScan struct {
	t       float64
	workers int // <= 0 selects GOMAXPROCS
	h       *graph.Graph
	// oracle, when non-nil, is the hub-label certification fast path,
	// consulted only from the scan's serial sections.
	oracle *HubOracle
	res    *Result
	stats  *ParallelStats
}

// run drains src through the batched-certification scan, appending every
// accept to the scan's result; batchSize <= 0 selects adaptive batching.
// On return any candidates a cut-resumed source suppressed are folded
// into EdgesExamined.
func (sc *graphScan) run(src CandidateSource, batchSize int) {
	t, h, oracle, res, stats := sc.t, sc.h, sc.oracle, sc.res, sc.stats
	workers := sc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := h.N()
	serial := graph.NewSearcher(n)
	relaxed0 := 0
	if oracle != nil {
		relaxed0 = oracle.Relaxed()
	}

	// hubCertify answers one certification query from the hub labels; a
	// hit skips the edge without any search, exactly as the reference
	// scan would (the hub bound dominates the spanner distance).
	hubCertify := func(u, v int, limit float64) bool {
		stats.HubQueries++
		if _, ok := oracle.Certify(u, v, limit); ok {
			stats.HubSkips++
			return true
		}
		return false
	}
	accept := func(e graph.Edge) {
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
		if oracle != nil {
			oracle.OnAccept(e)
		}
		stats.Kept++
	}
	finish := func() {
		if bs, ok := src.(*bucketedSource); ok {
			stats.PeakBucketPairs = bs.PeakBucket()
			stats.SupplyPasses = bs.Passes()
			res.EdgesExamined += bs.Skipped()
		}
		if oracle != nil {
			stats.HubRelaxed = oracle.Relaxed() - relaxed0
		}
	}

	if workers == 1 {
		// Serial fast path: no snapshot pass, every edge tested once
		// against the live spanner, exactly like GreedyGraph but with the
		// bidirectional primitive; the supply is still streamed.
		chunk := batchSize
		if chunk <= 0 {
			chunk = maxBatch
		}
		for {
			edges := src.NextBatch(chunk)
			if len(edges) == 0 {
				break
			}
			res.EdgesExamined += len(edges)
			for _, e := range edges {
				if oracle != nil && hubCertify(e.U, e.V, t*e.W) {
					continue
				}
				if _, within := serial.BidirDistanceWithin(h, e.U, e.V, t*e.W); within {
					stats.SerialSkips++
					continue
				}
				accept(e)
			}
		}
		stats.FinalBatchSize = serialBatchStat(batchSize, res.EdgesExamined)
		finish()
		return
	}

	pool := make([]*graph.Searcher, workers)
	for i := range pool {
		pool[i] = graph.NewSearcher(n)
	}
	var certified, hubbed []bool

	batch := batchSize
	adaptive := batch <= 0
	if adaptive {
		batch = initialBatch(workers)
	}

	for {
		edges := src.NextBatch(batch)
		if len(edges) == 0 {
			break
		}
		res.EdgesExamined += len(edges)
		stats.Batches++
		if len(edges) > len(certified) {
			certified = make([]bool, len(edges))
			hubbed = make([]bool, len(edges))
		}

		// Serial pre-pass: certify what the hub labels already cover, so
		// only the remaining edges pay a search in phase 1.
		if oracle != nil {
			for i, e := range edges {
				hubbed[i] = hubCertify(e.U, e.V, t*e.W)
			}
		}

		// Phase 1: certify skips in parallel against the frozen h. The
		// workers only read h (and the pre-pass's hubbed marks) and write
		// disjoint certified[i] slots, so the only synchronization needed
		// is the join below.
		var wg sync.WaitGroup
		span := len(edges)
		chunk := (span + workers - 1) / workers
		for w := 0; w < workers && w*chunk < span; w++ {
			start, end := w*chunk, (w+1)*chunk
			if end > span {
				end = span
			}
			wg.Add(1)
			go func(search *graph.Searcher, start, end int) {
				defer wg.Done()
				for i := start; i < end; i++ {
					if hubbed[i] {
						continue
					}
					e := edges[i]
					_, within := search.BidirDistanceWithin(h, e.U, e.V, t*e.W)
					certified[i] = within
				}
			}(pool[w], start, end)
		}
		wg.Wait()

		// Phase 2: replay the uncertified survivors serially in greedy
		// order against the live spanner. A survivor may still be skipped
		// here when an edge accepted earlier in this same batch created a
		// path for it — exactly as the sequential scan would decide.
		survivors := 0
		for i, e := range edges {
			if hubbed[i] {
				continue // counted as a HubSkip in the pre-pass
			}
			if certified[i] {
				stats.CertifiedSkips++
				continue
			}
			survivors++
			if _, within := serial.BidirDistanceWithin(h, e.U, e.V, t*e.W); within {
				stats.SerialSkips++
				continue
			}
			accept(e)
		}

		// Adapt only on full-width rounds: a batch truncated at a bucket
		// boundary says nothing about snapshot staleness, the signal the
		// policy tracks.
		if adaptive && span == batch {
			batch = adaptBatch(batch, survivors, span)
		}
	}
	stats.FinalBatchSize = batch
	finish()
}
