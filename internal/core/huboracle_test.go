package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

// hubTestMetrics builds the three metric kinds the hub equivalence suite
// sweeps: uniform Euclidean points, a tie-heavy integer grid (many equal
// distances), and a matrix metric with +Inf entries (disconnected pairs).
func hubTestMetrics(t *testing.T, rng *rand.Rand, n int) map[string]metric.Metric {
	t.Helper()
	grid := make([][]float64, 0, n)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; len(grid) < n; i++ {
		grid = append(grid, []float64{float64(i % side), float64(i / side)})
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := 1 + rng.Float64()
			if rng.Intn(7) == 0 {
				w = math.Inf(1)
			}
			d[i][j], d[j][i] = w, w
		}
	}
	return map[string]metric.Metric{
		"euclidean":  metric.MustEuclidean(gen.UniformPoints(rng, n, 2)),
		"grid-ties":  metric.MustEuclidean(grid),
		"matrix-inf": tableMetric{d: d},
	}
}

// tableMetric is a raw distance table that, unlike metric.Matrix, admits
// +Inf entries — the "disconnected" sentinel the supply and the engines
// support.
type tableMetric struct {
	d [][]float64
}

func (m tableMetric) N() int                { return len(m.d) }
func (m tableMetric) Dist(i, j int) float64 { return m.d[i][j] }

// checkOracleBounds asserts the oracle's soundness invariant at one scan
// position: after a sync every hub row equals the exact distances on the
// live spanner, and pair bounds dominate the exact pair distances.
func checkOracleBounds(t *testing.T, o *HubOracle, h *graph.Graph) {
	t.Helper()
	o.sync()
	if o.epoch != h.M() {
		t.Fatalf("synced epoch %d, spanner has %d accepted edges", o.epoch, h.M())
	}
	n := h.N()
	exact := make([]float64, n)
	search := graph.NewSearcher(n)
	for i, hub := range o.hubs {
		search.Distances(h, hub, exact)
		for v := 0; v < n; v++ {
			if o.rows[i][v] != exact[v] {
				t.Fatalf("hub %d (vertex %d): row[%d] = %v, exact %v",
					i, hub, v, o.rows[i][v], exact[v])
			}
		}
	}
}

// TestHubOracleBoundsAtEveryScanPosition replays a reference greedy scan
// edge by edge and verifies, at every scan position, that the synced hub
// arrays are exact on the partial spanner (hence valid upper bounds on
// every pair distance), across metric kinds including tie-heavy and
// +Inf-weight instances.
func TestHubOracleBoundsAtEveryScanPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for kind, m := range hubTestMetrics(t, rng, 24) {
		ref, err := GreedyMetricFastSerial(m, 1.4)
		if err != nil {
			t.Fatal(err)
		}
		h := graph.New(m.N())
		o := NewHubOracle(SelectMetricHubs(m, 4), h, 0)
		checkOracleBounds(t, o, h)
		for _, e := range ref.Edges {
			h.MustAddEdge(e.U, e.V, e.W)
			o.OnAccept(e)
			checkOracleBounds(t, o, h)
			// A certified skip must be a true statement about the spanner;
			// the label sum may sit a few ulps off the single-path Dijkstra
			// sum (different association order — see the HubOracle caveat),
			// so the domination check carries that rounding slack.
			u, v := rng.Intn(m.N()), rng.Intn(m.N())
			if u != v {
				if b, ok := o.Certify(u, v, math.Inf(1)); ok {
					if d := h.DijkstraTo(u, v); b < d*(1-1e-12) {
						t.Fatalf("%s: hub bound %v undercuts distance %v", kind, b, d)
					}
				}
			}
		}
	}
}

// TestHubOracleRebaseAcrossInsertions drives a maintained metric spanner
// through insertion batches and asserts the oracle invariant after every
// batch: surviving rows were repaired, stale rows were refreshed, and
// everything is exact on the maintained spanner (ties and +Inf weights
// ride along via the metric kinds).
func TestHubOracleRebaseAcrossInsertions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := gen.UniformPoints(rng, 40, 2)
	for _, batch := range []int{1, 3, 7} {
		inc, err := NewIncrementalMetric(metric.MustEuclidean(pts[:25]), 1.5,
			MetricParallelOptions{Workers: 1, Hubs: 4})
		if err != nil {
			t.Fatal(err)
		}
		for k := 25; k < len(pts); k += batch {
			hi := k + batch
			if hi > len(pts) {
				hi = len(pts)
			}
			if err := inc.Insert(metric.MustEuclidean(pts[:hi])); err != nil {
				t.Fatal(err)
			}
			checkOracleBounds(t, inc.oracle, mustResult(t, inc).Graph())
			want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts[:hi]), 1.5)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, mustResult(t, inc))
		}
	}
}

// assertSameResult fails unless the two results are bit-identical,
// counters included.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Weight != got.Weight || len(want.Edges) != len(got.Edges) ||
		want.EdgesExamined != got.EdgesExamined {
		t.Fatalf("result mismatch: %d edges weight %v examined %d, want %d edges weight %v examined %d",
			len(got.Edges), got.Weight, got.EdgesExamined,
			len(want.Edges), want.Weight, want.EdgesExamined)
	}
	for i := range want.Edges {
		if want.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d: %v, want %v", i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestMetricEngineEquivalenceAcrossHubs sweeps hub counts (0 must
// reproduce the pre-hub engine), metric kinds, and worker counts, and
// requires the exact serial reference's output, counters included.
func TestMetricEngineEquivalenceAcrossHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for kind, m := range hubTestMetrics(t, rng, 40) {
		ref, err := GreedyMetricFastSerial(m, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		for _, hubs := range []int{0, 1, 4, 16} {
			for _, workers := range []int{1, 4} {
				got, err := GreedyMetricFastParallelOpts(m, 1.6, MetricParallelOptions{
					Workers: workers, Hubs: hubs,
				})
				if err != nil {
					t.Fatalf("%s hubs=%d workers=%d: %v", kind, hubs, workers, err)
				}
				assertSameResult(t, ref, got)
			}
		}
	}
}

// TestGraphEngineEquivalenceAcrossHubs is the graph-side sweep against
// the sequential reference scan.
func TestGraphEngineEquivalenceAcrossHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	geo, _ := gen.RandomGeometric(rng, 40, 0.35)
	graphs := map[string]*graph.Graph{
		"er":        gen.ErdosRenyi(rng, 60, 0.15, 0.5, 10),
		"geometric": geo,
	}
	for kind, g := range graphs {
		ref, err := GreedyGraph(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, hubs := range []int{0, 1, 4, 16} {
			for _, workers := range []int{1, 4} {
				got, err := GreedyGraphParallelOpts(g, 3, ParallelOptions{
					Workers: workers, Hubs: hubs,
				})
				if err != nil {
					t.Fatalf("%s hubs=%d workers=%d: %v", kind, hubs, workers, err)
				}
				assertSameResult(t, ref, got)
			}
		}
	}
}

// TestIncrementalEquivalenceAcrossHubs drives metric- and graph-mode
// maintained spanners with hubs through insertion batches and requires
// bit-identity with from-scratch builds after every batch.
func TestIncrementalEquivalenceAcrossHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := gen.UniformPoints(rng, 36, 2)
	for _, hubs := range []int{0, 1, 4, 16} {
		inc, err := NewIncrementalMetric(metric.MustEuclidean(pts[:20]), 1.5,
			MetricParallelOptions{Workers: 1, Hubs: hubs})
		if err != nil {
			t.Fatal(err)
		}
		for k := 24; k <= len(pts); k += 4 {
			if err := inc.Insert(metric.MustEuclidean(pts[:k])); err != nil {
				t.Fatal(err)
			}
			want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts[:k]), 1.5)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, mustResult(t, inc))
		}
	}

	g := gen.ErdosRenyi(rng, 40, 0.2, 0.5, 10)
	edges := g.EdgesCopy()
	held := edges[len(edges)-12:]
	base := g.Subgraph(edges[:len(edges)-12])
	for _, hubs := range []int{0, 4} {
		inc, err := NewIncrementalGraph(base, 3, ParallelOptions{Workers: 1, Hubs: hubs})
		if err != nil {
			t.Fatal(err)
		}
		grown := base.Clone()
		for _, e := range held {
			if err := inc.InsertEdges(e); err != nil {
				t.Fatal(err)
			}
			grown.MustAddEdge(e.U, e.V, e.W)
			want, err := GreedyGraph(grown, 3)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, want, mustResult(t, inc))
		}
	}
}

// TestFaultTolerantEquivalenceAcrossHubs checks the fault-tolerant
// engine's hub fast path: identical output for f in {1, 2} across hub
// counts, and soundness of every avoidance certificate (cross-checked
// against the masked search on random probes).
func TestFaultTolerantEquivalenceAcrossHubs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 18, 2))
	for _, f := range []int{1, 2} {
		ref, err := FaultTolerantGreedy(m, 1.6, f)
		if err != nil {
			t.Fatal(err)
		}
		for _, hubs := range []int{1, 4, 16} {
			var stats FaultTolerantStats
			got, err := FaultTolerantGreedyOpts(m, 1.6, f, FaultTolerantOptions{Hubs: hubs, Stats: &stats})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, ref, got)
			if f == 2 && hubs == 16 && stats.HubCertified == 0 {
				t.Errorf("f=%d hubs=%d: hub fast path never certified a probe", f, hubs)
			}
		}
	}
}

// TestCertifyAvoidingSound cross-checks every positive avoidance
// certificate against the masked-search ground truth on random spanners
// and fault sets.
func TestCertifyAvoidingSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 20, 2))
	res, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.New(m.N())
	o := NewHubOracle(SelectMetricHubs(m, 5), h, 0)
	search := graph.NewSearcher(m.N())
	for _, e := range res.Edges {
		h.MustAddEdge(e.U, e.V, e.W)
		o.OnAccept(e)
	}
	certified, probes := 0, 0
	for trial := 0; trial < 3000; trial++ {
		u, v := rng.Intn(m.N()), rng.Intn(m.N())
		if u == v {
			continue
		}
		var dead []int
		for len(dead) < rng.Intn(3) {
			a := rng.Intn(m.N())
			if a != u && a != v {
				dead = append(dead, a)
			}
		}
		limit := (0.5 + 2*rng.Float64()) * m.Dist(u, v)
		probes++
		if o.CertifyAvoiding(u, v, limit, dead) {
			certified++
			if _, within := search.DistanceWithinMasked(h, u, v, limit, dead); !within {
				t.Fatalf("unsound certificate: (%d, %d) limit %v dead %v", u, v, limit, dead)
			}
		}
	}
	if certified == 0 {
		t.Fatalf("no probe of %d was certified; test is vacuous", probes)
	}
}

// TestHubSelection pins determinism and clamping of both selectors.
func TestHubSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 30, 2))
	a, b := SelectMetricHubs(m, 6), SelectMetricHubs(m, 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metric hub selection not deterministic: %v vs %v", a, b)
		}
	}
	if got := len(SelectMetricHubs(m, 100)); got != 30 {
		t.Fatalf("metric hub clamp: got %d hubs, want 30", got)
	}
	if SelectMetricHubs(m, 0) != nil {
		t.Fatal("k=0 must select no hubs")
	}
	// Duplicate points: farthest-point sampling degenerates; the selector
	// must still return k distinct hubs deterministically.
	dup := metric.MustEuclidean([][]float64{{0, 0}, {0, 0}, {0, 0}, {1, 1}})
	hubs := SelectMetricHubs(dup, 3)
	if len(hubs) != 3 {
		t.Fatalf("degenerate selection returned %d hubs, want 3", len(hubs))
	}
	seen := map[int]bool{}
	for _, h := range hubs {
		if seen[h] {
			t.Fatalf("duplicate hub %d in %v", h, hubs)
		}
		seen[h] = true
	}

	g := gen.ErdosRenyi(rng, 25, 0.3, 0.5, 10)
	ga, gb := SelectGraphHubs(g, 5), SelectGraphHubs(g, 5)
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("graph hub selection not deterministic: %v vs %v", ga, gb)
		}
	}
	for i := 1; i < len(ga); i++ {
		if g.Degree(ga[i]) > g.Degree(ga[i-1]) {
			t.Fatalf("graph hubs not degree-sorted: %v", ga)
		}
	}
	if got := len(SelectGraphHubs(g, 100)); got != 25 {
		t.Fatalf("graph hub clamp: got %d hubs, want 25", got)
	}
}

// TestIncrementalHubsFromTinyStart pins that a maintained spanner built
// on a degenerate initial set (1 point) still installs the hub oracle:
// insertions that grow it must use the fast path and stay bit-identical.
func TestIncrementalHubsFromTinyStart(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts := gen.UniformPoints(rng, 30, 2)
	var stats MetricParallelStats
	inc, err := NewIncrementalMetric(metric.MustEuclidean(pts[:1]), 1.5,
		MetricParallelOptions{Workers: 1, Hubs: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	hubQueries := 0
	for k := 5; k <= len(pts); k += 5 {
		if err := inc.Insert(metric.MustEuclidean(pts[:k])); err != nil {
			t.Fatal(err)
		}
		hubQueries += stats.HubQueries
		want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts[:k]), 1.5)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, mustResult(t, inc))
	}
	if inc.oracle == nil || hubQueries == 0 {
		t.Fatalf("hub oracle absent or idle after growth (oracle=%v, queries=%d)", inc.oracle != nil, hubQueries)
	}
}
