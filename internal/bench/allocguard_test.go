package bench

import (
	"math/rand"
	"os"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
)

// TestAllocRegressionGuardMetricN4000 is the memory-regression gate for
// the streamed candidate engine: the n=4000 Euclidean greedy build must
// keep its heap high-water mark at least 5x below the materialized-pairs
// floor — the bytes the classic pipeline provably allocates before its
// first greedy decision (24 bytes per sorted pair plus the 8-byte dense
// bound matrix), computed analytically so the guard never has to run the
// slow path. The test is gated behind ALLOC_GUARD=1 because the sampled
// MemStats probe briefly stops the world and the build takes seconds; CI
// runs it as a dedicated step.
func TestAllocRegressionGuardMetricN4000(t *testing.T) {
	if os.Getenv("ALLOC_GUARD") != "1" {
		t.Skip("set ALLOC_GUARD=1 to run the n=4000 alloc-regression guard")
	}
	// The sampled peak includes uncollected garbage, so it depends on GC
	// pacing; pin the pacer to keep the gate deterministic across Go
	// versions, machines, and GOGC environments (live set during the
	// build is ~45 MB, so default pacing alone could legally double the
	// observed peak and flake the 5x gate).
	defer debug.SetGCPercent(debug.SetGCPercent(50))
	const n = 4000
	rng := rand.New(rand.NewSource(42))
	m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	var stats core.MetricParallelStats
	peak, total, err := measureAlloc(func() error {
		res, err := core.GreedyMetricFastParallelOpts(m, 1.5, core.MetricParallelOptions{Workers: 1, Stats: &stats})
		if err == nil && res.EdgesExamined != n*(n-1)/2 {
			t.Errorf("examined %d of %d pairs", res.EdgesExamined, n*(n-1)/2)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := uint64(n) * (n - 1) / 2
	materializedFloor := 24*pairs + 8*uint64(n)*uint64(n)
	limit := materializedFloor / 5
	t.Logf("streamed peak %d B (total %d B), materialized floor %d B, limit %d B, peak bucket %d pairs, %d bound rows",
		peak, total, materializedFloor, limit, stats.PeakBucketPairs, stats.RowsAllocated)
	if peak > limit {
		t.Fatalf("streamed n=%d build peaked at %d bytes; regression guard requires <= %d (materialized floor %d / 5)",
			n, peak, limit, materializedFloor)
	}
}

// TestStreamedBuildCompletesN20000 demonstrates the scale the streamed
// engine unlocks: an n=20000 Euclidean greedy build, whose
// materialized-pairs path would front ~200M sorted pairs (~4.8 GB) plus a
// 3.2 GB dense bound matrix before the first greedy decision. Gated
// behind STREAM_N20000=1 — it runs for tens of minutes on a small box —
// and asserts completion, full pair coverage, and a peak at least 5x
// below the materialized floor.
func TestStreamedBuildCompletesN20000(t *testing.T) {
	if os.Getenv("STREAM_N20000") != "1" {
		t.Skip("set STREAM_N20000=1 to run the n=20000 streamed build")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(50)) // see the n=4000 guard
	const n = 20000
	rng := rand.New(rand.NewSource(42))
	m := metric.MustEuclidean(gen.UniformPoints(rng, n, 2))
	var stats core.MetricParallelStats
	start := time.Now()
	peak, total, err := measureAlloc(func() error {
		res, err := core.GreedyMetricFastParallelOpts(m, 1.5, core.MetricParallelOptions{Workers: 1, Stats: &stats})
		if err == nil {
			if res.EdgesExamined != n*(n-1)/2 {
				t.Errorf("examined %d of %d pairs", res.EdgesExamined, n*(n-1)/2)
			}
			t.Logf("spanner: %d edges, weight %.2f", res.Size(), res.Weight)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := uint64(n) * (n - 1) / 2
	materializedFloor := 24*pairs + 8*uint64(n)*uint64(n)
	t.Logf("n=%d build: %.1fs, peak %.1f MB, total alloc %.1f MB, materialized floor %.1f MB, peak bucket %d pairs, %d bound rows",
		n, time.Since(start).Seconds(), float64(peak)/(1<<20), float64(total)/(1<<20),
		float64(materializedFloor)/(1<<20), stats.PeakBucketPairs, stats.RowsAllocated)
	if peak > materializedFloor/5 {
		t.Fatalf("peak %d exceeds materialized floor %d / 5", peak, materializedFloor)
	}
}
