package approx

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestGreedyValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 1}})
	for _, eps := range []float64{0, -1, 1, 2} {
		if _, err := Greedy(m, Options{Eps: eps}); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if _, err := Greedy(m, Options{Eps: 0.5, Mu: 0.5}); err == nil {
		t.Error("mu<=1 accepted")
	}
	if _, err := Greedy(m, Options{Eps: 0.5, Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestGreedyDegenerate(t *testing.T) {
	res, err := Greedy(metric.MustEuclidean(nil), Options{Eps: 0.5})
	if err != nil || res.Spanner.M() != 0 {
		t.Fatalf("empty: %v", err)
	}
	res, err = Greedy(metric.MustEuclidean([][]float64{{1, 1}}), Options{Eps: 0.5})
	if err != nil || res.Spanner.M() != 0 {
		t.Fatalf("single point: %v", err)
	}
}

func TestGreedyIsSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, eps := range []float64{0.2, 0.5, 0.9} {
		m := metric.MustEuclidean(gen.UniformPoints(rng, 60, 2))
		res, err := Greedy(m, Options{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := verify.MetricSpanner(res.Spanner, m, 1+eps, 1e-9); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if !res.Spanner.Connected() {
			t.Fatalf("eps=%v: spanner disconnected", eps)
		}
	}
}

func TestGreedyOnClusteredMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := metric.MustEuclidean(gen.ClusteredPoints(rng, 80, 2, 6, 0.02))
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Spanner, m, 1.5, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 70, 2))
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.BaseEdges == 0 {
		t.Fatal("no base edges recorded")
	}
	if s.LightEdges+s.HeavyKept+s.HeavySkipped != s.BaseEdges {
		t.Fatalf("edge accounting broken: %d + %d + %d != %d",
			s.LightEdges, s.HeavyKept, s.HeavySkipped, s.BaseEdges)
	}
	if res.Spanner.M() != s.LightEdges+s.HeavyKept {
		t.Fatalf("spanner size %d != light %d + kept %d", res.Spanner.M(), s.LightEdges, s.HeavyKept)
	}
	if len(res.HeavyEdges) != s.HeavyKept {
		t.Fatal("HeavyEdges length mismatch")
	}
	if s.SimStretch <= 1 || s.BaseStretch <= 1 {
		t.Fatalf("stretch split wrong: sim=%v base=%v", s.SimStretch, s.BaseStretch)
	}
	// Composition: base * sim = (1 + eps).
	if got := s.SimStretch * s.BaseStretch; got < 1.499 || got > 1.501 {
		t.Fatalf("stretch composition = %v, want 1.5", got)
	}
}

func TestGreedySparsifiesBase(t *testing.T) {
	// The simulation must actually skip edges on uniform instances.
	rng := rand.New(rand.NewSource(4))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 100, 2))
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HeavySkipped == 0 {
		t.Fatal("simulation never skipped an edge; cluster certification inert")
	}
}

func TestGreedyLightnessComparableToExactGreedy(t *testing.T) {
	// Theorem 6 shape: the approximate-greedy lightness should be within a
	// modest constant factor of the exact greedy lightness.
	rng := rand.New(rand.NewSource(5))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 80, 2))
	const eps = 0.5
	apx, err := Greedy(m, Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.GreedyMetric(m, 1+eps)
	if err != nil {
		t.Fatal(err)
	}
	lApx, err := verify.MetricLightness(apx.Spanner, m)
	if err != nil {
		t.Fatal(err)
	}
	lExact, err := verify.MetricLightness(exact.Graph(), m)
	if err != nil {
		t.Fatal(err)
	}
	if lApx > 10*lExact {
		t.Fatalf("approx lightness %v more than 10x exact %v", lApx, lExact)
	}
}

func TestAuditSecondShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 50, 2))
	res, err := Greedy(m, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	violations, checked := AuditSecondShortestPath(res, 1.0)
	if checked != len(res.HeavyEdges) {
		t.Fatalf("checked %d, want %d", checked, len(res.HeavyEdges))
	}
	// At tPrime = 1 the second shortest path must exceed w(e) for every
	// kept heavy edge: a second path of weight <= w(e) would mean the edge
	// was parallel to an equally good route, which the conservative
	// simulation would have skipped (upper bound <= simStretch * w).
	if violations != 0 {
		t.Fatalf("%d/%d violations at tPrime=1", violations, checked)
	}
}

func TestGreedyExponentialSpread(t *testing.T) {
	m := metric.MustEuclidean(gen.ExponentialLine(14))
	res, err := Greedy(m, Options{Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.MetricSpanner(res.Spanner, m, 1.3, 1e-9); err != nil {
		t.Fatal(err)
	}
}
