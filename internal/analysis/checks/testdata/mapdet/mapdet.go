// Package fixture seeds mapdet violations and exemptions.
package fixture

import "sort"

// bad iterates a map with an order-sensitive body and no sort.
func bad(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "range over map m in a deterministic engine path"
		sum += v
	}
	return sum
}

// badNested hides the map range inside an if body.
func badNested(m map[string]int, cond bool) int {
	n := 0
	if cond {
		for k := range m { // want "range over map m in a deterministic engine path"
			n += len(k)
		}
	}
	return n
}

// goodCollectSort collects keys and immediately sorts: the blessed shape.
func goodCollectSort(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodCollectSliceSort collects values and sorts with sort.Slice.
func goodCollectSliceSort(m map[int]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// goodAnnotated carries the nondeterministic-ok annotation with a reason.
func goodAnnotated(m map[int]bool) int {
	best := -1
	//spannerlint:nondeterministic-ok argmin with a deterministic tie-break is order-independent
	for k := range m {
		if best == -1 || k < best {
			best = k
		}
	}
	return best
}

// goodSliceRange ranges a slice, which is always ordered.
func goodSliceRange(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
