package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metric"
)

// FaultTolerantGreedy computes an f-vertex-fault-tolerant t-spanner of a
// finite metric space using the fault-tolerant greedy algorithm of
// Czumaj–Zhao (the construction whose doubling-metrics optimality is the
// subject of the paper's citation [Sol14]): pairs are examined in
// non-decreasing distance order, and pair (u, v) is added iff there exists
// a fault set F (|F| <= f, F avoiding u and v) whose removal leaves
// delta_{H-F}(u, v) > t * d(u, v).
//
// The output H satisfies: for EVERY fault set F of at most f vertices and
// every surviving pair (u, v), delta_{H-F}(u, v) <= t * d(u, v) — the
// greedy exchange argument is identical to Algorithm 1's.
//
// Checking all fault sets costs C(n, f) bounded Dijkstras per pair, so this
// implementation supports the practically relevant f in {0, 1, 2}; f = 0
// degenerates to GreedyMetric. Complexity O(n^{2+f} * Dijkstra) — a
// reference implementation for experiments and audits, not a large-n tool.
func FaultTolerantGreedy(m metric.Metric, t float64, f int) (*Result, error) {
	if !validStretch(t) {
		return nil, fmt.Errorf("core: stretch %v out of range [1, inf)", t)
	}
	if f < 0 || f > 2 {
		return nil, fmt.Errorf("core: fault parameter %d out of supported range [0, 2]", f)
	}
	if f == 0 {
		return GreedyMetric(m, t)
	}
	n := m.N()
	res := &Result{N: n, Stretch: t}
	if n <= 1 {
		return res, nil
	}
	pairs := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, graph.Edge{U: i, V: j, W: m.Dist(i, j)})
		}
	}
	graph.SortEdges(pairs)

	h := graph.New(n)
	for _, e := range pairs {
		res.EdgesExamined++
		if ftCovered(h, e, t, f) {
			continue
		}
		h.MustAddEdge(e.U, e.V, e.W)
		res.Edges = append(res.Edges, e)
		res.Weight += e.W
	}
	return res, nil
}

// ftCovered reports whether, for every fault set F with |F| <= f avoiding
// e's endpoints, the current spanner minus F still connects e's endpoints
// within t*w(e). Fault sets are enumerated directly (f <= 2).
func ftCovered(h *graph.Graph, e graph.Edge, t float64, f int) bool {
	limit := t * e.W
	n := h.N()
	check := func(faults []int) bool {
		masked := maskVertices(h, faults)
		_, within := masked.DistanceWithin(e.U, e.V, limit)
		return within
	}
	// F = {} must also be covered.
	if !check(nil) {
		return false
	}
	for a := 0; a < n; a++ {
		if a == e.U || a == e.V {
			continue
		}
		if !check([]int{a}) {
			return false
		}
		if f < 2 {
			continue
		}
		for b := a + 1; b < n; b++ {
			if b == e.U || b == e.V {
				continue
			}
			if !check([]int{a, b}) {
				return false
			}
		}
	}
	return true
}

// maskVertices returns a copy of h with all edges incident to the given
// vertices removed (vertex failure).
func maskVertices(h *graph.Graph, faults []int) *graph.Graph {
	if len(faults) == 0 {
		return h
	}
	dead := make(map[int]bool, len(faults))
	for _, v := range faults {
		dead[v] = true
	}
	out := graph.New(h.N())
	for _, e := range h.Edges() {
		if !dead[e.U] && !dead[e.V] {
			out.MustAddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

// VerifyFaultTolerance exhaustively audits that h is an f-fault-tolerant
// t-spanner of the metric m: for every fault set F with |F| <= f and every
// surviving pair, delta_{H-F} <= t * d (+eps). Supported for f in {0, 1, 2};
// returns a descriptive error on the first violation.
func VerifyFaultTolerance(h *graph.Graph, m metric.Metric, t float64, f int, eps float64) error {
	if f < 0 || f > 2 {
		return fmt.Errorf("core: fault parameter %d out of supported range [0, 2]", f)
	}
	var faultSets [][]int
	faultSets = append(faultSets, nil)
	n := m.N()
	if f >= 1 {
		for a := 0; a < n; a++ {
			faultSets = append(faultSets, []int{a})
		}
	}
	if f >= 2 {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				faultSets = append(faultSets, []int{a, b})
			}
		}
	}
	for _, faults := range faultSets {
		masked := maskVertices(h, faults)
		dead := make(map[int]bool, len(faults))
		for _, v := range faults {
			dead[v] = true
		}
		for u := 0; u < n; u++ {
			if dead[u] {
				continue
			}
			sp := masked.Dijkstra(u)
			for v := u + 1; v < n; v++ {
				if dead[v] {
					continue
				}
				if sp.Dist[v] > t*m.Dist(u, v)+eps {
					return fmt.Errorf("core: fault set %v breaks pair (%d, %d): %v > %v",
						faults, u, v, sp.Dist[v], t*m.Dist(u, v))
				}
			}
		}
	}
	return nil
}
