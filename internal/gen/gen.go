// Package gen generates the graph and metric instances used throughout the
// experiment suite: classical high-girth graphs (Petersen and generalized
// Petersen), the Figure-1 gadget of the paper, random graph families
// (Erdős–Rényi, random geometric, grids), Euclidean point clouds with
// controlled doubling structure, and the multi-scale ring metric that forces
// unbounded greedy degree (the phenomenon of [HM06, Smi09] motivating the
// paper's Section 5).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metric"
)

// Petersen returns the Petersen graph: 10 vertices, 15 edges, girth 5, all
// weights 1. Vertices 0-4 are the outer cycle, 5-9 the inner pentagram;
// vertex i is matched to i+5.
func Petersen() *graph.Graph {
	return GeneralizedPetersen(5, 2)
}

// GeneralizedPetersen returns GP(n, k) with unit weights: outer cycle
// 0..n-1, inner vertices n..2n-1 where inner vertex n+i connects to
// n+((i+k) mod n), and spokes i -- n+i. Requires n >= 3 and 1 <= k < n/2
// (so the inner step produces simple edges).
func GeneralizedPetersen(n, k int) *graph.Graph {
	if n < 3 || k < 1 || 2*k >= n {
		panic(fmt.Sprintf("gen: invalid generalized Petersen parameters (%d, %d)", n, k))
	}
	g := graph.New(2 * n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)       // outer cycle
		g.MustAddEdge(n+i, n+((i+k)%n), 1) // inner star polygon
		g.MustAddEdge(i, n+i, 1)           // spoke
	}
	return g
}

// Figure1 builds the gadget of Figure 1 in the paper: the union G = H ∪ S
// where H is a high-girth unit-weight graph and S is a star rooted at
// vertex `root` whose edges all have weight 1+eps (star edges that coincide
// with H edges keep weight 1, matching the paper's description that such
// edges "belong to H"). The greedy 3-spanner of G retains every edge of H,
// whereas the optimal 3-spanner is the star with ~n-1 edges.
type Figure1 struct {
	// G is the combined graph.
	G *graph.Graph
	// H is the underlying high-girth graph (same vertex set).
	H *graph.Graph
	// Root is the star center.
	Root int
	// Eps is the star-edge weight excess.
	Eps float64
	// StarEdges counts the weight-(1+eps) star edges added on top of H.
	StarEdges int
}

// Figure1Gadget assembles the gadget over the given high-girth graph h.
// eps must lie in (0, (girth-2)/2 - 1] for the greedy argument to apply with
// t = 3 and girth 5; the canonical choice is a small eps like 0.05.
func Figure1Gadget(h *graph.Graph, root int, eps float64) (*Figure1, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("gen: eps must be positive, got %v", eps)
	}
	if root < 0 || root >= h.N() {
		return nil, fmt.Errorf("gen: root %d out of range", root)
	}
	g := h.Clone()
	star := 0
	for v := 0; v < h.N(); v++ {
		if v == root || h.HasEdge(root, v) {
			continue // paper: star edges inside H keep weight 1 (already present)
		}
		g.MustAddEdge(root, v, 1+eps)
		star++
	}
	return &Figure1{G: g, H: h, Root: root, Eps: eps, StarEdges: star}, nil
}

// ErdosRenyi returns a connected weighted Erdős–Rényi-style graph: each of
// the n(n-1)/2 pairs is an edge with probability p, with i.i.d. uniform
// weights in [wmin, wmax]; afterwards a random spanning tree is threaded
// through any disconnected parts so the result is always connected.
func ErdosRenyi(rng *rand.Rand, n int, p, wmin, wmax float64) *graph.Graph {
	g := graph.New(n)
	w := func() float64 { return wmin + rng.Float64()*(wmax-wmin) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, j, w())
			}
		}
	}
	connectComponents(rng, g, w)
	return g
}

// connectComponents threads random edges between components until connected.
func connectComponents(rng *rand.Rand, g *graph.Graph, w func() float64) {
	for comps := g.Components(); len(comps) > 1; comps = g.Components() {
		u := comps[0][rng.Intn(len(comps[0]))]
		v := comps[1][rng.Intn(len(comps[1]))]
		g.MustAddEdge(u, v, w())
	}
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within distance radius, weighting edges by Euclidean distance; it is
// then made connected like ErdosRenyi. Returns the graph and the points.
func RandomGeometric(rng *rand.Rand, n int, radius float64) (*graph.Graph, [][]float64) {
	pts := UniformPoints(rng, n, 2)
	g := graph.New(n)
	dist := func(i, j int) float64 {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		return math.Hypot(dx, dy)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d <= radius && d > 0 {
				g.MustAddEdge(i, j, d)
			}
		}
	}
	comps := g.Components()
	for len(comps) > 1 {
		// Connect nearest pair across the first two components.
		bestD := math.Inf(1)
		bu, bv := -1, -1
		for _, u := range comps[0] {
			for _, v := range comps[1] {
				if d := dist(u, v); d < bestD && d > 0 {
					bestD, bu, bv = d, u, v
				}
			}
		}
		g.MustAddEdge(bu, bv, bestD)
		comps = g.Components()
	}
	return g, pts
}

// Grid returns the w x h grid graph with unit weights; vertex (x, y) has id
// y*w + x.
func Grid(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.MustAddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

// UniformPoints samples n points uniformly from [0, 1]^d.
func UniformPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// ClusteredPoints samples n points from `clusters` Gaussian blobs with the
// given standard deviation, centers uniform in [0, 1]^d. Cluster structure
// keeps the doubling dimension low while stressing multi-scale behaviour.
func ClusteredPoints(rng *rand.Rand, n, d, clusters int, stddev float64) [][]float64 {
	centers := UniformPoints(rng, clusters, d)
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		p := make([]float64, d)
		for k := range p {
			p[k] = c[k] + rng.NormFloat64()*stddev
		}
		pts[i] = p
	}
	return pts
}

// CirclePoints places n evenly spaced points on the unit circle (a doubling
// metric of dimension 1 when viewed at scale ~ arc length).
func CirclePoints(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = []float64{math.Cos(a), math.Sin(a)}
	}
	return pts
}

// ExponentialLine places points at positions 2^0, 2^1, ..., 2^{n-1} on the
// line: a doubling metric of dimension 1 with exponential spread, a
// worst-case-ish instance for net-tree depth.
func ExponentialLine(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{math.Pow(2, float64(i))}
	}
	return pts
}

// UnboundedDegreeMetric builds a metric space on which the greedy
// (1+eps)-spanner has large maximum degree: the multi-scale ring gadget in
// the spirit of [HM06, Smi09] (whose refined construction achieves doubling
// dimension 1; ours keeps the dimension small and the degree growth
// unbounded, which is the phenomenon the paper's Section 5 addresses).
//
// Point 0 is a hub c. Around it sit `scales` rings at radii 8^k, each with
// `perRing` satellites. Distances: within ring k, satellites i and j are
// separated by sep*8^k*|i-j| (a line-like arrangement); distances involving
// c or crossing rings go through the hub: d(x, y) = d(x, c) + d(c, y).
// Satellite i of ring k sits at radius 8^k * (1 + a_i) with a_i strictly
// decreasing, which makes every hub-satellite edge indispensable for the
// greedy algorithm at stretch 1+eps when sep > 2*eps: the hub's degree grows
// as scales*perRing while the space's doubling dimension stays bounded.
func UnboundedDegreeMetric(scales, perRing int, eps float64) (*metric.Matrix, error) {
	if scales < 1 || perRing < 1 {
		return nil, fmt.Errorf("gen: need scales, perRing >= 1")
	}
	if eps <= 0 || eps >= 0.25 {
		return nil, fmt.Errorf("gen: eps must be in (0, 0.25), got %v", eps)
	}
	sep := 3 * eps // inter-satellite separation factor; > 2*eps forces hub edges
	n := 1 + scales*perRing
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	// radial[i] is the hub distance of point i (0 for the hub).
	radial := make([]float64, n)
	ring := make([]int, n) // ring index, -1 for hub
	slot := make([]int, n) // position within ring
	ring[0] = -1
	idx := 1
	for k := 0; k < scales; k++ {
		scale := math.Pow(8, float64(k))
		for i := 0; i < perRing; i++ {
			// a_i strictly decreasing in i, small enough not to disturb
			// the ring ordering: a_i in (0, eps/4].
			a := eps / 4 * float64(perRing-i) / float64(perRing)
			radial[idx] = scale * (1 + a)
			ring[idx] = k
			slot[idx] = i
			idx++
		}
	}
	for i := 1; i < n; i++ {
		d[0][i] = radial[i]
		d[i][0] = radial[i]
		for j := i + 1; j < n; j++ {
			var dist float64
			if ring[i] == ring[j] {
				scale := math.Pow(8, float64(ring[i]))
				dist = sep * scale * math.Abs(float64(slot[i]-slot[j]))
				// Cap at the through-hub distance to preserve the triangle
				// inequality for far-apart slots.
				if thruHub := radial[i] + radial[j]; dist > thruHub {
					dist = thruHub
				}
			} else {
				dist = radial[i] + radial[j]
			}
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return metric.NewMatrix(d)
}

// HighGirthGraph returns a unit-weight graph with girth > girthMin via
// randomized incremental insertion: random candidate edges are accepted only
// if the current graph distance between their endpoints is at least
// girthMin (so every cycle created has length >= girthMin + ... >= girthMin).
// It aims for the requested edge count but may stop short when the girth
// constraint saturates. This realizes the paper's "dense graph of high
// girth" lower-bound instances at practical sizes.
func HighGirthGraph(rng *rand.Rand, n, edges, girthMin int) *graph.Graph {
	g := graph.New(n)
	attempts := 0
	maxAttempts := 50 * edges
	for g.M() < edges && attempts < maxAttempts {
		attempts++
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		// Adding (u,v) creates a cycle of length dist(u,v)+1; require
		// dist >= girthMin - 1, i.e. no path of length <= girthMin - 2.
		if _, short := g.DistanceWithin(u, v, float64(girthMin-2)); short {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	return g
}
