package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

// prefixMetric restricts a metric to its first n points — the sub-metric
// an incremental build starts from. Distances delegate to the parent, so
// they are bitwise identical to the union's.
type prefixMetric struct {
	m metric.Metric
	n int
}

// mustResult flushes and returns the maintained result, failing the test
// on a replay error (none is expected in tests without a context, budget,
// or injected fault).
func mustResult(t testing.TB, s *IncrementalSpanner) *Result {
	t.Helper()
	res, err := s.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

func (p prefixMetric) N() int                { return p.n }
func (p prefixMetric) Dist(i, j int) float64 { return p.m.Dist(i, j) }

// subMetric returns the first-k-points restriction of m, preserving the
// concrete type for Euclidean metrics so the incremental path exercises
// the grid-bucketed supply exactly like a from-scratch build would.
func subMetric(m metric.Metric, k int) metric.Metric {
	if eu, ok := m.(*metric.Euclidean); ok {
		pts := make([][]float64, k)
		for i := range pts {
			pts[i] = eu.Point(i)
		}
		return metric.MustEuclidean(pts)
	}
	return prefixMetric{m: m, n: k}
}

// insertSchedule splits the range (start, n] into batch sizes covering the
// interesting shapes: single-point inserts and wider batches.
func insertSchedule(start, n int) []int {
	var ks []int
	k := start
	step := 1
	for k < n {
		k += step
		if k > n {
			k = n
		}
		ks = append(ks, k)
		step = step*3 + 1 // 1, 4, 13, ... mixes singletons and batches
	}
	return ks
}

// TestIncrementalMetricMatchesFromScratch is the tentpole equivalence
// property: growing a spanner by point insertions must reproduce, bit for
// bit, a from-scratch greedy build on the union — across Euclidean,
// matrix, and graph-induced metrics, worker counts, batch widths, bucket
// caps, and insertion batch shapes.
func TestIncrementalMetricMatchesFromScratch(t *testing.T) {
	for name, m := range testMetrics(t) {
		n := m.N()
		for _, stretch := range []float64{1.3, 2} {
			for _, opts := range []MetricParallelOptions{
				{Workers: 1},
				{Workers: 4},
				{Workers: 3, BatchSize: 9, BucketPairs: 41},
			} {
				start := n / 3
				inc, err := NewIncrementalMetric(subMetric(m, start), stretch, opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range insertSchedule(start, n) {
					if err := inc.Insert(subMetric(m, k)); err != nil {
						t.Fatal(err)
					}
					want, err := GreedyMetricFastParallelOpts(subMetric(m, k), stretch, opts)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s/t=%v/w=%d/k=%d", name, stretch, opts.Workers, k)
					equalResults(t, label, want, mustResult(t, inc))
				}
				// Final state also matches the serial dense-matrix
				// reference, a fully independent code path.
				ref, err := GreedyMetricFastSerial(subMetric(m, n), stretch)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, fmt.Sprintf("%s/t=%v/serial-ref", name, stretch), ref, mustResult(t, inc))
			}
		}
	}
}

// TestIncrementalMetricPermutedInsertionOrders inserts the same point set
// in many different orders; each order must match the from-scratch build
// on that order's indexing.
func TestIncrementalMetricPermutedInsertionOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	base := gen.UniformPoints(rng, 36, 2)
	for trial := 0; trial < 6; trial++ {
		pts := make([][]float64, len(base))
		copy(pts, base)
		rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		m := metric.MustEuclidean(pts)
		start := 12 + rng.Intn(12)
		inc, err := NewIncrementalMetric(subMetric(m, start), 1.5, MetricParallelOptions{Workers: 1 + trial%4})
		if err != nil {
			t.Fatal(err)
		}
		k := start
		for k < len(pts) {
			k += 1 + rng.Intn(7)
			if k > len(pts) {
				k = len(pts)
			}
			if err := inc.Insert(subMetric(m, k)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := GreedyMetric(m, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("permutation %d", trial), want, mustResult(t, inc))
	}
}

// TestIncrementalMetricTies grows a spanner over integer grid points:
// massed distance ties, so inserted pairs repeatedly splice into the
// middle of equal-weight runs and the cut lands inside tie groups.
func TestIncrementalMetricTies(t *testing.T) {
	var pts [][]float64
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			pts = append(pts, []float64{float64(x), float64(y)})
		}
	}
	// Extra grid rows keep every inserted distance tied with existing ones.
	pts = append(pts, []float64{5, 2}, []float64{5, 0}, []float64{0, 5})
	m := metric.MustEuclidean(pts)
	for _, workers := range []int{1, 4} {
		inc, err := NewIncrementalMetric(subMetric(m, 10), 1.4, MetricParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{11, 18, 25, 26, len(pts)} {
			if err := inc.Insert(subMetric(m, k)); err != nil {
				t.Fatal(err)
			}
			want, err := GreedyMetricFastParallel(subMetric(m, k), 1.4, workers)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, fmt.Sprintf("grid/w=%d/k=%d", workers, k), want, mustResult(t, inc))
		}
	}
}

// TestIncrementalMetricInfiniteWeights grows the custom metric with a +Inf
// distance sentinel: the infinite pair must stream exactly once, last, in
// the replay too.
func TestIncrementalMetricInfiniteWeights(t *testing.T) {
	full := infMetric{n: 12}
	inc, err := NewIncrementalMetric(prefixMetric{m: full, n: 7}, 2, MetricParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{9, 12} {
		if err := inc.Insert(prefixMetric{m: full, n: k}); err != nil {
			t.Fatal(err)
		}
		want, err := GreedyMetricFastSerial(prefixMetric{m: full, n: k}, 2)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("inf/k=%d", k), want, mustResult(t, inc))
	}
	if mustResult(t, inc).EdgesExamined != 12*11/2 {
		t.Fatalf("examined %d pairs, want %d (the +Inf pair included)", mustResult(t, inc).EdgesExamined, 12*11/2)
	}
}

// TestIncrementalGraphMatchesFromScratch is the graph-mode equivalence:
// growing a spanner by edge insertions must reproduce a from-scratch
// greedy build on the grown graph across the test families.
func TestIncrementalGraphMatchesFromScratch(t *testing.T) {
	for name, g := range testGraphs(t) {
		edges := g.Edges()
		for _, stretch := range []float64{1.5, 3} {
			for _, workers := range []int{1, 4} {
				start := len(edges) / 2
				g0 := graph.New(g.N())
				for _, e := range edges[:start] {
					g0.MustAddEdge(e.U, e.V, e.W)
				}
				inc, err := NewIncrementalGraph(g0, stretch, ParallelOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				k := start
				for k < len(edges) {
					next := k + 1 + (k-start)*2
					if next > len(edges) {
						next = len(edges)
					}
					if err := inc.InsertEdges(edges[k:next]...); err != nil {
						t.Fatal(err)
					}
					k = next
				}
				want, err := GreedyGraphParallel(g, stretch, workers)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, fmt.Sprintf("%s/t=%v/w=%d", name, stretch, workers), want, mustResult(t, inc))
			}
		}
	}
}

// TestIncrementalReplaySkipsPreservedWork pins the cost story: inserting a
// far-away point cuts the scan after every existing candidate, so the
// replay preserves the whole spanner and re-runs far fewer Dijkstra
// refreshes than a from-scratch build on the union.
func TestIncrementalReplaySkipsPreservedWork(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pts := gen.UniformPoints(rng, 80, 2)
	m := metric.MustEuclidean(pts)
	var fullStats MetricParallelStats
	if _, err := GreedyMetricFastParallelOpts(withPoint(m, []float64{25, 25}), 1.5,
		MetricParallelOptions{Workers: 1, Stats: &fullStats}); err != nil {
		t.Fatal(err)
	}
	var incStats MetricParallelStats
	inc, err := NewIncrementalMetric(m, 1.5, MetricParallelOptions{Workers: 1, Stats: &incStats})
	if err != nil {
		t.Fatal(err)
	}
	// A distant point: every new pair is heavier than all existing pairs,
	// so the cut lands after the whole previous scan.
	if err := inc.Insert(withPoint(m, []float64{25, 25})); err != nil {
		t.Fatal(err)
	}
	if got := mustResult(t, inc).Size(); got == 0 {
		t.Fatal("far point produced no edges")
	}
	fullRefreshes := fullStats.SerialRefreshes + fullStats.ParallelRefreshes
	incRefreshes := incStats.SerialRefreshes + incStats.ParallelRefreshes
	if incRefreshes*2 >= fullRefreshes {
		t.Fatalf("replay refreshed %d rows, want well below the from-scratch %d", incRefreshes, fullRefreshes)
	}
}

// TestIncrementalCachedRowsSurvive pins the insertion-soundness invariant
// in action: on a path metric, every bound row is last proven against the
// weight-1 path edges — the prefix a heavier insertion preserves — so the
// replay re-examines the heavy old pairs but certifies them straight from
// the surviving cache, with no refresh at all for pairs between old
// points.
func TestIncrementalCachedRowsSurvive(t *testing.T) {
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	m := metric.MustEuclidean(pts)
	var incStats MetricParallelStats
	inc, err := NewIncrementalMetric(m, 1.1, MetricParallelOptions{Workers: 1, Stats: &incStats})
	if err != nil {
		t.Fatal(err)
	}
	if mustResult(t, inc).Size() != 39 {
		t.Fatalf("path spanner has %d edges, want 39", mustResult(t, inc).Size())
	}
	// The new endpoint is 1.7 away: the cut lands above the weight-1 path
	// edges, so every old pair with weight >= 2 is re-examined — and must
	// come out of the surviving cached rows, not fresh Dijkstras.
	if err := inc.Insert(withPoint(m, []float64{40.7})); err != nil {
		t.Fatal(err)
	}
	reexaminedOldPairs := 39 * 38 / 2 // all (i, j) with j - i >= 2
	if incStats.CachedSkips < reexaminedOldPairs {
		t.Fatalf("only %d cached skips in the replay, want >= %d (every re-examined old pair)",
			incStats.CachedSkips, reexaminedOldPairs)
	}
	refreshes := incStats.SerialRefreshes + incStats.ParallelRefreshes
	if refreshes > 40+1 {
		t.Fatalf("replay ran %d refreshes, want at most one per new pair", refreshes)
	}
	want, err := GreedyMetricFastSerial(withPoint(m, []float64{40.7}), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "path+heavy-point", want, mustResult(t, inc))
}

// withPoint returns the Euclidean metric of m's points plus p.
func withPoint(m *metric.Euclidean, p []float64) *metric.Euclidean {
	pts := make([][]float64, m.N(), m.N()+1)
	for i := range pts {
		pts[i] = m.Point(i)
	}
	return metric.MustEuclidean(append(pts, p))
}

// TestIncrementalValidation covers the construction and insertion error
// paths, and that a failed insertion leaves the maintained state intact.
func TestIncrementalValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 0}, {0, 1}})
	if _, err := NewIncrementalMetric(m, 0.5, MetricParallelOptions{}); err == nil {
		t.Fatal("bad stretch accepted")
	}
	if _, err := NewIncrementalMetric(m, 2, MetricParallelOptions{Materialize: true}); err == nil {
		t.Fatal("Materialize accepted")
	}
	if _, err := NewIncrementalMetric(m, 2, MetricParallelOptions{Source: NewMetricSource(m, 0)}); err == nil {
		t.Fatal("Source accepted")
	}
	inc, err := NewIncrementalMetric(m, 2, MetricParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Insert(subMetric(m, 2)); err == nil {
		t.Fatal("shrinking union accepted")
	}
	if err := inc.InsertEdges(graph.Edge{U: 0, V: 1, W: 1}); err == nil {
		t.Fatal("InsertEdges accepted on a metric-mode spanner")
	}
	if err := inc.Insert(m); err != nil { // same size: a no-op
		t.Fatal(err)
	}

	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	ginc, err := NewIncrementalGraph(g, 2, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := mustResult(t, ginc).Size()
	for _, bad := range []graph.Edge{
		{U: 0, V: 3, W: 1},
		{U: 1, V: 1, W: 1},
		{U: 0, V: 2, W: -1},
		{U: 0, V: 2, W: math.Inf(1)},
	} {
		if err := ginc.InsertEdges(graph.Edge{U: 1, V: 2, W: 1}, bad); err == nil {
			t.Fatalf("bad edge %+v accepted", bad)
		}
	}
	if mustResult(t, ginc).Size() != before {
		t.Fatal("failed insertion mutated the maintained spanner")
	}
	if err := ginc.Insert(m); err == nil {
		t.Fatal("Insert accepted on a graph-mode spanner")
	}
	if err := ginc.InsertEdges(); err != nil { // empty batch: a no-op
		t.Fatal(err)
	}
}

// TestIncrementalFromEmpty grows a spanner from zero and one points — the
// degenerate starting states.
func TestIncrementalFromEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	pts := gen.UniformPoints(rng, 20, 2)
	m := metric.MustEuclidean(pts)
	for _, start := range []int{0, 1} {
		inc, err := NewIncrementalMetric(subMetric(m, start), 1.5, MetricParallelOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{start + 1, 10, 20} {
			if err := inc.Insert(subMetric(m, k)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := GreedyMetric(m, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, fmt.Sprintf("start=%d", start), want, mustResult(t, inc))
	}
}

// TestIncrementalResultIsSnapshot pins the Result contract: the value
// returned before an insertion is not mutated by it.
func TestIncrementalResultIsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 30, 2))
	inc, err := NewIncrementalMetric(subMetric(m, 20), 1.5, MetricParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := mustResult(t, inc)
	size, weight, examined := snap.Size(), snap.Weight, snap.EdgesExamined
	if err := inc.Insert(m); err != nil {
		t.Fatal(err)
	}
	if snap.Size() != size || snap.Weight != weight || snap.EdgesExamined != examined {
		t.Fatal("insertion mutated a previously returned Result")
	}
	if mustResult(t, inc) == snap {
		t.Fatal("insertion did not produce a fresh Result")
	}
}
