package graph

import (
	"repro/internal/pq"
)

// bidirScratch holds the reusable state of a bidirectional Dijkstra: one
// distance array, heap, and touched-list per search direction. Like
// dijkstraScratch it is sized once for a fixed vertex count and reset in
// time proportional to the vertices actually visited, so repeated queries
// (the greedy main loop issues one per candidate edge) allocate nothing.
type bidirScratch struct {
	hf, hb             *pq.IndexedMinHeap
	distF, distB       []float64
	touchedF, touchedB []int32
	// stop mirrors dijkstraScratch.stop: polled every stopMask+1 pops; a
	// true return abandons the search (see Searcher.SetStop).
	stop func() bool
}

func newBidirScratch(n int) *bidirScratch {
	s := &bidirScratch{
		hf:    pq.NewIndexedMinHeap(n),
		hb:    pq.NewIndexedMinHeap(n),
		distF: make([]float64, n),
		distB: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.distF[i] = Inf
		s.distB[i] = Inf
	}
	return s
}

// reset restores the touched entries to their pristine state.
func (s *bidirScratch) reset() {
	for _, v := range s.touchedF {
		s.distF[v] = Inf
	}
	for _, v := range s.touchedB {
		s.distB[v] = Inf
	}
	s.touchedF = s.touchedF[:0]
	s.touchedB = s.touchedB[:0]
	s.hf.Reset()
	s.hb.Reset()
}

// bidirDistanceWithin grows Dijkstra balls from src and dst simultaneously,
// pruning any tentative distance above limit, and returns the meeting
// distance. Each side explores a ball of radius roughly limit/2 instead of
// the one-sided ball of radius limit, which on expander-like and doubling
// instances is a quadratic reduction in settled vertices.
//
// The returned value is the exact shortest-path distance whenever that
// distance is at most limit; values above limit (including Inf) only mean
// "no path within limit exists". The scratch buffers are left dirty; the
// caller resets.
//
// Termination uses the symmetric stopping rule: once the sum of the two
// frontier minima reaches the best meeting distance found — or exceeds
// limit, so no admissible meeting remains — no shorter path exists. Any
// path of length <= limit has every forward prefix and backward suffix
// within the limit, so the pruning never hides an admissible path.
func (g *Graph) bidirDistanceWithin(src, dst int, limit float64, s *bidirScratch) float64 {
	if src == dst {
		return 0
	}
	s.distF[src] = 0
	s.distB[dst] = 0
	s.touchedF = append(s.touchedF, int32(src))
	s.touchedB = append(s.touchedB, int32(dst))
	s.hf.Push(src, 0)
	s.hb.Push(dst, 0)

	best := Inf
	pops := 0
	for s.hf.Len() > 0 && s.hb.Len() > 0 {
		_, fMin := s.hf.Peek()
		_, bMin := s.hb.Peek()
		if fMin+bMin >= best || fMin+bMin > limit {
			break
		}
		if s.stop != nil {
			if pops++; pops&stopMask == 0 && s.stop() {
				break
			}
		}
		// Expand the side with the smaller frontier minimum.
		if fMin <= bMin {
			v, dv := s.hf.Pop()
			if s.distB[v] < Inf {
				if cand := dv + s.distB[v]; cand < best {
					best = cand
				}
			}
			for _, h := range g.adj[v] {
				u := int(h.to)
				nd := dv + h.w
				if nd > limit {
					continue
				}
				if nd < s.distF[u] {
					if s.distF[u] == Inf {
						s.touchedF = append(s.touchedF, int32(u))
					}
					s.distF[u] = nd
					s.hf.Push(u, nd)
				}
			}
		} else {
			v, dv := s.hb.Pop()
			if s.distF[v] < Inf {
				if cand := dv + s.distF[v]; cand < best {
					best = cand
				}
			}
			for _, h := range g.adj[v] {
				u := int(h.to)
				nd := dv + h.w
				if nd > limit {
					continue
				}
				if nd < s.distB[u] {
					if s.distB[u] == Inf {
						s.touchedB = append(s.touchedB, int32(u))
					}
					s.distB[u] = nd
					s.hb.Push(u, nd)
				}
			}
		}
	}
	return best
}

// BidirDistanceWithin reports the shortest-path distance between src and dst
// if it is at most limit, and (Inf, false) otherwise, like DistanceWithin
// but searching from both endpoints at once. Allocates per call; use
// Searcher.BidirDistanceWithin on hot paths.
func (g *Graph) BidirDistanceWithin(src, dst int, limit float64) (float64, bool) {
	s := newBidirScratch(g.N())
	d := g.bidirDistanceWithin(src, dst, limit, s)
	if d < Inf && d <= limit {
		return d, true
	}
	return Inf, false
}

// BidirectionalDistance computes the shortest-path distance between src and
// dst by growing Dijkstra balls from both endpoints simultaneously and
// stopping when the frontiers certify the meeting distance. On spanner-like
// sparse graphs this typically settles far fewer vertices than a one-sided
// search — it is the query primitive a distance oracle built on a spanner
// would use. Returns Inf if dst is unreachable.
func (g *Graph) BidirectionalDistance(src, dst int) float64 {
	return g.bidirDistanceWithin(src, dst, Inf, newBidirScratch(g.N()))
}
