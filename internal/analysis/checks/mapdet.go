package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Mapdet rejects range-over-map in deterministic engine paths. Go
// randomizes map iteration order, so a map range in a scan, certify, or
// graph path can silently change the edge order the greedy loop sees —
// and with it the output spanner. A map range is accepted only when the
// loop body does nothing but collect keys or values into a slice that
// the very next statement sorts, or when the loop carries a
// //spannerlint:nondeterministic-ok <reason> annotation (only valid when
// the computation is genuinely order-independent, e.g. an argmin with a
// deterministic tie-break).
var Mapdet = &framework.Analyzer{
	Name:  "mapdet",
	Doc:   "forbid unordered map iteration in deterministic engine paths",
	Scope: []string{"internal/core", "internal/graph"},
	Run:   runMapdet,
}

func runMapdet(pass *framework.Pass) error {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !rangesOverMap(info, rng) {
					continue
				}
				if collectsThenSorts(info, rng, list[i+1:]) {
					continue
				}
				pass.Reportf(rng.Pos(), "range over map %s in a deterministic engine path: iterate sorted keys, or annotate //spannerlint:nondeterministic-ok <reason> if order provably cannot affect output", exprString(rng.X))
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node carries, so range statements
// can be related to their following statements.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// collectsThenSorts recognizes the one blessed map-range shape: every
// statement in the body appends to (or writes an element of) some local
// slice, and the statement immediately after the loop sorts. The sort
// re-establishes a deterministic order before anything downstream can
// observe the map's.
func collectsThenSorts(info *types.Info, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rest) == 0 || !isSortStmt(info, rest[0]) {
		return false
	}
	for _, stmt := range rng.Body.List {
		asg, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		// Either `s = append(s, ...)` or an indexed write `s[i] = ...`;
		// both only move elements into a slice the sort then orders.
		onlyCollects := true
		for _, lhs := range asg.Lhs {
			switch lhs.(type) {
			case *ast.Ident, *ast.IndexExpr:
			default:
				onlyCollects = false
			}
		}
		if !onlyCollects {
			return false
		}
	}
	return true
}

// isSortStmt reports whether stmt is a call into the sort or slices
// packages, or the graph package's SortEdges canonical ordering.
func isSortStmt(info *types.Info, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, name := range []string{"Sort", "SortFunc", "SortStableFunc", "Slice", "SliceStable", "Stable", "Strings", "Ints", "Float64s"} {
		if pkgCall(info, call, "sort", name) || pkgCall(info, call, "slices", name) {
			return true
		}
	}
	return calledMethodName(call) == "SortEdges"
}
