package verify

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

func TestSpannerAcceptsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.ErdosRenyi(rng, 25, 0.3, 1, 5)
	rep, err := Spanner(g, g, 1, 1e-12)
	if err != nil {
		t.Fatalf("graph is not a 1-spanner of itself: %v", err)
	}
	if rep.MaxStretch > 1+1e-12 {
		t.Fatalf("MaxStretch = %v on identity", rep.MaxStretch)
	}
	if rep.Pairs != g.M() {
		t.Fatalf("Pairs = %d, want %d", rep.Pairs, g.M())
	}
}

func TestSpannerDetectsViolation(t *testing.T) {
	// Remove the only edge on a path: infinite stretch.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	h := graph.New(3)
	h.MustAddEdge(0, 1, 1)
	if _, err := Spanner(h, g, 100, 1e-12); err == nil {
		t.Fatal("missing-edge spanner accepted")
	}
	// Mismatched vertex sets must error.
	if _, err := Spanner(graph.New(2), g, 2, 0); err == nil {
		t.Fatal("vertex mismatch accepted")
	}
}

func TestSpannerStretchMeasured(t *testing.T) {
	// Square with unit edges, spanner = path 0-1-2-3: the removed edge
	// (0, 3) has spanner distance 3, so the worst edge stretch is 3.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	h := graph.New(4)
	h.MustAddEdge(0, 1, 1)
	h.MustAddEdge(1, 2, 1)
	h.MustAddEdge(2, 3, 1)
	rep, err := Spanner(h, g, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxStretch != 3 {
		t.Fatalf("MaxStretch = %v, want 3", rep.MaxStretch)
	}
	if _, err := Spanner(h, g, 2.9, 1e-12); err == nil {
		t.Fatal("stretch-3 spanner accepted at t=2.9")
	}
}

func TestMetricSpanner(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 0}, {2, 0}})
	h := graph.New(3)
	h.MustAddEdge(0, 1, 1)
	h.MustAddEdge(1, 2, 1)
	rep, err := MetricSpanner(h, m, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != 3 {
		t.Fatalf("Pairs = %d, want 3", rep.Pairs)
	}
	// Missing middle edge: stretch (1+1)/... point 0-2 must route 0-1-2 = 2 = exact.
	bad := graph.New(3)
	bad.MustAddEdge(0, 1, 1)
	if _, err := MetricSpanner(bad, m, 10, 1e-12); err == nil {
		t.Fatal("disconnected metric spanner accepted")
	}
	if _, err := MetricSpanner(graph.New(2), m, 1, 0); err == nil {
		t.Fatal("vertex mismatch accepted")
	}
}

func TestSampledMetricSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gen.UniformPoints(rng, 40, 2)
	m := metric.MustEuclidean(pts)
	h := metric.CompleteGraph(m)
	rep, err := SampledMetricSpanner(h, m, 1, 1e-12, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 {
		t.Fatal("no pairs sampled")
	}
	// Single-point metric: nothing to check, no error.
	one := metric.MustEuclidean([][]float64{{0, 0}})
	if _, err := SampledMetricSpanner(graph.New(1), one, 1, 0, 10, rng); err != nil {
		t.Fatal(err)
	}
}

func TestLightnessFunctions(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 2)
	l, err := Lightness(g, g)
	if err != nil || l != 2 {
		t.Fatalf("Lightness = %v, %v; want 2 (weight 4 / MST 2)", l, err)
	}
	if _, err := Lightness(g, graph.New(3)); err == nil {
		t.Fatal("zero MST accepted")
	}
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 0}, {2, 0}})
	h := metric.CompleteGraph(m)
	ml, err := MetricLightness(h, m)
	if err != nil || ml != 2 {
		t.Fatalf("MetricLightness = %v, %v; want 2", ml, err)
	}
}

func TestContainsMSTEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ErdosRenyi(rng, 20, 0.4, 1, 5)
	mst := g.Subgraph(g.MSTKruskal())
	if err := ContainsMSTEdges(mst, g); err != nil {
		t.Fatalf("MST does not contain itself: %v", err)
	}
	if err := ContainsMSTEdges(graph.New(20), g); err == nil {
		t.Fatal("empty graph passed MST containment")
	}
}

func TestSameMSTWeight(t *testing.T) {
	// Observation 6: graph and induced metric share MST weight.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		g := gen.ErdosRenyi(rng, 15, 0.4, 0.5, 5)
		if err := SameMSTWeight(g, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	disc := graph.New(3)
	disc.MustAddEdge(0, 1, 1)
	if err := SameMSTWeight(disc, 1e-9); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}
