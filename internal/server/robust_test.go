package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to return to the
// baseline; a drained or cancel-stormed server must release every
// request goroutine, so anything still running afterwards is a leak.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<18)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeShedUnderOverload saturates a one-slot server whose single
// admitted request is parked, then verifies overflow beyond the bounded
// queue is shed with the typed 503 body — never queued without bound,
// never dropped without a response — and that the parked request still
// completes once released.
func TestServeShedUnderOverload(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, 20, func(cfg *Config) {
		cfg.MaxInflight = 1
		cfg.QueueDepth = 2
		cfg.RequestTimeout = 30 * time.Second
	})
	// Park the only admission slot.
	s.sem <- struct{}{}
	go func() {
		<-release
		<-s.sem
	}()

	// Fill the wait queue, then overflow it.
	var parked sync.WaitGroup
	queued := make([]context.CancelFunc, 0, 2)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		queued = append(queued, cancel)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/distance?u=0&v=1", nil)
		parked.Add(1)
		go func() {
			defer parked.Done()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Wait until both waiters are counted before overflowing.
	for deadline := time.Now().Add(3 * time.Second); s.waiters.Load() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d waiters", s.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}

	var shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, status := getJSON(t, ts.URL+"/v1/distance?u=0&v=1")
			if status == http.StatusServiceUnavailable && body["code"] == codeShed {
				shed.Add(1)
			} else if status != http.StatusOK {
				t.Errorf("overflow request: status %d code %v, want 200 or typed shed", status, body["code"])
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("no request was shed with a full queue")
	}
	if s.counters.Shed.Load() < uint64(shed.Load()) {
		t.Fatalf("shed counter %d below observed %d", s.counters.Shed.Load(), shed.Load())
	}

	// Cancel the queued waiters (typed response path), release the slot.
	for _, cancel := range queued {
		cancel()
	}
	parked.Wait()
	close(release)
	if body, status := getJSON(t, ts.URL+"/v1/distance?u=0&v=1"); status != http.StatusOK {
		t.Fatalf("post-overload request: status %d body %v", status, body)
	}
}

// TestServeCancelStormNoLeak fires a storm of requests whose client
// contexts are cancelled at random points and verifies every goroutine
// drains away: cancellation must produce typed responses (or a client
// error) and never park a request goroutine forever.
func TestServeCancelStormNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		_, ts := newTestServer(t, 30, func(cfg *Config) {
			cfg.MaxInflight = 4
			cfg.QueueDepth = 4
		})
		var wg sync.WaitGroup
		for i := 0; i < 60; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*200*time.Microsecond)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
					fmt.Sprintf("%s/v1/distance?u=%d&v=%d", ts.URL, i%30, (i*7)%30), nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
			}(i)
		}
		wg.Wait()
	}()
	http.DefaultClient.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

// TestServeDrainExactPrefix overlaps a drain with in-flight reads and
// mutations: every request must get a response (success or typed
// cancellation/draining — zero dropped), and every mutation acknowledged
// with 200 must be recovered after reopening the directory.
func TestServeDrainExactPrefix(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, 25, func(cfg *Config) {
		cfg.DrainGrace = 500 * time.Millisecond
	})

	var wg sync.WaitGroup
	var acked, responded, dropped atomic.Int64
	start := make(chan struct{})
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if i%4 == 0 {
				pt := []float64{1000 + float64(i), 1000}
				body, status := postJSON(t, ts.URL+"/v1/mutate",
					mutateRequest{Op: "insert-points", Points: [][]float64{pt}})
				responded.Add(1)
				switch {
				case status == http.StatusOK:
					acked.Add(1)
				case body["code"] == codeDraining || body["code"] == codeCancel || body["code"] == codeDeadline:
				default:
					t.Errorf("mutation: status %d body %v", status, body)
				}
				return
			}
			body, status := getJSON(t, ts.URL+fmt.Sprintf("/v1/distance?u=%d&v=%d", i%25, (i*3)%25))
			responded.Add(1)
			if status != http.StatusOK && body["code"] != codeDraining && body["code"] != codeCancel && body["code"] != codeDeadline && body["code"] != codeShed {
				dropped.Add(1)
				t.Errorf("read: status %d body %v", status, body)
			}
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some requests get in flight mid-drain

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Mid-drain second signal: a concurrent Drain call must coalesce
	// with the first, not double-close anything.
	second := make(chan error, 1)
	go func() { second <- s.Drain(drainCtx) }()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second drain: %v", err)
	}
	wg.Wait()
	if responded.Load() != 24 || dropped.Load() != 0 {
		t.Fatalf("%d/24 requests answered, %d dropped", responded.Load(), dropped.Load())
	}

	// Acked mutations survived: opseq on disk >= acked count (each ack
	// logged exactly one op; drain must not lose any).
	if got := s.Stats().OpSeq; got < uint64(acked.Load()) {
		t.Fatalf("served opseq %d below %d acknowledged mutations", got, acked.Load())
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

// TestServePanicContained injects a handler panic through the snapshot
// swap hook and verifies the response is a typed 500 while the server
// keeps serving afterwards.
func TestServePanicContained(t *testing.T) {
	armed := atomic.Bool{}
	s, ts := newTestServer(t, 15, func(cfg *Config) {
		cfg.Hooks.BeforeSwap = func(version uint64) {
			if armed.Load() {
				armed.Store(false)
				panic("injected swap-window panic")
			}
		}
	})
	armed.Store(true)
	body, status := postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "insert-points", Points: [][]float64{{7, 7}}})
	if status != http.StatusInternalServerError || body["code"] != codePanic {
		t.Fatalf("panicked mutation: status %d code %v, want 500/panic", status, body["code"])
	}
	if s.counters.Panics.Load() != 1 {
		t.Fatalf("panic counter %d, want 1", s.counters.Panics.Load())
	}
	// The server still serves reads and accepts new mutations.
	if _, status := getJSON(t, ts.URL+"/v1/distance?u=0&v=1"); status != http.StatusOK {
		t.Fatalf("read after panic: status %d", status)
	}
	if body, status := postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "insert-points", Points: [][]float64{{8, 8}}}); status != http.StatusOK {
		t.Fatalf("mutation after panic: status %d body %v", status, body)
	}
}
