package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

type pairRec struct {
	u, v int
	w    float64
}

func collectPairs(e *GridEnumerator, lo, hi float64) []pairRec {
	var out []pairRec
	e.Pairs(lo, hi, func(u, v int, w float64) {
		out = append(out, pairRec{u, v, w})
	})
	return out
}

func sortPairRecs(ps []pairRec) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].u != ps[j].u {
			return ps[i].u < ps[j].u
		}
		return ps[i].v < ps[j].v
	})
}

func l2(a, b []float64) float64 {
	var s float64
	for k := range a {
		d := a[k] - b[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// brutePairs is the reference enumeration: all i<j pairs with w in [lo, hi).
func brutePairs(pts [][]float64, lo, hi float64) []pairRec {
	var out []pairRec
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if w := l2(pts[i], pts[j]); lo <= w && w < hi {
				out = append(out, pairRec{i, j, w})
			}
		}
	}
	return out
}

func testPointSets(t *testing.T) map[string][][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	randPts := func(n, d int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for k := range p {
				p[k] = rng.Float64()
			}
			pts[i] = p
		}
		return pts
	}
	clustered := randPts(40, 2)
	for i := 20; i < 40; i++ {
		clustered[i][0] = clustered[i][0]*1e-3 + 5
		clustered[i][1] = clustered[i][1]*1e-3 - 5
	}
	return map[string][][]float64{
		"uniform-2d":  randPts(80, 2),
		"uniform-3d":  randPts(50, 3),
		"uniform-5d":  randPts(40, 5),
		"line-1d":     randPts(60, 1),
		"clustered":   clustered,
		"duplicates":  {{0, 0}, {0, 0}, {1, 1}, {1, 1}, {3, 0}},
		"two-points":  {{0, 0, 0}, {1, 2, 2}},
		"collinear-x": {{0, 0}, {1, 0}, {2, 0}, {4, 0}, {8, 0}, {16, 0}},
	}
}

// TestGridEnumeratorMatchesBruteForce checks each weight range against the
// brute-force enumeration: same pairs, same weights, each exactly once.
func TestGridEnumeratorMatchesBruteForce(t *testing.T) {
	for name, pts := range testPointSets(t) {
		e := NewGridEnumerator(pts, func(i, j int) float64 { return l2(pts[i], pts[j]) })
		bounds := []float64{0, 1e-6, 0.05, 0.25, 0.7, 1.1, 2, 8, math.Inf(1)}
		for b := 1; b < len(bounds); b++ {
			lo, hi := bounds[b-1], bounds[b]
			got := collectPairs(e, lo, hi)
			want := brutePairs(pts, lo, hi)
			sortPairRecs(got)
			sortPairRecs(want)
			label := fmt.Sprintf("%s/[%v,%v)", name, lo, hi)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: pair %d: got %+v, want %+v", label, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGridEnumeratorPartitionCoversEveryPairOnce drains a full partition
// of the weight axis and checks the union covers all n(n-1)/2 pairs with
// no duplicates — the exactly-once contract the bucketed candidate source
// relies on.
func TestGridEnumeratorPartitionCoversEveryPairOnce(t *testing.T) {
	for name, pts := range testPointSets(t) {
		e := NewGridEnumerator(pts, func(i, j int) float64 { return l2(pts[i], pts[j]) })
		seen := make(map[[2]int]int)
		bounds := []float64{0, 0.1, 0.5, 1, 4, math.Inf(1)}
		for b := 1; b < len(bounds); b++ {
			e.Pairs(bounds[b-1], bounds[b], func(u, v int, w float64) {
				if u >= v {
					t.Fatalf("%s: unordered pair (%d, %d)", name, u, v)
				}
				seen[[2]int{u, v}]++
			})
		}
		n := len(pts)
		if len(seen) != n*(n-1)/2 {
			t.Fatalf("%s: covered %d of %d pairs", name, len(seen), n*(n-1)/2)
		}
		for p, c := range seen {
			if c != 1 {
				t.Fatalf("%s: pair %v enumerated %d times", name, p, c)
			}
		}
	}
}

// TestGridEnumeratorEmpty covers the trivial inputs.
func TestGridEnumeratorEmpty(t *testing.T) {
	for _, pts := range [][][]float64{nil, {{1, 2}}} {
		e := NewGridEnumerator(pts, func(i, j int) float64 { return 0 })
		if got := collectPairs(e, 0, math.Inf(1)); len(got) != 0 {
			t.Fatalf("%d points emitted %d pairs", len(pts), len(got))
		}
	}
}

// TestGridEnumeratorHugeCoordinates pins the overflow guard of the
// annulus pruning: with coordinates near the float64 ceiling the squared
// separation bounds overflow to +Inf, and a 0*Inf comparison would go NaN
// and silently prune cells holding in-range pairs. Every pair the
// brute-force reference finds must still be emitted.
func TestGridEnumeratorHugeCoordinates(t *testing.T) {
	big := math.Ldexp(1, 511)
	pts := [][]float64{{1.9 * big}, {2.1 * big}, {0}}
	e := NewGridEnumerator(pts, func(i, j int) float64 { return Dist(pts[i], pts[j]) })
	lo, hi := math.Ldexp(1, 490), math.Ldexp(1, 512)
	want := map[[2]int]bool{}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := Dist(pts[i], pts[j]); d >= lo && d < hi {
				want[[2]int{i, j}] = true
			}
		}
	}
	got := map[[2]int]bool{}
	e.Pairs(lo, hi, func(u, v int, w float64) {
		got[[2]int{u, v}] = true
	})
	if len(got) != len(want) {
		t.Fatalf("emitted %v, want %v", got, want)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v dropped (emitted %v)", p, got)
		}
	}
}
