package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metric"
)

// equalResults fails the test unless a and b agree on every observable
// field: edge sequence, total weight (bit-identical), vertex count, and
// examined-edge count.
func equalResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: N mismatch: %d vs %d", label, a.N, b.N)
	}
	if a.EdgesExamined != b.EdgesExamined {
		t.Fatalf("%s: EdgesExamined mismatch: %d vs %d", label, a.EdgesExamined, b.EdgesExamined)
	}
	if a.Weight != b.Weight {
		t.Fatalf("%s: Weight mismatch: %v vs %v", label, a.Weight, b.Weight)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("%s: size mismatch: %d vs %d edges", label, len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", label, i, a.Edges[i], b.Edges[i])
		}
	}
}

// testGraphs builds the cross-family instance set the equivalence tests
// sweep: random sparse/dense, geometric, structured, and multi-scale.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	out := map[string]*graph.Graph{
		"erdos-renyi-sparse": gen.ErdosRenyi(rng, 120, 0.05, 0.5, 10),
		"erdos-renyi-dense":  gen.ErdosRenyi(rng, 80, 0.5, 0.5, 10),
		"grid":               gen.WeightedPerturbation(rng, gen.Grid(12, 10), 0.3),
		"hypercube":          gen.WeightedPerturbation(rng, gen.Hypercube(7), 0.2),
		"petersen":           gen.Petersen(),
	}
	geo, _ := gen.RandomGeometric(rng, 150, 0.2)
	out["geometric"] = geo
	m := metric.MustEuclidean(gen.UniformPoints(rng, 60, 2))
	out["complete-euclidean"] = metric.CompleteGraph(m)
	return out
}

// TestGreedyGraphParallelEquivalence asserts the batched-parallel engine is
// bit-identical to the sequential GreedyGraph across graph families,
// stretches, worker counts, and batch widths.
func TestGreedyGraphParallelEquivalence(t *testing.T) {
	workerCounts := []int{1, 2, 3, 4, 8, runtime.GOMAXPROCS(0)}
	stretches := []float64{1, 1.5, 2, 3, 5}
	for name, g := range testGraphs(t) {
		for _, stretch := range stretches {
			want, err := GreedyGraph(g, stretch)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range workerCounts {
				got, err := GreedyGraphParallel(g, stretch, workers)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/t=%v/w=%d", name, stretch, workers)
				equalResults(t, label, want, got)
			}
			// Pathological batch widths must not change decisions.
			for _, batch := range []int{1, 7, 100000} {
				got, err := GreedyGraphParallelOpts(g, stretch, ParallelOptions{Workers: 4, BatchSize: batch})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/t=%v/batch=%d", name, stretch, batch)
				equalResults(t, label, want, got)
			}
		}
	}
}

// TestGreedyGraphParallelDeterminism runs the engine repeatedly on one
// instance and demands identical output every time (the worker pool must
// not leak scheduling nondeterminism into decisions).
func TestGreedyGraphParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.ErdosRenyi(rng, 150, 0.2, 0.5, 10)
	first, err := GreedyGraphParallel(g, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := GreedyGraphParallel(g, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "rerun", first, again)
	}
}

// TestGreedyMetricMatchesGraphEngine cross-checks the two parallel engines:
// the metric greedy (cached-bound row refreshes) against the batched graph
// engine run on the metric's complete distance graph (bounded bidirectional
// searches) — completely disjoint query code paths that must produce the
// same spanner.
func TestGreedyMetricMatchesGraphEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 70, 2))
	for _, stretch := range []float64{1.2, 1.5, 2} {
		a, err := GreedyMetric(m, stretch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GreedyGraphParallel(metric.CompleteGraph(m), stretch, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Edges) != len(b.Edges) || a.Weight != b.Weight {
			t.Fatalf("t=%v: metric and graph engines diverged: %d/%v vs %d/%v edges/weight",
				stretch, len(a.Edges), a.Weight, len(b.Edges), b.Weight)
		}
	}
}

// TestGreedyGraphParallelStats sanity-checks the engine counters: every
// examined edge is accounted for exactly once.
func TestGreedyGraphParallelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.ErdosRenyi(rng, 100, 0.3, 0.5, 10)
	var stats ParallelStats
	res, err := GreedyGraphParallelOpts(g, 3, ParallelOptions{Workers: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	total := stats.CertifiedSkips + stats.SerialSkips + stats.Kept
	if total != res.EdgesExamined {
		t.Fatalf("stats don't cover scan: certified %d + serial %d + kept %d = %d, examined %d",
			stats.CertifiedSkips, stats.SerialSkips, stats.Kept, total, res.EdgesExamined)
	}
	if stats.Kept != len(res.Edges) {
		t.Fatalf("Kept = %d, want %d", stats.Kept, len(res.Edges))
	}
	if stats.Batches == 0 || stats.FinalBatchSize == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
}

// TestGreedyGraphParallelEdgeCases covers empty and trivial inputs.
func TestGreedyGraphParallelEdgeCases(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := GreedyGraphParallel(graph.New(0), 2, workers)
		if err != nil || res.Size() != 0 {
			t.Fatalf("empty graph: res=%+v err=%v", res, err)
		}
		res, err = GreedyGraphParallel(graph.New(5), 2, workers)
		if err != nil || res.Size() != 0 || res.N != 5 {
			t.Fatalf("edgeless graph: res=%+v err=%v", res, err)
		}
	}
	if _, err := GreedyGraphParallel(graph.New(3), 0.5, 2); err == nil {
		t.Fatal("stretch < 1 accepted")
	}
	if _, err := GreedyGraphParallel(graph.New(3), math.NaN(), 2); err == nil {
		t.Fatal("NaN stretch accepted")
	}
}
