package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
	"repro/internal/verify"
)

func TestFaultTolerantGreedyValidation(t *testing.T) {
	m := metric.MustEuclidean([][]float64{{0, 0}, {1, 1}})
	if _, err := FaultTolerantGreedy(m, 0.5, 1); err == nil {
		t.Fatal("bad stretch accepted")
	}
	if _, err := FaultTolerantGreedy(m, 2, -1); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := FaultTolerantGreedy(m, 2, 3); err == nil {
		t.Fatal("unsupported f accepted")
	}
}

func TestFaultTolerantZeroFaultsEqualsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 20, 2))
	a, err := FaultTolerantGreedy(m, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyMetric(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("f=0 differs from greedy: %d vs %d edges", len(a.Edges), len(b.Edges))
	}
}

func TestFaultTolerantOneFaultSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 16, 2))
	const tt = 1.8
	res, err := FaultTolerantGreedy(m, tt, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	if err := VerifyFaultTolerance(h, m, tt, 1, 1e-9); err != nil {
		t.Fatal(err)
	}
	// The FT spanner is also a plain spanner (F = {} is a fault set).
	if _, err := verify.MetricSpanner(h, m, tt, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTolerantTwoFaultsSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 10, 2))
	const tt = 2.0
	res, err := FaultTolerantGreedy(m, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFaultTolerance(res.Graph(), m, tt, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestFaultToleranceCostsEdges(t *testing.T) {
	// More fault tolerance cannot mean fewer edges: every f-FT spanner's
	// requirement set contains the (f-1)-FT requirements.
	rng := rand.New(rand.NewSource(73))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 14, 2))
	const tt = 1.6
	prev := -1
	for f := 0; f <= 2; f++ {
		res, err := FaultTolerantGreedy(m, tt, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() < prev {
			t.Fatalf("f=%d spanner smaller than f=%d one: %d < %d", f, f-1, res.Size(), prev)
		}
		prev = res.Size()
	}
}

func TestFaultTolerantMinDegree(t *testing.T) {
	// In a 1-FT spanner every vertex needs degree >= 2 (a degree-1 vertex
	// is disconnected by its only neighbor's failure)... except in trivial
	// 2-point metrics. Check on a real instance.
	rng := rand.New(rand.NewSource(74))
	m := metric.MustEuclidean(gen.UniformPoints(rng, 12, 2))
	res, err := FaultTolerantGreedy(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Graph()
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) < 2 {
			t.Fatalf("vertex %d has degree %d in a 1-FT spanner", v, h.Degree(v))
		}
	}
}

func TestVerifyFaultToleranceDetectsFragileSpanner(t *testing.T) {
	// A path spanner of collinear points dies with any interior failure.
	pts := [][]float64{{0}, {1}, {2}, {3}}
	m := metric.MustEuclidean(pts)
	res, err := GreedyMetric(m, 1.1) // the path 0-1-2-3
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFaultTolerance(res.Graph(), m, 1.1, 1, 1e-9); err == nil {
		t.Fatal("fragile path passed 1-FT verification")
	}
	if err := VerifyFaultTolerance(res.Graph(), m, 1.1, 5, 1e-9); err == nil {
		t.Fatal("unsupported f accepted by verifier")
	}
}
