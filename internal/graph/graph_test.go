package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges [][3]float64) *Graph {
	t.Helper()
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

// pathGraph returns the path 0-1-2-...-(n-1) with unit weights.
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// randomConnectedGraph returns a connected weighted graph: a random spanning
// tree plus extra random edges.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.MustAddEdge(u, v, 0.1+rng.Float64()*10)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.1+rng.Float64()*10)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	cases := []struct {
		u, v int
		w    float64
	}{
		{-1, 0, 1},    // out of range
		{0, 3, 1},     // out of range
		{1, 1, 1},     // self-loop
		{0, 1, 0},     // zero weight
		{0, 1, -2},    // negative weight
		{0, 1, Inf},   // infinite weight
		{0, 1, nan()}, // NaN weight
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d, %d, %v) succeeded, want error", c.u, c.v, c.w)
		}
	}
	if g.M() != 0 {
		t.Fatalf("M = %d after rejected edges, want 0", g.M())
	}
	if err := g.AddEdge(0, 2, 1.5); err != nil {
		t.Fatalf("valid AddEdge: %v", err)
	}
	if g.M() != 1 || g.Weight() != 1.5 {
		t.Fatalf("M=%d Weight=%v, want 1, 1.5", g.M(), g.Weight())
	}
}

func nan() float64 { return math.NaN() }

func TestBasicAccessors(t *testing.T) {
	g := mustGraph(t, 4, [][3]float64{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {0, 3, 10}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if !g.HasEdge(3, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if w, ok := g.EdgeWeight(3, 2); !ok || w != 4 {
		t.Fatalf("EdgeWeight(3,2) = %v, %v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 2); ok {
		t.Fatal("EdgeWeight found absent edge")
	}
	if g.Weight() != 19 {
		t.Fatalf("Weight = %v, want 19", g.Weight())
	}
}

func TestEdgeWeightParallelEdges(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 1, 7)
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 2 {
		t.Fatalf("EdgeWeight = %v, %v; want min 2", w, ok)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := pathGraph(4)
	c := g.Clone()
	c.MustAddEdge(0, 3, 9)
	if g.M() != 3 {
		t.Fatalf("clone mutation leaked: g.M = %d", g.M())
	}
	if c.M() != 4 {
		t.Fatalf("c.M = %d, want 4", c.M())
	}
}

func TestWithoutEdge(t *testing.T) {
	g := pathGraph(3)
	h, err := g.WithoutEdge(Edge{U: 1, V: 0, W: 1}) // non-canonical order is fine
	if err != nil {
		t.Fatalf("WithoutEdge: %v", err)
	}
	if h.M() != 1 || h.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	if _, err := g.WithoutEdge(Edge{U: 0, V: 2, W: 1}); err == nil {
		t.Fatal("WithoutEdge of absent edge succeeded")
	}
	// Removing one of two parallel edges keeps the other.
	p := New(2)
	p.MustAddEdge(0, 1, 3)
	p.MustAddEdge(0, 1, 3)
	q, err := p.WithoutEdge(Edge{U: 0, V: 1, W: 3})
	if err != nil {
		t.Fatalf("WithoutEdge parallel: %v", err)
	}
	if q.M() != 1 || !q.HasEdge(0, 1) {
		t.Fatal("parallel removal wrong")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(3, 4, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if New(0).Connected() != true || New(1).Connected() != true {
		t.Fatal("trivial graphs must be connected")
	}
}

func TestDijkstraPath(t *testing.T) {
	//     1 --2-- 2
	//    /         \
	//   1           1
	//  /             \
	// 0 -----10------ 3
	g := mustGraph(t, 4, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {0, 3, 10}})
	sp := g.Dijkstra(0)
	want := []float64{0, 1, 3, 4}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Errorf("Dist[%d] = %v, want %v", v, sp.Dist[v], d)
		}
	}
	path := sp.PathTo(3)
	wantPath := []int{0, 1, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	sp := g.Dijkstra(0)
	if sp.Dist[2] != Inf {
		t.Fatalf("Dist[2] = %v, want Inf", sp.Dist[2])
	}
	if sp.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) != nil")
	}
	if d := g.DijkstraTo(0, 2); d != Inf {
		t.Fatalf("DijkstraTo = %v, want Inf", d)
	}
}

func TestDistanceWithin(t *testing.T) {
	g := pathGraph(5) // distances = hop count
	if d, ok := g.DistanceWithin(0, 3, 3); !ok || d != 3 {
		t.Fatalf("DistanceWithin(0,3,3) = %v, %v", d, ok)
	}
	if _, ok := g.DistanceWithin(0, 4, 3.5); ok {
		t.Fatal("DistanceWithin found path beyond limit")
	}
	if d, ok := g.DistanceWithin(2, 2, 0); !ok || d != 0 {
		t.Fatalf("DistanceWithin(self) = %v, %v", d, ok)
	}
}

func TestDijkstraBoundedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(rng, 40, 80)
		full := g.Dijkstra(0)
		limit := 8.0
		bounded := g.DijkstraBounded(0, limit)
		for v := 0; v < g.N(); v++ {
			if full.Dist[v] <= limit {
				if bounded.Dist[v] != full.Dist[v] {
					t.Fatalf("bounded Dist[%d] = %v, full = %v", v, bounded.Dist[v], full.Dist[v])
				}
			}
		}
	}
}

// bellmanFord is an independent O(nm) reference implementation.
func bellmanFord(g *Graph, src int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for i := 0; i < g.N(); i++ {
		changed := false
		for _, e := range g.Edges() {
			if dist[e.U]+e.W < dist[e.V] {
				dist[e.V] = dist[e.U] + e.W
				changed = true
			}
			if dist[e.V]+e.W < dist[e.U] {
				dist[e.U] = dist[e.V] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestDijkstraAgainstBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedGraph(rng, 30, 60)
		src := rng.Intn(g.N())
		want := bellmanFord(g, src)
		got := g.Dijkstra(src)
		for v := range want {
			if math.Abs(got.Dist[v]-want[v]) > 1e-9 {
				t.Fatalf("trial %d: Dist[%d] = %v, bellman-ford = %v", trial, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestAPSPSymmetricAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomConnectedGraph(rng, 25, 50)
	d := g.APSP()
	n := g.N()
	for i := 0; i < n; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %v, want 0", i, i, d[i][i])
		}
		for j := 0; j < n; j++ {
			if math.Abs(d[i][j]-d[j][i]) > 1e-9 {
				t.Fatalf("asymmetric: d[%d][%d]=%v d[%d][%d]=%v", i, j, d[i][j], j, i, d[j][i])
			}
			for k := 0; k < n; k++ {
				if d[i][j] > d[i][k]+d[k][j]+1e-9 {
					t.Fatalf("triangle violated: d[%d][%d] > d[%d][%d] + d[%d][%d]", i, j, i, k, k, j)
				}
			}
		}
	}
}

func TestMSTAgreesKruskalPrim(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedGraph(rng, 30, 60)
		k := g.MSTKruskal()
		p := g.MSTPrim()
		if len(k) != g.N()-1 || len(p) != g.N()-1 {
			t.Fatalf("MST sizes: kruskal=%d prim=%d, want %d", len(k), len(p), g.N()-1)
		}
		wk, wp := 0.0, 0.0
		for _, e := range k {
			wk += e.W
		}
		for _, e := range p {
			wp += e.W
		}
		if math.Abs(wk-wp) > 1e-9 {
			t.Fatalf("MST weights differ: %v vs %v", wk, wp)
		}
		// The MST edges must form a spanning connected subgraph.
		if !g.Subgraph(k).Connected() {
			t.Fatal("kruskal MST not spanning")
		}
		if !g.Subgraph(p).Connected() {
			t.Fatal("prim MST not spanning")
		}
	}
}

func TestMSTCutProperty(t *testing.T) {
	// Property: for every MST edge e = (u,v), e is a minimum-weight edge
	// across the cut defined by removing e from the tree.
	rng := rand.New(rand.NewSource(19))
	g := randomConnectedGraph(rng, 20, 40)
	mst := g.MSTKruskal()
	tree := g.Subgraph(mst)
	for _, e := range mst {
		cut, err := tree.WithoutEdge(e)
		if err != nil {
			t.Fatalf("WithoutEdge: %v", err)
		}
		comps := cut.Components()
		if len(comps) != 2 {
			t.Fatalf("removing tree edge gave %d components", len(comps))
		}
		side := make([]bool, g.N())
		for _, v := range comps[0] {
			side[v] = true
		}
		for _, f := range g.Edges() {
			if side[f.U] != side[f.V] && f.W < e.W-1e-12 {
				t.Fatalf("cut property violated: edge %v lighter than MST edge %v across same cut", f, e)
			}
		}
	}
}

func TestLightness(t *testing.T) {
	g := mustGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 1}, {0, 2, 1.5}})
	// MST = {01, 12}, weight 2. Whole graph weight 3.5.
	l, ok := Lightness(g, g)
	if !ok || math.Abs(l-1.75) > 1e-12 {
		t.Fatalf("Lightness = %v, %v; want 1.75", l, ok)
	}
	empty := New(1)
	if _, ok := Lightness(empty, empty); ok {
		t.Fatal("Lightness of empty graph should report not-ok")
	}
}

func TestGirthKnownGraphs(t *testing.T) {
	triangle := mustGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}})
	if gi := triangle.GirthUnweighted(); gi != 3 {
		t.Fatalf("triangle girth = %d, want 3", gi)
	}
	c5 := New(5)
	for i := 0; i < 5; i++ {
		c5.MustAddEdge(i, (i+1)%5, 1)
	}
	if gi := c5.GirthUnweighted(); gi != 5 {
		t.Fatalf("C5 girth = %d, want 5", gi)
	}
	tree := pathGraph(6)
	if gi := tree.GirthUnweighted(); gi != 0 {
		t.Fatalf("tree girth = %d, want 0 (acyclic)", gi)
	}
	multi := New(2)
	multi.MustAddEdge(0, 1, 1)
	multi.MustAddEdge(0, 1, 2)
	if gi := multi.GirthUnweighted(); gi != 2 {
		t.Fatalf("multigraph girth = %d, want 2", gi)
	}
	// K4 has girth 3.
	k4 := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j, 1)
		}
	}
	if gi := k4.GirthUnweighted(); gi != 3 {
		t.Fatalf("K4 girth = %d, want 3", gi)
	}
}

func TestSecondShortestPath(t *testing.T) {
	// Two disjoint paths 0->3: weight 3 (through 1,2) and weight 5 (direct).
	g := mustGraph(t, 4, [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 5}})
	if d := g.SecondShortestPath(0, 3); d != 5 {
		t.Fatalf("second shortest = %v, want 5", d)
	}
	// A tree has no second path.
	tree := pathGraph(4)
	if d := tree.SecondShortestPath(0, 3); d != Inf {
		t.Fatalf("second shortest in tree = %v, want Inf", d)
	}
	// Two equal shortest paths: second equals first (paper's convention).
	eq := mustGraph(t, 4, [][3]float64{{0, 1, 1}, {1, 3, 1}, {0, 2, 1}, {2, 3, 1}})
	if d := eq.SecondShortestPath(0, 3); d != 2 {
		t.Fatalf("second shortest with tie = %v, want 2", d)
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(5)
	ecc, all := g.Eccentricity(0)
	if !all || ecc != 4 {
		t.Fatalf("Eccentricity = %v, %v; want 4, true", ecc, all)
	}
	disc := New(3)
	disc.MustAddEdge(0, 1, 2)
	ecc, all = disc.Eccentricity(0)
	if all || ecc != 2 {
		t.Fatalf("Eccentricity = %v, %v; want 2, false", ecc, all)
	}
}

func TestSortedEdgesDeterministic(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 0.5)
	es := g.SortedEdges()
	if es[0].W != 0.5 {
		t.Fatalf("first edge %v, want weight 0.5", es[0])
	}
	if es[1] != (Edge{U: 0, V: 1, W: 1}) || es[2] != (Edge{U: 2, V: 3, W: 1}) {
		t.Fatalf("tie-break order wrong: %v", es)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d, want 6", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Fatal("Same wrong")
	}
	if uf.Sets() != 4 {
		t.Fatalf("Sets = %d, want 4", uf.Sets())
	}
}

func TestUnionFindQuickProperty(t *testing.T) {
	// Property: after any union sequence, Same is an equivalence relation
	// consistent with the union operations (checked via a naive labeling).
	f := func(ops []uint16) bool {
		const n = 32
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, op := range ops {
			x, y := int(op)%n, int(op/n)%n
			uf.Union(x, y)
			relabel(label[x], label[y])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHasProperTSpanner(t *testing.T) {
	// Triangle with unit weights: removing any edge leaves a 2-hop path, so
	// a proper 2-spanner exists but a proper 1.5-spanner does not.
	tri := mustGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}})
	if !tri.HasProperTSpanner(2) {
		t.Fatal("triangle must have proper 2-spanner")
	}
	if tri.HasProperTSpanner(1.5) {
		t.Fatal("triangle must not have proper 1.5-spanner")
	}
	// A tree never has a proper spanner for any t.
	tree := pathGraph(5)
	if tree.HasProperTSpanner(100) {
		t.Fatal("tree cannot have a proper spanner")
	}
}
