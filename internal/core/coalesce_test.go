package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/metric"
)

// TestCoalescePolicyMetric interleaves fine-grained point insertions with
// queries under every policy shape and requires each queried Result to be
// bit-identical to a from-scratch build on the points inserted so far.
func TestCoalescePolicyMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := gen.UniformPoints(rng, 40, 2)
	policies := []IncrementalPolicy{
		{},                                      // replay every call (the default)
		{CoalesceUntilQuery: true},              // defer until Result
		{MinBatch: 4},                           // defer until 4 points pend
		{CoalesceUntilQuery: true, MinBatch: 6}, // both triggers
	}
	for _, p := range policies {
		inc, err := NewIncrementalMetric(metric.MustEuclidean(pts[:20]), 1.5,
			MetricParallelOptions{Workers: 1, Hubs: 4})
		if err != nil {
			t.Fatal(err)
		}
		inc.SetPolicy(p)
		for k := 21; k <= len(pts); k++ {
			if err := inc.Insert(metric.MustEuclidean(pts[:k])); err != nil {
				t.Fatal(err)
			}
			if !p.coalescing() && inc.Pending() != 0 {
				t.Fatalf("default policy left %d pending", inc.Pending())
			}
			if p.MinBatch > 0 && inc.Pending() >= p.MinBatch {
				t.Fatalf("MinBatch %d policy left %d pending", p.MinBatch, inc.Pending())
			}
			// Query every third insertion: Result must flush and match.
			if k%3 == 0 {
				want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts[:k]), 1.5)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, want, mustResult(t, inc))
				if inc.Pending() != 0 {
					t.Fatalf("Result left %d pending", inc.Pending())
				}
			}
		}
		want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts), 1.5)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, mustResult(t, inc))
	}
}

// TestCoalescePolicyGraph is the graph-mode counterpart, one edge per
// InsertEdges call.
func TestCoalescePolicyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := gen.ErdosRenyi(rng, 35, 0.25, 0.5, 10)
	edges := g.EdgesCopy()
	held := edges[len(edges)-15:]
	base := g.Subgraph(edges[:len(edges)-15])
	for _, p := range []IncrementalPolicy{{CoalesceUntilQuery: true}, {MinBatch: 5}} {
		inc, err := NewIncrementalGraph(base, 3, ParallelOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		inc.SetPolicy(p)
		grown := base.Clone()
		for i, e := range held {
			if err := inc.InsertEdges(e); err != nil {
				t.Fatal(err)
			}
			grown.MustAddEdge(e.U, e.V, e.W)
			if i%4 == 3 {
				want, err := GreedyGraph(grown, 3)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, want, mustResult(t, inc))
			}
		}
		want, err := GreedyGraph(grown, 3)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, mustResult(t, inc))
	}
}

// TestSetPolicyFlushesPending pins the SetPolicy contract: switching back
// to an eager policy replays whatever a coalescing policy left pending.
func TestSetPolicyFlushesPending(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := gen.UniformPoints(rng, 24, 2)
	inc, err := NewIncrementalMetric(metric.MustEuclidean(pts[:20]), 1.5,
		MetricParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	inc.SetPolicy(IncrementalPolicy{CoalesceUntilQuery: true})
	for k := 21; k <= len(pts); k++ {
		if err := inc.Insert(metric.MustEuclidean(pts[:k])); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", inc.Pending())
	}
	inc.SetPolicy(IncrementalPolicy{})
	if inc.Pending() != 0 {
		t.Fatalf("SetPolicy left %d pending", inc.Pending())
	}
	want, err := GreedyMetricFastSerial(metric.MustEuclidean(pts), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, mustResult(t, inc))
}
