// Quickstart: build a greedy t-spanner of a small weighted graph with the
// public API, verify its stretch, and print its quality statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	spanner "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A ring of 12 vertices with unit edges plus random chords: the chords
	// are mostly redundant at stretch 3, so the greedy spanner strips them.
	const n = 12
	g := spanner.NewGraph(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n, 1); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 8; c++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, 1.5+rng.Float64()); err != nil {
			return err
		}
	}
	fmt.Printf("input graph: %d vertices, %d edges, weight %.2f\n", g.N(), g.M(), g.Weight())

	const t = 3.0
	res, err := spanner.Greedy(g, t)
	if err != nil {
		return err
	}
	h := res.Graph()
	fmt.Printf("greedy %.0f-spanner: %d edges, weight %.2f\n", t, res.Size(), res.Weight)

	// Verify the stretch over every input edge (which implies all pairs).
	rep, err := spanner.VerifySpanner(h, g, t)
	if err != nil {
		return err
	}
	fmt.Printf("verified: max stretch %.3f over %d edges (bound %.0f)\n", rep.MaxStretch, rep.Pairs, t)

	// Lightness: spanner weight relative to the MST (the paper's Psi).
	light, err := spanner.Lightness(h, g)
	if err != nil {
		return err
	}
	fmt.Printf("lightness Psi(H) = %.3f, max degree = %d\n", light, h.MaxDegree())

	// Lemma 3 of the paper: the greedy spanner is its own unique t-spanner
	// — no edge of H can be replaced by a path.
	if v := spanner.VerifySelfSpanner(h, t); len(v) == 0 {
		fmt.Println("Lemma 3 check: every spanner edge is irreplaceable ✓")
	} else {
		return fmt.Errorf("unexpected self-spanner violations: %v", v)
	}
	return nil
}
